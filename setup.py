"""Legacy setup shim.

The execution environment has setuptools but no ``wheel`` package, so
PEP 517 editable installs fail. This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` work offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro.dashboard": ["specs/*.json"], "repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "networkx"],
)
