"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workload import DATASET_NAMES, dataset_schema, generate_dataset


class TestRegistry:
    def test_six_datasets(self):
        assert len(DATASET_NAMES) == 6

    def test_unknown_dataset_raises(self):
        with pytest.raises(ConfigError):
            generate_dataset("nope", 10)

    def test_nonpositive_rows_raises(self):
        with pytest.raises(ConfigError):
            generate_dataset("circulation", 0)


class TestDeterminism:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_same_seed_same_data(self, name):
        a = generate_dataset(name, 200, seed=5)
        b = generate_dataset(name, 200, seed=5)
        for column in a.schema.names:
            assert a.column(column) == b.column(column)

    def test_different_seed_different_data(self):
        a = generate_dataset("customer_service", 200, seed=1)
        b = generate_dataset("customer_service", 200, seed=2)
        assert a.column("queue") != b.column("queue")


class TestShapes:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_row_count(self, name):
        assert generate_dataset(name, 321, seed=0).num_rows == 321

    @pytest.mark.parametrize(
        "name,quant,cat",
        [
            ("circulation", 2, 2),
            ("supply_chain", 5, 18),
            ("ubc_energy", 22, 4),
            ("myride", 10, 3),
            ("it_monitor", 3, 5),
            ("customer_service", 10, 6),
        ],
    )
    def test_figure6_column_counts(self, name, quant, cat):
        schema = dataset_schema(name)
        assert len(schema.numeric_columns()) == quant
        assert len(schema.categorical_columns()) == cat
        assert len(schema.temporal_columns()) >= 1

    def test_values_are_plain_python(self):
        table = generate_dataset("it_monitor", 50, seed=0)
        for value in table.column("severity"):
            assert type(value) is str
        for value in table.column("cpu"):
            assert isinstance(value, float)


class TestInjectedRelationships:
    def test_call_volume_correlates_with_abandonment(self):
        """The Example 2.2 correlation must exist in the data."""
        table = generate_dataset("customer_service", 20_000, seed=0)
        hours = np.array(table.column("hour"), dtype=float)
        abandoned = np.array(table.column("abandoned"), dtype=float)
        volume_per_hour = np.bincount(hours.astype(int), minlength=24)
        abandonment_per_hour = np.zeros(24)
        for h in range(24):
            mask = hours == h
            if mask.any():
                abandonment_per_hour[h] = abandoned[mask].mean()
        correlation = np.corrcoef(
            volume_per_hour, abandonment_per_hour
        )[0, 1]
        assert correlation > 0.5

    def test_it_latency_follows_cpu(self):
        table = generate_dataset("it_monitor", 10_000, seed=0)
        cpu = np.array(table.column("cpu"))
        latency = np.array(table.column("latency"))
        assert np.corrcoef(cpu, latency)[0, 1] > 0.3

    def test_it_latency_is_heavy_tailed(self):
        """Most latency mass is low; the domain stretches far above it
        (this drives the §6.4 empty-range behaviour)."""
        table = generate_dataset("it_monitor", 10_000, seed=0)
        latency = np.array(table.column("latency"))
        assert np.percentile(latency, 90) < latency.max() / 5

    def test_myride_heart_rate_follows_power(self):
        table = generate_dataset("myride", 5_000, seed=0)
        power = np.array(table.column("power"))
        heart_rate = np.array(table.column("heart_rate"))
        assert np.corrcoef(power, heart_rate)[0, 1] > 0.5

    def test_supply_chain_profit_depends_on_discount(self):
        table = generate_dataset("supply_chain", 10_000, seed=0)
        discount = np.array(table.column("discount"))
        profit = np.array(table.column("profit"))
        sales = np.array(table.column("sales"))
        margin = profit / np.maximum(sales, 1e-9)
        assert np.corrcoef(discount, margin)[0, 1] < -0.5

    def test_customer_service_queues_skewed(self):
        table = generate_dataset("customer_service", 10_000, seed=0)
        queues = table.column("queue")
        assert queues.count("A") > queues.count("D") * 2


class TestEngineCompatibility:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_loads_into_sqlite(self, name):
        from repro.engine.registry import create_engine
        from repro.sql.parser import parse_query

        table = generate_dataset(name, 100, seed=0)
        engine = create_engine("sqlite")
        engine.load_table(table)
        result = engine.execute(
            parse_query(f"SELECT COUNT(*) FROM {table.name}")
        )
        assert result.rows == [(100,)]
        engine.close()
