"""Approximate query processing: samplers, estimators, progressive runs."""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.approx import (
    approximate_execute,
    bernoulli_sample,
    progressive_execute,
    relative_error,
    sample_prefix,
    uniform_sample,
)
from repro.approx.sampler import resample_with_replacement, shuffled_indices
from repro.engine import create_engine
from repro.engine.interface import ResultSet
from repro.engine.table import Table
from repro.errors import ConfigError
from repro.sql.parser import parse_query
from repro.workload.datasets import generate_customer_service


@pytest.fixture(scope="module")
def service():
    return generate_customer_service(20_000, seed=5)


@pytest.fixture(scope="module")
def group_query():
    return parse_query(
        "SELECT queue, COUNT(*) AS calls, SUM(abandoned) AS ab "
        "FROM customer_service GROUP BY queue ORDER BY queue"
    )


@pytest.fixture(scope="module")
def exact(service, group_query):
    engine = create_engine("vectorstore")
    engine.load_table(service)
    return engine.execute(group_query)


class TestSamplers:
    def test_bernoulli_sample_size_close_to_fraction(self, service):
        sample = bernoulli_sample(service, 0.1, seed=1)
        assert 0.05 * len(service) < sample.num_rows < 0.15 * len(service)

    def test_bernoulli_full_fraction_is_identity(self, service):
        sample = bernoulli_sample(service, 1.0, seed=1)
        assert sample.num_rows == service.num_rows

    def test_bernoulli_deterministic_per_seed(self, service):
        a = bernoulli_sample(service, 0.05, seed=9)
        b = bernoulli_sample(service, 0.05, seed=9)
        assert a.column("hour") == b.column("hour")

    def test_bernoulli_fraction_validation(self, service):
        with pytest.raises(ConfigError):
            bernoulli_sample(service, 0.0)
        with pytest.raises(ConfigError):
            bernoulli_sample(service, 1.5)

    def test_uniform_sample_exact_size(self, service):
        assert uniform_sample(service, 123, seed=2).num_rows == 123

    def test_uniform_sample_oversize_clamps(self, service):
        sample = uniform_sample(service, service.num_rows * 2)
        assert sample.num_rows == service.num_rows

    def test_uniform_sample_size_validation(self, service):
        with pytest.raises(ConfigError):
            uniform_sample(service, 0)

    def test_prefixes_are_nested(self, service):
        small = sample_prefix(service, 0.05, seed=4)
        large = sample_prefix(service, 0.2, seed=4)
        small_ids = set(zip(small.column("repID"), small.column("ts")))
        large_ids = set(zip(large.column("repID"), large.column("ts")))
        assert small_ids <= large_ids

    def test_shuffled_indices_is_permutation(self, service):
        permutation = shuffled_indices(service, seed=3)
        assert sorted(permutation) == list(range(service.num_rows))

    def test_resample_keeps_size(self, service):
        replicate = resample_with_replacement(service, seed=1)
        assert replicate.num_rows == service.num_rows

    def test_samples_share_schema(self, service):
        sample = bernoulli_sample(service, 0.1, seed=1)
        assert sample.schema == service.schema
        assert sample.name == service.name


class TestApproximateExecute:
    def test_estimate_close_to_exact(self, service, group_query, exact):
        engine = create_engine("vectorstore")
        result = approximate_execute(
            engine, service, group_query, fraction=0.1, seed=7
        )
        assert relative_error(exact, result.estimate) < 0.1

    def test_error_shrinks_with_fraction(self, service, group_query, exact):
        errors = []
        for fraction in (0.02, 0.5):
            engine = create_engine("vectorstore")
            result = approximate_execute(
                engine, service, group_query, fraction=fraction, seed=7
            )
            errors.append(relative_error(exact, result.estimate))
        assert errors[1] < errors[0]

    def test_count_and_sum_are_scaled(self, service, group_query):
        engine = create_engine("vectorstore")
        result = approximate_execute(
            engine, service, group_query, fraction=0.1, seed=7
        )
        assert result.scaled_columns == ["calls", "ab"]
        total = sum(result.estimate.column("calls"))
        assert total == pytest.approx(service.num_rows, rel=0.15)

    def test_avg_not_scaled(self, service):
        query = parse_query(
            "SELECT queue, AVG(duration) AS d FROM customer_service "
            "GROUP BY queue"
        )
        engine = create_engine("vectorstore")
        result = approximate_execute(engine, service, query, 0.1, seed=7)
        assert result.scaled_columns == []
        exact_engine = create_engine("vectorstore")
        exact_engine.load_table(service)
        exact_result = exact_engine.execute(query)
        assert relative_error(exact_result, result.estimate) < 0.1

    def test_min_max_flagged_unreliable(self, service):
        query = parse_query(
            "SELECT MAX(duration) AS worst FROM customer_service"
        )
        engine = create_engine("vectorstore")
        result = approximate_execute(engine, service, query, 0.1, seed=7)
        assert result.unreliable_columns == ["worst"]

    def test_count_distinct_flagged_unreliable(self, service):
        query = parse_query(
            "SELECT COUNT(DISTINCT repID) AS reps FROM customer_service"
        )
        engine = create_engine("vectorstore")
        result = approximate_execute(engine, service, query, 0.2, seed=7)
        assert result.unreliable_columns == ["reps"]

    def test_bootstrap_errors_cover_truth(self, service, group_query, exact):
        engine = create_engine("vectorstore")
        result = approximate_execute(
            engine, service, group_query, 0.1, seed=7, bootstrap=30
        )
        assert result.stderr
        covered = 0
        total = 0
        exact_by_queue = {row[0]: row[1] for row in exact.rows}
        for row_index, row in enumerate(result.estimate.rows):
            interval = result.cell_interval(row_index, "calls", z=2.6)
            if interval is None:
                continue
            total += 1
            low, high = interval
            if low <= exact_by_queue[row[0]] <= high:
                covered += 1
        assert total == 4
        assert covered >= 3  # ~99% nominal; allow one unlucky cell

    def test_join_queries_rejected(self, service):
        query = parse_query(
            "SELECT x FROM customer_service JOIN d ON customer_service.a = d.a"
        )
        with pytest.raises(ConfigError):
            approximate_execute(
                create_engine("vectorstore"), service, query, 0.1
            )

    def test_table_name_mismatch_rejected(self, service):
        query = parse_query("SELECT COUNT(*) FROM other")
        with pytest.raises(ConfigError):
            approximate_execute(
                create_engine("vectorstore"), service, query, 0.1
            )

    def test_works_on_every_engine(self, service, group_query, exact):
        for name in ("rowstore", "matstore", "sqlite", "vectorstore"):
            engine = create_engine(name)
            result = approximate_execute(
                engine, service, group_query, 0.2, seed=3
            )
            assert relative_error(exact, result.estimate) < 0.1
            engine.close()


class TestRelativeError:
    def test_identical_results_have_zero_error(self):
        result = ResultSet(["q", "n"], [("a", 10), ("b", 20)])
        assert relative_error(result, result) == 0.0

    def test_missing_group_penalized(self):
        exact = ResultSet(["q", "n"], [("a", 10), ("b", 20)])
        estimate = ResultSet(["q", "n"], [("a", 10)])
        assert relative_error(exact, estimate) == pytest.approx(0.5)

    def test_invented_group_penalized(self):
        exact = ResultSet(["q", "n"], [("a", 10)])
        estimate = ResultSet(["q", "n"], [("a", 10), ("z", 5)])
        assert relative_error(exact, estimate) == pytest.approx(0.5)

    def test_zero_truth_handled(self):
        exact = ResultSet(["q", "n"], [("a", 0)])
        close = ResultSet(["q", "n"], [("a", 0)])
        off = ResultSet(["q", "n"], [("a", 3)])
        assert relative_error(exact, close) == 0.0
        assert relative_error(exact, off) == 1.0


class TestProgressive:
    def test_updates_are_monotone_in_fraction(self, service, group_query):
        engine = create_engine("vectorstore")
        updates = list(
            progressive_execute(
                engine, service, group_query, seed=1, epsilon=0.0
            )
        )
        fractions = [u.fraction for u in updates]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_final_update_matches_exact(self, service, group_query, exact):
        engine = create_engine("vectorstore")
        updates = list(
            progressive_execute(
                engine, service, group_query, seed=1, epsilon=0.0
            )
        )
        assert relative_error(exact, updates[-1].estimate) == 0.0

    def test_convergence_stops_early(self, service, group_query):
        engine = create_engine("vectorstore")
        updates = list(
            progressive_execute(
                engine, service, group_query, seed=1, epsilon=0.5
            )
        )
        assert updates[-1].converged
        assert updates[-1].fraction < 1.0

    def test_error_improves_over_steps(self, service, group_query, exact):
        engine = create_engine("vectorstore")
        updates = list(
            progressive_execute(
                engine,
                service,
                group_query,
                fractions=(0.01, 1.0),
                seed=1,
                epsilon=0.0,
            )
        )
        first = relative_error(exact, updates[0].estimate)
        last = relative_error(exact, updates[-1].estimate)
        assert last <= first

    def test_rows_read_grow(self, service, group_query):
        engine = create_engine("vectorstore")
        updates = list(
            progressive_execute(
                engine, service, group_query, seed=1, epsilon=0.0
            )
        )
        reads = [u.rows_read for u in updates]
        assert reads == sorted(reads)

    def test_empty_fraction_schedule_rejected(self, service, group_query):
        with pytest.raises(ConfigError):
            list(
                progressive_execute(
                    create_engine("vectorstore"),
                    service,
                    group_query,
                    fractions=(),
                )
            )

    def test_out_of_range_fraction_rejected(self, service, group_query):
        with pytest.raises(ConfigError):
            list(
                progressive_execute(
                    create_engine("vectorstore"),
                    service,
                    group_query,
                    fractions=(0.5, 1.5),
                )
            )


# ---------------------------------------------------------------------------
# Property: Horvitz–Thompson scaling is unbiased-ish across seeds
# ---------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_count_estimate_within_statistical_bounds(seed):
    table = Table.from_rows(
        "t", [{"g": "x", "v": i} for i in range(2_000)]
    )
    engine = create_engine("vectorstore")
    query = parse_query("SELECT COUNT(*) AS n FROM t")
    result = approximate_execute(engine, table, query, 0.25, seed=seed)
    estimate = result.estimate.rows[0][0]
    # Binomial sd of the scaled count is sqrt(n p (1-p)) / p ≈ 77;
    # allow 5 sigma so the test is effectively deterministic.
    assert abs(estimate - 2_000) < 5 * 78
