"""Property tests over the workload generator (hypothesis).

Three invariants, each over the full (schema, index, seed) space:

- every generated spec validates and survives a JSON round-trip
  unchanged;
- generated tables survive the ``workload/normalize.py`` star-schema
  round-trip: grouped queries over moved attributes return identical
  results on the denormalized table and the reassembled star;
- injected spec corruption is rejected by the loader with a *clear*
  error message naming the offending component.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.dashboard.spec import DashboardSpec
from repro.engine import create_engine
from repro.errors import SpecificationError
from repro.sql.parser import parse_query
from repro.workload.normalize import (
    load_star,
    normalize_star,
    reassembly_query,
)
from repro.workloadgen import (
    SCHEMA_NAMES,
    generate_dashboard,
    generate_table,
    star_dimensions,
    workload_schema,
)

_schema_names = st.sampled_from(SCHEMA_NAMES)


@settings(max_examples=50, deadline=None)
@given(
    schema_name=_schema_names,
    index=st.integers(min_value=0, max_value=500),
    seed=st.integers(min_value=0, max_value=100),
)
def test_generated_specs_validate_and_round_trip(schema_name, index, seed):
    spec = generate_dashboard(
        workload_schema(schema_name), index=index, seed=seed
    )
    spec.validate()
    reloaded = DashboardSpec.from_json(spec.to_json())
    reloaded.validate()
    assert reloaded == spec


@settings(max_examples=10, deadline=None)
@given(
    schema_name=_schema_names,
    seed=st.integers(min_value=0, max_value=30),
)
def test_star_normalization_round_trip(schema_name, seed):
    schema = workload_schema(schema_name)
    table = generate_table(schema, 150, seed=seed)
    dimensions = star_dimensions(schema)
    assert dimensions, f"{schema_name} declares no functional dependencies"
    star = normalize_star(table, dimensions)  # strict FD check passes

    denorm = create_engine("rowstore")
    denorm.load_table(table)
    joined = create_engine("rowstore")
    load_star(joined, star)
    measure = schema.by_role("measure")[0].name
    for attribute in sorted(star.attribute_owner):
        query = parse_query(
            f"SELECT {attribute}, COUNT(*), SUM({measure}) "
            f"FROM {schema.name} GROUP BY {attribute}"
        )
        rewritten = reassembly_query(star, query)
        assert rewritten.joins
        assert joined.execute(rewritten).sorted_rows(
            precision=6
        ) == denorm.execute(query).sorted_rows(precision=6)
    denorm.close()
    joined.close()


# -- corruption injection ----------------------------------------------------

#: (corruption name, mutator over spec dict, expected message fragment).
_CORRUPTIONS = [
    (
        "unknown_dim_column",
        lambda d: d["interface"]["visualizations"][0]["dimensions"]
        .__setitem__(0, {"column": "no_such_column", "bin": None}),
        "unknown\\s+column 'no_such_column'",
    ),
    (
        "unknown_measure_column",
        lambda d: d["interface"]["visualizations"][0]["measures"]
        .__setitem__(0, {"agg": "sum", "column": "no_such_column"}),
        "unknown\\s+column 'no_such_column'",
    ),
    (
        "unknown_widget_column",
        lambda d: d["interface"]["widgets"][0]
        .__setitem__("column", "no_such_column"),
        "references unknown column",
    ),
    (
        "unknown_widget_target",
        lambda d: d["interface"]["widgets"][0]
        .__setitem__("targets", ["ghost_component"]),
        "targets unknown\\s+component",
    ),
    (
        "bad_viz_type",
        lambda d: d["interface"]["visualizations"][0]
        .__setitem__("type", "sparkline"),
        "unknown type 'sparkline'",
    ),
    (
        "widget_without_targets",
        lambda d: d["interface"]["widgets"][0].__setitem__("targets", []),
        "no targets",
    ),
    (
        "duplicate_component_ids",
        lambda d: d["interface"]["visualizations"].append(
            dict(d["interface"]["visualizations"][0])
        ),
        "duplicate component ids",
    ),
]


@settings(max_examples=35, deadline=None)
@given(
    schema_name=_schema_names,
    index=st.integers(min_value=0, max_value=100),
    corruption=st.sampled_from([c[0] for c in _CORRUPTIONS]),
)
def test_injected_corruption_raises_clear_errors(
    schema_name, index, corruption
):
    name, mutate, fragment = next(
        c for c in _CORRUPTIONS if c[0] == corruption
    )
    data = generate_dashboard(
        workload_schema(schema_name), index=index, seed=0
    ).to_dict()
    mutate(data)
    with pytest.raises(SpecificationError, match=fragment):
        DashboardSpec.from_dict(data)
