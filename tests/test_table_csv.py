"""CSV ingest/export for Table, including type inference."""

from __future__ import annotations

import datetime as dt

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.engine.table import ColumnDef, Schema, Table
from repro.engine.types import DataType, parse_cell
from repro.errors import SchemaError
from repro.workload.datasets import generate_customer_service


class TestParseCell:
    def test_empty_is_null(self):
        assert parse_cell("") is None

    def test_integer(self):
        assert parse_cell("42") == 42
        assert isinstance(parse_cell("42"), int)

    def test_float(self):
        assert parse_cell("3.5") == 3.5

    def test_boolean_case_insensitive(self):
        assert parse_cell("true") is True
        assert parse_cell("False") is False

    def test_date(self):
        assert parse_cell("2024-03-01") == dt.date(2024, 3, 1)

    def test_timestamp(self):
        assert parse_cell("2024-03-01 10:30:00") == dt.datetime(
            2024, 3, 1, 10, 30
        )

    def test_string_fallback(self):
        assert parse_cell("queue A") == "queue A"

    def test_numeric_looking_text_prefers_number(self):
        assert parse_cell("007") == 7


class TestCsvRoundTrip:
    def test_lossless_with_schema(self, tmp_path):
        table = generate_customer_service(300, seed=3)
        path = tmp_path / "cs.csv"
        table.to_csv(path)
        restored = Table.from_csv("customer_service", path, schema=table.schema)
        for name in table.schema.names:
            assert restored.column(name) == table.column(name), name

    def test_inference_recovers_types(self, tmp_path):
        table = generate_customer_service(300, seed=3)
        path = tmp_path / "cs.csv"
        table.to_csv(path)
        inferred = Table.from_csv("customer_service", path)
        assert [c.dtype for c in inferred.schema] == [
            c.dtype for c in table.schema
        ]

    def test_nulls_round_trip(self, tmp_path):
        table = Table.from_rows(
            "t",
            [{"a": 1, "b": "x"}, {"a": None, "b": None}, {"a": 3, "b": "z"}],
        )
        path = tmp_path / "t.csv"
        table.to_csv(path)
        restored = Table.from_csv("t", path, schema=table.schema)
        assert restored.column("a") == [1, None, 3]
        assert restored.column("b") == ["x", None, "z"]

    def test_booleans_round_trip(self, tmp_path):
        table = Table.from_rows(
            "t", [{"flag": True}, {"flag": False}, {"flag": None}]
        )
        path = tmp_path / "t.csv"
        table.to_csv(path)
        restored = Table.from_csv("t", path, schema=table.schema)
        assert restored.column("flag") == [True, False, None]
        assert restored.schema.dtype("flag") is DataType.BOOLEAN

    def test_commas_and_quotes_in_strings(self, tmp_path):
        table = Table.from_rows(
            "t", [{"note": 'a, "quoted" cell'}, {"note": "line\nbreak"}]
        )
        path = tmp_path / "t.csv"
        table.to_csv(path)
        restored = Table.from_csv("t", path, schema=table.schema)
        assert restored.column("note") == table.column("note")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError, match="empty"):
            Table.from_csv("t", path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(SchemaError, match="line 3"):
            Table.from_csv("t", path)

    def test_unknown_schema_column_rejected(self, tmp_path):
        path = tmp_path / "extra.csv"
        path.write_text("a,nosuch\n1,2\n")
        schema = Schema([ColumnDef("a", DataType.INTEGER)])
        with pytest.raises(SchemaError, match="not in the schema"):
            Table.from_csv("t", path, schema=schema)

    def test_header_only_file_gives_empty_table(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("a,b\n")
        table = Table.from_csv(
            "t",
            path,
            schema=Schema(
                [
                    ColumnDef("a", DataType.INTEGER),
                    ColumnDef("b", DataType.STRING),
                ]
            ),
        )
        assert table.num_rows == 0

    def test_loaded_table_executes(self, tmp_path):
        from repro.engine import create_engine
        from repro.sql.parser import parse_query

        table = generate_customer_service(200, seed=1)
        path = tmp_path / "cs.csv"
        table.to_csv(path)
        restored = Table.from_csv("customer_service", path, schema=table.schema)
        engine = create_engine("sqlite")
        engine.load_table(restored)
        result = engine.execute(
            parse_query(
                "SELECT queue, COUNT(*) AS n FROM customer_service "
                "GROUP BY queue ORDER BY queue"
            )
        )
        assert sum(result.column("n")) == 200


# ---------------------------------------------------------------------------
# Property: typed tables survive a CSV round trip with their schema
# ---------------------------------------------------------------------------

_values = st.one_of(
    st.none(),
    st.integers(min_value=-10_000, max_value=10_000),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False).map(
        lambda v: round(v, 6)
    ),
    st.sampled_from(["east", "it's", 'with "quotes"', "a,b", ""]),
    st.booleans(),
    st.dates(
        min_value=dt.date(2000, 1, 1), max_value=dt.date(2030, 12, 31)
    ),
)


@given(
    st.lists(
        st.fixed_dictionaries(
            {
                "i": st.integers(min_value=0, max_value=99) | st.none(),
                "f": st.floats(
                    min_value=-100, max_value=100, allow_nan=False
                ).map(lambda v: round(v, 4))
                | st.none(),
                # "" excluded: CSV cannot distinguish it from NULL
                # (documented limitation of Table.to_csv).
                "s": st.sampled_from(["x", "y,z", 'q"w']) | st.none(),
                "d": st.dates(
                    min_value=dt.date(2020, 1, 1),
                    max_value=dt.date(2025, 1, 1),
                )
                | st.none(),
            }
        ),
        min_size=1,
        max_size=25,
    )
)
@settings(max_examples=40, deadline=None)
def test_csv_round_trip_property(tmp_path_factory, rows):
    schema = Schema(
        [
            ColumnDef("i", DataType.INTEGER),
            ColumnDef("f", DataType.FLOAT),
            ColumnDef("s", DataType.STRING),
            ColumnDef("d", DataType.DATE),
        ]
    )
    table = Table.from_rows("t", rows, schema=schema)
    path = tmp_path_factory.mktemp("csv") / "t.csv"
    table.to_csv(path)
    restored = Table.from_csv("t", path, schema=schema)
    for name in schema.names:
        assert restored.column(name) == table.column(name), name
