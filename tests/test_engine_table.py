"""Unit tests for the in-memory table storage."""

import numpy as np
import pytest

from repro.engine.table import ColumnDef, Database, Schema, Table
from repro.engine.types import DataType
from repro.errors import SchemaError


@pytest.fixture()
def simple_table():
    return Table.from_columns(
        "t",
        {
            "q": ["A", "B", "A", None],
            "x": [1, 2, 3, 4],
            "y": [1.5, None, 2.5, 0.0],
        },
    )


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([ColumnDef("a", DataType.INTEGER)] * 2)

    def test_lookup(self):
        schema = Schema([ColumnDef("a", DataType.FLOAT)])
        assert schema.dtype("a") is DataType.FLOAT

    def test_unknown_column_raises(self):
        schema = Schema([ColumnDef("a", DataType.FLOAT)])
        with pytest.raises(SchemaError):
            schema.column("b")

    def test_contains(self):
        schema = Schema([ColumnDef("a", DataType.FLOAT)])
        assert "a" in schema
        assert "b" not in schema

    def test_role_partitions(self):
        schema = Schema(
            [
                ColumnDef("s", DataType.STRING),
                ColumnDef("i", DataType.INTEGER),
                ColumnDef("d", DataType.DATE),
            ]
        )
        assert schema.categorical_columns() == ["s"]
        assert schema.numeric_columns() == ["i"]
        assert schema.temporal_columns() == ["d"]


class TestTableConstruction:
    def test_from_rows_infers_schema(self):
        table = Table.from_rows("t", [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert table.schema.dtype("a") is DataType.INTEGER
        assert table.schema.dtype("b") is DataType.STRING
        assert table.num_rows == 2

    def test_from_rows_with_schema_coerces(self):
        schema = Schema([ColumnDef("a", DataType.FLOAT)])
        table = Table.from_rows("t", [{"a": 1}], schema)
        assert isinstance(table.column("a")[0], float)

    def test_from_rows_empty_without_schema_raises(self):
        with pytest.raises(SchemaError):
            Table.from_rows("t", [])

    def test_ragged_columns_rejected(self):
        schema = Schema(
            [ColumnDef("a", DataType.INTEGER), ColumnDef("b", DataType.INTEGER)]
        )
        with pytest.raises(SchemaError):
            Table("t", schema, {"a": [1, 2], "b": [1]})

    def test_missing_column_rejected(self):
        schema = Schema([ColumnDef("a", DataType.INTEGER)])
        with pytest.raises(SchemaError):
            Table("t", schema, {})


class TestTableAccess:
    def test_len(self, simple_table):
        assert len(simple_table) == 4

    def test_column_values(self, simple_table):
        assert simple_table.column("x") == [1, 2, 3, 4]

    def test_unknown_column_raises(self, simple_table):
        with pytest.raises(SchemaError):
            simple_table.column("zzz")

    def test_row(self, simple_table):
        assert simple_table.row(0) == {"q": "A", "x": 1, "y": 1.5}

    def test_iter_rows(self, simple_table):
        rows = list(simple_table.iter_rows())
        assert len(rows) == 4
        assert rows[3]["q"] is None

    def test_head(self, simple_table):
        assert len(simple_table.head(2)) == 2

    def test_distinct_values_skip_nulls_and_sort(self, simple_table):
        assert simple_table.distinct_values("q") == ["A", "B"]

    def test_column_extent(self, simple_table):
        assert simple_table.column_extent("x") == (1, 4)

    def test_column_extent_empty(self):
        table = Table.from_columns(
            "t",
            {"a": [None, None]},
            Schema([ColumnDef("a", DataType.INTEGER)]),
        )
        assert table.column_extent("a") == (None, None)


class TestArrays:
    def test_numeric_array_has_nan_for_null(self, simple_table):
        array = simple_table.array("y")
        assert array.dtype == np.float64
        assert np.isnan(array[1])

    def test_string_array_is_object(self, simple_table):
        assert simple_table.array("q").dtype == object

    def test_array_is_cached(self, simple_table):
        assert simple_table.array("x") is simple_table.array("x")


class TestDatabase:
    def test_add_and_lookup(self, simple_table):
        db = Database([simple_table])
        assert db.table("t") is simple_table
        assert "t" in db

    def test_unknown_table_raises(self):
        with pytest.raises(SchemaError):
            Database().table("nope")

    def test_table_names(self, simple_table):
        assert Database([simple_table]).table_names == ["t"]
