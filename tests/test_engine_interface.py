"""Tests for the engine interface, result sets, and registry."""

import math

import pytest

from repro.engine.interface import ResultSet, normalize_value
from repro.engine.registry import (
    PAPER_ANALOGUE,
    available_engines,
    create_engine,
    register_engine,
)
from repro.errors import ConfigError


class TestResultSet:
    def test_len_and_iter(self):
        rs = ResultSet(["a"], [(1,), (2,)])
        assert len(rs) == 2
        assert list(rs) == [(1,), (2,)]

    def test_is_empty(self):
        assert ResultSet(["a"], []).is_empty
        assert not ResultSet(["a"], [(1,)]).is_empty

    def test_column_access(self):
        rs = ResultSet(["a", "b"], [(1, "x"), (2, "y")])
        assert rs.column("b") == ["x", "y"]

    def test_unknown_column_raises(self):
        with pytest.raises(KeyError):
            ResultSet(["a"], []).column("zz")

    def test_to_dicts(self):
        rs = ResultSet(["a", "b"], [(1, 2)])
        assert rs.to_dicts() == [{"a": 1, "b": 2}]

    def test_cell_set_order_insensitive(self):
        a = ResultSet(["x", "y"], [(1, 2), (3, 4)])
        b = ResultSet(["x", "y"], [(3, 4), (1, 2)])
        assert a.cell_set() == b.cell_set()

    def test_row_set_deduplicates(self):
        rs = ResultSet(["a"], [(1,), (1,)])
        assert len(rs.row_set()) == 1

    def test_sorted_rows_handles_nulls(self):
        rs = ResultSet(["a"], [(None,), (2,), (1,)])
        assert rs.sorted_rows() == [(None,), (1,), (2,)]

    def test_equality(self):
        assert ResultSet(["a"], [(1,)]) == ResultSet(["a"], [(1,)])
        assert ResultSet(["a"], [(1,)]) != ResultSet(["a"], [(2,)])


class TestNormalizeValue:
    def test_integral_float_to_int(self):
        assert normalize_value(2.0) == 2
        assert isinstance(normalize_value(2.0), int)

    def test_bool_to_int(self):
        assert normalize_value(True) == 1

    def test_nan_to_none(self):
        assert normalize_value(float("nan")) is None

    def test_rounding(self):
        assert normalize_value(1.00000000004) == 1

    def test_precision_parameter(self):
        assert normalize_value(1.234567, precision=2) == 1.23

    def test_strings_untouched(self):
        assert normalize_value("x") == "x"


class TestRegistry:
    def test_four_engines(self):
        assert set(available_engines()) >= {
            "rowstore", "vectorstore", "matstore", "sqlite",
        }

    def test_unknown_engine_raises(self):
        with pytest.raises(ConfigError):
            create_engine("postgres")

    def test_paper_analogue_documented(self):
        for name in ("rowstore", "vectorstore", "matstore", "sqlite"):
            assert name in PAPER_ANALOGUE

    def test_register_custom_engine(self):
        from repro.engine.rowstore import RowStoreEngine

        class Custom(RowStoreEngine):
            name = "custom-test"

        register_engine("custom-test", Custom)
        try:
            assert isinstance(create_engine("custom-test"), Custom)
        finally:
            from repro.engine import registry

            registry._FACTORIES.pop("custom-test")

    def test_context_manager_closes(self, calls_table):
        with create_engine("sqlite") as engine:
            engine.load_table(calls_table)
        # Connection is closed; executing now must fail.
        from repro.errors import ExecutionError
        from repro.sql.parser import parse_query

        with pytest.raises(ExecutionError):
            engine.execute(parse_query("SELECT COUNT(*) FROM customer_service"))


class TestPlannerErrors:
    @pytest.mark.parametrize("engine_name", ["rowstore", "vectorstore", "matstore"])
    def test_having_without_aggregate_rejected(
        self, all_engines, engine_name
    ):
        from repro.errors import ExecutionError
        from repro.sql.parser import parse_query

        query = parse_query(
            "SELECT queue FROM customer_service HAVING queue = 'A'"
        )
        with pytest.raises(ExecutionError):
            all_engines[engine_name].execute(query)

    @pytest.mark.parametrize("engine_name", ["rowstore", "vectorstore", "matstore"])
    def test_bare_column_with_aggregate_rejected(
        self, all_engines, engine_name
    ):
        """Strict SQL: non-grouped columns cannot mix with aggregates."""
        from repro.errors import ExecutionError
        from repro.sql.parser import parse_query

        query = parse_query("SELECT queue, COUNT(*) FROM customer_service")
        with pytest.raises(ExecutionError):
            all_engines[engine_name].execute(query)

    @pytest.mark.parametrize("engine_name", ["rowstore", "vectorstore", "matstore"])
    def test_nested_aggregates_rejected(self, all_engines, engine_name):
        from repro.errors import ExecutionError
        from repro.sql.parser import parse_query

        query = parse_query("SELECT SUM(COUNT(x)) FROM customer_service")
        with pytest.raises(ExecutionError):
            all_engines[engine_name].execute(query)

    def test_unknown_table_raises(self, all_engines):
        from repro.errors import SchemaError, ExecutionError
        from repro.sql.parser import parse_query

        for engine in all_engines.values():
            with pytest.raises((SchemaError, ExecutionError)):
                engine.execute(parse_query("SELECT * FROM ghosts"))
