"""Unit tests for row-wise and vectorized expression evaluation."""

import datetime as dt
import math

import numpy as np
import pytest

from repro.engine.expressions import (
    VectorContext,
    apply_scalar_function,
    evaluate_mask,
    evaluate_row,
    evaluate_values,
    like_match,
    make_accumulator,
)
from repro.errors import ExecutionError, TypeMismatchError
from repro.sql.ast import FuncCall, Star
from repro.sql.parser import parse_expression


ROW = {
    "a": 5,
    "b": 2.5,
    "q": "A",
    "none": None,
    "flag": True,
    "d": dt.datetime(2024, 3, 15, 14, 30),
}


def ev(text, row=None):
    return evaluate_row(parse_expression(text), row or ROW)


class TestRowEvaluation:
    def test_column_and_literal(self):
        assert ev("a") == 5
        assert ev("7") == 7

    def test_arithmetic(self):
        assert ev("a + 1") == 6
        assert ev("a * b") == 12.5
        assert ev("a - 10") == -5

    def test_division_by_zero_is_null(self):
        assert ev("a / 0") is None

    def test_modulo(self):
        assert ev("a % 2") == 1

    def test_comparisons(self):
        assert ev("a > 4") is True
        assert ev("a > 5") is False
        assert ev("q = 'A'") is True
        assert ev("q != 'A'") is False

    def test_null_propagates_through_comparison(self):
        assert ev("none > 1") is None

    def test_null_propagates_through_arithmetic(self):
        assert ev("none + 1") is None

    def test_kleene_and(self):
        assert ev("none > 1 AND a > 100") is False  # False wins
        assert ev("none > 1 AND a > 1") is None

    def test_kleene_or(self):
        assert ev("none > 1 OR a > 1") is True  # True wins
        assert ev("none > 1 OR a > 100") is None

    def test_not_of_null_is_null(self):
        assert ev("NOT none > 1") is None

    def test_in_list(self):
        assert ev("q IN ('A', 'B')") is True
        assert ev("q IN ('X')") is False
        assert ev("q NOT IN ('X')") is True

    def test_in_with_null_member_and_no_match_is_null(self):
        assert ev("q IN ('X', NULL)") is None

    def test_between(self):
        assert ev("a BETWEEN 1 AND 10") is True
        assert ev("a BETWEEN 6 AND 10") is False
        assert ev("a NOT BETWEEN 6 AND 10") is True

    def test_like(self):
        assert ev("q LIKE 'A'") is True
        assert ev("q LIKE 'a'") is False  # case sensitive

    def test_is_null(self):
        assert ev("none IS NULL") is True
        assert ev("a IS NULL") is False
        assert ev("a IS NOT NULL") is True

    def test_unknown_column_raises(self):
        with pytest.raises(ExecutionError):
            ev("zzz")

    def test_aggregate_outside_group_raises(self):
        with pytest.raises(ExecutionError):
            ev("COUNT(a)")

    def test_negate_string_raises(self):
        with pytest.raises(TypeMismatchError):
            ev("-q")


class TestScalarFunctions:
    def test_temporal_extraction(self):
        assert ev("YEAR(d)") == 2024
        assert ev("MONTH(d)") == 3
        assert ev("DAY(d)") == 15
        assert ev("HOUR(d)") == 14
        assert ev("MINUTE(d)") == 30

    def test_dow(self):
        assert ev("DOW(d)") == dt.date(2024, 3, 15).weekday()

    def test_bin(self):
        assert ev("BIN(a, 2)") == 4
        assert apply_scalar_function("BIN", [7.5, 2.5]) == 7.5

    def test_bin_requires_positive_width(self):
        with pytest.raises(ExecutionError):
            ev("BIN(a, 0)")

    def test_abs_round(self):
        assert ev("ABS(0 - a)") == 5
        assert ev("ROUND(b)") == 2.0

    def test_string_functions(self):
        assert ev("LOWER(q)") == "a"
        assert ev("UPPER(q)") == "A"
        assert ev("LENGTH(q)") == 1

    def test_coalesce(self):
        assert ev("COALESCE(none, a)") == 5
        assert apply_scalar_function("COALESCE", [None, None]) is None

    def test_null_in_null_out(self):
        assert ev("YEAR(none)") is None

    def test_temporal_from_iso_string(self):
        assert apply_scalar_function("YEAR", ["2023-05-01"]) == 2023

    def test_unknown_function_raises(self):
        with pytest.raises(ExecutionError):
            apply_scalar_function("FROBNICATE", [1])


class TestLikeMatch:
    @pytest.mark.parametrize(
        "value,pattern,expected",
        [
            ("callback", "c%", True),
            ("callback", "%back", True),
            ("callback", "c_llback", True),
            ("callback", "x%", False),
            ("a.b", "a.b", True),  # dot is literal, not regex
            ("axb", "a.b", False),
            ("", "%", True),
        ],
    )
    def test_patterns(self, value, pattern, expected):
        assert like_match(value, pattern) is expected


class TestVectorEvaluation:
    @pytest.fixture()
    def ctx(self):
        return VectorContext(
            {
                "x": np.array([1.0, 2.0, np.nan, 4.0]),
                "q": np.array(["A", "B", "A", None], dtype=object),
            },
            4,
        )

    def test_numeric_mask(self, ctx):
        mask = evaluate_mask(parse_expression("x > 1"), ctx)
        assert mask.tolist() == [False, True, False, True]

    def test_nan_never_matches(self, ctx):
        mask = evaluate_mask(parse_expression("x != 2"), ctx)
        assert mask.tolist() == [True, False, False, True]

    def test_string_equality(self, ctx):
        mask = evaluate_mask(parse_expression("q = 'A'"), ctx)
        assert mask.tolist() == [True, False, True, False]

    def test_in_list(self, ctx):
        mask = evaluate_mask(parse_expression("q IN ('A', 'B')"), ctx)
        assert mask.tolist() == [True, True, True, False]

    def test_not_in_excludes_nulls(self, ctx):
        mask = evaluate_mask(parse_expression("q NOT IN ('A')"), ctx)
        assert mask.tolist() == [False, True, False, False]

    def test_between(self, ctx):
        mask = evaluate_mask(parse_expression("x BETWEEN 2 AND 4"), ctx)
        assert mask.tolist() == [False, True, False, True]

    def test_is_null(self, ctx):
        mask = evaluate_mask(parse_expression("q IS NULL"), ctx)
        assert mask.tolist() == [False, False, False, True]
        mask = evaluate_mask(parse_expression("x IS NULL"), ctx)
        assert mask.tolist() == [False, False, True, False]

    def test_like(self, ctx):
        mask = evaluate_mask(parse_expression("q LIKE 'A%'"), ctx)
        assert mask.tolist() == [True, False, True, False]

    def test_boolean_connectives(self, ctx):
        mask = evaluate_mask(
            parse_expression("x > 1 AND q = 'B'"), ctx
        )
        assert mask.tolist() == [False, True, False, False]
        mask = evaluate_mask(parse_expression("x > 3 OR q = 'A'"), ctx)
        assert mask.tolist() == [True, False, True, True]

    def test_arithmetic_values(self, ctx):
        values = evaluate_values(parse_expression("x * 2"), ctx)
        assert values[0] == 2.0
        assert np.isnan(values[2])

    def test_division_by_zero_is_nan(self, ctx):
        values = evaluate_values(parse_expression("x / 0"), ctx)
        assert np.isnan(values[0])

    def test_bin_vectorized(self, ctx):
        values = evaluate_values(parse_expression("BIN(x, 2)"), ctx)
        assert values[1] == 2.0
        assert values[3] == 4.0


class TestAccumulators:
    def agg(self, name, values, distinct=False, star=False):
        call = FuncCall(
            name, (Star(),) if star else (parse_expression("x"),), distinct
        )
        accumulator = make_accumulator(call)
        for value in values:
            accumulator.add(value)
        return accumulator.result()

    def test_count_skips_nulls(self):
        assert self.agg("COUNT", [1, None, 2]) == 2

    def test_count_star_counts_everything(self):
        assert self.agg("COUNT", [1, None, 2], star=True) == 3

    def test_count_distinct(self):
        assert self.agg("COUNT", [1, 1, 2, None], distinct=True) == 2

    def test_sum(self):
        assert self.agg("SUM", [1, 2, 3]) == 6

    def test_sum_of_empty_is_null(self):
        assert self.agg("SUM", []) is None
        assert self.agg("SUM", [None]) is None

    def test_sum_distinct(self):
        assert self.agg("SUM", [2, 2, 3], distinct=True) == 5

    def test_avg(self):
        assert self.agg("AVG", [1, 2, 3]) == 2.0

    def test_avg_of_empty_is_null(self):
        assert self.agg("AVG", []) is None

    def test_min_max(self):
        assert self.agg("MIN", [3, 1, 2]) == 1
        assert self.agg("MAX", [3, 1, 2]) == 3

    def test_min_of_strings(self):
        call = FuncCall("MIN", (parse_expression("q"),))
        accumulator = make_accumulator(call)
        for value in ["b", "a", None]:
            accumulator.add(value)
        assert accumulator.result() == "a"

    def test_sum_rejects_strings(self):
        with pytest.raises(TypeMismatchError):
            self.agg("SUM", ["x"])

    def test_unknown_aggregate_raises(self):
        with pytest.raises(ExecutionError):
            make_accumulator(FuncCall("MEDIAN", (parse_expression("x"),)))
