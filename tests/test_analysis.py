"""Tests for the static invariant suite (src/repro/analysis/).

Per rule: one fixture the rule must flag, one clean twin it must not,
and one suppressed variant (inline ``# repro: allow`` with a reason).
Plus framework behavior — suppression hygiene (RA100), baseline
round-trip and staleness — the CLI's exit codes on each counter-
example, and a smoke run over the real ``src/repro`` tree asserting
the merged tree is clean under ``--strict``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    all_rules,
    load_baseline,
    run_suite,
    save_baseline,
)
from repro.errors import ConfigError

pytestmark = pytest.mark.analysis

REPO = Path(__file__).resolve().parent.parent
CLI = REPO / "tools" / "check_invariants.py"

#: code -> rule instance (forces registration of the bundled set).
RULES = {rule.code: rule for rule in all_rules()}


def run_on(tmp_path: Path, source: str, codes=None, baseline=None):
    """Run the suite (optionally one rule) over one fixture file."""
    path = tmp_path / "fixture.py"
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    rules = None
    if codes is not None:
        rules = [RULES[code] for code in codes]
    return run_suite([path], rules=rules, baseline=baseline,
                     root=tmp_path)


def run_cli(*args: str, cwd: Path | None = None):
    return subprocess.run(
        [sys.executable, str(CLI), *args],
        capture_output=True, text=True, cwd=cwd or REPO,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
    )


# -- fixtures per rule -------------------------------------------------------
# Each entry: (code, flagged-source, clean-source). The suppressed
# variant is derived from the flagged one in the suppression test via
# SUPPRESS_AT (line text to tag).

LOCK_ORDER_FLAGGED = """
    import threading

    class GroupCache:
        def __init__(self):
            self._lock = threading.RLock()
            self._meta = threading.Lock()

        def get(self, engine, q):
            with self._lock:
                with self._meta:
                    return engine.execute_timed(q)

        def put(self, q):
            with self._meta:
                with self._lock:
                    return q
"""

LOCK_ORDER_CLEAN = """
    import threading

    class GroupCache:
        def __init__(self):
            self._lock = threading.RLock()
            self._meta = threading.Lock()

        def get(self, engine, q):
            with self._lock:
                with self._meta:
                    hit = q in self
            if hit:
                return hit
            return engine.execute_timed(q)

        def put(self, q):
            with self._lock:
                with self._meta:
                    return q
"""

TELEMETRY_FLAGGED = """
    from repro.telemetry import trace as _trace

    def run(items):
        tracer = _trace.ACTIVE
        tracer.tag_query("q", "cache")
        return items
"""

TELEMETRY_CLEAN = """
    from repro.telemetry import trace as _trace
    from contextlib import nullcontext

    def run(items):
        tracer = _trace.ACTIVE
        if tracer is None:
            return items
        with tracer.span("run") as span:
            span.attrs["n"] = len(items)
        return items

    def early(items):
        tracer = _trace.ACTIVE
        cm = nullcontext() if tracer is None else tracer.span("x")
        with cm:
            return items

    class Run:
        def __init__(self):
            self._tracer = _trace.ACTIVE
            self._span = None
            if self._tracer is not None:
                self._span = self._tracer.begin("g")

        def merge(self):
            if self._span is not None:
                self._tracer.finish(self._span)
"""

SHM_FLAGGED = """
    from multiprocessing import shared_memory as _shm
    from concurrent.futures import ProcessPoolExecutor

    class Exporter:
        def __init__(self):
            self._executor = ProcessPoolExecutor(2)

        def make(self, size):
            return _shm.SharedMemory(name="x", create=True, size=size)

        def go(self, engine):
            self._executor.submit(self._scan, engine)
"""

SHM_CLEAN = """
    import weakref
    from multiprocessing import shared_memory as _shm
    from concurrent.futures import ProcessPoolExecutor

    def _scan(spec, job):
        return job

    class Exporter:
        def __init__(self):
            self._executor = ProcessPoolExecutor(2)
            self._finalizer = weakref.finalize(self, _sweep, {})

        def make(self, size):
            seg = _shm.SharedMemory(name="x", create=True, size=size)
            return seg

        def release(self, seg):
            seg.close()
            seg.unlink()

        def go(self, export, job: "ShardJob"):
            self._executor.submit(_scan, export.spec, job)

    def _sweep(live):
        for seg in live.values():
            seg.unlink()
"""

POLICY_FLAGGED = """
    def tweak(policy, cfg):
        object.__setattr__(policy, "workers", 4)
        cfg.policy.shards = 2
"""

POLICY_CLEAN = """
    def tweak(policy, cfg):
        scaled = policy.evolve(workers=4)
        cfg = cfg.with_policy(scaled.evolve(shards=2))
        return cfg
"""

KWARG_FLAGGED = """
    def refresh_all(engine, plan):
        engine.execute_batch(plan, workers=4, shards=2)
        plan.refresh(multiplan=True)
"""

KWARG_CLEAN = """
    def refresh_all(engine, plan, policy):
        engine.execute_batch(plan, policy=policy)
        plan.refresh(policy=policy.evolve(multiplan=True))
"""

THREAD_FLAGGED = """
    import threading

    def spawn(fn):
        worker = threading.Thread(target=fn, daemon=True)
        worker.start()
        return worker
"""

THREAD_CLEAN = """
    def spawn(pool, fn):
        return pool.submit(fn)
"""

FIXTURES = {
    "RA101": (LOCK_ORDER_FLAGGED, LOCK_ORDER_CLEAN),
    "RA102": (TELEMETRY_FLAGGED, TELEMETRY_CLEAN),
    "RA103": (SHM_FLAGGED, SHM_CLEAN),
    "RA104": (POLICY_FLAGGED, POLICY_CLEAN),
    "RA105": (KWARG_FLAGGED, KWARG_CLEAN),
    "RA106": (THREAD_FLAGGED, THREAD_CLEAN),
}

#: Line fragment in each flagged fixture to tag with the suppression.
SUPPRESS_AT = {
    "RA101": "return engine.execute_timed(q)",
    "RA102": 'tracer.tag_query("q", "cache")',
    "RA103": 'create=True, size=size)',
    "RA104": 'object.__setattr__(policy, "workers", 4)',
    "RA105": "engine.execute_batch(plan, workers=4, shards=2)",
    "RA106": "worker = threading.Thread(target=fn, daemon=True)",
}


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_rule_flags_counter_example(code, tmp_path):
    flagged, _ = FIXTURES[code]
    result = run_on(tmp_path, flagged, codes=[code])
    assert [f.code for f in result.findings].count(code) >= 1, (
        f"{code} missed its counter-example"
    )
    finding = next(f for f in result.findings if f.code == code)
    assert finding.line > 0
    assert finding.path == "fixture.py"
    assert finding.symbol  # enclosing Class.method is attributed


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_rule_passes_clean_twin(code, tmp_path):
    _, clean = FIXTURES[code]
    result = run_on(tmp_path, clean, codes=[code])
    assert result.clean, [f.render() for f in result.findings]


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_rule_honors_inline_suppression(code, tmp_path):
    flagged, _ = FIXTURES[code]
    tag = SUPPRESS_AT[code]
    source = textwrap.dedent(flagged).replace(
        tag, f"{tag}  # repro: allow({code}) — fixture-approved"
    )
    path = tmp_path / "fixture.py"
    path.write_text(source, encoding="utf-8")
    tagged_line = next(
        i for i, text in enumerate(source.splitlines(), start=1)
        if "fixture-approved" in text
    )
    result = run_suite([path], rules=[RULES[code]], root=tmp_path)
    # The finding at the tagged line moved to `suppressed`; other
    # findings in the fixture (some have several) are untouched.
    assert any(
        f.code == code and f.line == tagged_line
        for f in result.suppressed
    ), [f.render() for f in result.suppressed]
    assert all(
        f.line != tagged_line for f in result.findings
        if f.code == code
    ), [f.render() for f in result.findings]
    # RA100 must not fire: the suppression is used and has a reason.
    assert not any(f.code == "RA100" for f in result.findings)


def test_lock_order_reports_cycle(tmp_path):
    result = run_on(tmp_path, LOCK_ORDER_FLAGGED, codes=["RA101"])
    messages = [f.message for f in result.findings]
    assert any("cycle" in m for m in messages), messages
    assert any("engine execute call while holding" in m
               for m in messages), messages


def test_suppression_without_reason_is_flagged(tmp_path):
    source = """
        import threading
        # repro: allow(RA106)
        _LOCK = threading.Lock()
    """
    result = run_on(tmp_path, source, codes=["RA106"])
    assert any(
        f.code == "RA100" and "no reason" in f.message
        for f in result.findings
    ), [f.render() for f in result.findings]
    # The RA106 finding itself is still suppressed (reason hygiene is
    # its own finding, not a revocation).
    assert not any(f.code == "RA106" for f in result.findings)


def test_unused_and_unknown_suppressions_are_flagged(tmp_path):
    source = """
        x = 1  # repro: allow(RA106) — nothing here to suppress
        y = 2  # repro: allow(RA999) — no such rule
    """
    result = run_on(tmp_path, source, codes=["RA106"])
    messages = [f.message for f in result.findings]
    assert any("matches no finding" in m for m in messages), messages
    assert any("unknown rule" in m for m in messages), messages


def test_docstring_mention_is_not_a_suppression(tmp_path):
    source = '''
        def helper():
            """Docs may say `# repro: allow(RA106) — like so` safely."""
            return 1
    '''
    result = run_on(tmp_path, source, codes=["RA106"])
    assert result.clean, [f.render() for f in result.findings]


def test_baseline_round_trip(tmp_path):
    result = run_on(tmp_path, THREAD_FLAGGED, codes=["RA106"])
    assert result.findings
    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, result.findings, "grandfathered")
    baseline = load_baseline(baseline_path)
    assert len(baseline) == len(set(result.findings))
    again = run_on(tmp_path, THREAD_FLAGGED, codes=["RA106"],
                   baseline=baseline)
    assert again.clean
    assert [f.code for f in again.baselined] == ["RA106"]
    assert not again.stale_baseline


def test_baseline_staleness_after_fix(tmp_path):
    result = run_on(tmp_path, THREAD_FLAGGED, codes=["RA106"])
    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, result.findings, "grandfathered")
    baseline = load_baseline(baseline_path)
    fixed = run_on(tmp_path, THREAD_CLEAN, codes=["RA106"],
                   baseline=baseline)
    assert fixed.clean
    assert len(fixed.stale_baseline) == len(baseline)


def test_baseline_entry_requires_reason(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({
        "version": 1,
        "entries": [{"fingerprint": "abc123", "reason": ""}],
    }))
    with pytest.raises(ConfigError):
        load_baseline(path)


def test_fingerprint_survives_line_moves(tmp_path):
    first = run_on(tmp_path, THREAD_FLAGGED, codes=["RA106"])
    shifted = "\n# a new leading comment\n" + textwrap.dedent(
        THREAD_FLAGGED
    )
    path = tmp_path / "fixture.py"
    path.write_text(shifted, encoding="utf-8")
    second = run_suite([path], rules=[RULES["RA106"]], root=tmp_path)
    assert [f.fingerprint() for f in first.findings] == \
        [f.fingerprint() for f in second.findings]
    assert first.findings[0].line != second.findings[0].line


def test_registry_lists_all_six_rules():
    codes = [rule.code for rule in all_rules()]
    assert codes == [
        "RA101", "RA102", "RA103", "RA104", "RA105", "RA106",
    ]


def test_register_rejects_duplicate_codes():
    from repro.analysis import Rule, register

    with pytest.raises(ConfigError):
        @register
        class Dup(Rule):  # noqa: F811 - deliberately colliding
            code = "RA101"


# -- CLI ---------------------------------------------------------------------


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_cli_exits_nonzero_on_counter_example(code, tmp_path):
    flagged, _ = FIXTURES[code]
    path = tmp_path / "fixture.py"
    path.write_text(textwrap.dedent(flagged), encoding="utf-8")
    proc = run_cli("--no-baseline", "--strict", str(path))
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert code in proc.stdout


def test_cli_json_output(tmp_path):
    path = tmp_path / "fixture.py"
    path.write_text(textwrap.dedent(THREAD_FLAGGED), encoding="utf-8")
    proc = run_cli("--no-baseline", "--json", str(path))
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["ok"] is False
    assert payload["counts"]["RA106"] == 1
    assert payload["findings"][0]["code"] == "RA106"
    assert {r["code"] for r in payload["rules"]} == set(FIXTURES)


def test_cli_write_baseline_then_strict_passes(tmp_path):
    path = tmp_path / "fixture.py"
    path.write_text(textwrap.dedent(THREAD_FLAGGED), encoding="utf-8")
    baseline = tmp_path / "baseline.json"
    no_reason = run_cli(
        "--write-baseline", "--baseline", str(baseline), str(path)
    )
    assert no_reason.returncode == 2  # reason is mandatory
    wrote = run_cli(
        "--write-baseline", "--reason", "adopting rule on old tree",
        "--baseline", str(baseline), str(path),
    )
    assert wrote.returncode == 0, wrote.stdout + wrote.stderr
    strict = run_cli("--strict", "--baseline", str(baseline), str(path))
    assert strict.returncode == 0, strict.stdout + strict.stderr
    # Fixing the violation leaves a stale entry: strict now fails.
    path.write_text(textwrap.dedent(THREAD_CLEAN), encoding="utf-8")
    stale = run_cli("--strict", "--baseline", str(baseline), str(path))
    assert stale.returncode == 1
    assert "stale" in stale.stdout


def test_cli_smoke_real_tree_is_clean():
    proc = run_cli("--strict")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    proc_json = run_cli("--json")
    payload = json.loads(proc_json.stdout)
    assert payload["ok"] is True
    assert payload["findings"] == []
    assert payload["files"] > 100
    # The accepted escape hatches on today's tree are all inline (and
    # hence carry reasons); the checked-in baseline stays empty.
    assert payload["baselined"] == []
    assert payload["suppressed"], "expected the documented allows"
