"""Property-based tests on simulation-layer invariants.

Hypothesis drives random (but valid) interaction sequences and checks:

- the dashboard state machine never emits malformed SQL;
- emitted queries always execute on every engine;
- goal-tracker progress is monotone under observation;
- state copies are isolated;
- the RESET interaction is a true left identity for the query mapping.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.dashboard.state import DashboardState, Interaction, InteractionKind
from repro.engine.registry import create_engine
from repro.equivalence.results import ResultCache
from repro.simulation.goals import GoalTracker
from repro.sql.formatter import format_query
from repro.sql.parser import parse_query
from repro.workload import generate_dataset

# Module-level fixtures (hypothesis needs function-scope independence).
_TABLE = generate_dataset("customer_service", 400, seed=13)
_ENGINE = create_engine("vectorstore")
_ENGINE.load_table(_TABLE)


def _spec():
    from repro.dashboard.library import load_dashboard

    return load_dashboard("customer_service")


_SPEC = _spec()

# An interaction script is a list of indices; each index selects from
# whatever interactions are available at that point, which keeps every
# generated sequence valid by construction.
_scripts = st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=1, max_size=12
)


def _play(script):
    state = DashboardState(_SPEC, _TABLE)
    emitted = list(state.initial_queries())
    for pick in script:
        actions = state.available_interactions()
        if not actions:
            break
        emitted.extend(state.apply(actions[pick % len(actions)]))
    return state, emitted


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(_scripts)
def test_emitted_sql_always_parses(script):
    _state, emitted = _play(script)
    for query in emitted:
        text = format_query(query)
        assert parse_query(text) == query


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(_scripts)
def test_emitted_queries_always_execute(script):
    _state, emitted = _play(script)
    for query in emitted:
        result = _ENGINE.execute(query)
        assert result.columns


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(_scripts)
def test_reset_restores_baseline_queries(script):
    state, _ = _play(script)
    baseline = DashboardState(_SPEC, _TABLE).all_queries()
    state.apply(Interaction(InteractionKind.RESET))
    assert state.all_queries() == baseline


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(_scripts)
def test_state_key_identifies_query_mapping(script):
    """Equal state keys imply equal data-layer snapshots."""
    state_a, _ = _play(script)
    state_b, _ = _play(script)
    assert state_a.state_key() == state_b.state_key()
    assert state_a.all_queries() == state_b.all_queries()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(_scripts)
def test_copy_isolation(script):
    state, _ = _play(script)
    key_before = state.state_key()
    clone = state.copy()
    actions = clone.available_interactions()
    if actions:
        clone.apply(actions[0])
    assert state.state_key() == key_before


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(_scripts)
def test_tracker_progress_monotone(script):
    goal = parse_query(
        "SELECT queue, COUNT(lostCalls) AS count_lostCalls "
        "FROM customer_service GROUP BY queue"
    )
    cache = ResultCache(_ENGINE)
    tracker = GoalTracker([goal], cache)
    _state, emitted = _play(script)
    last = 0.0
    for query in emitted:
        tracker.observe([query])
        assert tracker.progress >= last
        assert 0.0 <= tracker.progress <= 1.0
        last = tracker.progress


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(_scripts, st.integers(min_value=0, max_value=2**30))
def test_gain_matches_observe(script, salt):
    """gain(q) computed before observe(q) equals the observed gain."""
    goal = parse_query(
        "SELECT repID, COUNT(calls) AS count_calls "
        "FROM customer_service GROUP BY repID"
    )
    cache = ResultCache(_ENGINE)
    tracker = GoalTracker([goal], cache)
    _state, emitted = _play(script)
    for query in emitted:
        predicted = tracker.gain([query])
        actual = tracker.observe([query])
        assert predicted == actual
