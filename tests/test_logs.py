"""Session logs: export, JSONL/CSV round trips, replay, EVA metrics."""

from __future__ import annotations

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import (
    SessionConfig,
    SessionSimulator,
    create_engine,
    generate_dataset,
    get_workflow,
    load_dashboard,
)
from repro.errors import SimbaError
from repro.logs import (
    ExportedLog,
    LogEntry,
    eva_metrics,
    export_session,
    read_csv,
    read_jsonl,
    replay_log,
    write_csv,
    write_jsonl,
)


def _simulate(seed=7, rows=4_000):
    spec = load_dashboard("customer_service")
    table = generate_dataset("customer_service", rows, seed=seed)
    measured = create_engine("vectorstore")
    measured.load_table(table)
    reference_table = generate_dataset("customer_service", 800, seed=seed)
    reference = create_engine("vectorstore")
    reference.load_table(reference_table)
    workflow = get_workflow("shneiderman")
    goals = workflow.instantiate_for_dashboard(spec, random.Random(seed))
    simulator = SessionSimulator(
        spec,
        reference_table,
        [g.query for g in goals],
        measured_engine=measured,
        reference_engine=reference,
        config=SessionConfig(seed=seed),
        workflow_name="shneiderman",
    )
    return simulator.run(), measured, table


@pytest.fixture(scope="module")
def session():
    return _simulate()


@pytest.fixture(scope="module")
def exported(session):
    log, _, _ = session
    return export_session(log)


def _entry(**overrides):
    base = dict(
        step=1,
        model="oracle",
        interaction="checkbox queue=A",
        sql="SELECT COUNT(*) FROM customer_service",
        rows_returned=1,
        duration_ms=2.5,
        elapsed_ms=2.5,
        goal_index=0,
        progress_after=0.5,
    )
    base.update(overrides)
    return LogEntry(**base)


class TestExportSession:
    def test_one_entry_per_query(self, session, exported):
        log, _, _ = session
        assert exported.query_count == log.query_count

    def test_header_copies_session_metadata(self, session, exported):
        log, _, _ = session
        assert exported.dashboard == log.dashboard
        assert exported.engine == log.engine
        assert exported.workflow == "shneiderman"
        assert exported.goals_total == log.goals_total

    def test_elapsed_is_cumulative(self, exported):
        elapsed = [e.elapsed_ms for e in exported.entries]
        assert elapsed == sorted(elapsed)
        assert elapsed[0] == pytest.approx(exported.entries[0].duration_ms)

    def test_interaction_count_excludes_initial_render(self, exported):
        assert exported.interaction_count < exported.query_count
        assert exported.interaction_count > 0

    def test_sql_is_parseable(self, exported):
        from repro.sql.parser import parse_query

        for entry in exported.entries:
            parse_query(entry.sql)  # must not raise


class TestRoundTrips:
    def test_jsonl_round_trip(self, exported, tmp_path):
        path = tmp_path / "log.jsonl"
        write_jsonl(exported, path)
        restored = read_jsonl(path)
        assert restored.header() == exported.header()
        assert restored.entries == exported.entries

    def test_csv_round_trip(self, exported, tmp_path):
        path = tmp_path / "log.csv"
        write_csv(exported, path)
        restored = read_csv(path)
        assert restored.header() == exported.header()
        assert restored.entries == exported.entries

    def test_jsonl_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "entry", "step": 1}\n')
        with pytest.raises(SimbaError, match="entry before header"):
            read_jsonl(path)

    def test_jsonl_duplicate_header_rejected(self, exported, tmp_path):
        path = tmp_path / "dup.jsonl"
        write_jsonl(exported, path)
        content = path.read_text()
        header_line = content.splitlines()[0]
        path.write_text(header_line + "\n" + content)
        with pytest.raises(SimbaError, match="duplicate header"):
            read_jsonl(path)

    def test_jsonl_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(SimbaError, match="invalid JSON"):
            read_jsonl(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(SimbaError, match="empty log"):
            read_jsonl(path)

    def test_csv_without_header_comment_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("step,model\n1,oracle\n")
        with pytest.raises(SimbaError, match="header comment"):
            read_csv(path)

    def test_none_workflow_round_trips(self, tmp_path):
        log = ExportedLog(
            dashboard="d",
            engine="e",
            workflow=None,
            goals_completed=0,
            goals_total=1,
            entries=[_entry()],
        )
        for writer, reader, name in (
            (write_jsonl, read_jsonl, "a.jsonl"),
            (write_csv, read_csv, "a.csv"),
        ):
            path = tmp_path / name
            writer(log, path)
            assert reader(path).workflow is None

    def test_malformed_entry_rejected(self):
        with pytest.raises(SimbaError, match="malformed log entry"):
            LogEntry.from_dict({"step": "one"})


class TestReplay:
    def test_replay_on_recording_engine_matches(self, session, exported):
        _, measured, _ = session
        report = replay_log(exported, measured)
        assert report.matched
        assert report.query_count == exported.query_count

    def test_replay_on_other_engine_matches(self, session, exported):
        _, _, table = session
        other = create_engine("sqlite")
        other.load_table(table)
        report = replay_log(exported, other)
        assert report.matched
        other.close()

    def test_replay_detects_changed_dataset(self, exported):
        shrunk = generate_dataset("customer_service", 100, seed=99)
        engine = create_engine("vectorstore")
        engine.load_table(shrunk)
        report = replay_log(exported, engine)
        assert not report.matched

    def test_strict_replay_raises_on_mismatch(self, exported):
        shrunk = generate_dataset("customer_service", 100, seed=99)
        engine = create_engine("vectorstore")
        engine.load_table(shrunk)
        with pytest.raises(SimbaError, match="replay mismatch"):
            replay_log(exported, engine, strict=True)

    def test_cardinality_check_can_be_disabled(self, exported):
        shrunk = generate_dataset("customer_service", 100, seed=99)
        engine = create_engine("vectorstore")
        engine.load_table(shrunk)
        report = replay_log(exported, engine, check_cardinality=False)
        assert report.matched  # nothing was checked

    def test_replay_produces_fresh_durations(self, session, exported):
        _, measured, _ = session
        report = replay_log(exported, measured)
        assert report.average_duration_ms() > 0.0
        assert len(report.durations_ms()) == exported.query_count


class TestEvaMetrics:
    def test_counts_match_log(self, exported):
        metrics = eva_metrics(exported)
        assert metrics.total_queries == exported.query_count
        assert metrics.total_interactions == exported.interaction_count

    def test_exploration_time_is_final_elapsed(self, exported):
        metrics = eva_metrics(exported)
        assert metrics.total_exploration_ms == pytest.approx(
            exported.entries[-1].elapsed_ms
        )

    def test_response_stats_ordered(self, exported):
        metrics = eva_metrics(exported)
        assert (
            0.0
            < metrics.mean_response_ms
            <= metrics.p95_response_ms
            <= metrics.max_response_ms
        )

    def test_attributes_explored_from_sql(self, exported):
        metrics = eva_metrics(exported)
        assert metrics.attributes_explored_count > 0
        schema = generate_dataset("customer_service", 8, seed=0).schema
        assert metrics.attributes_explored <= set(schema.names)

    def test_model_mix_sums_to_interactions(self, exported):
        metrics = eva_metrics(exported)
        assert sum(metrics.model_mix.values()) == metrics.total_interactions

    def test_empty_log_is_all_zero(self):
        log = ExportedLog(
            dashboard="d",
            engine="e",
            workflow=None,
            goals_completed=0,
            goals_total=0,
        )
        metrics = eva_metrics(log)
        assert metrics.total_queries == 0
        assert metrics.interaction_rate_per_minute == 0.0
        assert metrics.empty_result_fraction == 0.0

    def test_empty_result_fraction(self):
        log = ExportedLog(
            dashboard="d",
            engine="e",
            workflow=None,
            goals_completed=0,
            goals_total=1,
            entries=[
                _entry(rows_returned=0),
                _entry(step=2, rows_returned=5, elapsed_ms=5.0),
            ],
        )
        assert eva_metrics(log).empty_result_fraction == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# Property: synthetic logs survive both serialization formats
# ---------------------------------------------------------------------------

_entries = st.builds(
    LogEntry,
    step=st.integers(min_value=0, max_value=500),
    model=st.sampled_from(["oracle", "markov", "initial"]),
    interaction=st.sampled_from(
        ["initial render", "checkbox queue=A", "slider hour 3..9", "drop, down"]
    ),
    sql=st.sampled_from(
        [
            "SELECT COUNT(*) FROM t",
            "SELECT a, SUM(b) AS s FROM t GROUP BY a",
            "SELECT x FROM t WHERE note = 'it''s'",
        ]
    ),
    rows_returned=st.integers(min_value=0, max_value=10_000),
    duration_ms=st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    elapsed_ms=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    goal_index=st.integers(min_value=0, max_value=5),
    progress_after=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)


@given(st.lists(_entries, max_size=20))
@settings(max_examples=30, deadline=None)
def test_serialization_round_trip_property(tmp_path_factory, entries):
    log = ExportedLog(
        dashboard="customer_service",
        engine="vectorstore",
        workflow="shneiderman",
        goals_completed=1,
        goals_total=3,
        entries=entries,
    )
    directory = tmp_path_factory.mktemp("logs")
    jsonl_path = directory / "log.jsonl"
    write_jsonl(log, jsonl_path)
    assert read_jsonl(jsonl_path).entries == entries
    csv_path = directory / "log.csv"
    write_csv(log, csv_path)
    assert read_csv(csv_path).entries == entries


class TestThinkTime:
    def test_think_time_extends_exploration(self):
        log = ExportedLog(
            dashboard="d",
            engine="e",
            workflow=None,
            goals_completed=0,
            goals_total=1,
            entries=[_entry(), _entry(step=2, elapsed_ms=5.0)],
        )
        base = eva_metrics(log)
        slowed = eva_metrics(log, think_time_ms=30_000)
        assert slowed.total_exploration_ms == pytest.approx(
            base.total_exploration_ms + 30_000 * base.total_interactions
        )

    def test_think_time_lowers_interaction_rate(self):
        log = ExportedLog(
            dashboard="d",
            engine="e",
            workflow=None,
            goals_completed=0,
            goals_total=1,
            entries=[_entry(), _entry(step=2, elapsed_ms=5.0)],
        )
        base = eva_metrics(log)
        slowed = eva_metrics(log, think_time_ms=30_000)
        assert slowed.interaction_rate_per_minute < base.interaction_rate_per_minute
        # 2 interactions with 30 s pauses each -> about 2 per minute.
        assert slowed.interaction_rate_per_minute == pytest.approx(2.0, rel=0.01)
