"""Tests for sharded scan-group execution and partial-aggregate rollup.

Core property: for every engine and every ``(shards, workers)``
combination, ``execute_batch(queries, workers=w, shards=s)`` returns
results byte-identical to sequential per-query execution — same
columns, same rows, same order.

Float exactness note: the rollup re-associates floating-point addition
(per-shard SUMs are rounded before the merge SUM), so the byte-identity
property holds whenever partial sums are exactly representable. The
tables here use integers and dyadic-rational floats (multiples of
0.25), for which IEEE-754 addition is exact; see
:class:`repro.engine.batch.AggregateRollup` for the boundary.
"""

from __future__ import annotations

import datetime as dt
import random

import pytest

from repro.concurrency import ScanGroupExecutor
from repro.dashboard.library import load_dashboard
from repro.dashboard.state import DashboardState, InteractionKind
from repro.engine.batch import BatchExecutor, build_rollup
from repro.engine.cache import CachedEngine
from repro.engine.instrument import CountingEngine
from repro.engine.interface import normalize_value
from repro.engine.registry import create_engine
from repro.engine.table import Table
from repro.errors import ConfigError
from repro.sharding import Partitioner, RowRange
from repro.sql.parser import parse_query
from repro.workload.datasets import generate_dataset

ENGINES = ["rowstore", "vectorstore", "matstore", "sqlite"]


def _events_table(rows: int = 240, seed: int = 3) -> Table:
    """Deterministic table with NULLs and exactly-summable floats."""
    rng = random.Random(seed)
    return Table.from_columns(
        "events",
        {
            "queue": [rng.choice(["a", "b", "c", None]) for _ in range(rows)],
            "status": [
                rng.choice(["open", "closed", "waiting"]) for _ in range(rows)
            ],
            "priority": [rng.randint(1, 5) for _ in range(rows)],
            # Dyadic floats: partial sums are exact in IEEE double.
            "latency": [
                None if rng.random() < 0.1 else rng.randint(0, 360) * 0.25
                for _ in range(rows)
            ],
            "day": [
                dt.date(2024, 1, 1) + dt.timedelta(days=rng.randint(0, 6))
                for _ in range(rows)
            ],
            "flag": [bool(rng.randint(0, 1)) for _ in range(rows)],
        },
    )


def _assert_identical(sequential, batched, context: str) -> None:
    assert len(sequential) == len(batched), context
    for i, (seq, timed) in enumerate(zip(sequential, batched)):
        assert seq.columns == timed.result.columns, f"{context} [{i}] columns"
        assert seq.rows == timed.result.rows, f"{context} [{i}] rows"


# ---------------------------------------------------------------------------
# Partitioner
# ---------------------------------------------------------------------------


def test_partitioner_covers_rows_exactly_once():
    for shards in (1, 2, 3, 7, 16):
        for rows in (0, 1, 5, 100, 101):
            ranges = Partitioner(shards).split(rows)
            assert len(ranges) == shards
            covered = [i for r in ranges for i in range(r.start, r.stop)]
            assert covered == list(range(rows)), (shards, rows)
            sizes = [r.num_rows for r in ranges]
            assert max(sizes) - min(sizes) <= 1  # near-equal


def test_partitioner_more_shards_than_rows_yields_empty_ranges():
    ranges = Partitioner(8).split(3)
    assert sum(r.num_rows for r in ranges) == 3
    assert any(r.is_empty for r in ranges)


def test_partitioner_rejects_invalid_inputs():
    with pytest.raises(ConfigError):
        Partitioner(0)
    with pytest.raises(ConfigError):
        Partitioner(2).split(-1)
    with pytest.raises(ConfigError):
        RowRange(3, 2)


# ---------------------------------------------------------------------------
# Rollup planning
# ---------------------------------------------------------------------------


def test_build_rollup_decomposes_avg_into_sum_and_count():
    from repro.sql.formatter import format_query

    rollup = build_rollup(
        parse_query(
            "SELECT queue, AVG(latency) AS a FROM events GROUP BY queue"
        )
    )
    assert rollup is not None
    partial = format_query(rollup.partial_query("__batchscan_t", "events"))
    assert "SUM(latency)" in partial and "COUNT(latency)" in partial
    assert "AVG" not in partial
    merge = format_query(rollup.merge_query("__batchscan_p"))
    assert "* 1.0 /" in merge  # float division on every engine


@pytest.mark.parametrize(
    "sql",
    [
        "SELECT queue FROM events",  # projection: concatenates, not rolls up
        "SELECT queue, COUNT(*) AS n FROM events GROUP BY queue "
        "ORDER BY n DESC",
        "SELECT queue, COUNT(*) AS n FROM events GROUP BY queue LIMIT 2",
        "SELECT queue, COUNT(*) AS n FROM events GROUP BY queue "
        "HAVING COUNT(*) > 3",
        "SELECT DISTINCT queue FROM events",
        "SELECT COUNT(DISTINCT queue) AS n FROM events",
        "SELECT COUNT(*) FROM events",  # unaliased: engine-dependent name
    ],
)
def test_build_rollup_rejects_undecomposable_queries(sql):
    assert build_rollup(parse_query(sql)) is None


# ---------------------------------------------------------------------------
# Property: (shards, workers) x engines is byte-identical to sequential
# ---------------------------------------------------------------------------

_SUITE = [
    # One no-filter group fusing three shapes, incl. decomposed AVG.
    "SELECT queue, COUNT(*) AS n FROM events GROUP BY queue",
    "SELECT queue, AVG(latency) AS a, SUM(latency) AS s FROM events "
    "GROUP BY queue",
    "SELECT day, MIN(latency) AS lo, MAX(latency) AS hi FROM events "
    "GROUP BY day",
    # A filtered group.
    "SELECT status, COUNT(latency) AS nv FROM events "
    "WHERE priority >= 3 GROUP BY status",
    "SELECT status, AVG(priority) AS ap FROM events "
    "WHERE priority >= 3 GROUP BY status",
    # Global aggregates (one row even over empty shards).
    "SELECT COUNT(*) AS n, SUM(latency) AS s FROM events "
    "WHERE status = 'open'",
    # Unshardable shapes ride along through the pre-existing path.
    "SELECT queue, COUNT(*) AS n FROM events WHERE priority >= 3 "
    "GROUP BY queue ORDER BY n DESC LIMIT 2",
    "SELECT DISTINCT status FROM events WHERE priority >= 3",
]


@pytest.mark.parametrize("engine_name", ENGINES)
def test_sharded_batch_identical_to_sequential(engine_name):
    engine = create_engine(engine_name)
    engine.load_table(_events_table())
    queries = [parse_query(sql) for sql in _SUITE]
    sequential = [engine.execute(q) for q in queries]
    for shards in (1, 2, 3, 5):
        for workers in (1, 4):
            out = engine.execute_batch(
                list(queries), workers=workers, shards=shards
            )
            _assert_identical(
                sequential, out,
                f"{engine_name} shards={shards} workers={workers}",
            )
    engine.close()


@pytest.mark.parametrize("engine_name", ENGINES)
@pytest.mark.parametrize("seed", [0, 1])
def test_random_mix_sharded_identical(engine_name, seed):
    """Randomized query mixes (shardable and not) stay byte-identical.

    The random generator draws non-dyadic latencies, so SUM/AVG results
    are compared after 9-digit normalization — the float-rounding
    boundary the rollup documents; everything else must match exactly.
    """
    from tests.test_engine_batch import _random_query

    rng = random.Random(seed)
    engine = create_engine(engine_name)
    rows = 300
    engine.load_table(
        Table.from_columns(
            "events",
            {
                "queue": [rng.choice("abcd") for _ in range(rows)],
                "status": [
                    rng.choice(["open", "closed", "waiting"])
                    for _ in range(rows)
                ],
                "priority": [rng.randint(1, 5) for _ in range(rows)],
                "latency": [
                    round(rng.uniform(0.0, 90.0), 3) for _ in range(rows)
                ],
            },
        )
    )
    queries = [_random_query(rng) for _ in range(15)]
    sequential = [engine.execute(q) for q in queries]
    out = engine.execute_batch(list(queries), workers=4, shards=3)
    for i, (seq, timed) in enumerate(zip(sequential, out)):
        assert seq.columns == timed.result.columns, i
        normalized_seq = [
            tuple(normalize_value(v) for v in row) for row in seq.rows
        ]
        normalized_out = [
            tuple(normalize_value(v) for v in row)
            for row in timed.result.rows
        ]
        assert normalized_seq == normalized_out, (engine_name, seed, i)
    engine.close()


@pytest.mark.parametrize("engine_name", ENGINES)
def test_dashboard_walk_sharded_identical(engine_name):
    """A real dashboard session's refreshes, sharded, stay identical.

    Dashboard datasets round measures to arbitrary decimals, so AVG/SUM
    cells are compared after normalization (see the module docstring);
    grouping, ordering, and counts must match exactly.
    """
    spec = load_dashboard("customer_service")
    table = generate_dataset("customer_service", 300, seed=11)
    engine = create_engine(engine_name)
    engine.load_table(table)
    state = DashboardState(spec, table)
    rng = random.Random(5)
    walks = [state.initial_queries()]
    for _ in range(2):
        actions = state.available_interactions()
        preferred = [
            a
            for a in actions
            if a.kind
            in (InteractionKind.WIDGET_TOGGLE, InteractionKind.WIDGET_SET)
        ] or actions
        walks.append(state.apply(rng.choice(preferred)))
    for step, queries in enumerate(walks):
        sequential = [engine.execute(q) for q in queries]
        out = engine.execute_batch(list(queries), workers=2, shards=4)
        for i, (seq, timed) in enumerate(zip(sequential, out)):
            assert seq.columns == timed.result.columns, (step, i)
            assert [
                tuple(normalize_value(v) for v in row) for row in seq.rows
            ] == [
                tuple(normalize_value(v) for v in row)
                for row in timed.result.rows
            ], (engine_name, step, i)
    engine.close()


def test_shards1_takes_the_exact_preexisting_path():
    """shards=1 matches BatchExecutor in results *and* statistics, and
    never reaches the sharded machinery at all."""
    queries = [parse_query(sql) for sql in _SUITE[:5]]
    plain = create_engine("vectorstore")
    plain.load_table(_events_table())
    reference = BatchExecutor(plain).run(list(queries))
    executor = ScanGroupExecutor(plain, workers=1, shards=1)
    sharded_off = executor.run(list(queries))
    _assert_identical(
        [t.result for t in reference.results], sharded_off.results, "shards=1"
    )
    for field in (
        "queries", "groups", "base_scans", "shared_scans", "fused_queries",
        "cache_hits", "fallbacks", "sharded_groups", "shard_scans",
    ):
        assert getattr(sharded_off.stats, field) == getattr(
            reference.stats, field
        ), field
    assert sharded_off.stats.sharded_groups == 0
    assert sharded_off.stats.shard_scans == 0
    plain.close()


def test_sharded_stats_count_per_shard_scans():
    engine = create_engine("vectorstore")
    engine.load_table(_events_table())
    queries = [parse_query(sql) for sql in _SUITE[:3]]  # one scan group
    executor = ScanGroupExecutor(engine, shards=4)
    result = executor.run(list(queries))
    assert result.stats.sharded_groups == 1
    assert result.stats.shard_scans == 4  # one scan task per shard
    assert result.stats.base_scans == 4
    engine.close()


# ---------------------------------------------------------------------------
# Aggregate-decomposition edge cases (all engines)
# ---------------------------------------------------------------------------


def _edge_table() -> Table:
    """60 rows engineered so shard boundaries hit the edge cases:

    - rows 0..9 carry the only non-NULL ``sparse`` values, so with
      several shards most shards aggregate ``sparse`` over NULLs only;
    - ``allnull`` is NULL everywhere (MIN/MAX over all-NULL partitions);
    - predicate ``priority = 9`` matches exactly one row (AVG over
      empty shards everywhere else); ``priority = 99`` matches none.
    """
    rows = 60
    return Table.from_columns(
        "edge",
        {
            "grp": [["x", "y", "z"][i % 3] for i in range(rows)],
            "sparse": [i * 0.5 if i < 10 else None for i in range(rows)],
            "allnull": [None] * rows,
            "priority": [9 if i == 37 else i % 5 for i in range(rows)],
            "v": [i for i in range(rows)],
        },
    )


@pytest.mark.parametrize("engine_name", ENGINES)
@pytest.mark.parametrize("shards", [2, 4, 16])
def test_avg_over_empty_shards(engine_name, shards):
    engine = create_engine(engine_name)
    engine.load_table(_edge_table())
    queries = [
        # One matching row somewhere in the middle: every other shard
        # contributes an empty partial.
        parse_query(
            "SELECT AVG(v) AS a, COUNT(*) AS n FROM edge WHERE priority = 9"
        ),
        # No matching rows at all: AVG must come out NULL.
        parse_query(
            "SELECT AVG(v) AS a, COUNT(*) AS n FROM edge WHERE priority = 99"
        ),
        # AVG over a column that is NULL outside the first shard.
        parse_query("SELECT grp, AVG(sparse) AS a FROM edge GROUP BY grp"),
    ]
    sequential = [engine.execute(q) for q in queries]
    out = engine.execute_batch(list(queries), shards=shards)
    _assert_identical(sequential, out, f"{engine_name} shards={shards}")
    engine.close()


@pytest.mark.parametrize("engine_name", ENGINES)
@pytest.mark.parametrize("shards", [2, 4, 16])
def test_min_max_over_all_null_shard_partitions(engine_name, shards):
    engine = create_engine(engine_name)
    engine.load_table(_edge_table())
    queries = [
        parse_query(
            "SELECT grp, MIN(sparse) AS lo, MAX(sparse) AS hi FROM edge "
            "GROUP BY grp"
        ),
        parse_query(
            "SELECT MIN(allnull) AS lo, MAX(allnull) AS hi FROM edge"
        ),
        parse_query(
            "SELECT grp, MIN(allnull) AS lo FROM edge GROUP BY grp"
        ),
    ]
    sequential = [engine.execute(q) for q in queries]
    out = engine.execute_batch(list(queries), shards=shards)
    _assert_identical(sequential, out, f"{engine_name} shards={shards}")
    # The all-NULL aggregates really are NULL.
    assert out[1].result.rows == [(None, None)]
    engine.close()


@pytest.mark.parametrize("engine_name", ENGINES)
def test_count_star_vs_count_col_rollup_equivalence(engine_name):
    """COUNT(*) counts rows per shard, COUNT(col) counts non-NULLs;
    both roll up through SUM and must match sequential exactly."""
    engine = create_engine(engine_name)
    engine.load_table(_edge_table())
    queries = [
        parse_query(
            "SELECT grp, COUNT(*) AS all_rows, COUNT(sparse) AS non_null, "
            "COUNT(allnull) AS none FROM edge GROUP BY grp"
        ),
        parse_query(
            "SELECT COUNT(*) AS all_rows, COUNT(sparse) AS non_null "
            "FROM edge"
        ),
    ]
    sequential = [engine.execute(q) for q in queries]
    for shards in (2, 3, 8):
        out = engine.execute_batch(list(queries), shards=shards)
        _assert_identical(sequential, out, f"{engine_name} shards={shards}")
    grouped = out[0].result
    non_null = dict(zip(grouped.column("grp"), grouped.column("non_null")))
    assert sum(non_null.values()) == 10  # only rows 0..9 are non-NULL
    assert all(row[3] == 0 for row in grouped.rows)  # COUNT(allnull) = 0
    engine.close()


# ---------------------------------------------------------------------------
# Caching, invalidation, and instrumentation
# ---------------------------------------------------------------------------


def test_cached_engine_sharded_repeats_and_invalidation():
    inner = CountingEngine(create_engine("sqlite"))
    engine = CachedEngine(inner)
    engine.load_table(_events_table())
    queries = [parse_query(sql) for sql in _SUITE[:5]]
    sequential = [engine.execute(q) for q in queries]
    first = engine.execute_batch(list(queries), workers=2, shards=4)
    _assert_identical(sequential, first, "sharded cold")
    scans_after_first = inner.base_scans()
    # A repeated refresh is served from the scan-group cache: zero new
    # base scans, identical results.
    second = engine.execute_batch(list(queries), workers=2, shards=4)
    _assert_identical(sequential, second, "sharded warm")
    assert inner.base_scans() == scans_after_first
    # Mutation invalidates; the next sharded batch sees the new data.
    engine.load_table(_events_table(rows=60, seed=9))
    fresh = [engine.execute(q) for q in queries]
    third = engine.execute_batch(list(queries), workers=2, shards=4)
    _assert_identical(fresh, third, "sharded after reload")
    engine.close()


def test_counting_engine_reports_per_shard_scans():
    inner = CountingEngine(create_engine("vectorstore"))
    inner.load_table(_events_table())
    queries = [parse_query(sql) for sql in _SUITE[:3]]  # one scan group
    inner.execute_batch(list(queries), shards=4)
    assert inner.shard_scans.get("events") == 4
    assert inner.scans.get("events") == 4
    inner.close()


def test_sharded_refresh_jobs_match_unsharded():
    from repro.concurrency import RefreshJob, refresh_many

    spec = load_dashboard("customer_service")
    table = generate_dataset("customer_service", 200, seed=13)

    def job(shards):
        engine = create_engine("sqlite")
        engine.load_table(table)
        return RefreshJob(
            DashboardState(spec, table), engine, workers=2, shards=shards
        )

    jobs = [job(1), job(4)]
    unsharded, sharded = refresh_many(jobs, workers=2)
    assert unsharded.keys() == sharded.keys()
    for viz_id in unsharded:
        assert (
            unsharded[viz_id].result.columns == sharded[viz_id].result.columns
        )
        assert [
            tuple(normalize_value(v) for v in row)
            for row in unsharded[viz_id].result.rows
        ] == [
            tuple(normalize_value(v) for v in row)
            for row in sharded[viz_id].result.rows
        ], viz_id
    for j in jobs:
        j.engine.close()


def test_replay_sharded_identical(tmp_path):
    from repro.logs.records import export_session
    from repro.logs.replay import replay_log
    from repro.simulation.session import SessionConfig, SessionSimulator
    from repro.simulation.workflows import get_workflow

    spec = load_dashboard("customer_service")
    table = generate_dataset("customer_service", 300, seed=5)
    measured = create_engine("vectorstore")
    measured.load_table(table)
    reference = create_engine("vectorstore")
    reference.load_table(table)
    goals = get_workflow("shneiderman").instantiate_for_dashboard(
        spec, random.Random(5)
    )
    log = export_session(
        SessionSimulator(
            spec, table, [g.query for g in goals],
            measured_engine=measured, reference_engine=reference,
            config=SessionConfig(seed=5),
        ).run()
    )
    replay_engine = create_engine("sqlite")
    replay_engine.load_table(table)
    plain = replay_log(log, replay_engine, batch=True, workers=1)
    sharded = replay_log(
        log, replay_engine, batch=True, workers=2, shards=3
    )
    assert plain.matched and sharded.matched
    assert [r.rows_returned for r in plain.results] == [
        r.rows_returned for r in sharded.results
    ]
    replay_engine.close()
    measured.close()
    reference.close()


def test_session_config_shards_mirrors_into_benchmark_config():
    from repro.harness.config import BenchmarkConfig
    from repro.simulation.session import SessionConfig

    config = BenchmarkConfig(shards=4)
    assert config.session.shards == 4
    assert config.shards == 4
    explicit = BenchmarkConfig(session=SessionConfig(shards=2))
    assert explicit.session.shards == 2
    assert explicit.shards == 2
    with pytest.raises(ConfigError):
        BenchmarkConfig(shards=0)


def test_fully_cached_sharded_group_schedules_no_tasks():
    """A warm repeat refresh must not submit no-op shard tasks."""
    from repro.engine.cache import ScanGroupCache
    from repro.sharding.executor import plan_sharded_group

    engine = create_engine("vectorstore")
    engine.load_table(_events_table())
    queries = [parse_query(sql) for sql in _SUITE[:3]]  # one scan group
    executor = ScanGroupExecutor(
        engine, shards=4, group_cache=ScanGroupCache()
    )
    executor.run(list(queries))  # cold: populates the group cache
    from repro.engine.batch import BatchStats, group_queries
    from repro.sharding import Partitioner

    groups = group_queries(list(queries))
    results = [None] * len(queries)
    stats = BatchStats()
    run = plan_sharded_group(
        executor, groups[0], Partitioner(4), results, stats
    )
    assert stats.cache_hits == len(queries)  # all served at plan time
    assert run.scan_tasks() == []  # nothing left to schedule
    assert run.merge(results).sharded_groups == 0
    engine.close()


def test_mutation_between_plan_and_merge_is_not_cached():
    """The epoch is captured before the row count is read: a table
    swapped anywhere after plan start must drop the cache store, never
    serve stale-range results to later refreshes."""
    from repro.engine.cache import ScanGroupCache
    from repro.engine.interface import Engine

    cache = ScanGroupCache()
    inner = create_engine("vectorstore")

    class InvalidateOnRowCount(Engine):
        """Simulates a concurrent reload landing right after planning
        reads the table extent."""

        thread_safe = True

        def __init__(self):
            self.name = inner.name

        def load_table(self, table):
            inner.load_table(table)

        def unload_table(self, name):
            inner.unload_table(name)

        def table_schema(self, name):
            return inner.table_schema(name)

        def table_row_count(self, name):
            count = inner.table_row_count(name)
            cache.invalidate_table(name)  # the concurrent mutation
            return count

        def materialize_filtered(self, name, source, predicate,
                                 row_range=None):
            return inner.materialize_filtered(
                name, source, predicate, row_range
            )

        def execute(self, query):
            return inner.execute(query)

    engine = InvalidateOnRowCount()
    engine.load_table(_events_table())
    queries = [parse_query(sql) for sql in _SUITE[:3]]
    executor = ScanGroupExecutor(engine, shards=2, group_cache=cache)
    result = executor.run(list(queries))
    assert result.stats.sharded_groups == 1  # the group did shard
    assert cache.size == 0  # ... but the poisoned store was dropped
    inner.close()


def test_sqlite_row_count_of_temp_relations_is_unknown():
    """Temp names alias the base Table in the schema registry; their
    row count must come back None, not the base table's."""
    from repro.engine.batch import TEMP_PREFIX
    from repro.sql.parser import parse_expression

    engine = create_engine("sqlite")
    engine.load_table(_events_table(rows=200))
    temp = f"{TEMP_PREFIX}events_rowcount_probe"
    assert engine.materialize_filtered(
        temp, "events", parse_expression("priority >= 3")
    )
    assert engine.table_row_count("events") == 200
    assert engine.table_row_count(temp) is None
    engine.unload_table(temp)
    engine.close()


def test_harness_shards_reach_the_engine():
    """BenchmarkConfig(shards=N) must actually drive per-shard range
    scans in the runner's sessions — the runner rebuilds SessionConfig
    field by field, so a dropped field silently disables sharding."""
    from unittest import mock

    import repro.engine.registry as registry
    from repro.harness.config import BenchmarkConfig
    from repro.harness.runner import BenchmarkRunner

    counters = []
    real = registry.create_engine

    def counted(name):
        engine = real(name)
        if name == "sqlite":
            engine = CountingEngine(engine)
            counters.append(engine)
        return engine

    with mock.patch.object(registry, "create_engine", counted), \
            mock.patch("repro.harness.runner.create_engine", counted):
        config = BenchmarkConfig(
            dashboards=("customer_service",),
            workflows=("shneiderman",),
            engines=("sqlite",),
            sizes={"1K": 1_000},
            runs=1,
            reference_rows=500,
            batch=True,
            shards=3,
        )
        BenchmarkRunner(config).run()
    shard_scans = sum(sum(c.shard_scans.values()) for c in counters)
    assert shard_scans > 0
    assert shard_scans % 3 == 0


def test_wrappers_without_row_count_degrade_to_unsharded():
    """A wrapper that does not delegate table_row_count must make the
    executor fall back to whole-group execution, not crash."""
    from repro.engine.interface import Engine

    class OpaqueWrapper(Engine):
        thread_safe = True

        def __init__(self, inner):
            self._inner = inner
            self.name = inner.name

        def load_table(self, table):
            self._inner.load_table(table)

        def table_schema(self, name):
            return self._inner.table_schema(name)

        def materialize_filtered(self, name, source, predicate):
            # Old three-argument signature: never called with a range.
            return self._inner.materialize_filtered(name, source, predicate)

        def unload_table(self, name):
            self._inner.unload_table(name)

        def execute(self, query):
            return self._inner.execute(query)

    engine = OpaqueWrapper(create_engine("vectorstore"))
    engine.load_table(_events_table())
    queries = [parse_query(sql) for sql in _SUITE[:3]]
    sequential = [engine.execute(q) for q in queries]
    result = ScanGroupExecutor(engine, shards=4).run(list(queries))
    _assert_identical(sequential, result.results, "opaque wrapper")
    assert result.stats.sharded_groups == 0  # degraded, not sharded
