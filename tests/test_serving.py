"""The serving tier's headline contracts.

Five pinned behaviors:

1. **Byte-identity** — results served through the multi-tenant app
   (cold, cross-session-cached, and post-interaction) are identical to
   a direct uncached :class:`repro.Session`, across all four engines ×
   {serial, max_throughput}.
2. **No lost invalidations** — ≥16 tenant threads hammering refreshes
   while ``load_table`` races them; once the dust settles, a fresh
   session must serve the final table's data (a stale cross-session
   cache entry surviving the last invalidation is the bug).
3. **Backpressure** — a saturated server rejects with
   ``Retry-After`` and recovers the moment a slot frees; per-tenant
   fairness caps a chatty tenant when a second becomes active.
4. **Expiry** — the TTL sweep releases engine-host references *and*
   the host's shared-memory exports (proven with the
   ``test_procpool.py`` attach-probe).
5. **HTTP** — the stdlib transport maps the error hierarchy onto
   404/429/400 and round-trips results byte-identically.

Plus the facade regression this PR fixes: no ``/dev/shm`` segment
survives a ``with repro.connect(...)`` block.
"""

from __future__ import annotations

import threading
import time
from multiprocessing import shared_memory

import pytest

import repro
from repro.concurrency.policy import process_shard_engine
from repro.concurrency.procpool import shared_process_pool
from repro.dashboard.library import load_dashboard
from repro.dashboard.state import DashboardState, InteractionKind
from repro.errors import AdmissionError, UnknownSessionError
from repro.execution import ExecutionPolicy
from repro.serving import (
    AdmissionController,
    DashboardServer,
    ServerReply,
    ServingApp,
    ServingClient,
    ServingConfig,
    encode_interaction,
    results_signature,
)
from repro.workload import generate_dataset

#: Multi-tenant hammers and HTTP soaks: worth skipping in a quick
#: inner loop via ``-m "not slow"``.
pytestmark = pytest.mark.slow

ENGINES = ("rowstore", "vectorstore", "matstore", "sqlite")

POLICIES = {
    "serial": ExecutionPolicy.serial(),
    "max_throughput": ExecutionPolicy.max_throughput(),
}

DASHBOARD = "customer_service"


@pytest.fixture(scope="module")
def table():
    return generate_dataset(DASHBOARD, 400, seed=3)


@pytest.fixture(scope="module")
def spec():
    return load_dashboard(DASHBOARD)


def make_app(table, spec, config=None, **app_kwargs) -> ServingApp:
    app = ServingApp(config, **app_kwargs)
    app.load_table(table)
    app.register_dashboard(spec)
    return app


def pick_interaction(spec, table):
    """A deterministic data manipulation valid in the default state."""
    shadow = DashboardState(spec, table)
    actions = shadow.available_interactions()
    for action in actions:
        if action.kind is InteractionKind.WIDGET_TOGGLE:
            return action
    return actions[0]


class FakeClock:
    """Injectable monotonic clock for expiry tests (no sleeping)."""

    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# 1. Byte-identity: served == direct, all engines × policies
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("engine_name", ENGINES)
def test_served_results_byte_identical_to_direct_session(
    engine_name, policy_name, table, spec
):
    policy = POLICIES[policy_name]
    interaction = pick_interaction(spec, table)

    with repro.connect(engine_name, policy=policy) as direct:
        direct.load(table)
        direct_initial = direct.refresh(DASHBOARD)
        direct_fanout = direct.apply_and_refresh(DASHBOARD, interaction)
        direct_after = direct.refresh(DASHBOARD)

    app = make_app(table, spec)
    with app:
        first = app.create_session(
            "tenant-a", DASHBOARD, engine=engine_name, policy=policy
        )
        cold = app.refresh(first["session_id"])
        # A co-tenant in the same state rides the cross-session cache.
        second = app.create_session(
            "tenant-b", DASHBOARD, engine=engine_name, policy=policy
        )
        warm = app.refresh(second["session_id"])
        host = app.host_for(engine_name)
        assert host.cache.stats.hits > 0
        assert host.cache.stats.served_refreshes >= 1

        affected, fanout = app.interact(
            first["session_id"], encode_interaction(interaction)
        )
        after = app.refresh(first["session_id"])

    assert results_signature(cold) == results_signature(direct_initial)
    assert results_signature(warm) == results_signature(direct_initial)
    assert sorted(affected) == sorted(direct_fanout)
    assert results_signature(fanout) == results_signature(direct_fanout)
    assert results_signature(after) == results_signature(direct_after)
    assert app.error_count == 0


# ---------------------------------------------------------------------------
# 2. Concurrent-tenant hammer: load_table races in-flight refreshes
# ---------------------------------------------------------------------------


def test_no_lost_invalidation_with_16_tenants_racing_load_table(spec):
    versions = [
        generate_dataset(DASHBOARD, rows, seed=7)
        for rows in (200, 260, 320)
    ]
    config = ServingConfig(
        max_in_flight=16, max_queue_depth=64, queue_timeout=30.0
    )
    app = make_app(versions[0], spec, config)
    stop = threading.Event()
    errors: list[Exception] = []

    def tenant(index: int) -> None:
        while not stop.is_set():
            try:
                descriptor = app.create_session(
                    f"tenant-{index}", DASHBOARD, engine="sqlite"
                )
                app.refresh(descriptor["session_id"])
                app.close_session(descriptor["session_id"])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
                return

    def reloader() -> None:
        version = 1
        while not stop.is_set():
            try:
                app.load_table(versions[version % len(versions)])
                version += 1
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
                return
            time.sleep(0.01)

    with app:
        threads = [
            threading.Thread(target=tenant, args=(i,)) for i in range(16)
        ]
        threads.append(threading.Thread(target=reloader))
        for thread in threads:
            thread.start()
        time.sleep(1.0)
        stop.set()
        for thread in threads:
            thread.join()
        assert not errors, errors[0]
        assert app.error_count == 0

        # The dust settles on a known final table: a brand-new session
        # must serve exactly its data, not any cached ancestor's.
        final = generate_dataset(DASHBOARD, 380, seed=9)
        app.load_table(final)
        descriptor = app.create_session("tenant-final", DASHBOARD)
        served = app.refresh(descriptor["session_id"])

    with repro.connect("sqlite") as direct:
        direct.load(final)
        expected = direct.refresh(DASHBOARD)
    assert results_signature(served) == results_signature(expected)


# ---------------------------------------------------------------------------
# 3. Backpressure: rejection, recovery, fairness
# ---------------------------------------------------------------------------


class TestBackpressure:
    def test_saturated_server_rejects_with_retry_after_then_recovers(
        self, table, spec
    ):
        config = ServingConfig(
            max_in_flight=1, max_queue_depth=0, retry_after=0.25
        )
        app = make_app(table, spec, config)
        with app:
            descriptor = app.create_session("t", DASHBOARD)
            with app.admission.slot("hog"):
                with pytest.raises(AdmissionError) as excinfo:
                    app.refresh(descriptor["session_id"])
                assert excinfo.value.retry_after == 0.25
            # Recovery: the slot freed, the very next request succeeds.
            results = app.refresh(descriptor["session_id"])
            assert results
            assert app.metrics.counter("serving.rejected", tenant="t") == 1
            assert app.error_count == 0  # a 429 is not a server fault

    def test_queued_request_times_out_with_retry_after(self):
        config = ServingConfig(
            max_in_flight=1,
            max_queue_depth=4,
            queue_timeout=0.05,
            retry_after=1.5,
        )
        controller = AdmissionController(config)
        with controller.slot("hog"):
            start = time.perf_counter()
            with pytest.raises(AdmissionError) as excinfo:
                with controller.slot("waiter"):
                    pass  # pragma: no cover - never admitted
            assert time.perf_counter() - start >= 0.05
            assert excinfo.value.retry_after == 1.5
        snapshot = controller.snapshot()
        assert snapshot["rejected_timeout"] == 1
        assert snapshot["in_flight"] == 0

    def test_second_tenant_halves_the_fair_share_cap(self):
        config = ServingConfig(
            max_in_flight=2, max_queue_depth=8, queue_timeout=5.0
        )
        controller = AdmissionController(config)
        # A lone tenant may use the whole server.
        controller._acquire("a")
        controller._acquire("a")
        admitted = threading.Event()

        def second_tenant() -> None:
            controller._acquire("b")
            admitted.set()

        waiter = threading.Thread(target=second_tenant)
        waiter.start()
        time.sleep(0.05)
        assert not admitted.is_set()
        assert controller.queue_depth == 1
        # One release is enough: b is admitted even though a would also
        # take the slot — with two active tenants a's cap is now 1.
        controller._release("a")
        assert admitted.wait(timeout=5.0)
        # ... and a is indeed capped at 1 while b is active.
        controller.config = config.evolve(queue_timeout=0.05)
        with pytest.raises(AdmissionError):
            controller._acquire("a")
        controller._release("a")
        controller._release("b")
        assert controller.in_flight == 0


# ---------------------------------------------------------------------------
# 4. Expiry sweep: engine refs and shm segments released
# ---------------------------------------------------------------------------


def test_expiry_sweep_releases_engine_refs_and_shm_segments(table, spec):
    clock = FakeClock()
    config = ServingConfig(session_ttl=30.0, sweep_interval=3600.0)
    app = make_app(table, spec, config, clock=clock)
    with app:
        first = app.create_session("a", DASHBOARD, engine="vectorstore")
        second = app.create_session("b", DASHBOARD, engine="vectorstore")
        host = app.host_for("vectorstore")
        assert host.refs == 2

        # Materialize shared-memory exports for the host's engine, as a
        # process-backed refresh would.
        pool = shared_process_pool()
        export = pool.export_table(host.engine, DASHBOARD)
        assert export is not None
        names = [segment.name for segment in export.segments]
        assert names
        for name in names:
            shared_memory.SharedMemory(name=name).close()  # attachable

        clock.advance(10.0)
        app.refresh(first["session_id"])  # touch: first stays fresh
        clock.advance(25.0)  # second idle 35s > ttl; first idle 25s
        assert app.sweep() == [second["session_id"]]
        assert host.refs == 1
        app.refresh(first["session_id"])  # survivor still serves

        clock.advance(31.0)
        assert app.sweep() == [first["session_id"]]
        assert host.refs == 0
        with pytest.raises(UnknownSessionError):
            app.refresh(first["session_id"])

        # The attach-probe: the idle host's segments are truly gone.
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

        # A new arrival finds a working (re-exportable) host.
        third = app.create_session("c", DASHBOARD, engine="vectorstore")
        assert app.refresh(third["session_id"])
        assert host.refs == 1


def test_create_session_sweeps_opportunistically(table, spec):
    clock = FakeClock()
    config = ServingConfig(session_ttl=5.0, sweep_interval=3600.0)
    app = make_app(table, spec, config, clock=clock)
    with app:
        stale = app.create_session("a", DASHBOARD)
        clock.advance(6.0)
        app.create_session("b", DASHBOARD)  # sweeps before creating
        with pytest.raises(UnknownSessionError):
            app.refresh(stale["session_id"])
        assert len(app.registry) == 1


def test_per_tenant_session_cap(table, spec):
    config = ServingConfig(max_sessions_per_tenant=2)
    app = make_app(table, spec, config)
    with app:
        app.create_session("a", DASHBOARD)
        app.create_session("a", DASHBOARD)
        with pytest.raises(AdmissionError):
            app.create_session("a", DASHBOARD)
        app.create_session("b", DASHBOARD)  # other tenants unaffected


# ---------------------------------------------------------------------------
# 5. Session.close() releases pooled segments (facade regression)
# ---------------------------------------------------------------------------


def test_no_shm_segments_survive_a_connect_block(table):
    with repro.connect("vectorstore") as session:
        session.load(table)
        pool = shared_process_pool()
        export = pool.export_table(session.engine, DASHBOARD)
        assert export is not None
        names = [segment.name for segment in export.segments]
        assert names
        for name in names:
            shared_memory.SharedMemory(name=name).close()
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
    # The shared pool itself stays warm for other sessions.
    assert not pool._closed


def test_connect_close_releases_exports_through_wrapper_chain(table):
    with repro.connect("matstore", cache=True) as session:
        session.load(table)
        target = process_shard_engine(session.engine)
        assert target is not session.engine  # CachedEngine wraps it
        pool = shared_process_pool()
        export = pool.export_table(target, DASHBOARD)
        assert export is not None
        names = [segment.name for segment in export.segments]
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


# ---------------------------------------------------------------------------
# 6. HTTP transport
# ---------------------------------------------------------------------------


class TestHTTP:
    @pytest.fixture()
    def server(self, table, spec):
        app = make_app(table, spec)
        with DashboardServer(app) as server:
            yield server

    def test_end_to_end_byte_identity_and_lifecycle(
        self, server, table, spec
    ):
        client = ServingClient(server.url)
        descriptor = client.create_session("tenant-a", DASHBOARD)
        session_id = descriptor["session_id"]
        assert client.describe_session(session_id)["tenant"] == "tenant-a"

        served = client.refresh(session_id)
        interaction = pick_interaction(spec, table)
        affected, fanout = client.interact(
            session_id, encode_interaction(interaction)
        )

        with repro.connect("sqlite") as direct:
            direct.load(table)
            expected = direct.refresh(DASHBOARD)
            expected_fanout = direct.apply_and_refresh(
                DASHBOARD, interaction
            )
        assert results_signature(served) == results_signature(expected)
        assert sorted(affected) == sorted(expected_fanout)
        assert results_signature(fanout) == results_signature(
            expected_fanout
        )

        assert client.close_session(session_id)["closed"] is True
        with pytest.raises(ServerReply) as excinfo:
            client.refresh(session_id)
        assert excinfo.value.status == 404
        assert server.app.error_count == 0

    def test_http_error_mapping(self, server):
        client = ServingClient(server.url)
        with pytest.raises(ServerReply) as excinfo:
            client.refresh("s-999999")
        assert excinfo.value.status == 404

        descriptor = client.create_session("t", DASHBOARD)
        with pytest.raises(ServerReply) as excinfo:
            client.interact(
                descriptor["session_id"],
                {"kind": "widget_toggle", "target": "nope", "value": 1},
            )
        assert excinfo.value.status == 400

        with pytest.raises(ServerReply) as excinfo:
            client.create_session("t", "no_such_dashboard")
        assert excinfo.value.status == 400
        assert server.app.error_count == 0

    def test_http_backpressure_maps_to_429_with_retry_after(
        self, table, spec
    ):
        config = ServingConfig(
            max_in_flight=1, max_queue_depth=0, retry_after=0.5
        )
        app = make_app(table, spec, config)
        with DashboardServer(app) as server:
            client = ServingClient(server.url)
            descriptor = client.create_session("t", DASHBOARD)
            with app.admission.slot("hog"):
                with pytest.raises(ServerReply) as excinfo:
                    client.refresh(descriptor["session_id"])
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after == 0.5
            assert client.refresh(descriptor["session_id"])
            stats = client.stats()
            assert stats["admission"]["rejected_queue_full"] == 1
            assert stats["errors"] == 0
