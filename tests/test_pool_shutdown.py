"""Shutdown-path contracts of the thread pools.

The executor teardown paths (``ScanGroupExecutor.close``, session
``__exit__``, interpreter exit) lean on three properties that were
previously implied but untested: shutdown is idempotent, a shut-down
``WorkerPool`` refuses new work loudly, and per-worker task accounting
survives task failure (a failed task still counts — the gauge tracks
scheduling pressure, not success).
"""

from __future__ import annotations

import pytest

from repro.concurrency.pool import SerialPool, WorkerPool, create_pool
from repro.errors import ConfigError


def test_worker_pool_double_shutdown_is_idempotent():
    pool = WorkerPool(2)
    assert pool.submit(lambda: 41 + 1).result() == 42
    pool.shutdown()
    pool.shutdown()  # second call must be a no-op, not an error
    pool.shutdown(wait=False)


def test_worker_pool_submit_after_shutdown_raises():
    pool = WorkerPool(2)
    pool.shutdown()
    with pytest.raises(RuntimeError):
        pool.submit(lambda: 1)


def test_worker_pool_context_manager_shuts_down():
    with WorkerPool(2) as pool:
        assert pool.submit(lambda: 7).result() == 7
    with pytest.raises(RuntimeError):
        pool.submit(lambda: 1)


def test_worker_pool_counts_failing_tasks():
    pool = WorkerPool(1)
    try:
        pool.submit(lambda: 1).result()
        failing = pool.submit(_boom)
        with pytest.raises(ValueError):
            failing.result()
        pool.submit(lambda: 2).result()
        counts = pool.task_counts
        # One worker ran all three tasks; the failed one still counts.
        assert counts == {"repro-worker-0": 3}
        # The property is a snapshot copy, not live internal state.
        counts["repro-worker-0"] = 99
        assert pool.task_counts == {"repro-worker-0": 3}
    finally:
        pool.shutdown()


def _boom():
    raise ValueError("task failure for accounting test")


def test_worker_pool_rejects_zero_workers():
    with pytest.raises(ConfigError):
        WorkerPool(0)


def test_serial_pool_shutdown_is_a_no_op_and_submit_still_works():
    pool = SerialPool()
    pool.shutdown()
    pool.shutdown()
    # Inline execution has nothing to tear down; the sequential path
    # must keep working after a (spurious) shutdown call.
    assert pool.submit(lambda: 3).result() == 3
    failing = pool.submit(_boom)
    with pytest.raises(ValueError):
        failing.result()


def test_serial_pool_context_manager():
    with SerialPool() as pool:
        assert pool.submit(lambda: 5).result() == 5
    assert pool.submit(lambda: 6).result() == 6


def test_create_pool_picks_flavor_by_width():
    assert isinstance(create_pool(1), SerialPool)
    pool = create_pool(2)
    try:
        assert isinstance(pool, WorkerPool)
    finally:
        pool.shutdown()
