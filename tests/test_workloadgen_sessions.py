"""Generated interaction sessions: replay determinism, empty-result
behavior, the IDEBench bridge, and session-simulator integration."""

import datetime as dt
import random

import pytest

from repro.dashboard.state import Interaction, InteractionKind
from repro.engine import create_engine
from repro.errors import ConfigError
from repro.execution import ExecutionPolicy
from repro.simulation.goalgen import generate_goal_set
from repro.simulation.session import SessionConfig, SessionSimulator
from repro.sql.formatter import format_query
from repro.workloadgen import (
    GeneratedSession,
    generate_dashboard,
    generate_preset,
    generate_session,
    generate_table,
    run_idebench,
    workload_schema,
)


@pytest.fixture(scope="module")
def tiny_workload():
    workload = generate_preset("tiny_tables_sharded", "retail_sales", seed=0)
    return workload, workload.build_table()


# -- generation + serialization ----------------------------------------------


def test_generate_session_is_deterministic_and_valid(tiny_workload):
    workload, table = tiny_workload
    first = generate_session(workload.spec, table, length=6, seed=3)
    second = generate_session(workload.spec, table, length=6, seed=3)
    assert first == second
    assert len(first.steps) == 6
    other_seed = generate_session(workload.spec, table, length=6, seed=4)
    assert first.steps != other_seed.steps
    with pytest.raises(ConfigError, match="length"):
        generate_session(workload.spec, table, length=0, seed=0)


def test_session_json_round_trip_preserves_value_types():
    session = GeneratedSession(
        dashboard="demo",
        seed=1,
        steps=(
            Interaction(InteractionKind.WIDGET_TOGGLE, "w", "member"),
            Interaction(InteractionKind.WIDGET_SET, "w2", (0.25, 7.5)),
            Interaction(
                InteractionKind.WIDGET_SET,
                "w3",
                (dt.datetime(2024, 3, 1), dt.datetime(2024, 3, 4, 12)),
            ),
            Interaction(
                InteractionKind.VIZ_SELECT, "v", ("region", "region_0001")
            ),
            Interaction(InteractionKind.WIDGET_CLEAR, "w"),
        ),
    )
    restored = GeneratedSession.from_json(session.to_json())
    assert restored == session
    # Tuples and datetimes come back as the exact types the dashboard
    # state machine requires (lists would fail range validation).
    assert isinstance(restored.steps[1].value, tuple)
    assert isinstance(restored.steps[2].value[0], dt.datetime)


# -- replay ------------------------------------------------------------------


def test_replay_determinism_and_per_interaction_stats(tiny_workload):
    workload, table = tiny_workload
    session = generate_session(workload.spec, table, length=4, seed=0)
    engine = create_engine("vectorstore")
    engine.load_table(table)
    first = session.replay(
        workload.spec, table, engine, policy=ExecutionPolicy.serial()
    )
    second = session.replay(
        workload.spec, table, engine, policy=ExecutionPolicy.serial()
    )
    assert first.identity_signature() == second.identity_signature()
    # Step 0 is the initial render; one record per interaction after.
    assert len(first.records) == len(session.steps) + 1
    assert first.records[0].description == "initial render"
    assert first.records[0].queries == workload.spec.num_visualizations
    for record, step in zip(first.records[1:], session.steps):
        assert record.description == step.describe()
        assert record.queries >= 1
        assert record.duration_ms >= 0
        assert set(record.results)  # refreshed viz ids populated
    assert first.total_queries == sum(r.queries for r in first.records)
    assert first.engine == "vectorstore"
    assert "sequential" in first.policy
    engine.close()


def test_empty_result_filters_zero_rows_and_byte_identity():
    workload = generate_preset("empty_result_filters", "web_analytics")
    table = workload.build_table()
    widget = workload.spec.interface.widget("w_anchor")
    absent = widget.options[0]
    assert absent not in set(table.distinct_values(widget.column))
    session = GeneratedSession(
        dashboard=workload.spec.name,
        seed=0,
        steps=(
            Interaction(InteractionKind.WIDGET_TOGGLE, "w_anchor", absent),
        ),
    )
    for engine_name in ("rowstore", "sqlite"):
        engine = create_engine(engine_name)
        engine.load_table(table)
        serial = session.replay(
            workload.spec, table, engine, policy=ExecutionPolicy.serial()
        )
        fast = session.replay(
            workload.spec,
            table,
            engine,
            policy=ExecutionPolicy.max_throughput(),
        )
        after = serial.records[-1]
        # Grouped visualizations collapse to zero rows under the
        # never-matching filter; identity must hold on empty results.
        grouped = [
            v.id
            for v in workload.spec.interface.visualizations
            if v.dimensions
        ]
        assert grouped
        for viz_id in grouped:
            assert after.results[viz_id].rows == []
        for s_rec, f_rec in zip(serial.records, fast.records):
            for viz_id, expected in s_rec.results.items():
                assert f_rec.results[viz_id].rows == expected.rows
        engine.close()


# -- IDEBench bridge ---------------------------------------------------------


def test_idebench_end_to_end_with_engine():
    schema = workload_schema("fleet_telemetry")
    engine = create_engine("vectorstore")
    workflow = run_idebench(schema, num_rows=300, seed=3, engine=engine)
    assert workflow.queries
    # Per-query stats are populated when an engine drives the run.
    assert len(workflow.timed) == len(workflow.queries)
    assert all(t.duration_ms >= 0 for t in workflow.timed)
    assert all(t.engine == "vectorstore" for t in workflow.timed)
    # The stochastic process actually interacted (filters propagated).
    assert workflow.updates_per_interaction
    assert workflow.num_visualizations >= 1
    engine.close()


def test_idebench_replay_is_seed_deterministic():
    schema = workload_schema("web_analytics")
    first = run_idebench(schema, num_rows=250, seed=9)
    second = run_idebench(schema, num_rows=250, seed=9)
    assert first.operations == second.operations
    assert [format_query(q) for q in first.queries] == [
        format_query(q) for q in second.queries
    ]
    other = run_idebench(schema, num_rows=250, seed=10)
    assert [format_query(q) for q in first.queries] != [
        format_query(q) for q in other.queries
    ]


# -- session-simulator integration -------------------------------------------


def test_generated_dashboard_drives_session_simulator():
    schema = workload_schema("retail_sales")
    spec = generate_dashboard(schema, index=0, seed=0)
    table = generate_table(schema, 400, seed=0)
    goals = generate_goal_set(["filtering"], spec, random.Random(0))
    measured = create_engine("rowstore")
    measured.load_table(table)
    reference = create_engine("rowstore")
    reference.load_table(table)
    simulator = SessionSimulator(
        spec,
        table,
        [g.query for g in goals],
        measured_engine=measured,
        reference_engine=reference,
        config=SessionConfig(max_total_steps=20, seed=1),
        workflow_name="workloadgen-integration",
    )
    log = simulator.run()
    assert log.dashboard == spec.name
    assert log.query_count > 0
    assert log.records[0].model == "initial"
    measured.close()
    reference.close()
