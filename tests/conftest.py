"""Shared fixtures: a small deterministic dataset and loaded engines."""

from __future__ import annotations

import datetime as dt
import faulthandler
import os

import pytest

from repro.engine import Table, create_engine
from repro.engine.table import ColumnDef, Schema
from repro.engine.types import DataType

#: Per-test hang guard, seconds. A test that deadlocks (a worker pool
#: that never drains, a child process waited on forever) would otherwise
#: stall the whole suite silently; faulthandler dumps every thread's
#: stack and exits instead, so CI logs show *where* it hung.
_HANG_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "300"))


@pytest.fixture(autouse=True)
def _hang_guard():
    if _HANG_TIMEOUT > 0:
        faulthandler.dump_traceback_later(_HANG_TIMEOUT, exit=True)
    yield
    if _HANG_TIMEOUT > 0:
        faulthandler.cancel_dump_traceback_later()


def make_calls_table(num_rows: int = 240) -> Table:
    """A small, fully deterministic call-center table.

    Cycles through queues/reps/hours so every aggregate is exactly
    computable by hand in tests.
    """
    queues = ["A", "B", "C", "D"]
    reps = ["rep-1", "rep-2", "rep-3"]
    rows = []
    for i in range(num_rows):
        rows.append(
            {
                "queue": queues[i % 4],
                "repID": reps[i % 3],
                "hour": i % 24,
                "calls": 1,
                "abandoned": 1 if i % 10 == 0 else 0,
                "lostCalls": 1 if i % 20 == 0 else 0,
                "duration": round(1.0 + (i % 7) * 0.5, 2),
                "note": None if i % 11 == 0 else f"n{i % 3}",
                "ts": dt.datetime(2024, 1, 1) + dt.timedelta(hours=i),
            }
        )
    schema = Schema(
        [
            ColumnDef("queue", DataType.STRING),
            ColumnDef("repID", DataType.STRING),
            ColumnDef("hour", DataType.INTEGER),
            ColumnDef("calls", DataType.INTEGER),
            ColumnDef("abandoned", DataType.INTEGER),
            ColumnDef("lostCalls", DataType.INTEGER),
            ColumnDef("duration", DataType.FLOAT),
            ColumnDef("note", DataType.STRING),
            ColumnDef("ts", DataType.TIMESTAMP),
        ]
    )
    return Table.from_rows("customer_service", rows, schema)


@pytest.fixture(scope="session")
def calls_table() -> Table:
    return make_calls_table()


@pytest.fixture(scope="session")
def all_engines(calls_table):
    """All four engines loaded with the calls table."""
    engines = {}
    for name in ("rowstore", "vectorstore", "matstore", "sqlite"):
        engine = create_engine(name)
        engine.load_table(calls_table)
        engines[name] = engine
    yield engines
    for engine in engines.values():
        engine.close()


@pytest.fixture()
def vector_engine(calls_table):
    engine = create_engine("vectorstore")
    engine.load_table(calls_table)
    return engine


@pytest.fixture(scope="session")
def cs_spec():
    from repro.dashboard.library import load_dashboard

    return load_dashboard("customer_service")


@pytest.fixture(scope="session")
def cs_data():
    from repro.workload import generate_dataset

    return generate_dataset("customer_service", 1_500, seed=5)
