"""Unit tests for the recursive-descent SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sql.ast import (
    Between,
    BinaryOp,
    Column,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Query,
    SelectItem,
    Star,
    UnaryOp,
)
from repro.sql.parser import parse_expression, parse_query


class TestSelectList:
    def test_select_star(self):
        query = parse_query("SELECT * FROM t")
        assert isinstance(query.select[0].expr, Star)

    def test_select_columns(self):
        query = parse_query("SELECT a, b FROM t")
        assert [i.expr for i in query.select] == [Column("a"), Column("b")]

    def test_alias_with_as(self):
        query = parse_query("SELECT a AS x FROM t")
        assert query.select[0].alias == "x"

    def test_alias_without_as(self):
        query = parse_query("SELECT a x FROM t")
        assert query.select[0].alias == "x"

    def test_qualified_column(self):
        query = parse_query("SELECT t.a FROM t")
        assert query.select[0].expr == Column("a", table="t")

    def test_distinct(self):
        assert parse_query("SELECT DISTINCT a FROM t").distinct

    def test_output_names(self):
        query = parse_query("SELECT a, COUNT(*) AS n, b + 1 FROM t")
        assert query.output_names()[:2] == ["a", "n"]


class TestFunctions:
    def test_count_star(self):
        query = parse_query("SELECT COUNT(*) FROM t")
        call = query.select[0].expr
        assert call == FuncCall("COUNT", (Star(),))

    def test_count_distinct(self):
        call = parse_expression("COUNT(DISTINCT a)")
        assert call.distinct
        assert call.args == (Column("a"),)

    def test_nested_calls(self):
        call = parse_expression("SUM(BIN(x, 10))")
        assert call.name == "SUM"
        assert call.args[0].name == "BIN"

    def test_function_name_uppercased(self):
        assert parse_expression("count(a)").name == "COUNT"

    def test_zero_arg_function(self):
        call = parse_expression("NOW()")
        assert call.args == ()


class TestPredicates:
    def test_comparison(self):
        expr = parse_expression("a >= 5")
        assert expr == BinaryOp(">=", Column("a"), Literal(5))

    def test_in_list(self):
        expr = parse_expression("q IN ('A', 'B')")
        assert expr == InList(
            Column("q"), (Literal("A"), Literal("B"))
        )

    def test_not_in(self):
        expr = parse_expression("q NOT IN ('A')")
        assert expr.negated

    def test_between(self):
        expr = parse_expression("h BETWEEN 9 AND 17")
        assert expr == Between(Column("h"), Literal(9), Literal(17))

    def test_not_between(self):
        assert parse_expression("h NOT BETWEEN 1 AND 2").negated

    def test_like(self):
        expr = parse_expression("name LIKE 'c%'")
        assert expr == Like(Column("name"), "c%")

    def test_not_like(self):
        assert parse_expression("name NOT LIKE 'x'").negated

    def test_is_null(self):
        expr = parse_expression("note IS NULL")
        assert expr == IsNull(Column("note"))

    def test_is_not_null(self):
        assert parse_expression("note IS NOT NULL").negated

    def test_bare_not(self):
        expr = parse_expression("NOT a = 1")
        assert isinstance(expr, UnaryOp)
        assert expr.op == "NOT"


class TestPrecedence:
    def test_and_binds_tighter_than_or(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_parentheses_override(self):
        expr = parse_expression("(a = 1 OR b = 2) AND c = 3")
        assert expr.op == "AND"
        assert expr.left.op == "OR"

    def test_multiplication_before_addition(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_comparison_of_arithmetic(self):
        expr = parse_expression("a + 1 > b * 2")
        assert expr.op == ">"
        assert expr.left.op == "+"
        assert expr.right.op == "*"

    def test_unary_minus_folds_into_literal(self):
        assert parse_expression("-5") == Literal(-5)

    def test_unary_minus_on_column(self):
        expr = parse_expression("-a")
        assert isinstance(expr, UnaryOp)

    def test_left_associative_subtraction(self):
        expr = parse_expression("10 - 3 - 2")
        assert expr.op == "-"
        assert expr.left.op == "-"


class TestLiterals:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("42", 42),
            ("3.5", 3.5),
            ("'x'", "x"),
            ("TRUE", True),
            ("FALSE", False),
            ("NULL", None),
        ],
    )
    def test_literal_values(self, text, value):
        assert parse_expression(text) == Literal(value)

    def test_float_stays_float(self):
        assert isinstance(parse_expression("1.0").value, float)

    def test_int_stays_int(self):
        assert isinstance(parse_expression("7").value, int)


class TestClauses:
    def test_where(self):
        query = parse_query("SELECT a FROM t WHERE a > 1")
        assert query.where is not None

    def test_group_by_multiple(self):
        query = parse_query("SELECT a, b, COUNT(*) FROM t GROUP BY a, b")
        assert query.group_by == (Column("a"), Column("b"))

    def test_group_by_expression(self):
        query = parse_query(
            "SELECT HOUR(ts), COUNT(*) FROM t GROUP BY HOUR(ts)"
        )
        assert query.group_by[0].name == "HOUR"

    def test_having(self):
        query = parse_query(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2"
        )
        assert query.having is not None

    def test_order_by_default_ascending(self):
        query = parse_query("SELECT a FROM t ORDER BY a")
        assert not query.order_by[0].descending

    def test_order_by_desc(self):
        query = parse_query("SELECT a FROM t ORDER BY a DESC")
        assert query.order_by[0].descending

    def test_order_by_multiple(self):
        query = parse_query("SELECT a, b FROM t ORDER BY a DESC, b ASC")
        assert [o.descending for o in query.order_by] == [True, False]

    def test_limit(self):
        assert parse_query("SELECT a FROM t LIMIT 10").limit == 10

    def test_table_alias(self):
        query = parse_query("SELECT a FROM table1 AS t1")
        assert query.from_table.alias == "t1"


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "SELECT FROM t",
            "SELECT a",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t GROUP a",
            "SELECT a FROM t LIMIT x",
            "SELECT a FROM t extra garbage here",
            "FROM t SELECT a",
            "SELECT a FROM t WHERE a IN ()",
        ],
    )
    def test_malformed_queries_raise(self, text):
        with pytest.raises(ParseError):
            parse_query(text)

    def test_qualified_star_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT t.* FROM t")

    def test_trailing_tokens_rejected_for_expression(self):
        with pytest.raises(ParseError):
            parse_expression("a = 1 banana")


class TestQueryHelpers:
    def test_is_aggregate_with_group_by(self):
        assert parse_query("SELECT a, COUNT(*) FROM t GROUP BY a").is_aggregate

    def test_is_aggregate_without_group_by(self):
        assert parse_query("SELECT COUNT(*) FROM t").is_aggregate

    def test_not_aggregate(self):
        assert not parse_query("SELECT a FROM t").is_aggregate

    def test_and_where_extends(self):
        query = parse_query("SELECT a FROM t WHERE a > 1")
        extended = query.and_where(parse_expression("b < 2"))
        assert extended.where.op == "AND"

    def test_and_where_on_empty(self):
        query = parse_query("SELECT a FROM t")
        extended = query.and_where(parse_expression("b < 2"))
        assert extended.where == parse_expression("b < 2")

    def test_query_equality_is_structural(self):
        assert parse_query("SELECT a FROM t") == parse_query(
            "select  a  from t"
        )
