"""Equivalence tests for the shared-scan batch executor.

The contract under test: ``engine.execute_batch(queries)`` returns
results **byte-identical** to executing each query sequentially with
``engine.execute`` — same column names, same rows, same row order — on
every engine, while performing strictly fewer base-table scans on
dashboard-shaped workloads. Randomized query mixes exercise grouping,
fusion, shared-scan materialization, and every fallback path.
"""

from __future__ import annotations

import random

import pytest

from repro.dashboard.library import DASHBOARD_NAMES, load_dashboard
from repro.dashboard.state import DashboardState, InteractionKind
from repro.engine.batch import (
    TEMP_PREFIX,
    BatchExecutor,
    group_queries,
    temp_table_name,
)
from repro.engine.instrument import CountingEngine
from repro.engine.registry import create_engine
from repro.engine.table import Table
from repro.sql.ast import (
    Between,
    BinaryOp,
    Column,
    FuncCall,
    InList,
    Literal,
    OrderItem,
    Query,
    SelectItem,
    Star,
    TableRef,
)
from repro.workload.datasets import generate_dataset

ENGINES = ["rowstore", "vectorstore", "matstore", "sqlite"]


def _assert_identical(sequential, batched, context: str) -> None:
    assert len(sequential) == len(batched), context
    for i, (seq, timed) in enumerate(zip(sequential, batched)):
        assert seq.columns == timed.result.columns, f"{context} [{i}] columns"
        assert seq.rows == timed.result.rows, f"{context} [{i}] rows"


# ---------------------------------------------------------------------------
# Randomized query mixes over a synthetic table
# ---------------------------------------------------------------------------


def _mix_table() -> Table:
    rng = random.Random(7)
    rows = 400
    return Table.from_columns(
        "events",
        {
            "queue": [rng.choice(["a", "b", "c", "d"]) for _ in range(rows)],
            "status": [
                rng.choice(["open", "closed", "waiting"])
                for _ in range(rows)
            ],
            "priority": [rng.randint(1, 5) for _ in range(rows)],
            "latency": [round(rng.uniform(0.0, 90.0), 3) for _ in range(rows)],
        },
    )


def _random_filter(rng: random.Random):
    choices = [
        None,
        InList(Column("queue"), (Literal("a"), Literal("b"))),
        BinaryOp("=", Column("status"), Literal("open")),
        Between(Column("priority"), Literal(2), Literal(4)),
        BinaryOp(
            "AND",
            BinaryOp("=", Column("status"), Literal("open")),
            BinaryOp(">", Column("latency"), Literal(30.0)),
        ),
    ]
    return rng.choice(choices)


def _random_query(rng: random.Random) -> Query:
    dims = rng.sample(["queue", "status", "priority"], k=rng.randint(0, 2))
    measures = rng.sample(
        [
            FuncCall("COUNT", (Star(),)),
            FuncCall("SUM", (Column("latency"),)),
            FuncCall("AVG", (Column("latency"),)),
            FuncCall("MIN", (Column("priority"),)),
            FuncCall("MAX", (Column("latency"),)),
            FuncCall("COUNT", (Column("status"),)),
        ],
        k=rng.randint(1, 3),
    )
    select = [SelectItem(Column(d)) for d in dims]
    select += [
        SelectItem(m, f"m{i}_{m.name.lower()}") for i, m in enumerate(measures)
    ]
    query = Query(
        select=tuple(select),
        from_table=TableRef("events"),
        where=_random_filter(rng),
        group_by=tuple(Column(d) for d in dims),
    )
    shape = rng.random()
    if shape < 0.15:  # unfusable: ordered and limited
        query = query.__class__(
            select=query.select,
            from_table=query.from_table,
            where=query.where,
            group_by=query.group_by,
            order_by=(OrderItem(Column(select[-1].alias), descending=True),),
            limit=rng.randint(1, 5),
        )
    elif shape < 0.25:  # plain projection, occasionally DISTINCT
        query = Query(
            select=(SelectItem(Column("queue")), SelectItem(Column("status"))),
            from_table=TableRef("events"),
            where=_random_filter(rng),
            distinct=rng.random() < 0.5,
        )
    return query


@pytest.mark.parametrize("engine_name", ENGINES)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_mix_matches_sequential(engine_name, seed):
    rng = random.Random(seed)
    engine = create_engine(engine_name)
    engine.load_table(_mix_table())
    queries = [_random_query(rng) for _ in range(18)]
    sequential = [engine.execute(q) for q in queries]
    batched = engine.execute_batch(queries)
    _assert_identical(sequential, batched, f"{engine_name} seed={seed}")


@pytest.mark.parametrize("engine_name", ENGINES)
def test_duplicate_queries_fuse_and_match(engine_name):
    engine = create_engine(engine_name)
    engine.load_table(_mix_table())
    base = Query(
        select=(
            SelectItem(Column("queue")),
            SelectItem(FuncCall("COUNT", (Star(),)), "count_all"),
        ),
        from_table=TableRef("events"),
        where=BinaryOp("=", Column("status"), Literal("open")),
        group_by=(Column("queue"),),
    )
    sibling = Query(
        select=(
            SelectItem(Column("queue")),
            SelectItem(FuncCall("AVG", (Column("latency"),)), "avg_latency"),
        ),
        from_table=TableRef("events"),
        where=BinaryOp("=", Column("status"), Literal("open")),
        group_by=(Column("queue"),),
    )
    queries = [base, sibling, base]
    sequential = [engine.execute(q) for q in queries]
    batched = engine.execute_batch(queries)
    _assert_identical(sequential, batched, engine_name)


# ---------------------------------------------------------------------------
# All six library dashboards: render + interaction walks
# ---------------------------------------------------------------------------


def _interaction_walk(state: DashboardState, rng: random.Random, steps: int):
    """Yield each step's emitted queries along a random interaction walk."""
    yield state.initial_queries()
    for _ in range(steps):
        actions = state.available_interactions()
        preferred = [
            a
            for a in actions
            if a.kind
            in (InteractionKind.WIDGET_TOGGLE, InteractionKind.WIDGET_SET)
        ] or actions
        yield state.apply(rng.choice(preferred))


@pytest.mark.parametrize("engine_name", ENGINES)
@pytest.mark.parametrize("dashboard", DASHBOARD_NAMES)
def test_dashboard_refreshes_match_sequential(engine_name, dashboard):
    spec = load_dashboard(dashboard)
    table = generate_dataset(dashboard, 300, seed=11)
    engine = create_engine(engine_name)
    engine.load_table(table)
    state = DashboardState(spec, table)
    rng = random.Random(23)
    for step, queries in enumerate(_interaction_walk(state, rng, steps=3)):
        sequential = [engine.execute(q) for q in queries]
        batched = engine.execute_batch(queries)
        _assert_identical(
            sequential, batched, f"{engine_name}/{dashboard} step {step}"
        )


def test_refresh_api_matches_sequential_refresh():
    spec = load_dashboard("customer_service")
    table = generate_dataset("customer_service", 300, seed=3)
    engine = create_engine("vectorstore")
    engine.load_table(table)
    batch_state = DashboardState(spec, table)
    seq_state = DashboardState(spec, table)
    batched = batch_state.refresh(engine, batch=True)
    sequential = seq_state.refresh(engine, batch=False)
    assert batched.keys() == sequential.keys()
    for viz_id in batched:
        assert batched[viz_id].result == sequential[viz_id].result, viz_id

    action = next(
        a
        for a in batch_state.available_interactions()
        if a.kind is InteractionKind.WIDGET_TOGGLE
    )
    batched = batch_state.apply_and_refresh(action, engine, batch=True)
    sequential = seq_state.apply_and_refresh(action, engine, batch=False)
    assert batched.keys() == sequential.keys()
    for viz_id in batched:
        assert batched[viz_id].result == sequential[viz_id].result, viz_id


# ---------------------------------------------------------------------------
# Scan sharing: the optimization itself
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine_name", ["rowstore", "vectorstore", "sqlite"])
def test_filtered_refresh_uses_one_base_scan(engine_name):
    spec = load_dashboard("customer_service")
    table = generate_dataset("customer_service", 300, seed=5)
    counting = CountingEngine(create_engine(engine_name))
    counting.load_table(table)
    state = DashboardState(spec, table)
    action = next(
        a
        for a in state.available_interactions()
        if a.kind is InteractionKind.WIDGET_TOGGLE
    )
    emitted = state.apply(action)
    assert len(emitted) >= 2

    counting.reset()
    for query in emitted:
        counting.execute(query)
    sequential_scans = counting.base_scans()

    counting.reset()
    BatchExecutor(counting).run(emitted)
    batch_scans = counting.base_scans()

    assert batch_scans == 1
    assert sequential_scans == len(emitted)
    assert sequential_scans >= 2 * batch_scans


def test_temp_relation_is_unloaded_after_batch():
    engine = create_engine("rowstore")
    engine.load_table(_mix_table())
    predicate = BinaryOp("=", Column("status"), Literal("open"))
    queries = [
        Query(
            select=(
                SelectItem(Column(dim)),
                SelectItem(FuncCall("COUNT", (Star(),)), "n"),
            ),
            from_table=TableRef("events"),
            where=predicate,
            group_by=(Column(dim),),
        )
        for dim in ("queue", "status", "priority")
    ]
    result = BatchExecutor(engine).run(queries)
    assert result.stats.shared_scans == 1
    groups = group_queries(queries)
    stem = temp_table_name(
        groups[0].signature.table, groups[0].signature.predicate_key
    )
    assert stem.startswith(TEMP_PREFIX)
    # No temp relation survives the batch (names carry a unique suffix
    # per execution, so check the engine's whole table set).
    assert not [
        name
        for name in engine._db.table_names
        if name.startswith(TEMP_PREFIX)
    ]


def test_join_queries_fall_back_to_direct_execution():
    from repro.sql.parser import parse_query

    engine = create_engine("rowstore")
    engine.load_table(_mix_table())
    engine.load_table(
        Table.from_columns(
            "queues",
            {"name": ["a", "b", "c", "d"], "region": ["x", "x", "y", "y"]},
        )
    )
    join = parse_query(
        "SELECT region, COUNT(*) AS n FROM events "
        "JOIN queues ON events.queue = queues.name GROUP BY region"
    )
    plain = parse_query("SELECT COUNT(*) AS n FROM events")
    sequential = [engine.execute(join), engine.execute(plain)]
    batched = engine.execute_batch([join, plain])
    _assert_identical(sequential, batched, "join fallback")
    stats = BatchExecutor(engine).run([join, plain]).stats
    assert stats.fallbacks == 1


def test_empty_filter_group_matches_sequential():
    engine = create_engine("sqlite")
    engine.load_table(_mix_table())
    predicate = BinaryOp("=", Column("status"), Literal("no_such_status"))
    queries = [
        Query(
            select=(SelectItem(FuncCall("COUNT", (Star(),)), "n"),),
            from_table=TableRef("events"),
            where=predicate,
        ),
        Query(
            select=(
                SelectItem(Column("queue")),
                SelectItem(FuncCall("SUM", (Column("latency"),)), "s"),
            ),
            from_table=TableRef("events"),
            where=predicate,
            group_by=(Column("queue"),),
        ),
    ]
    sequential = [engine.execute(q) for q in queries]
    batched = engine.execute_batch(queries)
    _assert_identical(sequential, batched, "empty filter")


@pytest.mark.parametrize("engine_name", ENGINES)
def test_qualified_columns_survive_shared_scan(engine_name):
    from repro.sql.parser import parse_query

    engine = create_engine(engine_name)
    engine.load_table(_mix_table())
    queries = [
        parse_query(
            "SELECT events.queue, COUNT(*) AS n FROM events "
            "WHERE events.priority = 2 GROUP BY events.queue"
        ),
        parse_query(
            "SELECT events.status, MAX(events.latency) AS hi FROM events "
            "WHERE events.priority = 2 GROUP BY events.status"
        ),
    ]
    sequential = [engine.execute(q) for q in queries]
    batched = engine.execute_batch(queries)
    _assert_identical(sequential, batched, f"{engine_name} qualified")


@pytest.mark.parametrize("engine_name", ENGINES)
def test_from_aliased_queries_fall_back_and_match(engine_name):
    from repro.sql.parser import parse_query

    engine = create_engine(engine_name)
    engine.load_table(_mix_table())
    queries = [
        parse_query(
            "SELECT e.queue, COUNT(*) AS n FROM events AS e "
            "WHERE e.priority = 2 GROUP BY e.queue"
        ),
        parse_query(
            "SELECT e.status, COUNT(*) AS n FROM events AS e "
            "WHERE e.priority = 2 GROUP BY e.status"
        ),
    ]
    sequential = [engine.execute(q) for q in queries]
    batched = engine.execute_batch(queries)
    _assert_identical(sequential, batched, f"{engine_name} FROM alias")
    stats = BatchExecutor(engine).run(queries).stats
    assert stats.fallbacks == 2  # aliased FROM cannot share the scan


@pytest.mark.parametrize("engine_name", ENGINES)
def test_unaliased_aggregates_keep_engine_column_names(engine_name):
    from repro.sql.parser import parse_query

    engine = create_engine(engine_name)
    engine.load_table(_mix_table())
    # No aliases: engines name these columns differently (SQLite keeps
    # the SQL text's casing), so they must not fuse into a merged query
    # that would rename them.
    queries = [
        parse_query("SELECT COUNT(*) FROM events WHERE priority = 2"),
        parse_query("SELECT MIN(latency) FROM events WHERE priority = 2"),
    ]
    sequential = [engine.execute(q) for q in queries]
    batched = engine.execute_batch(queries)
    _assert_identical(sequential, batched, f"{engine_name} unaliased")


def test_cached_batch_fallbacks_use_per_query_cache():
    from repro.engine.cache import CachedEngine
    from repro.sql.parser import parse_query

    cached = CachedEngine(create_engine("rowstore"))
    cached.load_table(_mix_table())
    cached.load_table(
        Table.from_columns(
            "queues",
            {"name": ["a", "b", "c", "d"], "region": ["x", "x", "y", "y"]},
        )
    )
    join = parse_query(
        "SELECT region, COUNT(*) AS n FROM events "
        "JOIN queues ON events.queue = queues.name GROUP BY region"
    )
    cached.execute_batch([join])
    cached.execute_batch([join])
    assert cached.hits == 1  # repeated fallback served from the LRU


@pytest.mark.parametrize("engine_name", ["rowstore", "matstore"])
def test_materialize_over_indexed_table_drops_stale_indexes(engine_name):
    from repro.sql.parser import parse_expression, parse_query

    engine = create_engine(engine_name)
    engine.load_table(_mix_table())
    engine.load_table(
        Table.from_columns(
            "dst",
            {"queue": ["a"] * 8, "priority": [1, 2, 3, 4, 1, 2, 3, 4]},
        )
    )
    engine.create_index("dst", "priority")
    assert engine.materialize_filtered(
        "dst", "events", parse_expression("priority = 3")
    )
    result = engine.execute(
        parse_query("SELECT COUNT(*) AS n FROM dst WHERE priority = 3")
    )
    expected = engine.execute(
        parse_query("SELECT COUNT(*) AS n FROM events WHERE priority = 3")
    )
    assert result.rows == expected.rows  # stale index would crash/corrupt


def test_batch_durations_and_metadata_populated():
    engine = create_engine("vectorstore")
    engine.load_table(_mix_table())
    queries = [
        Query(
            select=(SelectItem(FuncCall("COUNT", (Star(),)), "n"),),
            from_table=TableRef("events"),
        ),
        Query(
            select=(
                SelectItem(Column("queue")),
                SelectItem(FuncCall("COUNT", (Star(),)), "n"),
            ),
            from_table=TableRef("events"),
            group_by=(Column("queue"),),
        ),
    ]
    for timed, query in zip(engine.execute_batch(queries), queries):
        assert timed.engine == "vectorstore"
        assert timed.duration_ms >= 0.0
        assert timed.rows_returned == len(timed.result)
        assert timed.sql == str(query)
