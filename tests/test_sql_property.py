"""Property-based tests: the SQL layer round-trips arbitrary queries.

Hypothesis generates random queries from the supported subset and
checks that ``parse(format(q)) == q`` and that normalization is
idempotent — the invariants the equivalence suite depends on.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sql.ast import (
    Between,
    BinaryOp,
    Column,
    Expression,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    OrderItem,
    Query,
    SelectItem,
    Star,
    TableRef,
    UnaryOp,
)
from repro.sql.formatter import format_expression, format_query, normalize_sql
from repro.sql.parser import parse_expression, parse_query

_identifiers = st.sampled_from(
    ["queue", "hour", "duration", "repID", "abandoned", "note", "x1", "y2"]
)

_literals = st.one_of(
    st.integers(min_value=-1000, max_value=1000).map(Literal),
    st.floats(
        min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
    ).map(lambda v: Literal(round(v, 4))),
    st.sampled_from(["A", "B", "it's", "x y", ""]).map(Literal),
    st.sampled_from([Literal(True), Literal(False), Literal(None)]),
)

_columns = _identifiers.map(Column)


def _value_exprs(depth: int = 2) -> st.SearchStrategy[Expression]:
    base = st.one_of(_columns, _literals)
    if depth <= 0:
        return base
    recursive = _value_exprs(depth - 1)
    return st.one_of(
        base,
        st.builds(
            BinaryOp,
            st.sampled_from(["+", "-", "*", "/"]),
            recursive,
            recursive,
        ),
        st.builds(
            FuncCall,
            st.sampled_from(["ABS", "LOWER", "YEAR"]),
            st.tuples(recursive),
        ),
    )


def _predicates(depth: int = 2) -> st.SearchStrategy[Expression]:
    values = _value_exprs(1)
    atoms = st.one_of(
        st.builds(
            BinaryOp,
            st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
            _columns,
            _literals,
        ),
        st.builds(
            InList,
            _columns,
            st.lists(_literals, min_size=1, max_size=3).map(tuple),
            st.booleans(),
        ),
        st.builds(Between, _columns, values, values, st.booleans()),
        st.builds(
            Like, _columns, st.sampled_from(["a%", "_b", "%c%"]), st.booleans()
        ),
        st.builds(IsNull, _columns, st.booleans()),
    )
    if depth <= 0:
        return atoms
    recursive = _predicates(depth - 1)
    return st.one_of(
        atoms,
        st.builds(
            BinaryOp, st.sampled_from(["AND", "OR"]), recursive, recursive
        ),
        st.builds(UnaryOp, st.just("NOT"), recursive),
    )


_select_items = st.one_of(
    st.builds(SelectItem, _value_exprs(1), st.none()),
    st.builds(
        SelectItem,
        _value_exprs(1),
        st.sampled_from(["alias_a", "alias_b"]),
    ),
    st.builds(
        SelectItem,
        st.builds(
            FuncCall,
            st.sampled_from(["COUNT", "SUM", "AVG", "MIN", "MAX"]),
            st.tuples(_columns),
            st.booleans(),
        ),
        st.none(),
    ),
)

_queries = st.builds(
    Query,
    select=st.lists(_select_items, min_size=1, max_size=4).map(tuple),
    from_table=st.just(TableRef("t")),
    where=st.one_of(st.none(), _predicates(1)),
    group_by=st.lists(_columns, min_size=0, max_size=2, unique=True).map(
        tuple
    ),
    having=st.none(),
    order_by=st.lists(
        st.builds(OrderItem, _columns, st.booleans()),
        min_size=0,
        max_size=2,
    ).map(tuple),
    limit=st.one_of(st.none(), st.integers(min_value=0, max_value=100)),
    distinct=st.booleans(),
)


@settings(max_examples=200, deadline=None)
@given(_predicates(2))
def test_expression_format_parse_roundtrip(expr):
    text = format_expression(expr)
    assert parse_expression(text) == expr


@settings(max_examples=200, deadline=None)
@given(_value_exprs(2))
def test_value_expression_roundtrip(expr):
    text = format_expression(expr)
    assert parse_expression(text) == expr


@settings(max_examples=200, deadline=None)
@given(_queries)
def test_query_format_parse_roundtrip(query):
    text = format_query(query)
    assert parse_query(text) == query


@settings(max_examples=100, deadline=None)
@given(_queries)
def test_formatting_is_deterministic(query):
    assert format_query(query) == format_query(query)


@settings(max_examples=100, deadline=None)
@given(_queries)
def test_normalize_is_idempotent(query):
    text = format_query(query)
    once = normalize_sql(text)
    assert normalize_sql(once) == once


@settings(max_examples=100, deadline=None)
@given(_predicates(2))
def test_normalized_text_insensitive_to_keyword_case(expr):
    text = format_expression(expr)
    if "'" in text:
        # Lower-casing the whole text would alter string literals, which
        # normalization rightly preserves; the property only concerns
        # keywords and identifiers.
        return
    assert normalize_sql(text.lower()) == normalize_sql(text)
