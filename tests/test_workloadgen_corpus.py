"""Golden corpus + the byte-identity stress matrix.

Two layers of guarantees over ``tests/data/generated/``:

1. **Seed determinism (golden).** The checked-in spec/session files
   match their pinned SHA-256 hashes *and* a fresh in-process
   regeneration, so any generator change that shifts bytes fails here
   until ``tools/gen_workload_corpus.py`` is re-run and the diff
   committed.
2. **Stress matrix.** Every adversarial workload replays its pinned
   interaction session on all 4 engines under ``ExecutionPolicy.serial()``
   vs ``max_throughput()``: per engine the two policies must agree
   *byte for byte* (columns, rows, and row order), and all engines must
   agree on content (order-insensitive, since grouped queries are
   unordered relations). This extends the byte-identity contract of
   PRs 1-5 from six hand-written dashboards to each optimizer's
   documented worst case.
"""

import hashlib
import json
import os
from pathlib import Path

import pytest

from repro.dashboard.spec import DashboardSpec
from repro.engine import create_engine
from repro.execution import ExecutionPolicy
from repro.workloadgen import (
    PRESET_NAMES,
    SCHEMA_NAMES,
    generate_preset,
    generate_session,
)
from repro.workloadgen.sessions import GeneratedSession

CORPUS_DIR = Path(__file__).parent / "data" / "generated"
MANIFEST = json.loads(
    (CORPUS_DIR / "manifest.json").read_text(encoding="utf-8")
)
WORKLOADS = MANIFEST["workloads"]
WORKLOAD_IDS = [w["name"] for w in WORKLOADS]
ENGINES = ("rowstore", "vectorstore", "matstore", "sqlite")


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _read(name: str) -> str:
    return (CORPUS_DIR / name).read_text(encoding="utf-8")


def test_manifest_covers_every_preset_and_schema():
    assert len(WORKLOADS) == len(PRESET_NAMES) * len(SCHEMA_NAMES) == 12
    assert {(w["preset"], w["schema"]) for w in WORKLOADS} == {
        (p, s) for p in PRESET_NAMES for s in SCHEMA_NAMES
    }


@pytest.mark.parametrize("entry", WORKLOADS, ids=WORKLOAD_IDS)
def test_corpus_files_match_pinned_hashes_and_load(entry):
    spec_text = _read(entry["spec_file"])
    session_text = _read(entry["session_file"])
    assert _sha256(spec_text) == entry["spec_sha256"]
    assert _sha256(session_text) == entry["session_sha256"]
    spec = DashboardSpec.from_json(spec_text)
    spec.validate()
    session = GeneratedSession.from_json(session_text)
    assert session.dashboard == spec.name == entry["name"]
    assert len(session.steps) == MANIFEST["session_steps"]


@pytest.mark.parametrize("entry", WORKLOADS, ids=WORKLOAD_IDS)
def test_regeneration_is_byte_identical(entry):
    """Seed-determinism golden test: same seed => same bytes."""
    workload = generate_preset(
        entry["preset"],
        entry["schema"],
        seed=entry["seed"],
        rows=entry["rows"],
    )
    assert workload.spec.to_json() + "\n" == _read(entry["spec_file"])
    table = workload.build_table()
    session = generate_session(
        workload.spec,
        table,
        length=MANIFEST["session_steps"],
        seed=MANIFEST["corpus_seed"],
    )
    assert session.to_json() + "\n" == _read(entry["session_file"])


# -- the stress matrix -------------------------------------------------------


@pytest.fixture(scope="module")
def corpus_runtime():
    """(spec, table, session) per workload, built once for the matrix."""
    runtime = {}
    for entry in WORKLOADS:
        spec = DashboardSpec.from_json(_read(entry["spec_file"]))
        table = generate_preset(
            entry["preset"],
            entry["schema"],
            seed=entry["seed"],
            rows=entry["rows"],
        ).build_table()
        session = GeneratedSession.from_json(_read(entry["session_file"]))
        runtime[entry["name"]] = (spec, table, session)
    return runtime


@pytest.mark.parametrize("name", WORKLOAD_IDS)
def test_stress_matrix_byte_identity(corpus_runtime, name):
    spec, table, session = corpus_runtime[name]
    # CI's process-backed leg: SIMBA_STRESS_BACKEND=processes re-runs
    # this same matrix with the fast policy's shard work dispatched to
    # worker processes over shared-memory exports — the byte-identity
    # contract must hold across the process boundary too.
    fast_policy = ExecutionPolicy.max_throughput().evolve(
        backend=os.environ.get("SIMBA_STRESS_BACKEND", "threads")
    )
    cross_engine_reference = None
    for engine_name in ENGINES:
        engine = create_engine(engine_name)
        engine.load_table(table)
        serial = session.replay(
            spec, table, engine, policy=ExecutionPolicy.serial()
        )
        fast = session.replay(
            spec, table, engine, policy=fast_policy
        )
        assert len(serial.records) == len(session.steps) + 1
        for s_rec, f_rec in zip(serial.records, fast.records):
            assert set(s_rec.results) == set(f_rec.results)
            for viz_id, expected in s_rec.results.items():
                got = f_rec.results[viz_id]
                # Strict byte identity per engine: same columns, same
                # rows, same row order under every policy.
                assert got.columns == expected.columns, (
                    f"{name}/{engine_name}/{viz_id} step {s_rec.step}: "
                    f"columns differ under max_throughput"
                )
                assert got.rows == expected.rows, (
                    f"{name}/{engine_name}/{viz_id} step {s_rec.step}: "
                    f"rows differ under max_throughput"
                )
        # Cross-engine: grouped queries are unordered relations, so
        # compare content order-insensitively (dyadic data => exact).
        signature = [
            (
                record.step,
                {
                    viz_id: (
                        tuple(rs.columns),
                        tuple(rs.sorted_rows(precision=9)),
                    )
                    for viz_id, rs in sorted(record.results.items())
                },
            )
            for record in serial.records
        ]
        if cross_engine_reference is None:
            cross_engine_reference = (engine_name, signature)
        else:
            assert signature == cross_engine_reference[1], (
                f"{name}: {engine_name} disagrees with "
                f"{cross_engine_reference[0]}"
            )
        engine.close()
