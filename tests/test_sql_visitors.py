"""Unit tests for AST analysis helpers (query shapes, column sets)."""

from repro.sql.ast import conjoin, conjuncts, disjoin, disjuncts, walk
from repro.sql.parser import parse_expression, parse_query
from repro.sql.visitors import (
    all_columns,
    count_filters,
    filtered_columns,
    predicate_values,
    query_shape,
    selected_columns,
)


class TestQueryShape:
    def test_plain_columns(self):
        shape = query_shape(parse_query("SELECT a, b FROM t"))
        assert shape.plain_columns == ["a", "b"]
        assert shape.aggregated_columns == []

    def test_aggregated_columns(self):
        shape = query_shape(
            parse_query("SELECT q, COUNT(x), SUM(y) FROM t GROUP BY q")
        )
        assert shape.plain_columns == ["q"]
        assert shape.aggregated_columns == ["x", "y"]
        assert shape.aggregate_functions == ["COUNT", "SUM"]

    def test_count_star_counts_as_star_column(self):
        shape = query_shape(parse_query("SELECT COUNT(*) FROM t"))
        assert shape.aggregated_columns == ["*"]

    def test_star_select(self):
        shape = query_shape(parse_query("SELECT * FROM t"))
        assert shape.has_star

    def test_group_by_columns(self):
        shape = query_shape(
            parse_query("SELECT q, h, COUNT(*) FROM t GROUP BY q, h")
        )
        assert shape.group_by_columns == ["q", "h"]

    def test_expression_column_extraction(self):
        shape = query_shape(parse_query("SELECT a + b FROM t"))
        assert shape.plain_columns == ["a", "b"]

    def test_mixed_expression_with_aggregate(self):
        shape = query_shape(
            parse_query("SELECT SUM(x) / COUNT(y) FROM t")
        )
        assert sorted(shape.aggregated_columns) == ["x", "y"]

    def test_total_columns(self):
        shape = query_shape(
            parse_query("SELECT q, COUNT(x) FROM t GROUP BY q")
        )
        assert shape.total_columns == 2


class TestCountFilters:
    def test_no_filters(self):
        assert count_filters(parse_query("SELECT a FROM t")) == 0

    def test_single_comparison(self):
        assert count_filters(parse_query("SELECT a FROM t WHERE a > 1")) == 1

    def test_and_counts_each_atom(self):
        query = parse_query("SELECT a FROM t WHERE a > 1 AND b < 2 AND c = 3")
        assert count_filters(query) == 3

    def test_or_counts_each_atom(self):
        query = parse_query("SELECT a FROM t WHERE a > 1 OR b < 2")
        assert count_filters(query) == 2

    def test_in_is_one_filter(self):
        query = parse_query("SELECT a FROM t WHERE q IN ('A','B','C')")
        assert count_filters(query) == 1

    def test_between_is_one_filter(self):
        query = parse_query("SELECT a FROM t WHERE h BETWEEN 1 AND 5")
        assert count_filters(query) == 1

    def test_having_counts(self):
        query = parse_query(
            "SELECT q, COUNT(*) FROM t WHERE a > 1 GROUP BY q "
            "HAVING COUNT(*) > 2"
        )
        assert count_filters(query) == 2

    def test_not_wrapped_atom(self):
        query = parse_query("SELECT a FROM t WHERE NOT a = 1")
        assert count_filters(query) == 1


class TestColumnSets:
    def test_filtered_columns(self):
        query = parse_query(
            "SELECT a FROM t WHERE b > 1 GROUP BY a HAVING COUNT(c) > 2"
        )
        assert filtered_columns(query) == {"b", "c"}

    def test_selected_columns(self):
        query = parse_query("SELECT a, SUM(b) FROM t GROUP BY a")
        assert selected_columns(query) == {"a", "b"}

    def test_all_columns(self):
        query = parse_query(
            "SELECT a FROM t WHERE b = 1 ORDER BY c"
        )
        assert all_columns(query) == {"a", "b", "c"}

    def test_predicate_values(self):
        predicate = parse_expression("q IN ('A', 'B') AND h > 5")
        assert set(predicate_values(predicate)) == {"A", "B", 5}


class TestConjunctHelpers:
    def test_conjuncts_flatten(self):
        predicate = parse_expression("a = 1 AND b = 2 AND c = 3")
        assert len(conjuncts(predicate)) == 3

    def test_conjuncts_keep_or_intact(self):
        predicate = parse_expression("(a = 1 OR b = 2) AND c = 3")
        parts = conjuncts(predicate)
        assert len(parts) == 2

    def test_conjuncts_of_none(self):
        assert conjuncts(None) == []

    def test_conjoin_roundtrip(self):
        predicate = parse_expression("a = 1 AND b = 2")
        assert conjoin(conjuncts(predicate)) == predicate

    def test_conjoin_empty(self):
        assert conjoin([]) is None

    def test_disjuncts_flatten(self):
        predicate = parse_expression("a = 1 OR b = 2 OR c = 3")
        assert len(disjuncts(predicate)) == 3

    def test_disjoin_roundtrip(self):
        predicate = parse_expression("a = 1 OR b = 2")
        assert disjoin(disjuncts(predicate)) == predicate

    def test_walk_visits_all_nodes(self):
        query = parse_query("SELECT a, COUNT(b) FROM t WHERE c = 1")
        names = {n.name for n in walk(query) if hasattr(n, "name") and
                 type(n).__name__ == "Column"}
        assert names == {"a", "b", "c"}
