"""Cross-engine consistency: all engines agree with SQLite.

SQLite is the real DBMS among the four; the pure-Python engines must
return identical (order-insensitive, float-tolerant) results on the
supported subset. Includes a hypothesis property over randomly built
grouped-aggregate queries.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.sql.builder import col, select
from repro.sql.parser import parse_query

FIXED_QUERIES = [
    "SELECT COUNT(*) FROM customer_service",
    "SELECT queue, COUNT(*) FROM customer_service GROUP BY queue",
    "SELECT repID, hour, COUNT(calls) FROM customer_service "
    "WHERE queue IN ('A','B') GROUP BY repID, hour",
    "SELECT queue, SUM(duration), AVG(duration) FROM customer_service "
    "GROUP BY queue HAVING COUNT(*) > 10",
    "SELECT hour, COUNT(*) AS call_volume, SUM(abandoned) "
    "FROM customer_service GROUP BY hour ORDER BY hour",
    "SELECT DISTINCT repID, queue FROM customer_service",
    "SELECT note, COUNT(*) FROM customer_service GROUP BY note",
    "SELECT BIN(duration, 1), COUNT(*) FROM customer_service "
    "GROUP BY BIN(duration, 1)",
    "SELECT HOUR(ts), COUNT(*) FROM customer_service GROUP BY HOUR(ts)",
    "SELECT queue, COUNT(DISTINCT repID) FROM customer_service GROUP BY queue",
    "SELECT MIN(duration), MAX(duration), SUM(calls) FROM customer_service "
    "WHERE note IS NOT NULL",
    "SELECT queue FROM customer_service WHERE duration > 3.9 AND hour < 5",
    "SELECT SUM(abandoned) * 1.0 / COUNT(*) FROM customer_service",
    "SELECT queue, COUNT(*) FROM customer_service "
    "WHERE NOT (queue = 'A' OR hour < 12) GROUP BY queue",
    "SELECT repID, COUNT(*) FROM customer_service "
    "WHERE note LIKE 'n%' GROUP BY repID",
    "SELECT queue, hour FROM customer_service "
    "WHERE hour BETWEEN 3 AND 4 ORDER BY queue, hour LIMIT 7",
]


@pytest.mark.parametrize("sql", FIXED_QUERIES)
def test_fixed_queries_match_sqlite(all_engines, sql):
    query = parse_query(sql)
    expected = all_engines["sqlite"].execute(query).sorted_rows(precision=6)
    for name in ("rowstore", "vectorstore", "matstore"):
        actual = all_engines[name].execute(query).sorted_rows(precision=6)
        assert actual == expected, f"{name} disagrees with sqlite on: {sql}"


# -- property: random grouped-aggregate queries ------------------------------

_group_columns = st.lists(
    st.sampled_from(["queue", "repID", "hour", "note"]),
    min_size=0,
    max_size=2,
    unique=True,
)
_agg_specs = st.lists(
    st.tuples(
        st.sampled_from(["COUNT", "SUM", "AVG", "MIN", "MAX"]),
        st.sampled_from(["calls", "duration", "abandoned", "hour"]),
    ),
    min_size=1,
    max_size=3,
)
_filters = st.lists(
    st.sampled_from(
        [
            "queue = 'A'",
            "queue IN ('B', 'C')",
            "hour >= 12",
            "duration BETWEEN 1 AND 3",
            "note IS NOT NULL",
            "abandoned = 1",
            "repID != 'rep-2'",
        ]
    ),
    min_size=0,
    max_size=3,
    unique=True,
)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(groups=_group_columns, aggs=_agg_specs, filters=_filters)
def test_random_aggregates_match_sqlite(all_engines, groups, aggs, filters):
    items = list(groups) + [
        f"{agg}({column}) AS m{i}" for i, (agg, column) in enumerate(aggs)
    ]
    sql = f"SELECT {', '.join(items)} FROM customer_service"
    if filters:
        sql += " WHERE " + " AND ".join(filters)
    if groups:
        sql += " GROUP BY " + ", ".join(groups)
    query = parse_query(sql)
    expected = all_engines["sqlite"].execute(query).sorted_rows(precision=6)
    for name in ("rowstore", "vectorstore", "matstore"):
        actual = all_engines[name].execute(query).sorted_rows(precision=6)
        assert actual == expected, f"{name} disagrees on: {sql}"


def test_execute_timed_reports_duration(all_engines):
    query = (
        select("queue", col("hour"))
        .from_table("customer_service")
        .limit(5)
        .build()
    )
    for engine in all_engines.values():
        timed = engine.execute_timed(query)
        assert timed.duration_ms >= 0
        assert timed.rows_returned == 5
        assert timed.engine == engine.name
        assert "SELECT" in timed.sql
