"""Tests for interaction-variance measures and the derived-column layer."""

import math
import random

import numpy as np
import pytest

from repro.engine.derived import (
    DERIVABLE,
    derived_array,
    derived_name,
    rewrite_query,
)
from repro.engine.registry import create_engine
from repro.metrics.variance import (
    cross_session_agreement,
    empty_fraction,
    interaction_type_entropy,
    query_diversity,
    variance_measures,
)
from repro.simulation import SessionConfig, SessionSimulator, get_workflow
from repro.sql.formatter import format_query
from repro.sql.parser import parse_query
from repro.workload import generate_dataset


def _run(spec, table, config, seed):
    measured = create_engine("vectorstore")
    measured.load_table(table)
    reference = create_engine("vectorstore")
    reference.load_table(table)
    goals = get_workflow("shneiderman").instantiate_for_dashboard(
        spec, random.Random(seed)
    )
    return SessionSimulator(
        spec, table, [g.query for g in goals],
        measured_engine=measured, reference_engine=reference,
        config=config,
    ).run()


class TestVarianceMeasures:
    @pytest.fixture(scope="class")
    def logs(self, cs_spec):
        table = generate_dataset("customer_service", 900, seed=7)
        random_config = SessionConfig(
            seed=1, p_markov_initial=1.0, decay_rate=0.0,
            markov_preset="uniform", run_to_max=True,
            max_steps_per_goal=12,
        )
        focused_config = SessionConfig.expert(seed=1)
        return (
            _run(cs_spec, table, random_config, seed=1),
            _run(cs_spec, table, focused_config, seed=1),
        )

    def test_entropy_bounds(self, logs):
        for log in logs:
            entropy = interaction_type_entropy(log)
            assert 0.0 <= entropy <= math.log2(6) + 1e-9

    def test_random_sessions_have_higher_entropy(self, logs):
        random_log, focused_log = logs
        assert interaction_type_entropy(random_log) >= (
            interaction_type_entropy(focused_log)
        )

    def test_query_diversity_bounds(self, logs):
        for log in logs:
            assert 0.0 < query_diversity(log) <= 1.0

    def test_empty_fraction_bounds(self, logs):
        for log in logs:
            assert 0.0 <= empty_fraction(log) <= 1.0

    def test_variance_measures_row(self, logs):
        row = variance_measures(logs[0], "demo").as_row()
        assert row["label"] == "demo"
        assert row["interactions"] > 0

    def test_cross_session_agreement_identity(self, logs):
        assert cross_session_agreement(logs[0], logs[0]) == 1.0

    def test_cross_session_agreement_symmetric(self, logs):
        a, b = logs
        assert cross_session_agreement(a, b) == pytest.approx(
            cross_session_agreement(b, a)
        )

    def test_simba_sessions_agree_more_than_idebench(self, cs_spec):
        """Dashboard constraints bound the query space: two SIMBA runs
        share many queries; two IDEBench runs share almost none."""
        table = generate_dataset("customer_service", 600, seed=3)
        config = SessionConfig(seed=0)
        log_a = _run(cs_spec, table, SessionConfig(seed=10), seed=3)
        log_b = _run(cs_spec, table, SessionConfig(seed=20), seed=3)
        simba_agreement = cross_session_agreement(log_a, log_b)

        from repro.idebench import IDEBenchConfig, IDEBenchSimulator
        from repro.simulation.session import (
            InteractionRecord, SessionLog,
        )

        def idebench_queries(seed):
            flow = IDEBenchSimulator(
                table, IDEBenchConfig(seed=seed)
            ).run()
            return {format_query(q) for q in flow.queries}

        ide_a = idebench_queries(1)
        ide_b = idebench_queries(2)
        ide_agreement = len(ide_a & ide_b) / len(ide_a | ide_b)
        assert simba_agreement > ide_agreement


class TestDerivedColumns:
    @pytest.fixture(scope="class")
    def table(self):
        return generate_dataset("myride", 300, seed=4)

    def test_derived_array_cached(self, table):
        first = derived_array(table, "HOUR", "ts")
        second = derived_array(table, "HOUR", "ts")
        assert first is second

    def test_derived_values_match_scalar_function(self, table):
        array = derived_array(table, "HOUR", "ts")
        values = table.column("ts")
        for i in (0, 7, 123):
            assert array[i] == values[i].hour

    def test_epoch_monotone_with_time(self, table):
        epochs = derived_array(table, "EPOCH", "ts")
        values = table.column("ts")
        i, j = 3, 77
        assert (epochs[i] < epochs[j]) == (values[i] < values[j])

    def test_rewrite_replaces_temporal_calls(self, table):
        query = parse_query(
            "SELECT HOUR(ts), AVG(heart_rate) FROM myride GROUP BY HOUR(ts)"
        )
        arrays = {}
        rewritten = rewrite_query(query, table, arrays)
        assert derived_name("HOUR", "ts") in arrays
        text = format_query(rewritten)
        assert "HOUR(" not in text

    def test_rewrite_pins_output_names(self, table):
        query = parse_query(
            "SELECT HOUR(ts), AVG(heart_rate) FROM myride GROUP BY HOUR(ts)"
        )
        rewritten = rewrite_query(query, table, {})
        assert rewritten.output_names() == query.output_names()

    def test_rewrite_leaves_non_temporal_alone(self, table):
        query = parse_query(
            "SELECT BIN(speed, 5), COUNT(*) FROM myride GROUP BY BIN(speed, 5)"
        )
        arrays = {}
        rewritten = rewrite_query(query, table, arrays)
        assert not arrays
        assert "BIN(speed, 5)" in format_query(rewritten)

    def test_rewrite_temporal_between(self, table):
        low = table.column("ts")[0].isoformat()
        query = parse_query(
            f"SELECT COUNT(*) FROM myride WHERE ts BETWEEN '{low}' AND '{low}'"
        )
        # String literals are not temporal literals; no rewrite happens
        # and row engines handle the comparison. Build with real dates:
        import datetime as dt
        from repro.sql.ast import Between, Column, Literal

        predicate = Between(
            Column("ts"),
            Literal(dt.datetime(2024, 1, 1)),
            Literal(dt.datetime(2024, 1, 1, 12)),
        )
        query = parse_query("SELECT COUNT(*) FROM myride").with_where(
            predicate
        )
        arrays = {}
        rewritten = rewrite_query(query, table, arrays)
        assert derived_name("EPOCH", "ts") in arrays

    def test_rewritten_results_match_unrewritten(self, table):
        """Rewriting is a pure optimization: results identical on all
        engines (sqlite never rewrites; vectorstore always does)."""
        sqlite = create_engine("sqlite")
        sqlite.load_table(table)
        vector = create_engine("vectorstore")
        vector.load_table(table)
        query = parse_query(
            "SELECT HOUR(ts), AVG(heart_rate), COUNT(*) FROM myride "
            "GROUP BY HOUR(ts)"
        )
        assert vector.execute(query).sorted_rows(
            precision=6
        ) == sqlite.execute(query).sorted_rows(precision=6)

    def test_derivable_set(self):
        assert "HOUR" in DERIVABLE
        assert "BIN" not in DERIVABLE
