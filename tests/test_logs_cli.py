"""The session-log CLI: simulate, replay, metrics."""

from __future__ import annotations

import pytest

from repro.logs.cli import main
from repro.logs.io import read_csv, read_jsonl

ROWS = 3_000
SEED = 5


@pytest.fixture(scope="module")
def jsonl_log(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "session.jsonl"
    exit_code = main(
        [
            "simulate",
            "--dashboard", "customer_service",
            "--workflow", "shneiderman",
            "--rows", str(ROWS),
            "--seed", str(SEED),
            "--out", str(path),
        ]
    )
    assert exit_code == 0
    return path


class TestSimulate:
    def test_writes_readable_jsonl(self, jsonl_log):
        log = read_jsonl(jsonl_log)
        assert log.dashboard == "customer_service"
        assert log.workflow == "shneiderman"
        assert log.query_count > 0

    def test_csv_extension_selects_csv_format(self, tmp_path):
        path = tmp_path / "session.csv"
        exit_code = main(
            [
                "simulate",
                "--rows", str(ROWS),
                "--seed", str(SEED),
                "--out", str(path),
            ]
        )
        assert exit_code == 0
        log = read_csv(path)
        assert log.query_count > 0

    def test_same_seed_is_deterministic(self, jsonl_log, tmp_path):
        other = tmp_path / "again.jsonl"
        main(
            [
                "simulate",
                "--rows", str(ROWS),
                "--seed", str(SEED),
                "--out", str(other),
            ]
        )
        first = read_jsonl(jsonl_log)
        second = read_jsonl(other)
        assert [e.sql for e in first.entries] == [
            e.sql for e in second.entries
        ]


class TestReplay:
    def test_matching_dataset_replays_clean(self, jsonl_log, capsys):
        exit_code = main(
            [
                "replay", str(jsonl_log),
                "--engine", "sqlite",
                "--rows", str(ROWS),
                "--seed", str(SEED),
            ]
        )
        assert exit_code == 0
        assert "all cardinalities matched" in capsys.readouterr().out

    def test_wrong_dataset_reports_mismatches(self, jsonl_log, capsys):
        exit_code = main(
            [
                "replay", str(jsonl_log),
                "--engine", "sqlite",
                "--rows", str(ROWS // 2),
                "--seed", str(SEED),
            ]
        )
        assert exit_code == 1
        assert "mismatches" in capsys.readouterr().out

    def test_no_check_ignores_mismatches(self, jsonl_log):
        exit_code = main(
            [
                "replay", str(jsonl_log),
                "--engine", "vectorstore",
                "--rows", str(ROWS // 2),
                "--seed", str(SEED),
                "--no-check",
            ]
        )
        assert exit_code == 0


class TestMetrics:
    def test_prints_section7_measures(self, jsonl_log, capsys):
        exit_code = main(["metrics", str(jsonl_log)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "total interactions" in out
        assert "attributes explored" in out
        assert "interaction rate" in out
        assert "customer_service" in out


class TestParser:
    def test_missing_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_dashboard_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--dashboard", "nosuch", "--out", "x.jsonl"])


class TestHarnessExportFlag:
    def test_harness_cli_exports_logs(self, tmp_path, capsys):
        from repro.harness.cli import main as harness_main
        from repro.logs.io import read_jsonl

        directory = tmp_path / "harness_logs"
        exit_code = harness_main(
            [
                "--dashboards", "customer_service",
                "--workflows", "shneiderman",
                "--engines", "vectorstore",
                "--rows", "2000",
                "--runs", "1",
                "--export-logs", str(directory),
            ]
        )
        assert exit_code == 0
        files = list(directory.glob("*.jsonl"))
        assert len(files) == 1
        assert read_jsonl(files[0]).query_count > 0
