"""Tests for the extension features: response rate, interface
manipulations, dynamic goal ordering, and the CLI."""

import random

import pytest

from repro.dashboard.spec import (
    DimensionSpec,
    MeasureSpec,
    VisualizationSpec,
)
from repro.dashboard.state import DashboardState, Interaction, InteractionKind
from repro.engine.registry import create_engine
from repro.errors import InteractionError
from repro.metrics.response_rate import (
    STANDARD_THRESHOLDS_MS,
    response_rate,
    session_response_rate,
)
from repro.simulation import SessionConfig, SessionSimulator, get_workflow
from repro.sql.formatter import format_query


class TestResponseRate:
    def test_all_fast(self):
        rate = response_rate("x", [1.0, 2.0, 3.0])
        assert rate.rate(100.0) == 1.0

    def test_partial(self):
        rate = response_rate("x", [10.0, 200.0, 800.0, 2000.0])
        assert rate.rate(100.0) == 0.25
        assert rate.rate(500.0) == 0.5
        assert rate.rate(1000.0) == 0.75

    def test_empty_sample(self):
        rate = response_rate("x", [])
        assert rate.total_queries == 0
        assert rate.rate(100.0) == 1.0

    def test_unknown_threshold_raises(self):
        rate = response_rate("x", [1.0])
        with pytest.raises(KeyError):
            rate.rate(123.0)

    def test_as_row_percent_format(self):
        row = response_rate("x", [10.0, 600.0]).as_row()
        assert row["<500ms"] == "50.0%"

    def test_session_response_rate(self, cs_spec, cs_data):
        measured = create_engine("vectorstore")
        measured.load_table(cs_data)
        reference = create_engine("vectorstore")
        reference.load_table(cs_data)
        goals = get_workflow("shneiderman").instantiate_for_dashboard(
            cs_spec, random.Random(0)
        )
        log = SessionSimulator(
            cs_spec, cs_data, [g.query for g in goals],
            measured_engine=measured, reference_engine=reference,
            config=SessionConfig(seed=0),
        ).run()
        rate = session_response_rate(log)
        assert rate.total_queries == log.query_count
        assert set(rate.rates) == set(STANDARD_THRESHOLDS_MS)
        # Monotone in the threshold.
        values = [rate.rates[t] for t in sorted(rate.rates)]
        assert values == sorted(values)


class TestInterfaceManipulations:
    @pytest.fixture()
    def state(self, cs_spec, cs_data):
        return DashboardState(cs_spec, cs_data)

    def test_add_visualization_emits_query(self, state):
        viz = VisualizationSpec(
            id="lost_by_team",
            type="bar",
            dimensions=(DimensionSpec("team"),),
            measures=(MeasureSpec("count", "lostCalls"),),
        )
        emitted = state.add_visualization(
            viz, link_from=("calls_by_queue",)
        )
        assert len(emitted) == 1
        assert "GROUP BY team" in format_query(emitted[0])
        assert "lost_by_team" in state.visualizations

    def test_added_viz_receives_crossfilter(self, state):
        viz = VisualizationSpec(
            id="lost_by_team",
            type="bar",
            dimensions=(DimensionSpec("team"),),
            measures=(MeasureSpec("count", "lostCalls"),),
        )
        state.add_visualization(viz, link_from=("calls_by_queue",))
        state.apply(
            Interaction(
                InteractionKind.VIZ_SELECT, "calls_by_queue",
                ("repID", state.table.distinct_values("repID")[0]),
            )
        )
        text = format_query(state.query_for("lost_by_team"))
        assert "repID IN" in text

    def test_add_validates_columns(self, state):
        viz = VisualizationSpec(
            id="bogus",
            type="bar",
            dimensions=(DimensionSpec("no_such_column"),),
            measures=(MeasureSpec("count", None),),
        )
        from repro.errors import SpecificationError

        with pytest.raises(SpecificationError):
            state.add_visualization(viz)

    def test_remove_visualization(self, state):
        state.remove_visualization("abandon_rate")
        assert "abandon_rate" not in state.visualizations
        assert len(state.initial_queries()) == 4
        # Widgets no longer target it.
        for widget in state.spec.interface.widgets:
            assert "abandon_rate" not in widget.targets

    def test_remove_unknown_raises(self, state):
        with pytest.raises(InteractionError):
            state.remove_visualization("ghost")

    def test_remove_sole_target_refused(self, cs_spec, cs_data):
        # Build a state where one widget targets a single viz.
        from dataclasses import replace
        from repro.dashboard.spec import WidgetSpec

        interface = cs_spec.interface
        widget = WidgetSpec(
            id="solo_widget", type="checkbox", column="team",
            targets=("lost_calls",),
        )
        spec = replace(
            cs_spec,
            interface=replace(
                interface, widgets=interface.widgets + (widget,)
            ),
        )
        state = DashboardState(spec, cs_data)
        with pytest.raises(InteractionError):
            state.remove_visualization("lost_calls")

    def test_add_then_interact_normally(self, state):
        viz = VisualizationSpec(
            id="extra",
            type="stat",
            measures=(MeasureSpec("avg", "satisfaction"),),
            selectable=False,
        )
        state.add_visualization(viz)
        emitted = state.apply(
            Interaction(InteractionKind.WIDGET_TOGGLE, "queue_checkbox", "A")
        )
        # The new stat is not targeted by the widget (no link), so only
        # the original five re-render.
        assert len(emitted) == 5


class TestDynamicGoalOrder:
    def test_dynamic_order_completes_goals(self, cs_spec, cs_data):
        measured = create_engine("vectorstore")
        measured.load_table(cs_data)
        reference = create_engine("vectorstore")
        reference.load_table(cs_data)
        goals = get_workflow("battle_heer").instantiate_for_dashboard(
            cs_spec, random.Random(6)
        )
        log = SessionSimulator(
            cs_spec, cs_data, [g.query for g in goals],
            measured_engine=measured, reference_engine=reference,
            config=SessionConfig(
                seed=6, p_markov_initial=0.0, dynamic_goal_order=True
            ),
        ).run()
        assert log.goals_total == 3
        assert log.goals_completed >= 2

    def test_dynamic_order_never_worse_than_static(self, cs_spec, cs_data):
        measured = create_engine("vectorstore")
        measured.load_table(cs_data)
        reference = create_engine("vectorstore")
        reference.load_table(cs_data)
        goals = get_workflow("shneiderman").instantiate_for_dashboard(
            cs_spec, random.Random(4)
        )

        def run(dynamic):
            return SessionSimulator(
                cs_spec, cs_data, [g.query for g in goals],
                measured_engine=measured, reference_engine=reference,
                config=SessionConfig(
                    seed=4, p_markov_initial=0.0,
                    dynamic_goal_order=dynamic,
                ),
            ).run()

        static = run(False)
        dynamic = run(True)
        assert dynamic.goals_completed >= static.goals_completed - 1


class TestCli:
    def test_parser_defaults(self):
        from repro.harness.cli import build_parser

        args = build_parser().parse_args([])
        assert args.rows == 20_000
        assert "vectorstore" in args.engines

    def test_main_runs_small_grid(self, capsys):
        from repro.harness.cli import main

        code = main(
            [
                "--dashboards", "circulation",
                "--workflows", "shneiderman",
                "--engines", "vectorstore",
                "--rows", "500",
                "--runs", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Query-duration summary" in out
        assert "circulation" in out

    def test_invalid_engine_rejected(self):
        from repro.harness.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["--engines", "oracle-12c"])
