"""Process-backed execution: cross-process correctness + fault injection.

The contracts under test, in the order the module docstring of
:mod:`repro.concurrency.procpool` states them:

1. **Byte identity.** Every (engine, shards, multiplan) cell of the
   matrix produces results identical to ``ExecutionPolicy.serial()``
   under ``backend="processes"`` — the partial-rollup algebra does not
   care which side of a process boundary the partials came from.
2. **Fault injection.** A worker killed mid-shard surfaces as a clean
   :class:`~repro.errors.ExecutionError` (never a raw
   ``BrokenProcessPool``), and the same pool serves the next run after
   respawning its workers.
3. **Generations.** An export is keyed by the table's version: a
   reload re-exports, a retired export refuses new dispatch, and a
   payload from the wrong generation is refused at collection — an
   append racing an in-flight run can never contribute
   mixed-generation partials.
4. **Lifecycle.** Shared-memory segments are unlinked on shutdown, on
   generation retirement, and — via the ``weakref.finalize`` sweep —
   when the parent exits without calling shutdown. Worker attachment
   must not leave resource_tracker noise on stderr (bpo-38119).
5. **Observability.** Worker-recorded spans re-anchor under the
   parent's shard spans, and per-pid task counts land in the
   ``pool.proc_tasks`` gauge.
"""

from __future__ import annotations

import os
import subprocess
import sys
from concurrent.futures import Future
from multiprocessing import shared_memory
from pathlib import Path

import pytest

from repro.concurrency import ScanGroupExecutor
from repro.concurrency.procpool import (
    FAULT_ENV,
    ProcessShardPool,
    ShardJob,
    ShardPayload,
    shutdown_shared_pool,
)
from repro.engine import create_engine
from repro.errors import ExecutionError
from repro.execution import ExecutionPolicy
from repro.sql.parser import parse_query

from tests.conftest import make_calls_table

#: Spawn-context worker processes make this the suite's slowest file;
#: ``-m "not slow"`` gives a quick inner loop without it.
pytestmark = pytest.mark.slow

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

ENGINES = ("rowstore", "vectorstore", "matstore", "sqlite")

#: One unfiltered multi-class group (multiplan-upgradable), one
#: filtered shardable group, and one ORDER BY/LIMIT group that cannot
#: shard — so the process path always coexists with local execution.
_SQL = [
    "SELECT queue, COUNT(*) AS n FROM customer_service GROUP BY queue",
    "SELECT queue, SUM(calls) AS total FROM customer_service "
    "GROUP BY queue",
    "SELECT hour, AVG(duration) AS avg_d FROM customer_service "
    "GROUP BY hour",
    "SELECT repID, MIN(duration) AS lo, MAX(duration) AS hi "
    "FROM customer_service GROUP BY repID",
    "SELECT COUNT(*) AS n FROM customer_service WHERE hour BETWEEN 0 AND 11",
    "SELECT queue, MAX(duration) AS m FROM customer_service "
    "WHERE hour BETWEEN 0 AND 11 GROUP BY queue",
    "SELECT repID, COUNT(*) AS n FROM customer_service "
    "WHERE queue = 'A' GROUP BY repID ORDER BY n DESC LIMIT 3",
]


@pytest.fixture(scope="module", autouse=True)
def _teardown_shared_pool():
    # The identity matrix routes through the module-shared pool;
    # dropping it here keeps later test modules' /dev/shm pristine.
    yield
    shutdown_shared_pool()


def _queries():
    return [parse_query(sql) for sql in _SQL]


def _run(engine_name: str, policy: ExecutionPolicy):
    engine = create_engine(engine_name)
    engine.load_table(make_calls_table())
    try:
        results = engine.execute_batch(_queries(), policy)
        return [(t.result.columns, t.result.rows) for t in results]
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# 1. Byte identity across the process boundary
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("multiplan", [False, True])
@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("backend", ["threads", "processes"])
@pytest.mark.parametrize("engine_name", ENGINES)
def test_byte_identity_matrix(engine_name, backend, shards, multiplan):
    serial = _run(engine_name, ExecutionPolicy.serial())
    policy = ExecutionPolicy(
        workers=2, shards=shards, multiplan=multiplan, backend=backend
    )
    assert _run(engine_name, policy) == serial


def test_process_backend_actually_runs_shards_in_processes():
    engine = create_engine("vectorstore")
    engine.load_table(make_calls_table())
    policy = ExecutionPolicy(workers=2, shards=3, backend="processes")
    executor = ScanGroupExecutor(engine, policy)
    try:
        batch = executor.run(_queries())
        assert batch.stats.proc_shard_scans > 0
        # Remote shard scans still count as shard scans and base scans.
        assert batch.stats.shard_scans >= batch.stats.proc_shard_scans
    finally:
        executor.close()
        engine.close()


def test_non_exporting_engine_degrades_to_threads():
    engine = create_engine("vectorstore")
    engine.load_table(make_calls_table())
    # Instance-level opt-out shadows the class attribute: nothing in
    # the wrapper chain exports, so the backend knob degrades.
    engine.supports_process_shards = False
    policy = ExecutionPolicy(workers=2, shards=3, backend="processes")
    executor = ScanGroupExecutor(engine, policy)
    try:
        batch = executor.run(_queries())
        assert batch.stats.proc_shard_scans == 0
        serial = _run("vectorstore", ExecutionPolicy.serial())
        assert [
            (t.result.columns, t.result.rows) for t in batch.results
        ] == serial
    finally:
        executor.close()
        engine.close()


# ---------------------------------------------------------------------------
# 2. Fault injection: worker death, clean error, pool recovery
# ---------------------------------------------------------------------------


def test_worker_death_is_a_clean_error_and_the_pool_recovers():
    engine = create_engine("vectorstore")
    engine.load_table(make_calls_table())
    serial = _run("vectorstore", ExecutionPolicy.serial())
    policy = ExecutionPolicy(workers=2, shards=2, backend="processes")
    # A private pool keeps the fault blast radius away from the
    # module-shared one. The env var must be set before the pool
    # spawns its workers (lazily, at first submit) — they inherit it.
    os.environ[FAULT_ENV] = "kill:customer_service"
    pool = ProcessShardPool(workers=2)
    executor = ScanGroupExecutor(engine, policy, proc_pool=pool)
    try:
        with pytest.raises(ExecutionError, match="worker died"):
            executor.run(_queries())
        # Recovery: the executor was discarded on failure; the next run
        # respawns workers that inherit the now-clean environment.
        del os.environ[FAULT_ENV]
        batch = executor.run(_queries())
        assert [
            (t.result.columns, t.result.rows) for t in batch.results
        ] == serial
        assert batch.stats.proc_shard_scans > 0
    finally:
        os.environ.pop(FAULT_ENV, None)
        executor.close()
        pool.shutdown()
        engine.close()


def test_worker_death_does_not_leak_segments():
    engine = create_engine("matstore")
    engine.load_table(make_calls_table())
    policy = ExecutionPolicy(workers=2, shards=2, backend="processes")
    os.environ[FAULT_ENV] = "kill"
    pool = ProcessShardPool(workers=2)
    executor = ScanGroupExecutor(engine, policy, proc_pool=pool)
    try:
        with pytest.raises(ExecutionError):
            executor.run(_queries())
        names = pool.segment_names()
        pool.shutdown()
        assert pool.segment_names() == []
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
    finally:
        os.environ.pop(FAULT_ENV, None)
        executor.close()
        pool.shutdown()
        engine.close()


# ---------------------------------------------------------------------------
# 3. Generation safety
# ---------------------------------------------------------------------------


def test_reload_retires_the_old_export_and_reexports():
    engine = create_engine("vectorstore")
    engine.load_table(make_calls_table())
    pool = ProcessShardPool(workers=2)
    try:
        export1 = pool.export_table(engine, "customer_service")
        assert export1 is not None
        segments1 = set(pool.segment_names())
        assert segments1
        # Same generation: reused, not rebuilt.
        assert pool.export_table(engine, "customer_service") is export1
        # A reload moves the table's version; the next export is a new
        # generation and the old segments are gone (pending == 0).
        engine.load_table(make_calls_table(120))
        export2 = pool.export_table(engine, "customer_service")
        assert export2 is not export1
        assert export2.spec.version != export1.spec.version
        segments2 = set(pool.segment_names())
        assert segments2 and segments1.isdisjoint(segments2)
    finally:
        pool.shutdown()
        engine.close()


def test_retired_export_with_in_flight_tasks_unlinks_after_the_last():
    engine = create_engine("vectorstore")
    engine.load_table(make_calls_table())
    pool = ProcessShardPool(workers=2)
    try:
        export1 = pool.export_table(engine, "customer_service")
        # Simulate one dispatched-but-unfinished task, then retire the
        # generation under it: segments must survive until it settles.
        with pool._lock:
            export1.pending += 1
        engine.load_table(make_calls_table(120))
        pool.export_table(engine, "customer_service")
        assert export1.retired
        assert any(
            name in pool.segment_names()
            for seg in export1.segments
            for name in [seg.name]
        )
        pool._task_done(export1)
        assert all(
            seg_name not in pool.segment_names()
            for seg_name in [s.name for s in export1.segments]
        )
        assert export1.segments == []
    finally:
        pool.shutdown()
        engine.close()


def test_submit_refuses_a_retired_export():
    engine = create_engine("vectorstore")
    engine.load_table(make_calls_table())
    pool = ProcessShardPool(workers=2)
    try:
        export1 = pool.export_table(engine, "customer_service")
        engine.load_table(make_calls_table(120))
        pool.export_table(engine, "customer_service")  # retires export1
        job = ShardJob(
            export_id=export1.spec.export_id,
            version=export1.spec.version,
            table="customer_service",
            shard=0,
            start=0,
            stop=10,
            temp="__batchscan_test",
            queries=(),
            predicate=None,
        )
        with pytest.raises(ExecutionError, match="mixed-generation"):
            pool.submit(export1, job)
    finally:
        pool.shutdown()
        engine.close()


def test_collect_refuses_mixed_generation_payloads():
    pool = ProcessShardPool(workers=2)
    try:
        job = ShardJob(
            export_id="u0:customer_service:2",
            version=2,
            table="customer_service",
            shard=0,
            start=0,
            stop=10,
            temp="__batchscan_test",
            queries=(),
            predicate=None,
        )
        stale = ShardPayload(
            export_id="u0:customer_service:1",
            version=1,
            shard=0,
            pid=0,
            partials=[],
            partial_ms=[],
            scan_ms=0.0,
        )
        future: Future = Future()
        future.set_result(stale)
        with pytest.raises(ExecutionError, match="mixed-generation"):
            pool.collect(future, job)
    finally:
        pool.shutdown()


# ---------------------------------------------------------------------------
# 4. Lifecycle: shutdown, parent exit, resource_tracker silence
# ---------------------------------------------------------------------------


def test_shutdown_unlinks_everything_and_is_idempotent():
    engine = create_engine("rowstore")
    engine.load_table(make_calls_table())
    pool = ProcessShardPool(workers=2)
    export = pool.export_table(engine, "customer_service")
    assert export is not None
    names = pool.segment_names()
    assert names
    pool.shutdown()
    pool.shutdown()  # idempotent
    assert pool.segment_names() == []
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
    with pytest.raises(ExecutionError, match="shut down"):
        pool.export_table(engine, "customer_service")
    engine.close()


def _run_child(body: str) -> subprocess.CompletedProcess:
    script = (
        "import sys\n"
        f"sys.path[:0] = [{str(SRC)!r}, {str(ROOT)!r}]\n" + body
    )
    return subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        timeout=180,
    )


def test_parent_exit_without_shutdown_leaves_no_orphan_segments():
    proc = _run_child(
        "from repro.concurrency.procpool import ProcessShardPool\n"
        "from repro.engine import create_engine\n"
        "from tests.conftest import make_calls_table\n"
        "engine = create_engine('vectorstore')\n"
        "engine.load_table(make_calls_table())\n"
        "pool = ProcessShardPool(workers=2)\n"
        "pool.export_table(engine, 'customer_service')\n"
        "print('\\n'.join(pool.segment_names()))\n"
        "# exit WITHOUT shutdown: the finalize sweep must unlink\n"
    )
    assert proc.returncode == 0, proc.stderr
    names = [line for line in proc.stdout.splitlines() if line.strip()]
    assert names, "child exported nothing"
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def test_process_run_leaves_no_resource_tracker_noise():
    # Regression guard for bpo-38119: worker-side attachment must not
    # register parent-owned segments with the (shared) resource
    # tracker — the symptom was KeyError tracebacks on parent unlink.
    sql = _SQL[0]
    proc = _run_child(
        "from repro.concurrency.procpool import shutdown_shared_pool\n"
        "from repro.engine import create_engine\n"
        "from repro.execution import ExecutionPolicy\n"
        "from repro.sql.parser import parse_query\n"
        "from tests.conftest import make_calls_table\n"
        "for name in ('vectorstore', 'rowstore', 'sqlite'):\n"
        "    engine = create_engine(name)\n"
        "    engine.load_table(make_calls_table())\n"
        "    policy = ExecutionPolicy(workers=2, shards=3,"
        " backend='processes')\n"
        f"    engine.execute_batch([parse_query({sql!r})], policy)\n"
        "    engine.close()\n"
        "shutdown_shared_pool()\n"
        "print('CHILD-OK')\n"
    )
    assert proc.returncode == 0, proc.stderr
    assert "CHILD-OK" in proc.stdout
    for marker in ("resource_tracker", "KeyError", "Traceback"):
        assert marker not in proc.stderr, proc.stderr


# ---------------------------------------------------------------------------
# 5. Observability: remote spans and per-pid gauges
# ---------------------------------------------------------------------------


def test_remote_spans_reanchor_under_parent_shard_spans():
    from repro.telemetry import Telemetry, validate_spans

    engine = create_engine("matstore")
    engine.load_table(make_calls_table())
    policy = ExecutionPolicy(workers=2, shards=2, backend="processes")
    telemetry = Telemetry()
    try:
        with telemetry.install():
            engine.execute_batch(_queries(), policy)
    finally:
        engine.close()
    spans = telemetry.tracer.spans()
    assert validate_spans(spans) == []
    by_id = {span.span_id: span for span in spans}
    shard_spans = [
        s
        for s in spans
        if s.name.startswith("shard[")
        and s.attrs.get("backend") == "processes"
    ]
    assert shard_spans, "no process-dispatched shard spans recorded"
    for span in shard_spans:
        assert by_id[span.parent_id].name == "scan_group"
        assert "pid" in span.attrs
    remote = [s for s in spans if s.thread.startswith("pid-")]
    assert remote, "worker-recorded spans were not adopted"
    names = {s.name for s in remote}
    assert "shard_materialize" in names
    for span in remote:
        parent = by_id[span.parent_id]
        assert parent.name.startswith("shard[")
        # Re-anchored into the parent's timeline, inside the shard span.
        assert span.start_ms >= parent.start_ms
        assert span.end_ms is not None


def test_proc_tasks_gauge_counts_per_pid():
    from repro.telemetry import Telemetry

    engine = create_engine("vectorstore")
    engine.load_table(make_calls_table())
    policy = ExecutionPolicy(workers=2, shards=4, backend="processes")
    telemetry = Telemetry()
    try:
        with telemetry.install():
            engine.execute_batch(_queries(), policy)
    finally:
        engine.close()
    snapshot = telemetry.registry.snapshot()
    gauges = {
        key: value
        for key, value in snapshot["gauges"].items()
        if key.startswith("pool.proc_tasks{")
    }
    assert gauges, f"no pool.proc_tasks gauges in {snapshot['gauges']}"
    assert all(value >= 1 for value in gauges.values())
    assert snapshot["counters"].get("batch.proc_shard_scans", 0) > 0
