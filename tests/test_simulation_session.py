"""Tests for workflows, goal generation, and full session simulation."""

import math
import random

import pytest

from repro.dashboard.library import DASHBOARD_NAMES, load_dashboard
from repro.engine.registry import create_engine
from repro.errors import ConfigError
from repro.simulation import (
    SessionConfig,
    SessionSimulator,
    WORKFLOWS,
    WorkflowNotApplicable,
    get_workflow,
)
from repro.simulation.goalgen import (
    DashboardCapabilities,
    generate_goal,
    generate_goal_set,
)
from repro.sql.formatter import format_query
from repro.workload import generate_dataset


@pytest.fixture()
def engines(cs_data):
    measured = create_engine("vectorstore")
    measured.load_table(cs_data)
    reference = create_engine("vectorstore")
    reference.load_table(cs_data)
    return measured, reference


class TestWorkflows:
    def test_three_workflows_registered(self):
        assert set(WORKFLOWS) == {"shneiderman", "battle_heer", "crossfilter"}

    def test_unknown_workflow_raises(self):
        with pytest.raises(ConfigError):
            get_workflow("nope")

    def test_each_workflow_has_three_goals(self, cs_spec):
        for name in WORKFLOWS:
            goals = get_workflow(name).instantiate_for_dashboard(
                cs_spec, random.Random(0)
            )
            assert len(goals) == 3

    def test_myride_incompatibilities_match_paper(self):
        """MyRide supports only Shneiderman (§6.2.3)."""
        spec = load_dashboard("myride")
        assert get_workflow("shneiderman").is_applicable_to_dashboard(spec)
        assert not get_workflow("battle_heer").is_applicable_to_dashboard(spec)
        assert not get_workflow("crossfilter").is_applicable_to_dashboard(spec)

    def test_other_dashboards_support_shneiderman_and_battle_heer(self):
        for name in DASHBOARD_NAMES:
            spec = load_dashboard(name)
            assert get_workflow("shneiderman").is_applicable_to_dashboard(
                spec
            ), name
            if name != "myride":
                assert get_workflow(
                    "battle_heer"
                ).is_applicable_to_dashboard(spec), name


class TestCapabilities:
    def test_customer_service_capabilities(self, cs_spec):
        caps = DashboardCapabilities.from_spec(cs_spec)
        assert "queue" in caps.filterable_categorical
        assert "dayOfWeek" in caps.filterable_categorical
        assert ("count", "calls") in caps.measured_pairs
        assert ("count", "lostCalls") in caps.measured_pairs
        assert "hour" in caps.dimension_quantitative

    def test_goal_key_pool_prefers_displayed(self, cs_spec):
        caps = DashboardCapabilities.from_spec(cs_spec)
        pool = caps.goal_key_pool()
        # dayOfWeek is filterable but never displayed -> excluded.
        assert "dayOfWeek" not in pool
        assert "queue" in pool

    def test_goals_use_dashboard_columns(self, cs_spec):
        for template in (
            "analyzing_spread",
            "measuring_differences",
            "filtering",
            "finding_correlations",
            "identification",
            "temporal_patterns",
        ):
            goal = generate_goal(template, cs_spec, random.Random(1))
            text = format_query(goal.query)
            assert "customer_service" in text

    def test_goal_set_order_preserved(self, cs_spec):
        goals = generate_goal_set(
            ("filtering", "identification"), cs_spec, random.Random(2)
        )
        assert goals[0].template == "filtering"
        assert goals[1].template == "identification"


class TestSessionConfig:
    def test_p_markov_decays(self):
        config = SessionConfig(p_markov_initial=1.0, decay_rate=0.2)
        assert config.p_markov(0) == 1.0
        assert config.p_markov(10) == pytest.approx(math.exp(-2.0))

    def test_novice_slower_decay_than_expert(self):
        novice = SessionConfig.novice()
        expert = SessionConfig.expert()
        assert novice.p_markov(10) > expert.p_markov(10)


class TestSession:
    def run_session(self, cs_spec, cs_data, engines, **config_kwargs):
        measured, reference = engines
        goals = get_workflow("shneiderman").instantiate_for_dashboard(
            cs_spec, random.Random(4)
        )
        simulator = SessionSimulator(
            cs_spec,
            cs_data,
            [g.query for g in goals],
            measured_engine=measured,
            reference_engine=reference,
            config=SessionConfig(seed=1, **config_kwargs),
            workflow_name="shneiderman",
        )
        return simulator.run()

    def test_log_structure(self, cs_spec, cs_data, engines):
        log = self.run_session(cs_spec, cs_data, engines)
        assert log.dashboard == "customer_service"
        assert log.workflow == "shneiderman"
        assert log.records[0].model == "initial"
        assert log.records[0].interaction is None
        assert len(log.records[0].queries) == 5  # one per viz
        assert log.query_count == sum(len(r.queries) for r in log.records)

    def test_oracle_only_session_completes_goals(
        self, cs_spec, cs_data, engines
    ):
        log = self.run_session(
            cs_spec, cs_data, engines, p_markov_initial=0.0
        )
        assert log.goals_completed >= 2

    def test_durations_positive(self, cs_spec, cs_data, engines):
        log = self.run_session(cs_spec, cs_data, engines)
        durations = log.query_durations()
        assert durations
        assert all(d >= 0 for d in durations)
        assert log.average_duration() == pytest.approx(
            sum(durations) / len(durations)
        )

    def test_reproducible_under_seed(self, cs_spec, cs_data, engines):
        a = self.run_session(cs_spec, cs_data, engines)
        b = self.run_session(cs_spec, cs_data, engines)
        assert a.queries() == b.queries()

    def test_max_total_steps_respected(self, cs_spec, cs_data, engines):
        log = self.run_session(
            cs_spec,
            cs_data,
            engines,
            p_markov_initial=1.0,
            decay_rate=0.0,
            run_to_max=True,
            max_total_steps=12,
            max_steps_per_goal=12,
        )
        assert log.interaction_count <= 12

    def test_model_mix_tracks_models(self, cs_spec, cs_data, engines):
        log = self.run_session(cs_spec, cs_data, engines)
        mix = log.model_mix()
        assert sum(mix.values()) == log.interaction_count

    def test_to_rows_flat_format(self, cs_spec, cs_data, engines):
        log = self.run_session(cs_spec, cs_data, engines)
        rows = log.to_rows()
        assert rows
        assert {"step", "interaction", "sql", "rows_returned",
                "duration_ms"} <= set(rows[0])

    def test_empty_goal_list_raises(self, cs_spec, cs_data, engines):
        measured, reference = engines
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            SessionSimulator(
                cs_spec, cs_data, [], measured, reference
            )


class TestCrossDashboardSessions:
    @pytest.mark.parametrize("dashboard", DASHBOARD_NAMES)
    def test_every_dashboard_simulates(self, dashboard):
        spec = load_dashboard(dashboard)
        table = generate_dataset(dashboard, 800, seed=2)
        measured = create_engine("vectorstore")
        measured.load_table(table)
        reference = create_engine("vectorstore")
        reference.load_table(table)
        try:
            goals = get_workflow("shneiderman").instantiate_for_dashboard(
                spec, random.Random(2)
            )
        except WorkflowNotApplicable:
            pytest.skip("workflow not applicable")
        log = SessionSimulator(
            spec,
            table,
            [g.query for g in goals],
            measured_engine=measured,
            reference_engine=reference,
            config=SessionConfig(seed=2, max_total_steps=40),
        ).run()
        assert log.query_count > 0
        assert log.records[0].model == "initial"
