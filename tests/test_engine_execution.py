"""Behavioural tests for query execution, run against every engine.

Each test executes on all four engines and asserts exact results, so
any engine-specific deviation from SQL semantics fails by name.
"""

import pytest

from repro.sql.parser import parse_query

ENGINES = ["rowstore", "vectorstore", "matstore", "sqlite"]


@pytest.fixture(params=ENGINES)
def engine(request, all_engines):
    return all_engines[request.param]


def run(engine, sql):
    return engine.execute(parse_query(sql))


class TestProjection:
    def test_count_star(self, engine):
        result = run(engine, "SELECT COUNT(*) FROM customer_service")
        assert result.rows == [(240,)]

    def test_select_star_schema(self, engine, calls_table):
        result = run(
            engine, "SELECT * FROM customer_service LIMIT 3"
        )
        assert result.columns == calls_table.schema.names
        assert len(result) == 3

    def test_limit_zero(self, engine):
        result = run(engine, "SELECT queue FROM customer_service LIMIT 0")
        assert result.rows == []

    def test_distinct(self, engine):
        result = run(
            engine,
            "SELECT DISTINCT queue FROM customer_service ORDER BY queue",
        )
        assert result.column("queue") == ["A", "B", "C", "D"]

    def test_where_filters(self, engine):
        result = run(
            engine,
            "SELECT COUNT(*) FROM customer_service WHERE queue = 'A'",
        )
        assert result.rows == [(60,)]

    def test_projection_expression(self, engine):
        result = run(
            engine,
            "SELECT hour + 1 FROM customer_service WHERE hour = 5 LIMIT 1",
        )
        assert result.sorted_rows() == [(6,)]


class TestAggregation:
    def test_group_by_counts(self, engine):
        result = run(
            engine,
            "SELECT queue, COUNT(*) AS n FROM customer_service "
            "GROUP BY queue ORDER BY queue",
        )
        assert result.rows == [("A", 60), ("B", 60), ("C", 60), ("D", 60)]

    def test_sum(self, engine):
        result = run(
            engine, "SELECT SUM(abandoned) FROM customer_service"
        )
        assert result.rows[0][0] == 24  # every 10th of 240 rows

    def test_global_aggregate_on_empty_filter(self, engine):
        result = run(
            engine,
            "SELECT COUNT(*), SUM(calls) FROM customer_service "
            "WHERE queue = 'NOPE'",
        )
        # COUNT of empty input is 0; SUM is NULL.
        assert result.rows == [(0, None)]

    def test_group_by_empty_input_has_no_groups(self, engine):
        result = run(
            engine,
            "SELECT queue, COUNT(*) FROM customer_service "
            "WHERE queue = 'NOPE' GROUP BY queue",
        )
        assert result.rows == []

    def test_having(self, engine):
        result = run(
            engine,
            "SELECT queue, SUM(lostCalls) AS lost FROM customer_service "
            "GROUP BY queue HAVING SUM(lostCalls) > 0 ORDER BY queue",
        )
        # lostCalls hits rows i % 20 == 0, i.e. queue A (i%4==0) only.
        assert result.rows == [("A", 12)]

    def test_avg(self, engine):
        result = run(
            engine,
            "SELECT AVG(calls) FROM customer_service",
        )
        assert result.sorted_rows(precision=6) == [(1,)]

    def test_count_distinct(self, engine):
        result = run(
            engine,
            "SELECT COUNT(DISTINCT repID) FROM customer_service",
        )
        assert result.rows == [(3,)]

    def test_min_max(self, engine):
        result = run(
            engine,
            "SELECT MIN(hour), MAX(hour) FROM customer_service",
        )
        assert result.rows == [(0, 23)]

    def test_count_column_skips_nulls(self, engine):
        result = run(
            engine, "SELECT COUNT(note) FROM customer_service"
        )
        # note is NULL for i % 11 == 0 -> 22 of 240 rows.
        assert result.rows == [(240 - 22,)]

    def test_group_by_nullable_column(self, engine):
        result = run(
            engine,
            "SELECT note, COUNT(*) FROM customer_service GROUP BY note",
        )
        groups = dict(result.rows)
        assert groups[None] == 22
        assert sum(groups.values()) == 240

    def test_arithmetic_over_aggregates(self, engine):
        result = run(
            engine,
            "SELECT SUM(abandoned) * 10 FROM customer_service",
        )
        assert result.sorted_rows(precision=6) == [(240,)]

    def test_group_by_scalar_function(self, engine):
        result = run(
            engine,
            "SELECT BIN(hour, 12), COUNT(*) FROM customer_service "
            "GROUP BY BIN(hour, 12) ORDER BY BIN(hour, 12)",
        )
        assert result.sorted_rows(precision=6) == [(0, 120), (12, 120)]

    def test_temporal_group(self, engine):
        result = run(
            engine,
            "SELECT YEAR(ts), COUNT(*) FROM customer_service GROUP BY YEAR(ts)",
        )
        assert result.sorted_rows(precision=6) == [(2024, 240)]


class TestOrderingAndLimit:
    def test_order_by_aggregate_alias(self, engine):
        result = run(
            engine,
            "SELECT repID, COUNT(*) AS n FROM customer_service "
            "GROUP BY repID ORDER BY n DESC, repID LIMIT 1",
        )
        assert result.rows == [("rep-1", 80)]

    def test_order_by_two_keys(self, engine):
        result = run(
            engine,
            "SELECT queue, hour FROM customer_service "
            "WHERE hour < 2 ORDER BY hour DESC, queue ASC LIMIT 3",
        )
        assert result.rows[0][1] == 1
        queues = [r[0] for r in result.rows]
        assert queues == sorted(queues)

    def test_limit_after_order(self, engine):
        result = run(
            engine,
            "SELECT duration FROM customer_service "
            "ORDER BY duration DESC LIMIT 2",
        )
        values = result.column("duration")
        assert values[0] >= values[1]


class TestPredicates:
    def test_in_filter(self, engine):
        result = run(
            engine,
            "SELECT COUNT(*) FROM customer_service WHERE queue IN ('A', 'B')",
        )
        assert result.rows == [(120,)]

    def test_not_in_filter(self, engine):
        result = run(
            engine,
            "SELECT COUNT(*) FROM customer_service "
            "WHERE queue NOT IN ('A', 'B')",
        )
        assert result.rows == [(120,)]

    def test_between(self, engine):
        result = run(
            engine,
            "SELECT COUNT(*) FROM customer_service WHERE hour BETWEEN 0 AND 11",
        )
        assert result.rows == [(120,)]

    def test_like(self, engine):
        result = run(
            engine,
            "SELECT COUNT(*) FROM customer_service WHERE note LIKE 'n1%'",
        )
        assert result.rows[0][0] > 0

    def test_null_comparison_excludes(self, engine):
        kept = run(
            engine,
            "SELECT COUNT(*) FROM customer_service WHERE note = 'n1'",
        ).rows[0][0]
        total = run(
            engine,
            "SELECT COUNT(*) FROM customer_service",
        ).rows[0][0]
        nulls = run(
            engine,
            "SELECT COUNT(*) FROM customer_service WHERE note IS NULL",
        ).rows[0][0]
        not_n1 = run(
            engine,
            "SELECT COUNT(*) FROM customer_service WHERE note != 'n1'",
        ).rows[0][0]
        # NULL rows satisfy neither = nor !=.
        assert kept + not_n1 + nulls == total

    def test_or_combination(self, engine):
        result = run(
            engine,
            "SELECT COUNT(*) FROM customer_service "
            "WHERE queue = 'A' OR queue = 'B'",
        )
        assert result.rows == [(120,)]

    def test_not(self, engine):
        result = run(
            engine,
            "SELECT COUNT(*) FROM customer_service WHERE NOT queue = 'A'",
        )
        assert result.rows == [(180,)]
