"""Join execution: correctness on all four engines, SQLite as referee.

Includes a hypothesis differential test generating random star-shaped
data and random join queries, asserting that every pure-Python engine
matches SQLite exactly.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.engine import available_engines, create_engine
from repro.engine.join import (
    expand_star_items,
    iter_joined_rows,
    join_scopes,
    joined_output_names,
    resolve_joins,
    strip_join_clauses,
)
from repro.engine.table import Database, Table
from repro.errors import SchemaError
from repro.sql.parser import parse_query

ENGINES = available_engines()


@pytest.fixture()
def star_tables():
    fact = Table.from_rows(
        "fact",
        [
            {"id": 1, "branch_id": 10, "day_id": 1, "amount": 5.0},
            {"id": 2, "branch_id": 20, "day_id": 2, "amount": 7.0},
            {"id": 3, "branch_id": 10, "day_id": 1, "amount": 2.0},
            {"id": 4, "branch_id": 99, "day_id": 3, "amount": 1.0},
            {"id": 5, "branch_id": None, "day_id": 1, "amount": 4.0},
        ],
    )
    branch = Table.from_rows(
        "branch",
        [
            {"branch_id": 10, "region": "east"},
            {"branch_id": 20, "region": "west"},
        ],
    )
    day = Table.from_rows(
        "day",
        [
            {"day_id": 1, "dow": "mon"},
            {"day_id": 2, "dow": "tue"},
            {"day_id": 3, "dow": "wed"},
        ],
    )
    return fact, branch, day


def _loaded(name, tables):
    engine = create_engine(name)
    for table in tables:
        engine.load_table(table)
    return engine


def _run_all(tables, sql):
    query = parse_query(sql)
    results = {}
    for name in ENGINES:
        engine = _loaded(name, tables)
        results[name] = engine.execute(query)
        engine.close()
    return results


def _assert_agree(results):
    reference = results["sqlite"]
    for name, result in results.items():
        assert result.sorted_rows() == reference.sorted_rows(), name
        assert [c.lower() for c in result.columns] == [
            c.lower() for c in reference.columns
        ], name


class TestInnerJoin:
    def test_grouped_aggregate_over_join(self, star_tables):
        results = _run_all(
            star_tables,
            "SELECT region, SUM(amount) AS total FROM fact "
            "JOIN branch ON fact.branch_id = branch.branch_id "
            "GROUP BY region ORDER BY region",
        )
        _assert_agree(results)
        assert results["sqlite"].rows == [("east", 7.0), ("west", 7.0)]

    def test_unmatched_fact_rows_dropped(self, star_tables):
        results = _run_all(
            star_tables,
            "SELECT id FROM fact JOIN branch "
            "ON fact.branch_id = branch.branch_id ORDER BY id",
        )
        _assert_agree(results)
        assert results["sqlite"].column("id") == [1, 2, 3]

    def test_null_keys_never_match(self, star_tables):
        results = _run_all(
            star_tables,
            "SELECT COUNT(*) AS n FROM fact JOIN branch "
            "ON fact.branch_id = branch.branch_id",
        )
        _assert_agree(results)
        assert results["sqlite"].rows == [(3,)]

    def test_two_joins(self, star_tables):
        results = _run_all(
            star_tables,
            "SELECT dow, region, SUM(amount) AS t FROM fact "
            "JOIN branch ON fact.branch_id = branch.branch_id "
            "JOIN day ON fact.day_id = day.day_id "
            "GROUP BY dow, region ORDER BY dow, region",
        )
        _assert_agree(results)

    def test_duplicate_right_keys_multiply_rows(self):
        fact = Table.from_rows("fact", [{"k": 1, "v": 10}])
        dup = Table.from_rows(
            "dup", [{"k": 1, "tag": "a"}, {"k": 1, "tag": "b"}]
        )
        results = _run_all(
            (fact, dup),
            "SELECT v, tag FROM fact JOIN dup ON fact.k = dup.k ORDER BY tag",
        )
        _assert_agree(results)
        assert len(results["sqlite"]) == 2

    def test_where_on_dimension_column(self, star_tables):
        results = _run_all(
            star_tables,
            "SELECT id FROM fact JOIN branch "
            "ON fact.branch_id = branch.branch_id "
            "WHERE region = 'east' ORDER BY id",
        )
        _assert_agree(results)
        assert results["sqlite"].column("id") == [1, 3]


class TestLeftJoin:
    def test_unmatched_rows_padded_with_null(self, star_tables):
        results = _run_all(
            star_tables,
            "SELECT id, region FROM fact LEFT JOIN branch "
            "ON fact.branch_id = branch.branch_id ORDER BY id",
        )
        _assert_agree(results)
        by_id = dict(results["sqlite"].rows)
        assert by_id[4] is None and by_id[5] is None
        assert by_id[1] == "east"

    def test_left_join_count_keeps_all_rows(self, star_tables):
        results = _run_all(
            star_tables,
            "SELECT COUNT(*) AS n FROM fact LEFT JOIN branch "
            "ON fact.branch_id = branch.branch_id",
        )
        _assert_agree(results)
        assert results["sqlite"].rows == [(5,)]

    def test_is_null_filter_finds_unmatched(self, star_tables):
        results = _run_all(
            star_tables,
            "SELECT id FROM fact LEFT JOIN branch "
            "ON fact.branch_id = branch.branch_id "
            "WHERE region IS NULL ORDER BY id",
        )
        _assert_agree(results)
        assert results["sqlite"].column("id") == [4, 5]


class TestSelectStarOverJoin:
    def test_star_deduplicates_shared_key(self, star_tables):
        results = _run_all(
            star_tables,
            "SELECT * FROM fact JOIN branch "
            "ON fact.branch_id = branch.branch_id ORDER BY id",
        )
        _assert_agree(results)
        assert results["sqlite"].columns.count("branch_id") == 1

    def test_star_keeps_differently_named_key(self):
        fact = Table.from_rows("fact", [{"fk": 1, "v": 5}])
        dim = Table.from_rows("dim", [{"pk": 1, "w": 9}])
        results = _run_all(
            (fact, dim), "SELECT * FROM fact JOIN dim ON fact.fk = dim.pk"
        )
        _assert_agree(results)
        assert set(results["sqlite"].columns) == {"fk", "v", "pk", "w"}


class TestJoinValidation:
    def test_column_collision_rejected(self):
        fact = Table.from_rows("fact", [{"k": 1, "v": 5}])
        dim = Table.from_rows("dim", [{"k": 1, "v": 9}])  # v collides
        engine = create_engine("vectorstore")
        engine.load_table(fact)
        engine.load_table(dim)
        with pytest.raises(SchemaError, match="duplicate column"):
            engine.execute(
                parse_query("SELECT v FROM fact JOIN dim ON fact.k = dim.k")
            )

    def test_unknown_qualifier_rejected(self, star_tables):
        engine = _loaded("rowstore", star_tables)
        with pytest.raises(SchemaError, match="unknown table"):
            engine.execute(
                parse_query(
                    "SELECT nosuch.x FROM fact JOIN branch "
                    "ON fact.branch_id = branch.branch_id"
                )
            )

    def test_right_key_must_belong_to_joined_table(self, star_tables):
        engine = _loaded("matstore", star_tables)
        with pytest.raises(SchemaError):
            engine.execute(
                parse_query(
                    "SELECT id FROM fact JOIN branch "
                    "ON fact.branch_id = day.day_id"
                )
            )

    def test_missing_right_key_column(self, star_tables):
        engine = _loaded("vectorstore", star_tables)
        with pytest.raises(SchemaError):
            engine.execute(
                parse_query(
                    "SELECT id FROM fact JOIN branch ON fact.branch_id = "
                    "branch.nosuch"
                )
            )


class TestJoinHelpers:
    def test_joined_output_names_order(self, star_tables):
        fact, branch, day = star_tables
        db = Database([fact, branch, day])
        query = parse_query(
            "SELECT id FROM fact JOIN branch "
            "ON fact.branch_id = branch.branch_id"
        )
        names = joined_output_names(db, query)
        assert names == ["id", "branch_id", "day_id", "amount", "region"]

    def test_iter_joined_rows_matches_resolve_joins(self, star_tables):
        fact, branch, day = star_tables
        db = Database([fact, branch, day])
        query = parse_query(
            "SELECT id FROM fact LEFT JOIN branch "
            "ON fact.branch_id = branch.branch_id"
        )
        streamed = list(iter_joined_rows(db, query))
        combined, _ = resolve_joins(db, query)
        materialized = list(combined.iter_rows())
        assert sorted(streamed, key=lambda r: r["id"]) == sorted(
            materialized, key=lambda r: r["id"]
        )

    def test_strip_join_clauses_removes_qualifiers(self, star_tables):
        fact, branch, day = star_tables
        db = Database([fact, branch, day])
        query = parse_query(
            "SELECT fact.id FROM fact JOIN branch "
            "ON fact.branch_id = branch.branch_id WHERE branch.region = 'east'"
        )
        stripped = strip_join_clauses(query, join_scopes(db, query))
        assert stripped.joins == ()
        assert "fact." not in str(stripped)
        assert "branch." not in str(stripped)

    def test_expand_star_items_aliases_every_column(self, star_tables):
        fact, branch, day = star_tables
        db = Database([fact, branch, day])
        query = parse_query(
            "SELECT * FROM fact JOIN branch "
            "ON fact.branch_id = branch.branch_id"
        )
        items = expand_star_items(db, query)
        assert [i.alias for i in items] == joined_output_names(db, query)

    def test_resolve_joins_requires_joins(self, star_tables):
        fact, branch, day = star_tables
        db = Database([fact, branch, day])
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            resolve_joins(db, parse_query("SELECT id FROM fact"))


# ---------------------------------------------------------------------------
# Differential property test: random star data, every engine vs SQLite
# ---------------------------------------------------------------------------

_REGIONS = ["east", "west", "north", None]


@st.composite
def _star_case(draw):
    num_dim = draw(st.integers(min_value=1, max_value=4))
    dim_rows = [
        {"k": i, "label": draw(st.sampled_from(_REGIONS))}
        for i in range(num_dim)
    ]
    num_fact = draw(st.integers(min_value=0, max_value=12))
    fact_rows = [
        {
            "id": i,
            "k": draw(
                st.one_of(
                    st.integers(min_value=0, max_value=num_dim + 1),
                    st.none(),
                )
            ),
            "v": draw(st.integers(min_value=-5, max_value=5)),
        }
        for i in range(num_fact)
    ]
    kind = draw(st.sampled_from(["JOIN", "LEFT JOIN"]))
    shape = draw(st.sampled_from(["group", "project", "filter"]))
    return dim_rows, fact_rows, kind, shape


@given(_star_case())
@settings(max_examples=60, deadline=None)
def test_engines_agree_with_sqlite_on_random_joins(case):
    dim_rows, fact_rows, kind, shape = case
    if not fact_rows:
        fact_rows = [{"id": 0, "k": None, "v": 0}]
    fact = Table.from_rows("fact", fact_rows)
    dim = Table.from_rows("dim", dim_rows)
    if shape == "group":
        sql = (
            f"SELECT label, COUNT(*) AS n, SUM(v) AS s FROM fact "
            f"{kind} dim ON fact.k = dim.k GROUP BY label"
        )
    elif shape == "project":
        sql = (
            f"SELECT id, label, v FROM fact {kind} dim ON fact.k = dim.k "
            f"ORDER BY id"
        )
    else:
        sql = (
            f"SELECT id FROM fact {kind} dim ON fact.k = dim.k "
            f"WHERE v >= 0 ORDER BY id"
        )
    results = _run_all((fact, dim), sql)
    _assert_agree(results)


class TestEquivalenceOverJoins:
    """The goal-completion suite must handle join queries gracefully."""

    @pytest.fixture()
    def suite(self, star_tables):
        from repro.equivalence import EquivalenceSuite

        engine = _loaded("vectorstore", star_tables)
        return EquivalenceSuite(engine)

    def test_identical_join_queries_equivalent(self, suite):
        sql = (
            "SELECT region, COUNT(*) FROM fact JOIN branch "
            "ON fact.branch_id = branch.branch_id GROUP BY region"
        )
        verdict = suite.equivalent(parse_query(sql), parse_query(sql))
        assert verdict.equivalent

    def test_different_aggregates_not_equivalent(self, suite):
        left = parse_query(
            "SELECT region, SUM(amount) FROM fact JOIN branch "
            "ON fact.branch_id = branch.branch_id GROUP BY region"
        )
        right = parse_query(
            "SELECT region, COUNT(*) FROM fact JOIN branch "
            "ON fact.branch_id = branch.branch_id GROUP BY region"
        )
        assert not suite.equivalent(left, right).equivalent

    def test_inner_vs_left_join_not_equivalent(self, suite):
        inner = parse_query(
            "SELECT id, region FROM fact JOIN branch "
            "ON fact.branch_id = branch.branch_id"
        )
        left = parse_query(
            "SELECT id, region FROM fact LEFT JOIN branch "
            "ON fact.branch_id = branch.branch_id"
        )
        # The LEFT join returns strictly more rows here (unmatched facts).
        assert not suite.equivalent(left, inner).equivalent
