"""Unit tests for SQL formatting and text normalization."""

import datetime as dt

import pytest

from repro.sql.ast import BinaryOp, Column, Literal
from repro.sql.formatter import (
    format_expression,
    format_literal,
    format_query,
    normalize_sql,
)
from repro.sql.parser import parse_expression, parse_query


class TestFormatLiteral:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, "NULL"),
            (True, "TRUE"),
            (False, "FALSE"),
            (5, "5"),
            (2.5, "2.5"),
            ("x", "'x'"),
            ("it's", "'it''s'"),
            (dt.date(2024, 3, 1), "'2024-03-01'"),
            (dt.datetime(2024, 3, 1, 12, 30), "'2024-03-01 12:30:00'"),
        ],
    )
    def test_values(self, value, expected):
        assert format_literal(value) == expected


class TestFormatQuery:
    def test_full_clause_order(self):
        text = (
            "SELECT queue, COUNT(*) AS n FROM cs WHERE hour > 1 "
            "GROUP BY queue HAVING COUNT(*) > 2 ORDER BY n DESC LIMIT 3"
        )
        assert format_query(parse_query(text)) == text

    def test_distinct(self):
        assert format_query(parse_query("SELECT DISTINCT a FROM t")) == (
            "SELECT DISTINCT a FROM t"
        )

    def test_table_alias(self):
        assert "FROM t AS x" in format_query(parse_query("SELECT a FROM t x"))

    def test_qualified_column(self):
        assert "t.a" in format_query(parse_query("SELECT t.a FROM t"))


class TestFormatExpression:
    def test_no_redundant_parens_for_and_chain(self):
        expr = parse_expression("a = 1 AND b = 2 AND c = 3")
        assert format_expression(expr) == "a = 1 AND b = 2 AND c = 3"

    def test_or_inside_and_is_parenthesized(self):
        expr = parse_expression("(a = 1 OR b = 2) AND c = 3")
        text = format_expression(expr)
        assert text.startswith("(")
        assert parse_expression(text) == expr

    def test_arithmetic_precedence_preserved(self):
        expr = parse_expression("(a + b) * c")
        text = format_expression(expr)
        assert parse_expression(text) == expr

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert format_expression(expr) == "NOT a = 1"

    def test_in_list(self):
        expr = parse_expression("q IN ('A', 'B')")
        assert format_expression(expr) == "q IN ('A', 'B')"

    def test_between(self):
        expr = parse_expression("h BETWEEN 1 AND 5")
        assert format_expression(expr) == "h BETWEEN 1 AND 5"

    def test_negative_literal(self):
        expr = BinaryOp(">", Column("a"), Literal(-3))
        assert format_expression(expr) == "a > -3"


class TestRoundTrip:
    QUERIES = [
        "SELECT * FROM t",
        "SELECT a, b AS bee FROM t WHERE a != 2",
        "SELECT COUNT(DISTINCT a) FROM t",
        "SELECT q, SUM(x) AS s FROM t WHERE q NOT IN ('A') GROUP BY q",
        "SELECT a FROM t WHERE note IS NOT NULL ORDER BY a DESC LIMIT 1",
        "SELECT BIN(x, 5), COUNT(*) FROM t GROUP BY BIN(x, 5)",
        "SELECT a FROM t WHERE name LIKE 'c%' AND h BETWEEN 2 AND 4",
        "SELECT a FROM t WHERE NOT (a = 1 OR b = 2)",
        "SELECT HOUR(ts), AVG(x) FROM t GROUP BY HOUR(ts)",
        "SELECT a + b * c - 1 FROM t",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_parse_format_parse_fixpoint(self, text):
        query = parse_query(text)
        formatted = format_query(query)
        assert parse_query(formatted) == query


class TestNormalizeSql:
    def test_collapses_whitespace(self):
        assert normalize_sql("SELECT   a\n FROM  t") == "SELECT A FROM T"

    def test_uppercases_outside_strings(self):
        assert normalize_sql("select a from t") == "SELECT A FROM T"

    def test_preserves_string_literals(self):
        normalized = normalize_sql("SELECT a FROM t WHERE q = 'Ab c'")
        assert "'Ab c'" in normalized

    def test_strips_spaces_around_punctuation(self):
        assert normalize_sql("f( a , b )") == "F(A,B)"

    def test_strips_spaces_around_comparisons(self):
        assert normalize_sql("a  =  1") == "A=1"

    def test_equal_queries_normalize_identically(self):
        a = normalize_sql("SELECT a,b FROM t WHERE x=1")
        b = normalize_sql("select  a , b  from t where x = 1")
        assert a == b
