"""Unit tests for the dashboard specification language."""

import pytest

from repro.dashboard.spec import (
    ColumnSpec,
    DashboardSpec,
    DatabaseSpec,
    DimensionSpec,
    InterfaceSpec,
    LinkSpec,
    MeasureSpec,
    VisualizationSpec,
    WidgetSpec,
)
from repro.errors import SpecificationError


def minimal_database():
    return DatabaseSpec(
        table="t",
        columns=(
            ColumnSpec("q", "string"),
            ColumnSpec("x", "float"),
            ColumnSpec("d", "date"),
        ),
    )


def minimal_viz(viz_id="v1"):
    return VisualizationSpec(
        id=viz_id,
        type="bar",
        dimensions=(DimensionSpec("q"),),
        measures=(MeasureSpec("sum", "x"),),
    )


class TestColumnSpec:
    def test_valid_types(self):
        for name in ("integer", "float", "string", "boolean", "date",
                     "timestamp"):
            ColumnSpec("c", name)

    def test_invalid_type_raises(self):
        with pytest.raises(SpecificationError):
            ColumnSpec("c", "varchar")

    def test_dtype_mapping(self):
        from repro.engine.types import DataType

        assert ColumnSpec("c", "float").dtype is DataType.FLOAT


class TestDatabaseSpec:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SpecificationError):
            DatabaseSpec("t", (ColumnSpec("a", "string"),) * 2)

    def test_schema_conversion(self):
        schema = minimal_database().schema()
        assert schema.names == ["q", "x", "d"]

    def test_unknown_column_raises(self):
        with pytest.raises(SpecificationError):
            minimal_database().column("zzz")


class TestVisualizationSpec:
    def test_unknown_type_rejected(self):
        with pytest.raises(SpecificationError):
            VisualizationSpec(id="v", type="hologram",
                              dimensions=(DimensionSpec("q"),))

    def test_empty_viz_rejected(self):
        with pytest.raises(SpecificationError):
            VisualizationSpec(id="v", type="bar")

    def test_measure_agg_validated(self):
        with pytest.raises(SpecificationError):
            MeasureSpec("median", "x")

    def test_count_star_measure(self):
        measure = MeasureSpec("count", None)
        assert measure.column is None


class TestWidgetSpec:
    def test_unknown_type_rejected(self):
        with pytest.raises(SpecificationError):
            WidgetSpec(id="w", type="knob", column="q", targets=("v1",))

    def test_no_targets_rejected(self):
        with pytest.raises(SpecificationError):
            WidgetSpec(id="w", type="checkbox", column="q", targets=())

    def test_categorical_vs_range(self):
        checkbox = WidgetSpec(id="w", type="checkbox", column="q",
                              targets=("v1",))
        slider = WidgetSpec(id="s", type="slider", column="x",
                            targets=("v1",))
        assert checkbox.is_categorical and not checkbox.is_range
        assert slider.is_range and not slider.is_categorical


class TestDashboardValidation:
    def build(self, **overrides):
        params = dict(
            name="d",
            dashboard_type="test",
            database=minimal_database(),
            interface=InterfaceSpec(
                visualizations=(minimal_viz(),),
                widgets=(
                    WidgetSpec(id="w1", type="checkbox", column="q",
                               targets=("v1",)),
                ),
            ),
        )
        params.update(overrides)
        return DashboardSpec(**params)

    def test_valid_spec_builds(self):
        spec = self.build()
        assert spec.num_visualizations == 1
        assert spec.num_widgets == 1

    def test_viz_with_unknown_column_rejected(self):
        viz = VisualizationSpec(
            id="v1", type="bar",
            dimensions=(DimensionSpec("missing"),),
            measures=(MeasureSpec("sum", "x"),),
        )
        with pytest.raises(SpecificationError):
            self.build(interface=InterfaceSpec(visualizations=(viz,)))

    def test_widget_with_unknown_column_rejected(self):
        interface = InterfaceSpec(
            visualizations=(minimal_viz(),),
            widgets=(
                WidgetSpec(id="w", type="checkbox", column="missing",
                           targets=("v1",)),
            ),
        )
        with pytest.raises(SpecificationError):
            self.build(interface=interface)

    def test_widget_with_unknown_target_rejected(self):
        interface = InterfaceSpec(
            visualizations=(minimal_viz(),),
            widgets=(
                WidgetSpec(id="w", type="checkbox", column="q",
                           targets=("ghost",)),
            ),
        )
        with pytest.raises(SpecificationError):
            self.build(interface=interface)

    def test_link_with_unknown_endpoint_rejected(self):
        interface = InterfaceSpec(
            visualizations=(minimal_viz(),),
            links=(LinkSpec("v1", "ghost"),),
        )
        with pytest.raises(SpecificationError):
            self.build(interface=interface)

    def test_duplicate_component_ids_rejected(self):
        with pytest.raises(SpecificationError):
            InterfaceSpec(
                visualizations=(minimal_viz("same"),),
                widgets=(
                    WidgetSpec(id="same", type="checkbox", column="q",
                               targets=("same",)),
                ),
            )

    def test_used_columns(self):
        spec = self.build()
        assert spec.used_columns() == {"q", "x"}


class TestSerialization:
    def test_json_roundtrip(self, cs_spec):
        clone = DashboardSpec.from_json(cs_spec.to_json())
        assert clone == cs_spec

    def test_dict_roundtrip_all_library_dashboards(self):
        from repro.dashboard.library import all_dashboards

        for spec in all_dashboards().values():
            assert DashboardSpec.from_dict(spec.to_dict()) == spec

    def test_json_is_plain_data(self, cs_spec):
        import json

        data = json.loads(cs_spec.to_json())
        assert data["name"] == "customer_service"
        assert isinstance(data["interface"]["visualizations"], list)
