"""Generator unit tests: schemas, data, intents, augmentation passes."""

import random

import pytest

from repro.dashboard.spec import DashboardSpec
from repro.engine import create_engine
from repro.errors import ConfigError
from repro.simulation.goalgen import generate_goal_set
from repro.sql.parser import parse_query
from repro.workload.normalize import load_star, normalize_star, reassembly_query
from repro.workloadgen import (
    PRESET_NAMES,
    SCHEMA_NAMES,
    FieldSpec,
    WorkloadSchema,
    category,
    generate_dashboard,
    generate_dashboards,
    generate_preset,
    generate_table,
    identifier,
    measure,
    scale_cardinality,
    star_dimensions,
    sweep_filter_selectivity,
    widen_group_by,
    workload_schema,
)

# -- schema library ----------------------------------------------------------


def test_builtin_schemas_carry_all_roles():
    assert len(SCHEMA_NAMES) >= 3
    for name in SCHEMA_NAMES:
        schema = workload_schema(name)
        assert schema.name == name
        assert schema.by_role("measure")
        assert schema.by_role("category")
        assert schema.by_role("timestamp")
        assert schema.by_role("identifier")
        # Engine schema and database spec agree column for column.
        engine_schema = schema.engine_schema()
        db = schema.database_spec()
        assert db.column_names == engine_schema.names
        assert db.schema().names == engine_schema.names


def test_schema_validation_errors():
    with pytest.raises(ConfigError, match="unknown role"):
        FieldSpec("x", "metric")
    with pytest.raises(ConfigError, match="low < high"):
        measure("m", low=5, high=5)
    with pytest.raises(ConfigError, match="not an\\s+identifier"):
        WorkloadSchema(
            "bad",
            (
                category("a"),
                category("b", derived_from="a"),
                measure("m"),
            ),
        )
    with pytest.raises(ConfigError, match="unknown workload schema"):
        workload_schema("no_such_schema")
    with pytest.raises(ConfigError, match="unknown field"):
        workload_schema("retail_sales").field("nope")


# -- data generation ---------------------------------------------------------


def test_generate_table_is_seed_deterministic():
    schema = workload_schema("web_analytics")
    first = generate_table(schema, 300, seed=7)
    second = generate_table(schema, 300, seed=7)
    for name in schema.engine_schema().names:
        assert first.column(name) == second.column(name)
    other = generate_table(schema, 300, seed=8)
    assert any(
        first.column(f.name) != other.column(f.name)
        for f in schema.fields
    )


def test_float_measures_are_dyadic():
    schema = workload_schema("fleet_telemetry")
    table = generate_table(schema, 400, seed=0)
    for field in schema.by_role("measure"):
        values = table.column(field.name)
        if field.integer:
            assert all(isinstance(v, int) for v in values)
        else:
            # Quarter grid: 4*v is integral, so float SUMs re-associate
            # exactly under sharding/multiplan.
            assert all(float(v * 4).is_integer() for v in values)


def test_derived_categories_are_functionally_dependent():
    schema = workload_schema("retail_sales")
    table = generate_table(schema, 500, seed=3)
    keys = table.column("store_id")
    for derived in ("region", "banner"):
        mapping: dict[object, object] = {}
        for key, value in zip(keys, table.column(derived)):
            assert mapping.setdefault(key, value) == value


def test_skew_concentrates_mass_on_first_member():
    schema = workload_schema("web_analytics")
    table = generate_table(schema, 2000, seed=1)
    pages = table.column("page")
    top_share = pages.count("page_0000") / len(pages)
    cardinality = schema.field("page").cardinality
    assert top_share > 2.0 / cardinality  # far above the uniform share


# -- intent generation -------------------------------------------------------


def test_generator_produces_100_distinct_valid_dashboards():
    distinct = set()
    for name in SCHEMA_NAMES:
        schema = workload_schema(name)
        for spec in generate_dashboards(schema, 40, seed=0):
            spec.validate()
            reloaded = DashboardSpec.from_json(spec.to_json())
            assert reloaded == spec
            distinct.add(spec.to_json())
    assert len(distinct) >= 100


def test_dashboard_generation_is_deterministic():
    schema = workload_schema("fleet_telemetry")
    assert (
        generate_dashboard(schema, index=4, seed=11).to_json()
        == generate_dashboard(schema, index=4, seed=11).to_json()
    )
    assert (
        generate_dashboard(schema, index=4, seed=11).name
        != generate_dashboard(schema, index=5, seed=11).name
    )


def test_anchor_components_always_present():
    for name in SCHEMA_NAMES:
        schema = workload_schema(name)
        for index in range(5):
            spec = generate_dashboard(schema, index=index, seed=2)
            anchor = spec.interface.visualization("v_anchor")
            total = spec.interface.visualization("v_total")
            widget = spec.interface.widget("w_anchor")
            assert anchor.selectable and anchor.dimensions
            assert not total.dimensions and not total.selectable
            assert anchor.measures == total.measures
            assert widget.column == anchor.dimensions[0].column
            assert set(widget.targets) == {
                v.id for v in spec.interface.visualizations
            }


def test_goalgen_filtering_template_always_instantiates():
    for name in SCHEMA_NAMES:
        schema = workload_schema(name)
        for index in (0, 3, 9):
            spec = generate_dashboard(schema, index=index, seed=0)
            goals = generate_goal_set(
                ["filtering"], spec, random.Random(index)
            )
            assert len(goals) == 1 and goals[0].query is not None
    for preset in PRESET_NAMES:
        workload = generate_preset(preset, "retail_sales", seed=0)
        goals = generate_goal_set(
            ["filtering"], workload.spec, random.Random(0)
        )
        assert goals[0].query is not None


# -- augmentation passes -----------------------------------------------------


def test_scale_cardinality():
    schema = workload_schema("web_analytics")
    scaled = scale_cardinality(schema, 4.0, roles=("identifier",))
    assert (
        scaled.field("session_id").cardinality
        == 4 * schema.field("session_id").cardinality
    )
    assert (
        scaled.field("page").cardinality == schema.field("page").cardinality
    )
    with pytest.raises(ConfigError, match="factor"):
        scale_cardinality(schema, 0)


def test_widen_group_by_adds_one_chart_per_column():
    schema = workload_schema("retail_sales")
    base = generate_dashboard(schema, index=0, seed=0)
    wide = widen_group_by(base, schema)
    key_columns = {
        f.name
        for f in schema.fields
        if f.role in ("category", "identifier")
    }
    wide.validate()
    grouped = {
        d.column
        for v in wide.interface.visualizations
        for d in v.dimensions
        if d.bin is None
    }
    assert key_columns <= grouped
    assert wide.num_visualizations >= base.num_visualizations + len(
        key_columns
    ) - 2  # anchor/breakdown charts may already cover some columns


def test_sweep_filter_selectivity():
    schema = workload_schema("web_analytics")
    base = generate_dashboard(schema, index=0, seed=0)
    column = base.interface.widget("w_anchor").column
    cardinality = schema.field(column).cardinality
    table = generate_table(schema, 300, seed=0)
    emitted = set(table.distinct_values(column))
    variants = dict(
        sweep_filter_selectivity(
            base, schema, column, fractions=(1.0, 0.5, 0.0)
        )
    )
    assert set(variants) == {1.0, 0.5, 0.0}
    for fraction, spec in variants.items():
        spec.validate()
        options = spec.interface.widget("w_anchor").options
        if fraction == 0.0:
            # The absent member plus one real member ("all selected"
            # would be interpreted by the widget runtime as no filter).
            assert len(options) == 2 and options[0] not in emitted
        else:
            assert len(options) == max(
                1, int(cardinality * fraction + 0.999999)
            )
    with pytest.raises(ConfigError, match="category/identifier"):
        sweep_filter_selectivity(base, schema, "hits")


def test_star_dimensions_normalize_and_reassemble():
    schema = workload_schema("retail_sales")
    table = generate_table(schema, 400, seed=5)
    dimensions = star_dimensions(schema)
    assert dimensions and dimensions[0].key == "store_id"
    assert set(dimensions[0].attributes) == {"region", "banner"}
    star = normalize_star(table, dimensions)  # strict: FD must hold
    assert "region" not in star.fact.schema

    query = parse_query(
        "SELECT region, SUM(revenue) FROM retail_sales GROUP BY region"
    )
    denorm_engine = create_engine("rowstore")
    denorm_engine.load_table(table)
    expected = denorm_engine.execute(query).sorted_rows(precision=6)

    star_engine = create_engine("rowstore")
    load_star(star_engine, star)
    rewritten = reassembly_query(star, query)
    assert rewritten.joins
    actual = star_engine.execute(rewritten).sorted_rows(precision=6)
    assert actual == expected


# -- presets -----------------------------------------------------------------


def test_presets_shape():
    assert set(PRESET_NAMES) == {
        "key_union_explosion",
        "high_cardinality_groupby",
        "empty_result_filters",
        "tiny_tables_sharded",
    }
    with pytest.raises(ConfigError, match="unknown preset"):
        generate_preset("nope", "retail_sales")

    tiny = generate_preset("tiny_tables_sharded", "retail_sales")
    assert tiny.rows == 64 and len(tiny.build_table()) == 64

    high = generate_preset("high_cardinality_groupby", "web_analytics")
    base = workload_schema("web_analytics")
    assert (
        high.schema.field("session_id").cardinality
        == 4 * base.field("session_id").cardinality
    )

    empty = generate_preset("empty_result_filters", "fleet_telemetry")
    options = empty.spec.interface.widget("w_anchor").options
    table = empty.build_table()
    column = empty.spec.interface.widget("w_anchor").column
    assert options and options[0] not in set(
        table.distinct_values(column)
    )

    union = generate_preset("key_union_explosion", "fleet_telemetry")
    grouped = {
        d.column
        for v in union.spec.interface.visualizations
        for d in v.dimensions
        if d.bin is None
    }
    assert "vehicle_id" in grouped  # the identifier joined the key union
