"""SQL-layer JOIN support: AST, parser, formatter, builder."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.sql.ast import Column, Join, Query, TableRef, walk
from repro.sql.builder import col, count, select
from repro.sql.formatter import format_query
from repro.sql.parser import parse_query


class TestJoinNode:
    def test_kind_is_upper_cased(self):
        join = Join(TableRef("d"), Column("a"), Column("b"), "left")
        assert join.kind == "LEFT"

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            Join(TableRef("d"), Column("a"), Column("b"), "CROSS")

    def test_children_cover_table_and_keys(self):
        join = Join(TableRef("d"), Column("a", table="f"), Column("b"))
        kinds = [type(c).__name__ for c in join.children()]
        assert kinds == ["TableRef", "Column", "Column"]

    def test_join_is_hashable(self):
        join = Join(TableRef("d"), Column("a"), Column("b"))
        assert hash(join) == hash(
            Join(TableRef("d"), Column("a"), Column("b"))
        )

    def test_str_mentions_kind_and_keys(self):
        join = Join(TableRef("d"), Column("a", table="f"), Column("b"), "LEFT")
        assert "LEFT JOIN" in str(join)
        assert "f.a" in str(join)


class TestParseJoins:
    def test_bare_join_is_inner(self):
        query = parse_query("SELECT x FROM f JOIN d ON f.k = d.k")
        assert len(query.joins) == 1
        assert query.joins[0].kind == "INNER"

    def test_inner_keyword_accepted(self):
        query = parse_query("SELECT x FROM f INNER JOIN d ON f.k = d.k")
        assert query.joins[0].kind == "INNER"

    def test_left_join(self):
        query = parse_query("SELECT x FROM f LEFT JOIN d ON f.k = d.k")
        assert query.joins[0].kind == "LEFT"

    def test_left_outer_join(self):
        query = parse_query("SELECT x FROM f LEFT OUTER JOIN d ON f.k = d.k")
        assert query.joins[0].kind == "LEFT"

    def test_join_keys_keep_qualifiers(self):
        query = parse_query("SELECT x FROM f JOIN d ON f.k = d.j")
        join = query.joins[0]
        assert join.left_key == Column("k", table="f")
        assert join.right_key == Column("j", table="d")

    def test_multiple_joins_in_order(self):
        query = parse_query(
            "SELECT x FROM f JOIN a ON f.p = a.p LEFT JOIN b ON f.q = b.q"
        )
        assert [j.table.name for j in query.joins] == ["a", "b"]
        assert [j.kind for j in query.joins] == ["INNER", "LEFT"]

    def test_join_with_alias(self):
        query = parse_query("SELECT x FROM f JOIN dim AS d ON f.k = d.k")
        assert query.joins[0].table == TableRef("dim", "d")

    def test_join_then_where_group_order(self):
        query = parse_query(
            "SELECT r, COUNT(*) FROM f JOIN d ON f.k = d.k "
            "WHERE v > 3 GROUP BY r ORDER BY r LIMIT 5"
        )
        assert query.joins and query.where is not None
        assert query.group_by and query.order_by and query.limit == 5

    def test_join_without_on_is_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT x FROM f JOIN d WHERE x = 1")

    def test_non_column_join_key_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT x FROM f JOIN d ON 1 = d.k")

    def test_missing_right_side_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT x FROM f JOIN d ON f.k =")


class TestFormatJoins:
    def test_inner_join_prints_bare_join(self):
        query = parse_query("SELECT x FROM f JOIN d ON f.k = d.k")
        assert "JOIN d ON f.k = d.k" in format_query(query)
        assert "INNER" not in format_query(query)

    def test_left_join_prints_left_join(self):
        query = parse_query("SELECT x FROM f LEFT JOIN d ON f.k = d.k")
        assert "LEFT JOIN d ON f.k = d.k" in format_query(query)

    def test_round_trip_single_join(self):
        text = "SELECT x FROM f JOIN d ON f.k = d.k WHERE x > 1"
        query = parse_query(text)
        assert parse_query(format_query(query)) == query

    def test_round_trip_multi_join_with_aliases(self):
        text = (
            "SELECT x FROM f AS t JOIN dim AS d ON t.k = d.k "
            "LEFT JOIN cal ON t.dt = cal.dt GROUP BY x"
        )
        query = parse_query(text)
        assert parse_query(format_query(query)) == query

    def test_join_appears_between_from_and_where(self):
        query = parse_query("SELECT x FROM f JOIN d ON f.k = d.k WHERE x = 1")
        text = format_query(query)
        assert text.index("FROM") < text.index("JOIN") < text.index("WHERE")


class TestBuilderJoins:
    def test_join_with_string_keys(self):
        query = (
            select("region", count())
            .from_table("fact")
            .join("dim", "fact.k", "dim.k")
            .group_by("region")
            .build()
        )
        assert query.joins[0].left_key == Column("k", table="fact")
        assert query.joins[0].right_key == Column("k", table="dim")

    def test_join_with_expression_keys(self):
        query = (
            select("x")
            .from_table("f")
            .join("d", col("k", table="f"), col("k", table="d"))
            .build()
        )
        assert query.joins[0].left_key.table == "f"

    def test_left_join_kind(self):
        query = (
            select("x")
            .from_table("f")
            .join("d", "f.k", "d.k", kind="LEFT")
            .build()
        )
        assert query.joins[0].kind == "LEFT"

    def test_unqualified_string_key(self):
        query = select("x").from_table("f").join("d", "k", "k").build()
        assert query.joins[0].left_key == Column("k")

    def test_non_column_key_rejected(self):
        with pytest.raises(ValueError):
            select("x").from_table("f").join("d", count(), "k").build()

    def test_builder_round_trips_through_text(self):
        query = (
            select("region", count())
            .from_table("fact")
            .join("dim", "fact.k", "dim.k")
            .group_by("region")
            .build()
        )
        assert parse_query(format_query(query)) == query


class TestQueryHelpers:
    def test_table_names_includes_joined_tables(self):
        query = parse_query(
            "SELECT x FROM f JOIN a ON f.p = a.p JOIN b ON f.q = b.q"
        )
        assert query.table_names() == ["f", "a", "b"]

    def test_walk_traverses_join_nodes(self):
        query = parse_query("SELECT x FROM f JOIN d ON f.k = d.j")
        names = {
            node.name for node in walk(query) if isinstance(node, Column)
        }
        assert {"x", "k", "j"} <= names

    def test_joins_default_to_empty(self):
        query = parse_query("SELECT x FROM f")
        assert query.joins == ()

    def test_and_where_preserves_joins(self):
        from repro.sql.ast import BinaryOp, Literal

        query = parse_query("SELECT x FROM f JOIN d ON f.k = d.k")
        extended = query.and_where(BinaryOp("=", Column("x"), Literal(1)))
        assert extended.joins == query.joins
