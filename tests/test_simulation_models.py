"""Tests for the goal tracker, Oracle model, and Markov model."""

import random

import pytest

from repro.dashboard.state import DashboardState, Interaction, InteractionKind
from repro.engine.registry import create_engine
from repro.equivalence.results import ResultCache
from repro.errors import SimulationError
from repro.simulation.goals import GoalTracker
from repro.simulation.markov import (
    MARKOV_PRESETS,
    InteractionCategory,
    MarkovModel,
)
from repro.simulation.oracle import OracleModel
from repro.sql.parser import parse_query


@pytest.fixture()
def cache(cs_data):
    engine = create_engine("vectorstore")
    engine.load_table(cs_data)
    return ResultCache(engine)


@pytest.fixture()
def state(cs_spec, cs_data):
    return DashboardState(cs_spec, cs_data)


GOAL_SQL = (
    "SELECT queue, COUNT(lostCalls) AS count_lostCalls "
    "FROM customer_service GROUP BY queue"
)


class TestGoalTracker:
    def test_initially_incomplete(self, cache):
        tracker = GoalTracker([parse_query(GOAL_SQL)], cache)
        assert not tracker.complete
        assert tracker.progress == 0.0

    def test_observing_goal_query_completes(self, cache):
        goal = parse_query(GOAL_SQL)
        tracker = GoalTracker([goal], cache)
        gained = tracker.observe([goal])
        assert gained > 0
        assert tracker.complete
        assert tracker.progress == 1.0

    def test_union_coverage(self, cache):
        tracker = GoalTracker([parse_query(GOAL_SQL)], cache)
        tracker.observe(
            [
                parse_query(
                    "SELECT queue, COUNT(*) FROM customer_service "
                    "GROUP BY queue"
                )
            ]
        )
        assert not tracker.complete  # counts don't match lostCalls counts
        for q in "ABCD":
            tracker.observe(
                [
                    parse_query(
                        f"SELECT COUNT(lostCalls) AS count_lostCalls "
                        f"FROM customer_service WHERE queue IN ('{q}')"
                    )
                ]
            )
        assert tracker.complete

    def test_gain_without_commit(self, cache):
        goal = parse_query(GOAL_SQL)
        tracker = GoalTracker([goal], cache)
        assert tracker.gain([goal]) > 0
        assert not tracker.complete  # gain() must not mutate

    def test_seen_queries_gain_nothing(self, cache):
        goal = parse_query(GOAL_SQL)
        tracker = GoalTracker([goal], cache)
        tracker.observe([goal])
        assert tracker.gain([goal]) == 0

    def test_progress_monotone(self, cache):
        tracker = GoalTracker([parse_query(GOAL_SQL)], cache)
        last = 0.0
        for q in "ABCD":
            tracker.observe(
                [
                    parse_query(
                        f"SELECT COUNT(lostCalls) AS count_lostCalls "
                        f"FROM customer_service WHERE queue IN ('{q}')"
                    )
                ]
            )
            assert tracker.progress >= last
            last = tracker.progress

    def test_empty_goal_set_complete(self, cache):
        tracker = GoalTracker([], cache)
        assert tracker.complete
        assert tracker.progress == 1.0


class TestOracle:
    def test_completes_figure4_pattern(self, cache, state):
        tracker = GoalTracker([parse_query(GOAL_SQL)], cache)
        tracker.observe(state.initial_queries())
        oracle = OracleModel(tracker, rng=random.Random(0))
        steps = 0
        while not tracker.complete and steps < 15:
            interaction = oracle.next_interaction(state)
            assert interaction is not None, "oracle stalled"
            tracker.observe(state.apply(interaction))
            steps += 1
        assert tracker.complete
        assert steps <= 10  # four queues, some slack

    def test_returns_none_when_goal_complete(self, cache, state):
        goal = parse_query(GOAL_SQL)
        tracker = GoalTracker([goal], cache)
        tracker.observe([goal])
        oracle = OracleModel(tracker, rng=random.Random(0))
        assert oracle.next_interaction(state) is None

    def test_escape_clear_removes_irrelevant_filter(self, cache, state):
        goal = parse_query(GOAL_SQL)
        tracker = GoalTracker([goal], cache)
        tracker.observe(state.initial_queries())
        # Pollute with a filter on a column the goal does not mention.
        state.apply(
            Interaction(
                InteractionKind.WIDGET_TOGGLE, "day_dropdown", "Mon"
            )
        )
        oracle = OracleModel(tracker, rng=random.Random(0))
        # Drive to the stuck point: all queue values covered under the
        # polluted filter give wrong counts; eventually the oracle must
        # emit the clear.
        for _ in range(20):
            interaction = oracle.next_interaction(state)
            if interaction is None:
                break
            if interaction.kind in (
                InteractionKind.WIDGET_CLEAR,
                InteractionKind.VIZ_CLEAR,
            ):
                assert interaction.target == "day_dropdown"
                break
            tracker.observe(state.apply(interaction))

    def test_lookahead_validation(self, cache):
        tracker = GoalTracker([], cache)
        with pytest.raises(ValueError):
            OracleModel(tracker, lookahead=0)

    def test_lookahead_two_still_completes(self, cache, state):
        tracker = GoalTracker([parse_query(GOAL_SQL)], cache)
        tracker.observe(state.initial_queries())
        oracle = OracleModel(tracker, lookahead=2, rng=random.Random(0))
        steps = 0
        while not tracker.complete and steps < 15:
            interaction = oracle.next_interaction(state)
            if interaction is None:
                break
            tracker.observe(state.apply(interaction))
            steps += 1
        assert tracker.complete


class TestMarkov:
    def test_presets_are_valid(self):
        for name in MARKOV_PRESETS:
            MarkovModel(name)

    def test_unknown_preset_raises(self):
        with pytest.raises(SimulationError):
            MarkovModel("nope")

    def test_invalid_matrix_rejected(self):
        broken = {
            category: {c: 0.0 for c in InteractionCategory}
            for category in InteractionCategory
        }
        with pytest.raises(SimulationError):
            MarkovModel(broken)

    def test_produces_applicable_interactions(self, state):
        model = MarkovModel("balanced", random.Random(1))
        for _ in range(30):
            interaction = model.next_interaction(state)
            assert interaction is not None
            state.apply(interaction)  # must never raise

    def test_deterministic_under_seed(self, cs_spec, cs_data):
        def run(seed):
            state = DashboardState(cs_spec, cs_data)
            model = MarkovModel("balanced", random.Random(seed))
            return [
                model.next_interaction(state).describe()
                for _ in range(10)
            ]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_reset_clears_chain_state(self, state):
        model = MarkovModel("balanced", random.Random(1))
        model.next_interaction(state)
        assert model.last_category is not None
        model.reset()
        assert model.last_category is None

    def test_filter_heavy_preset_prefers_filters(self, state):
        model = MarkovModel("idebench_default", random.Random(3))
        categories = []
        for _ in range(60):
            interaction = model.next_interaction(state)
            state.apply(interaction)
            categories.append(model.last_category)
        filters = sum(
            1
            for c in categories
            if c in (
                InteractionCategory.CATEGORICAL_FILTER,
                InteractionCategory.RANGE_FILTER,
            )
        )
        assert filters > len(categories) * 0.5
