"""Unit tests for predicate normalization (the mini-SPES front end)."""

from repro.equivalence.normalize import (
    canonical_text,
    expand_sugar,
    flatten_and_sort,
    normalize_predicate,
    orient_comparisons,
    push_not,
)
from repro.sql.parser import parse_expression


def norm(text):
    return canonical_text(normalize_predicate(parse_expression(text)))


class TestPushNot:
    def test_not_comparison_flips(self):
        assert push_not(parse_expression("NOT a = 1")) == parse_expression(
            "a != 1"
        )

    def test_not_less_becomes_geq(self):
        assert push_not(parse_expression("NOT a < 1")) == parse_expression(
            "a >= 1"
        )

    def test_de_morgan_and(self):
        result = push_not(parse_expression("NOT (a = 1 AND b = 2)"))
        assert result == parse_expression("a != 1 OR b != 2")

    def test_de_morgan_or(self):
        result = push_not(parse_expression("NOT (a = 1 OR b = 2)"))
        assert result == parse_expression("a != 1 AND b != 2")

    def test_double_negation(self):
        assert push_not(
            parse_expression("NOT NOT a = 1")
        ) == parse_expression("a = 1")

    def test_not_in_toggles(self):
        result = push_not(parse_expression("NOT q IN ('A')"))
        assert result.negated

    def test_not_between_toggles(self):
        assert push_not(parse_expression("NOT h BETWEEN 1 AND 2")).negated

    def test_not_is_null_toggles(self):
        assert push_not(parse_expression("NOT n IS NULL")).negated


class TestExpandSugar:
    def test_between_becomes_conjunction(self):
        result = expand_sugar(parse_expression("h BETWEEN 1 AND 5"))
        assert result == parse_expression("h >= 1 AND h <= 5")

    def test_not_between_becomes_disjunction(self):
        result = expand_sugar(parse_expression("h NOT BETWEEN 1 AND 5"))
        assert result == parse_expression("h < 1 OR h > 5")

    def test_singleton_in_becomes_equality(self):
        result = expand_sugar(parse_expression("q IN ('A')"))
        assert result == parse_expression("q = 'A'")

    def test_singleton_not_in_becomes_inequality(self):
        result = expand_sugar(parse_expression("q NOT IN ('A')"))
        assert result == parse_expression("q != 'A'")

    def test_in_members_sorted_and_deduped(self):
        result = expand_sugar(parse_expression("q IN ('B', 'A', 'B')"))
        assert result == expand_sugar(parse_expression("q IN ('A', 'B')"))


class TestOrientComparisons:
    def test_literal_moves_right(self):
        assert orient_comparisons(
            parse_expression("5 < x")
        ) == parse_expression("x > 5")

    def test_equality_orientation(self):
        assert orient_comparisons(
            parse_expression("1 = a")
        ) == parse_expression("a = 1")

    def test_already_oriented_untouched(self):
        expr = parse_expression("x > 5")
        assert orient_comparisons(expr) == expr


class TestFlattenAndSort:
    def test_and_order_insensitive(self):
        a = flatten_and_sort(parse_expression("a = 1 AND b = 2"))
        b = flatten_and_sort(parse_expression("b = 2 AND a = 1"))
        assert a == b

    def test_or_order_insensitive(self):
        a = flatten_and_sort(parse_expression("a = 1 OR b = 2"))
        b = flatten_and_sort(parse_expression("b = 2 OR a = 1"))
        assert a == b

    def test_duplicates_removed(self):
        result = flatten_and_sort(parse_expression("a = 1 AND a = 1"))
        assert result == parse_expression("a = 1")

    def test_nested_flattening(self):
        a = flatten_and_sort(parse_expression("(a = 1 AND b = 2) AND c = 3"))
        b = flatten_and_sort(parse_expression("a = 1 AND (b = 2 AND c = 3)"))
        assert a == b


class TestFullPipeline:
    def test_paper_style_equivalences(self):
        assert norm("hour BETWEEN 9 AND 17") == norm(
            "hour >= 9 AND hour <= 17"
        )
        assert norm("NOT (q != 'A')") == norm("q = 'A'")
        assert norm("q IN ('B','A') AND h > 1") == norm(
            "h > 1 AND q IN ('A','B')"
        )

    def test_different_predicates_stay_different(self):
        assert norm("a > 1") != norm("a >= 1")
        assert norm("q IN ('A')") != norm("q IN ('B')")

    def test_none_normalizes_to_empty(self):
        assert canonical_text(normalize_predicate(None)) == ""
