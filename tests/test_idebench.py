"""Tests for the IDEBench baseline simulator and its analysis."""

import pytest

from repro.errors import SimulationError
from repro.idebench import (
    IDEBenchConfig,
    IDEBenchSimulator,
    analyze_workflows,
    reverse_engineer,
)
from repro.workload import generate_dataset


@pytest.fixture(scope="module")
def it_table():
    return generate_dataset("it_monitor", 500, seed=1)


@pytest.fixture(scope="module")
def workflows(it_table):
    return [
        IDEBenchSimulator(it_table, IDEBenchConfig(seed=i)).run()
        for i in range(12)
    ]


class TestConfig:
    def test_probabilities_must_leave_filter_mass(self):
        with pytest.raises(SimulationError):
            IDEBenchConfig(p_create_viz=0.5, p_link=0.4, p_remove_filter=0.2)

    def test_defaults_valid(self):
        IDEBenchConfig()


class TestSimulator:
    def test_deterministic_per_seed(self, it_table):
        a = IDEBenchSimulator(it_table, IDEBenchConfig(seed=3)).run()
        b = IDEBenchSimulator(it_table, IDEBenchConfig(seed=3)).run()
        assert [str(q) for q in a.queries] == [str(q) for q in b.queries]

    def test_visualization_cap_respected(self, workflows):
        for flow in workflows:
            assert flow.num_visualizations <= 20

    def test_queries_parse_and_execute(self, it_table, workflows):
        from repro.engine.registry import create_engine

        engine = create_engine("vectorstore")
        engine.load_table(it_table)
        for query in workflows[0].queries[:30]:
            result = engine.execute(query)
            assert result.columns  # executes without error

    def test_filters_accumulate(self, workflows):
        assert any(
            len(viz.filters) > 3
            for flow in workflows
            for viz in flow.visualizations
        )

    def test_links_grow(self, workflows):
        assert all(flow.links for flow in workflows)

    def test_engine_timing_optional(self, it_table):
        from repro.engine.registry import create_engine

        engine = create_engine("vectorstore")
        engine.load_table(it_table)
        flow = IDEBenchSimulator(
            it_table, IDEBenchConfig(seed=0), engine=engine
        ).run()
        assert len(flow.timed) == len(flow.queries)
        assert all(t.duration_ms >= 0 for t in flow.timed)


class TestAnalysis:
    def test_reverse_engineer_single(self, workflows):
        stats = reverse_engineer(workflows[0])
        assert stats["visualizations"] >= 1
        assert stats["avg_attributes_per_viz"] > 0

    def test_aggregate_stats(self, workflows):
        stats = analyze_workflows(workflows)
        assert stats.workflows == 12
        assert stats.min_visualizations <= stats.avg_visualizations
        assert stats.avg_visualizations <= stats.max_visualizations

    def test_paper_shape_idebench_grows_dense_dashboards(self, workflows):
        """§6.3: IDEBench dashboards are far larger than the real
        3-visualization IT Monitor, with many filters per visualization."""
        stats = analyze_workflows(workflows)
        assert stats.avg_visualizations > 6  # real dashboard has 3
        assert stats.filters_per_viz.mean > 5

    def test_idebench_attrs_per_viz_lower_than_simba(self, workflows):
        """§6.3/Table 4: IDEBench ~2.1 attributes per visualization."""
        stats = analyze_workflows(workflows)
        assert 1.0 <= stats.attributes_per_viz.mean <= 3.5
