"""Secondary indexes and the LRU result cache.

Indexes are pre-filters, so the load-bearing property is *transparency*:
for any query, an indexed engine must return exactly what the unindexed
engine returns. The cache has the same property plus LRU/invalidat­ion
behaviour of its own.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.engine import CachedEngine, create_engine
from repro.engine.indexes import (
    HashIndex,
    RangeIndex,
    TableIndexes,
    candidate_indices,
)
from repro.engine.table import Table
from repro.errors import ConfigError, ExecutionError, SchemaError
from repro.sql.parser import parse_expression, parse_query

INDEXED_ENGINES = ["rowstore", "matstore", "sqlite"]


@pytest.fixture(scope="module")
def table():
    rows = [
        {
            "id": i,
            "queue": "ABCD"[i % 4],
            "hour": i % 24,
            "score": float(i % 7) if i % 11 else None,
        }
        for i in range(500)
    ]
    return Table.from_rows("events", rows)


class TestHashIndex:
    def test_lookup_returns_matching_positions(self):
        index = HashIndex(["a", "b", "a", None, "a"])
        assert list(index.lookup("a")) == [0, 2, 4]

    def test_lookup_missing_value_is_empty(self):
        index = HashIndex(["a", "b"])
        assert index.lookup("z").size == 0

    def test_null_probe_matches_nothing(self):
        index = HashIndex([None, None, "a"])
        assert index.lookup(None).size == 0

    def test_lookup_many_unions_and_sorts(self):
        index = HashIndex(["a", "b", "a", "c"])
        assert list(index.lookup_many(["c", "a"])) == [0, 2, 3]

    def test_distinct_count_excludes_null(self):
        index = HashIndex(["a", None, "b", "a"])
        assert index.distinct_count == 2

    def test_int_float_probe_equivalence(self):
        index = HashIndex([1, 2, 3])
        assert list(index.lookup(2.0)) == [1]


class TestRangeIndex:
    def test_closed_range(self):
        index = RangeIndex([5, 1, 3, 2, 4])
        assert sorted(index.range(2, 4)) == [2, 3, 4]  # values 3, 2, 4

    def test_open_ended_low(self):
        index = RangeIndex([5, 1, 3])
        assert sorted(index.range(None, 3)) == [1, 2]

    def test_exclusive_bounds(self):
        index = RangeIndex([1, 2, 3])
        assert list(index.range(1, 3, include_low=False, include_high=False)) == [1]

    def test_nulls_excluded(self):
        index = RangeIndex([1, None, 2])
        assert sorted(index.range(None, None)) == [0, 2]

    def test_empty_range(self):
        index = RangeIndex([1, 2, 3])
        assert index.range(10, 20).size == 0


class TestCandidateIndices:
    @pytest.fixture()
    def indexes(self, table):
        built = TableIndexes(table)
        built.create("queue")
        built.create("hour")
        return built

    def test_equality_conjunct(self, table, indexes):
        vector = candidate_indices(indexes, parse_expression("queue = 'A'"))
        assert vector is not None
        assert all(table.column("queue")[i] == "A" for i in vector)

    def test_reversed_comparison_flips(self, table, indexes):
        vector = candidate_indices(indexes, parse_expression("5 > hour"))
        assert vector is not None
        assert all(table.column("hour")[i] < 5 for i in vector)

    def test_in_list_conjunct(self, table, indexes):
        vector = candidate_indices(
            indexes, parse_expression("queue IN ('A', 'C')")
        )
        assert vector is not None
        assert all(table.column("queue")[i] in {"A", "C"} for i in vector)

    def test_between_conjunct(self, table, indexes):
        vector = candidate_indices(
            indexes, parse_expression("hour BETWEEN 9 AND 17")
        )
        assert vector is not None
        assert all(9 <= table.column("hour")[i] <= 17 for i in vector)

    def test_unindexed_column_returns_none(self, indexes):
        assert candidate_indices(indexes, parse_expression("id = 1")) is None

    def test_negated_in_not_accelerated(self, indexes):
        predicate = parse_expression("queue NOT IN ('A')")
        assert candidate_indices(indexes, predicate) is None

    def test_column_to_column_not_accelerated(self, indexes):
        predicate = parse_expression("queue = hour")
        assert candidate_indices(indexes, predicate) is None

    def test_exactness_of_range_candidates(self, table, indexes):
        """Range candidates must be exact, not a superset (matstore
        intersects them without re-checking)."""
        vector = candidate_indices(indexes, parse_expression("hour >= 20"))
        expected = [
            i for i, h in enumerate(table.column("hour")) if h >= 20
        ]
        assert sorted(vector) == expected


class TestIndexedEngines:
    QUERIES = [
        "SELECT id FROM events WHERE queue = 'B' ORDER BY id",
        "SELECT queue, COUNT(*) AS n FROM events WHERE hour BETWEEN 8 AND 10 "
        "GROUP BY queue ORDER BY queue",
        "SELECT id FROM events WHERE queue IN ('A', 'D') AND hour < 3 "
        "ORDER BY id",
        "SELECT COUNT(*) AS n FROM events WHERE queue = 'A' AND score > 2",
        "SELECT id FROM events WHERE hour >= 23 ORDER BY id",
    ]

    @pytest.mark.parametrize("engine_name", INDEXED_ENGINES)
    @pytest.mark.parametrize("sql", QUERIES)
    def test_indexed_matches_unindexed(self, table, engine_name, sql):
        plain = create_engine(engine_name)
        plain.load_table(table)
        indexed = create_engine(engine_name)
        indexed.load_table(table)
        indexed.create_index("events", "queue")
        indexed.create_index("events", "hour")
        query = parse_query(sql)
        assert (
            indexed.execute(query).sorted_rows()
            == plain.execute(query).sorted_rows()
        )

    @pytest.mark.parametrize("engine_name", INDEXED_ENGINES)
    def test_reload_invalidates_index(self, table, engine_name):
        engine = create_engine(engine_name)
        engine.load_table(table)
        engine.create_index("events", "queue")
        # Replace the data: the old index must not leak stale positions.
        replacement = Table.from_rows(
            "events",
            [{"id": 0, "queue": "Z", "hour": 1, "score": 1.0}],
        )
        engine.load_table(replacement)
        result = engine.execute(
            parse_query("SELECT id FROM events WHERE queue = 'Z'")
        )
        assert result.column("id") == [0]

    def test_vectorstore_refuses_indexes(self, table):
        engine = create_engine("vectorstore")
        engine.load_table(table)
        assert not engine.supports_indexes
        with pytest.raises(ExecutionError):
            engine.create_index("events", "queue")

    def test_indexing_unknown_column_rejected(self, table):
        engine = create_engine("rowstore")
        engine.load_table(table)
        with pytest.raises(SchemaError):
            engine.create_index("events", "nosuch")

    def test_index_unused_for_joined_queries(self, table):
        """Joins rebuild row positions, so base-table indexes must not
        be consulted — this exercises the guard."""
        dim = Table.from_rows(
            "queues", [{"queue": q, "rank": i} for i, q in enumerate("ABCD")]
        )
        for name in ("rowstore", "matstore"):
            engine = create_engine(name)
            engine.load_table(table)
            engine.load_table(dim)
            engine.create_index("events", "queue")
            result = engine.execute(
                parse_query(
                    "SELECT rank, COUNT(*) AS n FROM events "
                    "JOIN queues ON events.queue = queues.queue "
                    "WHERE queue = 'A' GROUP BY rank"
                )
            )
            assert result.rows == [(0, 125)]


class TestCachedEngine:
    def _engine(self, table, capacity=8):
        cached = CachedEngine(create_engine("vectorstore"), capacity=capacity)
        cached.load_table(table)
        return cached

    def test_repeat_query_hits_cache(self, table):
        engine = self._engine(table)
        query = parse_query("SELECT COUNT(*) AS n FROM events")
        first = engine.execute(query)
        second = engine.execute(query)
        assert first.rows == second.rows
        assert (engine.hits, engine.misses) == (1, 1)

    def test_cache_returns_fresh_result_objects(self, table):
        engine = self._engine(table)
        query = parse_query("SELECT COUNT(*) AS n FROM events")
        first = engine.execute(query)
        second = engine.execute(query)
        assert first is not second
        assert first.rows == second.rows

    def test_different_queries_do_not_collide(self, table):
        engine = self._engine(table)
        a = engine.execute(parse_query("SELECT COUNT(*) AS n FROM events"))
        b = engine.execute(
            parse_query("SELECT COUNT(*) AS n FROM events WHERE hour = 1")
        )
        assert a.rows != b.rows
        assert engine.misses == 2

    def test_load_table_invalidates(self, table):
        engine = self._engine(table)
        query = parse_query("SELECT COUNT(*) AS n FROM events")
        engine.execute(query)
        engine.load_table(table)
        engine.execute(query)
        assert engine.misses == 2 and engine.hits == 0

    def test_lru_eviction(self, table):
        engine = self._engine(table, capacity=2)
        q1 = parse_query("SELECT COUNT(*) AS a FROM events")
        q2 = parse_query("SELECT COUNT(*) AS b FROM events")
        q3 = parse_query("SELECT COUNT(*) AS c FROM events")
        engine.execute(q1)
        engine.execute(q2)
        engine.execute(q1)  # q1 becomes most recent
        engine.execute(q3)  # evicts q2
        engine.execute(q1)
        assert engine.hits == 2
        engine.execute(q2)  # must miss: it was evicted
        assert engine.misses == 4

    def test_hit_rate(self, table):
        engine = self._engine(table)
        query = parse_query("SELECT COUNT(*) AS n FROM events")
        assert engine.hit_rate == 0.0
        engine.execute(query)
        engine.execute(query)
        assert engine.hit_rate == 0.5

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigError):
            CachedEngine(create_engine("vectorstore"), capacity=0)

    def test_invalidate_keeps_counters(self, table):
        engine = self._engine(table)
        query = parse_query("SELECT COUNT(*) AS n FROM events")
        engine.execute(query)
        engine.invalidate()
        assert engine.size == 0 and engine.misses == 1

    def test_name_reflects_inner_engine(self, table):
        engine = self._engine(table)
        assert engine.name == "cached(vectorstore)"

    def test_create_index_forwards(self, table):
        cached = CachedEngine(create_engine("rowstore"))
        cached.load_table(table)
        assert cached.supports_indexes
        cached.create_index("events", "queue")
        result = cached.execute(
            parse_query("SELECT COUNT(*) AS n FROM events WHERE queue = 'A'")
        )
        assert result.rows == [(125,)]

    def test_invalidation_is_per_table(self, table):
        engine = self._engine(table)
        query = parse_query("SELECT COUNT(*) AS n FROM events")
        engine.execute(query)
        engine.load_table(
            Table.from_rows("other", [{"k": 1}, {"k": 2}])
        )
        engine.execute(query)
        assert engine.hits == 1  # unrelated load left the entry alive
        engine.load_table(table)
        engine.execute(query)
        assert engine.misses == 2  # same-table load dropped it


class TestScanGroupCacheInvalidation:
    """Batch scan groups must never serve stale reads after mutation."""

    def _queries(self):
        return [
            parse_query(
                "SELECT queue, COUNT(*) AS n FROM events "
                "WHERE hour = 1 GROUP BY queue"
            ),
            parse_query(
                "SELECT hour, COUNT(*) AS n FROM events "
                "WHERE hour = 1 GROUP BY hour"
            ),
            parse_query(
                "SELECT queue, MIN(score) AS lo FROM events "
                "WHERE hour = 1 GROUP BY queue"
            ),
        ]

    def test_repeated_batch_hits_scan_group_cache(self, table):
        engine = CachedEngine(create_engine("rowstore"))
        engine.load_table(table)
        queries = self._queries()
        first = engine.execute_batch(queries)
        second = engine.execute_batch(queries)
        assert engine.batch_stats.cache_hits == len(queries)
        assert engine.scan_groups.size >= 1
        for a, b in zip(first, second):
            assert a.result == b.result

    def test_table_mutation_invalidates_batch_scan_groups(self, table):
        engine = CachedEngine(create_engine("rowstore"))
        engine.load_table(table)
        queries = self._queries()
        stale = engine.execute_batch(queries)

        # Mutate: replace the table with hour-1 rows requeued to 'Z'.
        mutated_rows = [
            {
                "id": i,
                "queue": "Z" if i % 24 == 1 else "ABCD"[i % 4],
                "hour": i % 24,
                "score": float(i % 7) if i % 11 else None,
            }
            for i in range(500)
        ]
        engine.load_table(Table.from_rows("events", mutated_rows))
        assert engine.scan_groups.size == 0  # groups dropped with the data

        fresh = engine.execute_batch(queries)
        sequential = [
            engine.inner.execute(q) for q in queries
        ]  # ground truth from the raw engine
        for timed, expected in zip(fresh, sequential):
            assert timed.result == expected
        # The stale pre-mutation answer must be gone, not re-served.
        assert fresh[0].result.rows != stale[0].result.rows

    def test_unload_table_invalidates_both_caches(self, table):
        engine = CachedEngine(create_engine("rowstore"))
        engine.load_table(table)
        query = parse_query("SELECT COUNT(*) AS n FROM events")
        engine.execute(query)
        engine.execute_batch(self._queries())
        engine.unload_table("events")
        assert engine.scan_groups.size == 0
        with pytest.raises(SchemaError):
            engine.execute(query)  # must reach the engine, not the cache

    def test_solo_batch_queries_share_the_per_query_cache(self, table):
        engine = CachedEngine(create_engine("rowstore"))
        engine.load_table(table)
        query = parse_query("SELECT COUNT(*) AS n FROM events")
        engine.execute(query)  # warm the LRU sequentially
        timed = engine.execute_batch([query])
        assert engine.hits == 1  # batch solo path consulted the LRU
        assert timed[0].result.rows == [(500,)]

    def test_scan_group_member_count_is_bounded(self):
        from repro.engine import ResultSet
        from repro.engine.cache import ScanGroupCache

        cache = ScanGroupCache()
        cap = ScanGroupCache.MAX_MEMBERS_PER_GROUP
        for i in range(cap + 10):
            cache.store("t", "p", {f"SELECT {i}": ResultSet(["a"], [(i,)])})
        entry = cache.lookup("t", "p")
        assert len(entry) == cap
        assert f"SELECT {cap + 9}" in entry  # newest kept
        assert "SELECT 0" not in entry  # oldest evicted

    def test_unrelated_table_load_keeps_scan_groups(self, table):
        engine = CachedEngine(create_engine("rowstore"))
        engine.load_table(table)
        queries = self._queries()
        engine.execute_batch(queries)
        engine.load_table(Table.from_rows("other", [{"k": 1}]))
        assert engine.scan_groups.size >= 1
        engine.execute_batch(queries)
        assert engine.batch_stats.cache_hits == len(queries)


# ---------------------------------------------------------------------------
# Property: index transparency over random predicates (rowstore + matstore)
# ---------------------------------------------------------------------------


@st.composite
def _predicate(draw):
    clauses = []
    if draw(st.booleans()):
        value = draw(st.sampled_from(["A", "B", "C", "D"]))
        clauses.append(f"queue = '{value}'")
    if draw(st.booleans()):
        low = draw(st.integers(min_value=0, max_value=23))
        high = draw(st.integers(min_value=0, max_value=23))
        clauses.append(f"hour BETWEEN {min(low, high)} AND {max(low, high)}")
    if draw(st.booleans()):
        bound = draw(st.integers(min_value=0, max_value=6))
        clauses.append(f"score <= {bound}")
    if not clauses:
        clauses.append("hour >= 0")
    return " AND ".join(clauses)


@given(_predicate(), st.sampled_from(["rowstore", "matstore"]))
@settings(max_examples=40, deadline=None)
def test_index_transparency_property(predicate, engine_name):
    rows = [
        {
            "id": i,
            "queue": "ABCD"[i % 4],
            "hour": i % 24,
            "score": float(i % 7) if i % 11 else None,
        }
        for i in range(200)
    ]
    data = Table.from_rows("events", rows)
    plain = create_engine(engine_name)
    plain.load_table(data)
    indexed = create_engine(engine_name)
    indexed.load_table(data)
    for column in ("queue", "hour", "score"):
        indexed.create_index("events", column)
    query = parse_query(f"SELECT id FROM events WHERE {predicate}")
    assert (
        indexed.execute(query).sorted_rows()
        == plain.execute(query).sorted_rows()
    )
