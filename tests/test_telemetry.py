"""Telemetry contract tests: identity, schema, overhead, explain.

The load-bearing guarantees of the telemetry layer:

1. **Byte identity.** Tracing is observational: the same walk produces
   byte-identical results (columns, rows, row order) with telemetry
   installed and without, on every engine under every policy.
2. **Schema.** Recorded spans validate (closed, unique ids, acyclic
   parentage), shard spans nest under their refresh across worker
   threads, and the Chrome export is structurally sound.
3. **Overhead.** Disabled telemetry records nothing and allocates
   nothing from the telemetry modules on the hot path.
4. **Explain.** Every refreshed query is attributed to exactly one
   known tier, on all six library dashboards.

Plus the satellite regressions: deterministic worker naming with task
counts, metric percentiles, and bare-``BatchExecutor`` thread safety.
"""

from __future__ import annotations

import json
import random
import threading
import tracemalloc

import pytest

import repro
from repro.dashboard.library import DASHBOARD_NAMES, load_dashboard
from repro.dashboard.state import DashboardState, InteractionKind
from repro.concurrency.pool import WorkerPool
from repro.engine.batch import BatchExecutor
from repro.engine.registry import create_engine
from repro.execution import ExecutionPolicy
from repro.telemetry import (
    MetricsRegistry,
    Telemetry,
    chrome_trace,
    validate_chrome_trace,
    validate_spans,
    validate_trace_file,
    write_chrome_trace,
)
from repro.telemetry import metrics as metrics_mod
from repro.telemetry import trace as trace_mod
from repro.telemetry.explain import TIERS
from repro.telemetry.metrics import metric_key
from repro.workload import generate_dataset

ROWS = 1_200
ENGINES = ("rowstore", "vectorstore", "matstore", "sqlite")

#: serial and max_throughput are the stress-matrix policies; the pinned
#: concurrent policy exists because max_throughput() degenerates to one
#: worker and one shard on single-core hosts, which would leave the
#: pooled and sharded paths untraced.
POLICIES = {
    "serial": ExecutionPolicy.serial(),
    "max_throughput": ExecutionPolicy.max_throughput(),
    "concurrent_sharded": ExecutionPolicy(workers=4, shards=3, multiplan=True),
}


@pytest.fixture(autouse=True)
def _telemetry_is_off():
    """No test may leak an installed bundle into the next."""
    yield
    assert trace_mod.ACTIVE is None, "test leaked an active tracer"
    assert metrics_mod.ACTIVE is None, "test leaked an active registry"


@pytest.fixture(scope="module")
def table():
    return generate_dataset("customer_service", ROWS, seed=11)


def _walk_results(engine_name, table, policy, steps=3, telemetry=None):
    """One deterministic walk; returns comparable per-refresh payloads."""
    engine = create_engine(engine_name)
    engine.load_table(table)
    state = DashboardState(load_dashboard("customer_service"), table)
    rng = random.Random(7)
    payloads = []

    def record(results):
        payloads.append(
            {
                viz_id: (tuple(t.result.columns), tuple(t.result.rows))
                for viz_id, t in results.items()
            }
        )

    scope = telemetry.install() if telemetry is not None else None
    try:
        if scope is not None:
            scope.__enter__()
        record(state.refresh(engine, policy=policy))
        for _ in range(steps):
            actions = state.available_interactions()
            filtering = [
                a
                for a in actions
                if a.kind
                in (InteractionKind.WIDGET_TOGGLE, InteractionKind.WIDGET_SET)
            ] or actions
            record(
                state.apply_and_refresh(
                    rng.choice(filtering), engine, policy=policy
                )
            )
    finally:
        if scope is not None:
            scope.__exit__(None, None, None)
        engine.close()
    return payloads


# -- 1. byte identity --------------------------------------------------------


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("engine_name", ENGINES)
def test_traced_walk_is_byte_identical(table, engine_name, policy_name):
    policy = POLICIES[policy_name]
    untraced = _walk_results(engine_name, table, policy)
    telemetry = Telemetry()
    traced = _walk_results(engine_name, table, policy, telemetry=telemetry)
    assert traced == untraced, (
        f"{engine_name}/{policy_name}: tracing changed results"
    )
    # And the bundle actually observed the traced walk. Tier tags come
    # from the batch layers; serial (batch=False) executes outside all
    # of them, which explain reports as the implicit fallback tier.
    assert len(telemetry.tracer) > 0
    if policy.batch:
        assert telemetry.tracer.query_tiers
    else:
        assert not telemetry.tracer.query_tiers


# -- 2. trace schema + nesting -----------------------------------------------


def test_trace_schema_and_shard_nesting(table, tmp_path):
    telemetry = Telemetry()
    _walk_results(
        "sqlite",
        table,
        ExecutionPolicy(workers=4, shards=3),
        telemetry=telemetry,
    )
    spans = telemetry.tracer.spans()
    assert validate_spans(spans) == []

    by_id = {s.span_id: s for s in spans}
    shard_spans = [s for s in spans if s.name.startswith("shard[")]
    assert shard_spans, "sharded policy recorded no shard spans"
    assert any(s.thread.startswith("repro-worker-") for s in shard_spans)
    for span in shard_spans:
        chain = []
        cursor = span
        while cursor.parent_id is not None:
            cursor = by_id[cursor.parent_id]
            chain.append(cursor.name)
        assert "scan_group" in chain and chain[-1] == "refresh", chain

    data = chrome_trace(telemetry.tracer)
    assert validate_chrome_trace(data) == []
    thread_names = {
        e["args"]["name"] for e in data["traceEvents"] if e["ph"] == "M"
    }
    assert any(n.startswith("repro-worker-") for n in thread_names)

    path = write_chrome_trace(telemetry.tracer, tmp_path / "trace.json")
    assert validate_trace_file(path) == []
    json.loads(path.read_text())  # plain-JSON loadable


def test_validators_reject_broken_traces():
    tracer = trace_mod.Tracer()
    open_span = tracer.begin("refresh")
    errors = validate_spans(tracer.spans())
    assert any("never closed" in e for e in errors)
    tracer.finish(open_span)
    assert validate_spans(tracer.spans()) == []

    orphan = trace_mod.Span(
        span_id=99, parent_id=98, name="x", start_ms=0.0, end_ms=1.0
    )
    assert any(
        "unknown parent" in e for e in validate_spans([orphan])
    )
    assert validate_chrome_trace({"nope": 1}) == [
        "not a trace object with a traceEvents list"
    ]


# -- 3. disabled overhead ----------------------------------------------------


def test_disabled_telemetry_records_and_allocates_nothing(table):
    engine = create_engine("rowstore")
    engine.load_table(table)
    state = DashboardState(load_dashboard("customer_service"), table)
    queries = state.initial_queries()
    policy = ExecutionPolicy()

    # An uninstalled bundle observes nothing.
    idle = Telemetry()
    engine.execute_batch(queries, policy)
    assert len(idle.tracer) == 0
    assert idle.registry.snapshot() == {
        "counters": {},
        "gauges": {},
        "histograms": {},
    }

    # The hot path allocates nothing from the telemetry modules.
    engine.execute_batch(queries, policy)  # warm every lazy cache first
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        for _ in range(3):
            engine.execute_batch(queries, policy)
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    telemetry_stats = [
        stat
        for stat in after.compare_to(before, "filename")
        if "telemetry" in stat.traceback[0].filename
        and stat.size_diff > 0
    ]
    assert telemetry_stats == [], (
        f"disabled telemetry allocated: {telemetry_stats}"
    )
    engine.close()


# -- 4. metrics registry -----------------------------------------------------


def test_metric_keys_and_percentiles():
    assert metric_key("engine.query_ms", {}) == "engine.query_ms"
    assert (
        metric_key("engine.query_ms", {"b": 1, "a": 2})
        == "engine.query_ms{a=2,b=1}"
    )

    registry = MetricsRegistry()
    registry.inc("cache.hits")
    registry.inc("cache.hits", 2)
    assert registry.counter("cache.hits") == 3
    registry.set_gauge("pool.worker_tasks", 4, worker="repro-worker-0")
    assert registry.gauge("pool.worker_tasks", worker="repro-worker-0") == 4
    assert registry.gauge("pool.worker_tasks", worker="repro-worker-9") is None

    for value in range(1, 101):
        registry.observe("shard.scan_ms", float(value), table="t")
    summary = registry.histogram("shard.scan_ms", table="t")
    assert summary.count == 100
    assert summary.min == 1.0 and summary.max == 100.0
    assert summary.mean == pytest.approx(50.5)
    assert summary.p50 == 50.0
    assert summary.p95 == 95.0
    assert summary.p99 == 99.0
    assert registry.histogram("shard.scan_ms", table="other") is None

    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"cache.hits": 3}
    assert snapshot["histograms"]["shard.scan_ms{table=t}"]["p95"] == 95.0


def test_histogram_sample_bound_drops_oldest():
    registry = MetricsRegistry(max_samples=10)
    for value in range(100):
        registry.observe("m", float(value))
    summary = registry.histogram("m")
    assert summary.count == 10
    assert summary.min == 90.0 and summary.max == 99.0


def test_engine_and_shard_timings_reach_the_registry(table):
    telemetry = Telemetry()
    _walk_results(
        "sqlite",
        table,
        ExecutionPolicy(workers=2, shards=2),
        telemetry=telemetry,
    )
    snapshot = telemetry.registry.snapshot()
    assert snapshot["histograms"]["engine.query_ms{engine=sqlite}"]["count"] > 0
    shard_series = [
        k for k in snapshot["histograms"] if k.startswith("shard.scan_ms")
    ]
    assert shard_series, snapshot["histograms"]
    assert snapshot["counters"]["batch.queries"] > 0
    worker_gauges = [
        k for k in snapshot["gauges"] if k.startswith("pool.worker_tasks")
    ]
    assert worker_gauges


# -- 5. explain --------------------------------------------------------------


@pytest.mark.parametrize("name", DASHBOARD_NAMES)
def test_explain_attributes_every_query_to_one_tier(name):
    with repro.connect("rowstore", policy=ExecutionPolicy()) as session:
        session.load(generate_dataset(name, 600, seed=3))
        report = session.explain(name)
    spec = load_dashboard(name)
    assert sorted(report.tiers) == sorted(
        v.id for v in spec.interface.visualizations
    )
    for entry in report.entries:
        assert entry.tier in TIERS, entry
    rendered = str(report)
    assert "span tree:" in rendered
    assert "refresh" in rendered


def test_explain_reports_cache_tier_when_warm():
    with repro.connect("rowstore", cache=True) as session:
        session.load(generate_dataset("customer_service", 600, seed=3))
        session.refresh("customer_service")  # warm the cache
        report = session.explain("customer_service")
    assert set(report.tiers.values()) == {"cache"}


def test_session_scoped_telemetry_and_explain_shadowing(table):
    bundle = Telemetry()
    with repro.connect("rowstore", telemetry=bundle) as session:
        session.load(table)
        session.refresh("customer_service")
        spans_after_refresh = len(bundle.tracer)
        assert spans_after_refresh > 0
        histogram = bundle.registry.histogram(
            "engine.query_ms", engine="rowstore"
        )
        assert histogram is not None and histogram.count > 0

        # explain() runs under its own private bundle: the session-wide
        # one must not absorb the explain refresh's spans.
        report = session.explain("customer_service")
        assert report.entries
        assert len(bundle.tracer) == spans_after_refresh
    assert not bundle.active


# -- 6. workers + bare-executor thread safety --------------------------------


def test_worker_threads_named_deterministically_with_task_counts():
    with WorkerPool(workers=3) as pool:
        futures = [
            pool.submit(lambda: threading.current_thread().name)
            for _ in range(24)
        ]
        names = {f.result() for f in futures}
        counts = pool.task_counts
    assert names <= {"repro-worker-0", "repro-worker-1", "repro-worker-2"}
    assert set(counts) == names
    assert sum(counts.values()) == 24


def test_bare_batch_executor_is_thread_safe(table):
    """Satellite regression: cumulative stats + key memo under threads."""
    engine = create_engine("rowstore")
    engine.load_table(table)
    state = DashboardState(load_dashboard("customer_service"), table)
    queries = state.initial_queries()
    executor = BatchExecutor(engine)
    runs_per_thread = 5
    threads = 8
    errors = []

    def hammer():
        try:
            for _ in range(runs_per_thread):
                batch = executor.run(queries)
                assert len(batch.results) == len(queries)
        except BaseException as exc:  # surfaced after join
            errors.append(exc)

    workers = [threading.Thread(target=hammer) for _ in range(threads)]
    for t in workers:
        t.start()
    for t in workers:
        t.join()
    assert errors == []
    expected = threads * runs_per_thread * len(queries)
    assert executor.stats.queries == expected
    engine.close()


# -- 7. CLI + artifact schema ------------------------------------------------


def test_harness_cli_trace_flag_writes_valid_trace(tmp_path, capsys):
    from repro.harness.cli import main

    trace_path = tmp_path / "bench.json"
    exit_code = main(
        [
            "--dashboards", "customer_service",
            "--engines", "rowstore",
            "--rows", "600",
            "--runs", "1",
            "--policy", "concurrent",
            "--trace", str(trace_path),
        ]
    )
    assert exit_code == 0
    assert validate_trace_file(trace_path) == []
    assert "trace:" in capsys.readouterr().out
    assert trace_mod.ACTIVE is None  # CLI deactivated its bundle


def test_telemetry_snapshot_schema(table):
    telemetry = Telemetry()
    _walk_results("rowstore", table, ExecutionPolicy(), telemetry=telemetry)
    block = telemetry.snapshot()
    assert sorted(block) == ["metrics", "query_tiers", "spans"]
    assert sorted(block["metrics"]) == ["counters", "gauges", "histograms"]
    assert block["spans"]["total"] == sum(
        block["spans"]["by_name"].values()
    )
    assert block["query_tiers"]
    assert set(block["query_tiers"]) <= set(TIERS)
    json.dumps(block)  # plain JSON, artifact-embeddable
