"""Tests for the concurrent scan-group executor and cache hardening.

Three contracts:

1. **Determinism** — for every engine and any ``workers`` value, every
   concurrent entry point (``execute_batch``, ``refresh``,
   ``refresh_many``, ``replay_log``, the harness runner) returns
   results byte-identical to its sequential counterpart.
2. **Thread-safety** — :class:`~repro.engine.cache.CachedEngine` and
   :class:`~repro.engine.sqlite_engine.SQLiteEngine` survive being
   hammered from many threads: no lost invalidations (a stale result
   served after its table mutated), no corruption.
3. **Work deduplication** — concurrent identical queries and scan
   groups single-flight into one engine computation.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.concurrency import (
    RefreshJob,
    ScanGroupExecutor,
    SerialPool,
    SingleFlight,
    WorkerPool,
    create_pool,
    map_ordered,
    refresh_many,
)
from repro.dashboard.library import DASHBOARD_NAMES, load_dashboard
from repro.dashboard.state import DashboardState, InteractionKind
from repro.engine.batch import BatchExecutor
from repro.engine.cache import CachedEngine
from repro.engine.instrument import CountingEngine, DispatchLatencyEngine
from repro.engine.interface import Engine, ResultSet
from repro.engine.registry import create_engine
from repro.engine.table import Table
from repro.sql.parser import parse_query
from repro.workload.datasets import generate_dataset

ENGINES = ["rowstore", "vectorstore", "matstore", "sqlite"]


def _events_table(rows: int = 400, seed: int = 7) -> Table:
    rng = random.Random(seed)
    return Table.from_columns(
        "events",
        {
            "queue": [rng.choice(["a", "b", "c", "d"]) for _ in range(rows)],
            "status": [
                rng.choice(["open", "closed", "waiting"])
                for _ in range(rows)
            ],
            "priority": [rng.randint(1, 5) for _ in range(rows)],
            "latency": [round(rng.uniform(0.0, 90.0), 3) for _ in range(rows)],
        },
    )


def _assert_identical(sequential, batched, context: str) -> None:
    assert len(sequential) == len(batched), context
    for i, (seq, timed) in enumerate(zip(sequential, batched)):
        assert seq.columns == timed.result.columns, f"{context} [{i}] columns"
        assert seq.rows == timed.result.rows, f"{context} [{i}] rows"


# ---------------------------------------------------------------------------
# Pools and single-flight primitives
# ---------------------------------------------------------------------------


def test_create_pool_degenerates_to_serial():
    assert isinstance(create_pool(1), SerialPool)
    assert isinstance(create_pool(0), SerialPool)
    pool = create_pool(3)
    assert isinstance(pool, WorkerPool)
    pool.shutdown()


def test_serial_pool_propagates_keyboard_interrupt_immediately():
    """Ctrl-C during an inline task must abort the task list at once,
    not drain the remaining submissions first."""
    executed = []

    def task(i):
        if i == 1:
            raise KeyboardInterrupt
        executed.append(i)
        return i

    pool = SerialPool()
    with pytest.raises(KeyboardInterrupt):
        map_ordered(pool, task, range(5))
    assert executed == [0]  # nothing after the interrupt ran


def test_map_ordered_serial_pool_fails_fast():
    """Sequential mode keeps sequential semantics: a failure aborts the
    task list at the failing item instead of draining the rest."""
    executed = []

    def task(i):
        if i == 2:
            raise ValueError("boom")
        executed.append(i)
        return i

    with pytest.raises(ValueError, match="boom"):
        map_ordered(SerialPool(), task, range(6))
    assert executed == [0, 1]


def test_map_ordered_preserves_order_and_raises_first_error():
    with WorkerPool(4) as pool:
        assert map_ordered(pool, lambda x: x * x, range(20)) == [
            x * x for x in range(20)
        ]

    def explode(x):
        if x in (3, 7):
            raise ValueError(f"boom {x}")
        return x

    with WorkerPool(4) as pool:
        with pytest.raises(ValueError, match="boom 3"):
            map_ordered(pool, explode, range(10))


def test_single_flight_dedupes_concurrent_callers():
    flight = SingleFlight()
    calls = []
    barrier = threading.Barrier(6)

    def compute():
        calls.append(1)
        time.sleep(0.05)
        return "value"

    results = []

    def caller():
        barrier.wait()
        results.append(flight.do("key", compute))

    threads = [threading.Thread(target=caller) for _ in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(calls) == 1
    assert [value for value, _ in results] == ["value"] * 6
    assert sum(1 for _, leader in results if leader) == 1
    assert flight.in_flight == 0


# ---------------------------------------------------------------------------
# Property: workers=N is byte-identical to sequential, all engines
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine_name", ENGINES)
@pytest.mark.parametrize("dashboard", ["customer_service", "it_monitor"])
def test_dashboard_walk_workers4_identical(engine_name, dashboard):
    spec = load_dashboard(dashboard)
    table = generate_dataset(dashboard, 300, seed=11)
    engine = create_engine(engine_name)
    engine.load_table(table)
    state = DashboardState(spec, table)
    rng = random.Random(29)
    walks = [state.initial_queries()]
    for _ in range(3):
        actions = state.available_interactions()
        preferred = [
            a
            for a in actions
            if a.kind
            in (InteractionKind.WIDGET_TOGGLE, InteractionKind.WIDGET_SET)
        ] or actions
        walks.append(state.apply(rng.choice(preferred)))
    for step, queries in enumerate(walks):
        sequential = [engine.execute(q) for q in queries]
        concurrent = engine.execute_batch(queries, workers=4)
        _assert_identical(
            sequential, concurrent,
            f"{engine_name}/{dashboard} step {step}",
        )
    engine.close()


@pytest.mark.parametrize("engine_name", ENGINES)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_mix_workers4_identical(engine_name, seed):
    """Randomized query mixes: grouping/fusion/shared-scan/fallbacks."""
    from tests.test_engine_batch import _random_query

    rng = random.Random(seed)
    engine = create_engine(engine_name)
    engine.load_table(_events_table())
    queries = [_random_query(rng) for _ in range(18)]
    sequential = [engine.execute(q) for q in queries]
    concurrent = engine.execute_batch(queries, workers=4)
    _assert_identical(
        sequential, concurrent, f"{engine_name} seed={seed} workers=4"
    )
    engine.close()


def test_workers1_takes_the_sequential_path_exactly():
    """ScanGroupExecutor at workers=1 matches BatchExecutor in results
    *and* statistics — it is the same code path, not a lookalike."""
    queries = [
        parse_query(
            "SELECT queue, COUNT(*) AS n FROM events "
            "WHERE status = 'open' GROUP BY queue"
        ),
        parse_query(
            "SELECT status, SUM(latency) AS s FROM events "
            "WHERE status = 'open' GROUP BY status"
        ),
        parse_query("SELECT COUNT(*) AS n FROM events"),
    ]
    plain = create_engine("vectorstore")
    plain.load_table(_events_table())
    reference = BatchExecutor(plain).run(list(queries))
    concurrent = ScanGroupExecutor(plain, workers=1).run(list(queries))
    _assert_identical(
        [t.result for t in reference.results], concurrent.results, "workers=1"
    )
    for field in ("queries", "groups", "base_scans", "shared_scans",
                  "fused_queries", "fallbacks"):
        assert getattr(concurrent.stats, field) == getattr(
            reference.stats, field
        ), field
    plain.close()


def test_cached_engine_batch_workers_identical_and_invalidating():
    engine = CachedEngine(create_engine("sqlite"))
    engine.load_table(_events_table())
    queries = [
        parse_query(
            "SELECT queue, COUNT(*) AS n FROM events "
            "WHERE priority = 2 GROUP BY queue"
        ),
        parse_query(
            "SELECT status, MAX(latency) AS hi FROM events "
            "WHERE priority = 2 GROUP BY status"
        ),
        parse_query("SELECT COUNT(*) AS n FROM events WHERE priority = 2"),
    ]
    sequential = [engine.execute(q) for q in queries]
    for _ in range(2):  # second round exercises the scan-group cache
        concurrent = engine.execute_batch(queries, workers=4)
        _assert_identical(sequential, concurrent, "cached workers=4")
    # Mutation invalidates; the next batch reflects the new data.
    engine.load_table(_events_table(rows=100, seed=8))
    fresh = [engine.execute(q) for q in queries]
    concurrent = engine.execute_batch(queries, workers=4)
    _assert_identical(fresh, concurrent, "cached workers=4 after reload")
    engine.close()


# ---------------------------------------------------------------------------
# SQLite across threads (the latent check_same_thread failure)
# ---------------------------------------------------------------------------


def test_sqlite_engine_usable_from_worker_threads():
    engine = create_engine("sqlite")
    engine.load_table(_events_table())
    query = parse_query(
        "SELECT queue, COUNT(*) AS n, SUM(latency) AS s FROM events "
        "WHERE priority >= 2 GROUP BY queue"
    )
    expected = engine.execute(query)
    outcomes: dict[int, ResultSet | Exception] = {}

    def worker(idx: int) -> None:
        try:
            outcomes[idx] = engine.execute(query)
        except Exception as exc:  # pragma: no cover - failure path
            outcomes[idx] = exc

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for idx, outcome in outcomes.items():
        assert isinstance(outcome, ResultSet), f"thread {idx}: {outcome!r}"
        assert outcome.rows == expected.rows
    engine.close()


def test_sqlite_replicas_see_reloaded_data():
    """A base-table load invalidates every thread's replica snapshot."""
    engine = create_engine("sqlite")
    engine.load_table(_events_table(rows=200))
    count = parse_query("SELECT COUNT(*) AS n FROM events")

    def threaded_count() -> int:
        box = {}
        t = threading.Thread(
            target=lambda: box.update(r=engine.execute(count))
        )
        t.start()
        t.join()
        return box["r"].rows[0][0]

    assert threaded_count() == 200
    engine.load_table(_events_table(rows=50))
    assert threaded_count() == 50
    engine.close()


def test_sqlite_batch_shared_scans_in_worker_threads():
    """Temp materializations stay private to each worker's connection."""
    engine = create_engine("sqlite")
    engine.load_table(_events_table())
    queries = [
        parse_query(
            f"SELECT {dim}, COUNT(*) AS n, AVG(latency) AS a FROM events "
            f"WHERE status = 'open' GROUP BY {dim}"
        )
        for dim in ("queue", "priority", "status")
    ] + [
        parse_query(
            f"SELECT {dim}, COUNT(*) AS n FROM events "
            f"WHERE priority = 3 GROUP BY {dim}"
        )
        for dim in ("queue", "status")
    ]
    sequential = [engine.execute(q) for q in queries]
    for _ in range(3):
        concurrent = engine.execute_batch(queries, workers=4)
        _assert_identical(sequential, concurrent, "sqlite shared scans")
    engine.close()


def test_sqlite_concurrent_same_group_batches_keep_types():
    """Two threads batching the same (table, predicate) group on one
    shared engine: each execution's temp relation (and its schema
    registration) must stay independent, or temporal columns silently
    decay to raw strings when one thread's unload races another."""
    import datetime as dt

    engine = create_engine("sqlite")
    engine.load_table(
        Table.from_columns(
            "orders",
            {
                "day": [dt.date(2024, 1, 1 + i % 5) for i in range(60)],
                "queue": ["a", "b", "c"] * 20,
                "total": [float(i) for i in range(60)],
            },
        )
    )
    batch_a = [
        parse_query(
            "SELECT day, COUNT(*) AS n FROM orders "
            "WHERE queue = 'a' GROUP BY day"
        ),
        parse_query(
            "SELECT day, SUM(total) AS s FROM orders "
            "WHERE queue = 'a' GROUP BY day"
        ),
    ]
    batch_b = [
        parse_query(
            "SELECT day, MAX(total) AS hi FROM orders "
            "WHERE queue = 'a' GROUP BY day"
        ),
        parse_query(
            "SELECT day, MIN(total) AS lo FROM orders "
            "WHERE queue = 'a' GROUP BY day"
        ),
    ]
    expected_a = [engine.execute(q) for q in batch_a]
    expected_b = [engine.execute(q) for q in batch_b]
    errors: list[AssertionError] = []
    barrier = threading.Barrier(2)

    def hammer(batch, expected):
        barrier.wait()
        try:
            for _ in range(20):
                _assert_identical(
                    expected, engine.execute_batch(list(batch)),
                    "concurrent same-group",
                )
        except AssertionError as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(batch_a, expected_a)),
        threading.Thread(target=hammer, args=(batch_b, expected_b)),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors[0]
    # Every result row must still carry real date objects.
    assert all(
        isinstance(row[0], dt.date) for row in expected_a[0].rows
    )
    engine.close()


def test_sqlite_owner_reads_race_worker_writes():
    """Owner-thread queries on the primary must serialize against base
    loads from worker threads — same connection, so an open read cursor
    otherwise makes the DDL fail with 'database table is locked'."""
    engine = create_engine("sqlite")
    engine.load_table(_events_table(rows=300))
    query = parse_query(
        "SELECT queue, COUNT(*) AS n, SUM(latency) AS s FROM events "
        "GROUP BY queue"
    )
    stop = threading.Event()
    errors: list[Exception] = []

    def loader():
        while not stop.is_set():
            try:
                engine.load_table(_events_table(rows=300))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
                return

    thread = threading.Thread(target=loader)
    thread.start()
    try:
        deadline = time.monotonic() + 0.4
        while time.monotonic() < deadline:
            engine.execute(query)  # owner thread, primary connection
    except Exception as exc:  # pragma: no cover - failure path
        errors.append(exc)
    finally:
        stop.set()
        thread.join()
    assert not errors, errors[0]
    engine.close()


def test_cached_engine_reuses_persistent_pool():
    """A long-lived CachedEngine must not pay thread + replica-snapshot
    startup on every batch — the executor keeps one pool."""
    engine = CachedEngine(create_engine("sqlite"))
    engine.load_table(_events_table())
    queries = [
        parse_query(
            f"SELECT queue, COUNT(*) AS n FROM events "
            f"WHERE priority = {p} GROUP BY queue"
        )
        for p in (1, 2, 3)
    ]
    engine.execute_batch(list(queries), workers=3)
    pool = engine._batch_executor._pool
    assert pool is not None
    for _ in range(5):
        engine.invalidate()  # force real engine work each round
        engine.execute_batch(list(queries), workers=3)
    assert engine._batch_executor._pool is pool  # same pool, same threads
    # Replicas are bounded by the pool's thread count, not call count.
    assert len(engine.inner._replicas) <= 3
    engine.close()
    assert engine._batch_executor._pool is None


def test_benchmark_config_session_workers_do_not_enable_cell_overlap():
    from repro.harness.config import BenchmarkConfig
    from repro.simulation.session import SessionConfig

    config = BenchmarkConfig(session=SessionConfig(workers=4))
    assert config.workers == 1  # runner stays sequential
    assert config.session.workers == 4
    mirrored = BenchmarkConfig(workers=3)
    assert mirrored.workers == 3
    assert mirrored.session.workers == 3  # default sessions follow


def test_sqlite_inflight_temp_survives_concurrent_base_load():
    """A base-table load must not invalidate a worker's replica while a
    scan group's temp relation is still live on it — the group finishes
    against its snapshot instead of crashing with 'no such table'."""
    from repro.engine.batch import TEMP_PREFIX
    from repro.sql.parser import parse_expression

    engine = create_engine("sqlite")
    engine.load_table(_events_table())
    temp = f"{TEMP_PREFIX}events_test_pin"
    steps = {"materialized": threading.Event(), "loaded": threading.Event()}
    outcome: dict[str, object] = {}

    def worker():
        try:
            assert engine.materialize_filtered(
                temp, "events", parse_expression("status = 'open'")
            )
            steps["materialized"].set()
            steps["loaded"].wait(timeout=5.0)
            outcome["result"] = engine.execute(
                parse_query(f'SELECT COUNT(*) AS n FROM "{temp}"')
            )
            engine.unload_table(temp)
        except Exception as exc:  # pragma: no cover - failure path
            outcome["error"] = exc

    thread = threading.Thread(target=worker)
    thread.start()
    assert steps["materialized"].wait(timeout=5.0)
    # Bump the generation mid-group: the worker's replica is pinned.
    engine.load_table(
        Table.from_columns("other", {"x": [1, 2, 3]})
    )
    steps["loaded"].set()
    thread.join(timeout=10.0)
    assert "error" not in outcome, outcome["error"]
    result = outcome["result"]
    assert isinstance(result, ResultSet) and result.rows[0][0] > 0
    engine.close()


def test_sqlite_replicas_reclaimed_with_pool_threads():
    """Per-call worker pools retire their threads; each dead thread's
    replica must be closed and untracked, not accumulate until
    close()."""
    import gc

    engine = create_engine("sqlite")
    engine.load_table(_events_table())
    queries = [
        parse_query(
            f"SELECT queue, COUNT(*) AS n FROM events "
            f"WHERE priority = {p} GROUP BY queue"
        )
        for p in (1, 2, 3)
    ]
    for _ in range(12):
        engine.execute_batch(list(queries), workers=3)
    gc.collect()
    # Live replicas are bounded by currently-live worker threads (zero
    # here — every per-call pool has shut down).
    assert len(engine._replicas) <= 3, len(engine._replicas)
    engine.close()


# ---------------------------------------------------------------------------
# CachedEngine under fire
# ---------------------------------------------------------------------------


class _SlowEngine(Engine):
    """Delegating wrapper that makes every execute take a beat —
    widens race windows so the stress tests actually overlap."""

    def __init__(self, inner: Engine, delay_s: float = 0.003) -> None:
        self._inner = inner
        self._delay_s = delay_s
        self.name = inner.name
        self.thread_safe = inner.thread_safe
        self.parallel_scans = inner.parallel_scans

    def load_table(self, table):
        self._inner.load_table(table)

    def unload_table(self, name):
        self._inner.unload_table(name)

    def table_schema(self, name):
        return self._inner.table_schema(name)

    def materialize_filtered(self, name, source, predicate):
        return self._inner.materialize_filtered(name, source, predicate)

    def execute(self, query):
        time.sleep(self._delay_s)
        return self._inner.execute(query)

    def close(self):
        self._inner.close()


def _version_table(version: int) -> Table:
    """All rows carry ``version`` so any result dates itself."""
    return Table.from_columns(
        "events",
        {
            "queue": ["a", "b"] * 10,
            "version": [version] * 20,
        },
    )


@pytest.mark.parametrize("inner_name", ["rowstore", "sqlite"])
def test_cached_engine_stress_no_lost_invalidation(inner_name):
    """Readers and reloaders hammer one CachedEngine; after the dust
    settles, the cache must serve the final version — a stale entry
    surviving the last invalidation is the lost-invalidation bug."""
    engine = CachedEngine(_SlowEngine(create_engine(inner_name), 0.0005))
    engine.load_table(_version_table(0))
    queries = [
        parse_query("SELECT MAX(version) AS v FROM events"),
        parse_query(
            "SELECT queue, MAX(version) AS v FROM events GROUP BY queue"
        ),
        parse_query("SELECT COUNT(*) AS n FROM events WHERE version >= 0"),
    ]
    stop = threading.Event()
    errors: list[Exception] = []

    def reader():
        rng = random.Random(threading.get_ident())
        while not stop.is_set():
            try:
                engine.execute(rng.choice(queries))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
                return

    def reloader():
        version = 1
        while not stop.is_set():
            try:
                engine.load_table(_version_table(version))
                version += 1
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
                return
            time.sleep(0.002)

    threads = [threading.Thread(target=reader) for _ in range(6)]
    threads.append(threading.Thread(target=reloader))
    for t in threads:
        t.start()
    time.sleep(0.4)
    stop.set()
    for t in threads:
        t.join()
    assert not errors, errors[0]

    final = 999
    engine.load_table(_version_table(final))
    for query in queries:
        for _ in range(2):  # second read exercises the cached entry
            result = engine.execute(query)
            for row in result.rows:
                assert final in row or row == (20,), (query.select, row)
    engine.close()


def test_flight_follower_after_invalidation_recomputes():
    """A caller arriving *after* a load_table completed must never be
    served by a flight leader that started on the pre-mutation data."""

    class _GatedEngine(Engine):
        """First execute blocks until released; later ones run free.

        thread_safe like SQLite: loads proceed while a read is in
        flight (a slot-serialized inner cannot race this way at all —
        its load waits for the in-flight execute).
        """

        thread_safe = True

        def __init__(self, inner):
            self._inner = inner
            self.name = inner.name
            self.started = threading.Event()
            self.release = threading.Event()
            self._first = True

        def load_table(self, table):
            self._inner.load_table(table)

        def table_schema(self, name):
            return self._inner.table_schema(name)

        def execute(self, query):
            # Compute first, *then* stall: the first caller ends up
            # holding a result of the pre-mutation snapshot.
            result = self._inner.execute(query)
            if self._first:
                self._first = False
                self.started.set()
                assert self.release.wait(timeout=10.0)
            return result

        def close(self):
            self._inner.close()

    gated = _GatedEngine(create_engine("vectorstore"))
    engine = CachedEngine(gated)
    engine.load_table(_version_table(0))
    query = parse_query("SELECT MAX(version) AS v FROM events")

    leader_box = {}
    leader = threading.Thread(
        target=lambda: leader_box.update(r=engine.execute(query))
    )
    leader.start()
    assert gated.started.wait(timeout=5.0)  # leader is inside compute
    engine.load_table(_version_table(1))  # completes while leader hangs
    follower_box = {}
    follower = threading.Thread(
        target=lambda: follower_box.update(r=engine.execute(query))
    )
    follower.start()
    time.sleep(0.05)  # follower reaches the flight
    gated.release.set()
    leader.join(timeout=10.0)
    follower.join(timeout=10.0)
    assert leader_box["r"].rows == [(0,)]  # leader saw the old snapshot
    assert follower_box["r"].rows == [(1,)]  # post-load caller sees v1
    # And the stale leader result must not have been cached:
    assert engine.execute(query).rows == [(1,)]
    engine.close()


def test_scan_group_cache_clear_fences_unseen_tables():
    """clear() must drop stores whose epoch predates it, even for
    tables that were never individually invalidated."""
    from repro.engine.cache import ScanGroupCache
    from repro.engine.interface import ResultSet as RS

    cache = ScanGroupCache()
    epoch = cache.epoch("events")  # table never invalidated before
    cache.clear()
    cache.store("events", "pred", {"sql": RS(["n"], [(1,)])}, epoch=epoch)
    assert cache.size == 0  # pre-clear compute must not repopulate


def test_cached_engine_concurrent_identical_queries_compute_once():
    counting = CountingEngine(_SlowEngine(create_engine("vectorstore"), 0.02))
    engine = CachedEngine(counting)
    engine.load_table(_events_table())
    query = parse_query(
        "SELECT queue, COUNT(*) AS n FROM events GROUP BY queue"
    )
    expected = None
    barrier = threading.Barrier(8)
    outcomes: list[ResultSet] = []
    lock = threading.Lock()

    def caller():
        barrier.wait()
        result = engine.execute(query)
        with lock:
            outcomes.append(result)

    threads = [threading.Thread(target=caller) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    expected = engine.execute(query)
    assert counting.base_scans() == 1  # single-flight: one inner compute
    assert all(o.rows == expected.rows for o in outcomes)
    assert engine.hits == 8  # 7 followers + 1 post-hoc cache hit
    assert engine.misses == 1
    engine.close()


def test_concurrent_identical_refreshes_share_scan_groups():
    """Two sessions refreshing the same dashboard state at the same
    instant must not both pay the scan: the group single-flights."""
    counting = CountingEngine(_SlowEngine(create_engine("vectorstore"), 0.01))
    engine = CachedEngine(counting)
    engine.load_table(_events_table())
    queries = [
        parse_query(
            f"SELECT {dim}, COUNT(*) AS n FROM events "
            f"WHERE status = 'open' GROUP BY {dim}"
        )
        for dim in ("queue", "priority")
    ]
    baseline_scans = []
    barrier = threading.Barrier(4)
    outcomes: list[list] = [None] * 4

    def refresher(idx: int):
        barrier.wait()
        outcomes[idx] = engine.execute_batch(list(queries))

    threads = [
        threading.Thread(target=refresher, args=(i,)) for i in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # One shared scan (the materialization counts as the base scan);
    # every concurrent refresh rode it.
    assert counting.base_scans() == 1
    reference = [engine.execute(q) for q in queries]
    for outcome in outcomes:
        _assert_identical(reference, outcome, "concurrent refresh")
    engine.close()


def test_no_deadlock_between_flight_and_engine_slot():
    """Regression: a batch task following a query flight while a direct
    execute's leader needs the engine slot must not deadlock (leaf-
    granular slots, never held across a flight wait)."""
    engine = CachedEngine(_SlowEngine(create_engine("rowstore"), 0.005))
    engine.load_table(_events_table())
    engine.load_table(
        Table.from_columns(
            "queues",
            {"name": ["a", "b", "c", "d"], "region": ["x", "x", "y", "y"]},
        )
    )
    # A join query is unbatchable: inside execute_batch it falls back
    # to the CachedEngine itself, where it can join a flight led by the
    # direct-execute thread.
    join = parse_query(
        "SELECT region, COUNT(*) AS n FROM events "
        "JOIN queues ON events.queue = queues.name GROUP BY region"
    )
    grouped = parse_query(
        "SELECT queue, COUNT(*) AS n FROM events "
        "WHERE status = 'open' GROUP BY queue"
    )
    stop = threading.Event()
    errors: list[Exception] = []

    def batcher():
        while not stop.is_set():
            try:
                engine.execute_batch([grouped, join])
                engine.invalidate()  # keep both threads off the fast path
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
                return

    def direct():
        while not stop.is_set():
            try:
                engine.execute(join)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
                return

    threads = [
        threading.Thread(target=batcher, daemon=True),
        threading.Thread(target=direct, daemon=True),
        threading.Thread(target=direct, daemon=True),
    ]
    for t in threads:
        t.start()
    time.sleep(0.5)
    stop.set()
    for t in threads:
        t.join(timeout=10.0)
    hung = [t for t in threads if t.is_alive()]
    assert not hung, "deadlock: flight leader vs engine slot"
    assert not errors, errors[0]
    engine.close()


def test_shared_latency_engine_concurrent_identical_batches():
    """Two sessions pushing the *same* scan group through one shared
    thread-safe wrapper over a pure-Python store: unique temp names
    keep the executions from dropping each other's relations."""
    engine = DispatchLatencyEngine(create_engine("rowstore"), 0.0)
    engine.load_table(_events_table())
    queries = [
        parse_query(
            f"SELECT {dim}, COUNT(*) AS n FROM events "
            f"WHERE status = 'open' GROUP BY {dim}"
        )
        for dim in ("queue", "priority", "status")
    ]
    expected = [engine.execute(q) for q in queries]
    errors: list[Exception] = []
    barrier = threading.Barrier(3)

    def refresher():
        barrier.wait()
        try:
            for _ in range(15):
                _assert_identical(
                    expected, engine.execute_batch(list(queries)),
                    "shared latency engine",
                )
        except Exception as exc:
            errors.append(exc)

    threads = [threading.Thread(target=refresher) for _ in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors[0]
    engine.close()


# ---------------------------------------------------------------------------
# Inter-session layer
# ---------------------------------------------------------------------------


def test_refresh_many_matches_sequential_across_dashboards():
    jobs = []
    for name in DASHBOARD_NAMES:
        spec = load_dashboard(name)
        table = generate_dataset(name, 200, seed=13)
        engine = create_engine("sqlite")
        engine.load_table(table)
        jobs.append(RefreshJob(DashboardState(spec, table), engine))
    sequential = refresh_many(jobs, workers=1)
    concurrent = refresh_many(jobs, workers=4)
    assert len(sequential) == len(concurrent) == len(jobs)
    for seq, conc in zip(sequential, concurrent):
        assert seq.keys() == conc.keys()
        for viz_id in seq:
            assert seq[viz_id].result == conc[viz_id].result, viz_id
    for job in jobs:
        job.engine.close()


def test_refresh_many_serializes_non_thread_safe_engines():
    """All six dashboards on ONE pure-Python engine instance: the
    execution slot must serialize them into a correct task queue."""
    engine = create_engine("rowstore")
    jobs = []
    for name in DASHBOARD_NAMES[:3]:
        spec = load_dashboard(name)
        table = generate_dataset(name, 150, seed=17)
        engine.load_table(table)
        jobs.append(RefreshJob(DashboardState(spec, table), engine))
    sequential = refresh_many(jobs, workers=1)
    concurrent = refresh_many(jobs, workers=4)
    for seq, conc in zip(sequential, concurrent):
        for viz_id in seq:
            assert seq[viz_id].result == conc[viz_id].result, viz_id
    engine.close()


def test_replay_workers_identical(tmp_path):
    from repro.logs.records import export_session
    from repro.logs.replay import replay_log
    from repro.simulation.session import SessionConfig, SessionSimulator
    from repro.simulation.workflows import get_workflow

    spec = load_dashboard("customer_service")
    table = generate_dataset("customer_service", 400, seed=5)
    measured = create_engine("vectorstore")
    measured.load_table(table)
    reference = create_engine("vectorstore")
    reference.load_table(table)
    goals = get_workflow("shneiderman").instantiate_for_dashboard(
        spec, random.Random(5)
    )
    log = export_session(
        SessionSimulator(
            spec, table, [g.query for g in goals],
            measured_engine=measured, reference_engine=reference,
            config=SessionConfig(seed=5),
        ).run()
    )
    replay_engine = create_engine("sqlite")
    replay_engine.load_table(table)
    for batch in (False, True):
        seq = replay_log(log, replay_engine, batch=batch, workers=1)
        conc = replay_log(log, replay_engine, batch=batch, workers=4)
        assert seq.matched and conc.matched
        assert [r.rows_returned for r in seq.results] == [
            r.rows_returned for r in conc.results
        ]
        assert [r.result.rows for r in seq.results] == [
            r.result.rows for r in conc.results
        ]
    replay_engine.close()
    measured.close()
    reference.close()


def test_latency_engine_overlaps_round_trips():
    """The serving-scenario wrapper: round trips overlap across workers
    even where compute cannot, and results stay identical."""
    inner = create_engine("vectorstore")
    engine = DispatchLatencyEngine(inner, latency_ms=20.0)
    engine.load_table(_events_table())
    # Four distinct filters -> four independent scan groups.
    queries = [
        parse_query(
            f"SELECT queue, COUNT(*) AS n FROM events "
            f"WHERE priority = {p} GROUP BY queue"
        )
        for p in (1, 2, 3, 4)
    ]
    sequential = [engine.execute(q) for q in queries]

    start = time.perf_counter()
    concurrent = engine.execute_batch(queries, workers=4)
    overlapped_s = time.perf_counter() - start
    _assert_identical(sequential, concurrent, "latency engine")
    # 4 groups x 20 ms round trip each: sequential pays >= 80 ms,
    # overlapped should land well under it.
    assert overlapped_s < 0.070, overlapped_s
    engine.close()
