"""Integration tests: full pipelines across module boundaries."""

import random

import pytest

from repro import (
    SessionConfig,
    SessionSimulator,
    create_engine,
    generate_dataset,
    get_template,
    get_workflow,
    load_dashboard,
)
from repro.dashboard.state import DashboardState
from repro.equivalence import EquivalenceSuite
from repro.equivalence.results import ResultCache
from repro.simulation.goals import GoalTracker
from repro.simulation.oracle import OracleModel
from repro.metrics.workload_stats import session_workload_statistics


class TestFigure3Figure4Scenario:
    """The paper's worked example, end to end."""

    @pytest.fixture(scope="class")
    def setup(self):
        spec = load_dashboard("customer_service")
        table = generate_dataset("customer_service", 3_000, seed=42)
        engine = create_engine("vectorstore")
        engine.load_table(table)
        goal = get_template("analyzing_spread").instantiate(
            "customer_service",
            categorical="queue",
            quantitative="lostCalls",
            agg="count",
            threshold=2,
        )
        return spec, table, engine, goal

    def test_goal_not_answered_by_any_single_base_query(self, setup):
        spec, table, engine, goal = setup
        state = DashboardState(spec, table)
        suite = EquivalenceSuite(engine)
        for query in state.all_queries().values():
            assert not suite.equivalent(goal.query, query)

    def test_goal_achieved_as_union_of_filtered_queries(self, setup):
        spec, table, engine, goal = setup
        state = DashboardState(spec, table)
        cache = ResultCache(engine)
        tracker = GoalTracker([goal.query], cache)
        tracker.observe(state.initial_queries())
        oracle = OracleModel(tracker, rng=random.Random(0))
        interactions = []
        while not tracker.complete and len(interactions) < 12:
            interaction = oracle.next_interaction(state)
            assert interaction is not None
            interactions.append(interaction)
            tracker.observe(state.apply(interaction))
        assert tracker.complete
        # Figure 4: the goal is covered via per-queue selections; with
        # replace-semantics selections, four clicks suffice (plus slack
        # for HAVING-excluded queues).
        assert len(interactions) <= 8


class TestGoalOrderingAcrossSession:
    def test_goals_pursued_in_order(self):
        spec = load_dashboard("customer_service")
        table = generate_dataset("customer_service", 1_500, seed=3)
        measured = create_engine("vectorstore")
        measured.load_table(table)
        reference = create_engine("vectorstore")
        reference.load_table(table)
        goals = get_workflow("battle_heer").instantiate_for_dashboard(
            spec, random.Random(6)
        )
        log = SessionSimulator(
            spec,
            table,
            [g.query for g in goals],
            measured_engine=measured,
            reference_engine=reference,
            config=SessionConfig(seed=6, p_markov_initial=0.0),
        ).run()
        goal_indexes = [
            r.goal_index for r in log.records if r.interaction is not None
        ]
        assert goal_indexes == sorted(goal_indexes)


class TestCrossEngineWorkloadConsistency:
    def test_same_session_same_results_on_all_engines(self):
        """Engines may differ in speed but never in answers."""
        spec = load_dashboard("it_monitor")
        table = generate_dataset("it_monitor", 800, seed=9)
        reference = create_engine("vectorstore")
        reference.load_table(table)
        goals = get_workflow("shneiderman").instantiate_for_dashboard(
            spec, random.Random(9)
        )
        logs = {}
        for name in ("rowstore", "vectorstore", "matstore", "sqlite"):
            measured = create_engine(name)
            measured.load_table(table)
            logs[name] = SessionSimulator(
                spec,
                table,
                [g.query for g in goals],
                measured_engine=measured,
                reference_engine=reference,
                config=SessionConfig(seed=9),
            ).run()
        baseline = logs["sqlite"]
        for name, log in logs.items():
            assert log.queries() == baseline.queries(), name
            for mine, theirs in zip(log.records, baseline.records):
                for a, b in zip(mine.queries, theirs.queries):
                    assert a.rows_returned == b.rows_returned, (
                        f"{name}: {a.sql}"
                    )


class TestWorkloadShapeMatchesTable4Scale:
    def test_simba_filters_bounded(self):
        """SIMBA queries carry few filters (Table 4: ~1.9-5.8), far
        below IDEBench's 13.2."""
        spec = load_dashboard("customer_service")
        table = generate_dataset("customer_service", 1_000, seed=1)
        measured = create_engine("vectorstore")
        measured.load_table(table)
        reference = create_engine("vectorstore")
        reference.load_table(table)
        goals = get_workflow("shneiderman").instantiate_for_dashboard(
            spec, random.Random(1)
        )
        log = SessionSimulator(
            spec,
            table,
            [g.query for g in goals],
            measured_engine=measured,
            reference_engine=reference,
            config=SessionConfig(seed=1),
        ).run()
        stats = session_workload_statistics([log], "cs")
        assert stats.filters.mean < 6
        assert stats.query_count > 10


class TestSpecDrivenPortability:
    def test_json_spec_runs_identically(self, tmp_path):
        """A dashboard serialized to JSON and reloaded produces the
        same simulation — the spec file is the full interface contract."""
        from repro.dashboard.spec import DashboardSpec

        spec = load_dashboard("circulation")
        path = tmp_path / "circulation.json"
        path.write_text(spec.to_json())
        reloaded = DashboardSpec.from_json(path.read_text())

        table = generate_dataset("circulation", 600, seed=2)

        def run(dashboard_spec):
            measured = create_engine("vectorstore")
            measured.load_table(table)
            reference = create_engine("vectorstore")
            reference.load_table(table)
            goals = get_workflow("shneiderman").instantiate_for_dashboard(
                dashboard_spec, random.Random(2)
            )
            return SessionSimulator(
                dashboard_spec,
                table,
                [g.query for g in goals],
                measured_engine=measured,
                reference_engine=reference,
                config=SessionConfig(seed=2),
            ).run()

        assert run(spec).queries() == run(reloaded).queries()
