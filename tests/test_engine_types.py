"""Unit tests for data types and coercion."""

import datetime as dt

import pytest

from repro.engine.types import DataType, coerce, infer_type, sort_key


class TestDataType:
    def test_numeric_flags(self):
        assert DataType.INTEGER.is_numeric
        assert DataType.FLOAT.is_numeric
        assert not DataType.STRING.is_numeric

    def test_temporal_flags(self):
        assert DataType.DATE.is_temporal
        assert DataType.TIMESTAMP.is_temporal
        assert not DataType.INTEGER.is_temporal

    def test_categorical_flags(self):
        assert DataType.STRING.is_categorical
        assert DataType.BOOLEAN.is_categorical
        assert not DataType.FLOAT.is_categorical


class TestCoerce:
    def test_none_passes_through(self):
        for dtype in DataType:
            assert coerce(None, dtype) is None

    def test_integer_from_string(self):
        assert coerce("42", DataType.INTEGER) == 42

    def test_integer_from_integral_float(self):
        assert coerce(3.0, DataType.INTEGER) == 3

    def test_integer_rejects_fractional_float(self):
        with pytest.raises(ValueError):
            coerce(3.5, DataType.INTEGER)

    def test_float_from_int(self):
        value = coerce(3, DataType.FLOAT)
        assert value == 3.0
        assert isinstance(value, float)

    def test_string_from_anything(self):
        assert coerce(12, DataType.STRING) == "12"

    def test_boolean_from_int(self):
        assert coerce(1, DataType.BOOLEAN) is True
        assert coerce(0, DataType.BOOLEAN) is False

    def test_boolean_from_string(self):
        assert coerce("true", DataType.BOOLEAN) is True

    def test_boolean_rejects_other_ints(self):
        with pytest.raises(ValueError):
            coerce(2, DataType.BOOLEAN)

    def test_date_from_iso_string(self):
        assert coerce("2024-03-01", DataType.DATE) == dt.date(2024, 3, 1)

    def test_date_from_datetime_truncates(self):
        assert coerce(
            dt.datetime(2024, 3, 1, 10), DataType.DATE
        ) == dt.date(2024, 3, 1)

    def test_timestamp_from_date(self):
        assert coerce(dt.date(2024, 3, 1), DataType.TIMESTAMP) == dt.datetime(
            2024, 3, 1
        )

    def test_timestamp_from_iso(self):
        assert coerce(
            "2024-03-01T10:30:00", DataType.TIMESTAMP
        ) == dt.datetime(2024, 3, 1, 10, 30)


class TestInferType:
    def test_all_ints(self):
        assert infer_type([1, 2, 3]) is DataType.INTEGER

    def test_ints_and_floats_widen(self):
        assert infer_type([1, 2.5]) is DataType.FLOAT

    def test_bools(self):
        assert infer_type([True, False]) is DataType.BOOLEAN

    def test_strings(self):
        assert infer_type(["a", "b"]) is DataType.STRING

    def test_dates(self):
        assert infer_type([dt.date(2024, 1, 1)]) is DataType.DATE

    def test_dates_and_datetimes_widen(self):
        assert (
            infer_type([dt.date(2024, 1, 1), dt.datetime(2024, 1, 1)])
            is DataType.TIMESTAMP
        )

    def test_nones_ignored(self):
        assert infer_type([None, 5, None]) is DataType.INTEGER

    def test_all_none_defaults_to_string(self):
        assert infer_type([None]) is DataType.STRING

    def test_mixed_defaults_to_string(self):
        assert infer_type([1, "a"]) is DataType.STRING


class TestSortKey:
    def test_none_sorts_first(self):
        values = [3, None, 1]
        assert sorted(values, key=sort_key) == [None, 1, 3]

    def test_mixed_numeric(self):
        values = [2.5, 1, 3]
        assert sorted(values, key=sort_key) == [1, 2.5, 3]

    def test_strings_after_numbers(self):
        values = ["a", 1]
        assert sorted(values, key=sort_key) == [1, "a"]

    def test_dates_sort_chronologically(self):
        a, b = dt.date(2024, 1, 2), dt.date(2024, 1, 10)
        assert sorted([b, a], key=sort_key) == [a, b]

    def test_total_order_never_raises(self):
        values = [None, True, 2, "x", dt.date(2024, 1, 1), 3.5]
        sorted(values, key=sort_key)  # must not raise
