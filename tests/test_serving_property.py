"""Property: interleavings never leave the cross-session cache stale.

Mirrors the equivalence-property style of ``test_execution_policy.py``:
Hypothesis drives arbitrary interleavings of the session registry's
four lifecycle events — **attach** (create a session and render it),
**refresh** (re-render an existing one, warming/riding the cache),
**invalidate** (``load_table`` a different generation, racing whatever
is cached), **expire** (advance the injected clock past the TTL and
sweep) — and after every sequence a brand-new session's refresh must be
byte-identical to a from-scratch direct
:class:`repro.Session` over whatever table generation is current.

Any epoch-accounting bug (a store surviving its invalidation, a
follower served a pre-swap flight, an expired session pinning state)
shows up as a signature mismatch on some interleaving.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.dashboard.library import load_dashboard
from repro.errors import UnknownSessionError
from repro.serving import ServingApp, ServingConfig, results_signature
from repro.workload import generate_dataset

DASHBOARD = "customer_service"
ENGINE = "vectorstore"
TTL = 20.0

#: Three distinguishable table generations (different row counts, so
#: every aggregate differs between them).
TABLES = [
    generate_dataset(DASHBOARD, rows, seed=13) for rows in (150, 210, 270)
]
SPEC = load_dashboard(DASHBOARD)

#: Expected signatures per generation, computed once from a direct
#: uncached session — the from-scratch ground truth.
_EXPECTED: dict[int, dict] = {}


def expected_signature(version: int) -> dict:
    cached = _EXPECTED.get(version)
    if cached is None:
        with repro.connect(ENGINE) as direct:
            direct.load(TABLES[version])
            cached = results_signature(direct.refresh(DASHBOARD))
        _EXPECTED[version] = cached
    return cached


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


OPS = st.sampled_from(["attach", "refresh", "invalidate", "expire"])


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(OPS, min_size=1, max_size=10))
def test_any_interleaving_is_consistent_with_from_scratch_refresh(ops):
    clock = FakeClock()
    app = ServingApp(
        ServingConfig(session_ttl=TTL, sweep_interval=3600.0),
        clock=clock,
    )
    app.load_table(TABLES[0])
    app.register_dashboard(SPEC)
    version = 0
    live: list[str] = []  # session ids we believe are alive
    with app:
        for op in ops:
            clock.now += 1.0
            if op == "attach":
                descriptor = app.create_session(
                    f"tenant-{len(live) % 3}", DASHBOARD, engine=ENGINE
                )
                live.append(descriptor["session_id"])
                served = app.refresh(descriptor["session_id"])
                assert results_signature(served) == expected_signature(
                    version
                )
            elif op == "refresh" and live:
                try:
                    served = app.refresh(live[-1])
                except UnknownSessionError:
                    live.pop()  # expired under us; clients re-create
                else:
                    assert results_signature(
                        served
                    ) == expected_signature(version)
            elif op == "invalidate":
                version = (version + 1) % len(TABLES)
                app.load_table(TABLES[version])
            elif op == "expire":
                clock.now += TTL + 1.0
                app.sweep()
                live.clear()

        # The invariant: whatever happened, a fresh session refreshed
        # from scratch serves exactly the current generation's bytes.
        final = app.create_session("tenant-final", DASHBOARD, engine=ENGINE)
        served = app.refresh(final["session_id"])
        assert results_signature(served) == expected_signature(version)
        assert app.error_count == 0

        host = app.host_for(ENGINE)
        stats = host.cache.stats
        assert stats.refreshes >= 1
        assert stats.hits + stats.misses >= stats.refreshes


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
