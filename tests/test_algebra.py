"""Unit tests for the goal algebra, translation, and templates."""

import random

import pytest

from repro.algebra import (
    Agg,
    Attribute,
    AttributeRole,
    Compare,
    Concat,
    Const,
    FilterCondition,
    FilterOp,
    GOAL_TEMPLATES,
    MapOp,
    Nest,
    Ratio,
    TemplateParameterError,
    get_template,
    translate,
)
from repro.engine.table import ColumnDef, Schema
from repro.engine.types import DataType
from repro.errors import GoalError
from repro.sql.formatter import format_query
from repro.sql.parser import parse_query

Q = Attribute("queue", AttributeRole.CATEGORICAL)
L = Attribute("lostCalls", AttributeRole.QUANTITATIVE)
T = Attribute("ts", AttributeRole.TEMPORAL)


def sql(goal):
    return format_query(goal.query)


class TestOperators:
    def test_plus_builds_concat(self):
        assert isinstance(Q + L, Concat)

    def test_mul_builds_compare(self):
        assert isinstance(Q * Agg(L, "count"), Compare)

    def test_sub_builds_filter(self):
        assert isinstance(Q - "A", FilterOp)

    def test_div_builds_nest(self):
        assert isinstance(Q / L, Nest)

    def test_filter_by_set(self):
        node = Q - {"A", "B"}
        assert isinstance(node, FilterOp)

    def test_filter_by_empty_set_raises(self):
        with pytest.raises(GoalError):
            Q - set()

    def test_agg_validates_function(self):
        with pytest.raises(GoalError):
            Agg(L, "median")

    def test_map_validates_function(self):
        with pytest.raises(GoalError):
            MapOp(L, "frobnicate")

    def test_filter_condition_validates_operator(self):
        with pytest.raises(GoalError):
            FilterCondition(Agg(L, "count"), "~", 2)

    def test_attributes_collected_left_to_right(self):
        expr = Compare(Q, Concat(Agg(L, "max"), Agg(L, "min")))
        assert [a.name for a in expr.attributes()] == [
            "queue", "lostCalls", "lostCalls",
        ]

    def test_str_is_readable(self):
        expr = Q * Agg(L, "count")
        assert "count(lostCalls)" in str(expr)


class TestTranslation:
    def test_figure3_goal(self):
        # Q × count(lostCalls) - {count(lostCalls) < 2}
        expr = FilterOp(
            Compare(Q, Agg(L, "count")),
            FilterCondition(Agg(L, "count"), "<", 2),
        )
        goal = translate(expr, "customer_service")
        assert parse_query(sql(goal)) == parse_query(
            "SELECT queue, COUNT(lostCalls) AS count_lostCalls "
            "FROM customer_service GROUP BY queue "
            "HAVING COUNT(lostCalls) >= 2"
        )

    def test_compare_groups_by_left(self):
        goal = translate(Compare(Q, Agg(L, "sum")), "t")
        query = goal.query
        assert query.group_by
        assert query.group_by[0].name == "queue"

    def test_concat_of_two_quantitative_is_projection(self):
        a = Attribute("x", AttributeRole.QUANTITATIVE)
        b = Attribute("y", AttributeRole.QUANTITATIVE)
        goal = translate(Concat(a, b), "t")
        assert not goal.query.group_by
        assert len(goal.query.select) == 2

    def test_temporal_map_becomes_group_key(self):
        goal = translate(
            Compare(MapOp(T, "hour"), Agg(L, "avg")), "t"
        )
        assert "HOUR(ts)" in sql(goal)
        assert "GROUP BY HOUR(ts)" in sql(goal)

    def test_example_2_2_ratio(self):
        # R × MAP(AGG(C,sum)/AGG(C,count), avg)
        c = Attribute("calls", AttributeRole.QUANTITATIVE)
        r = Attribute("repID", AttributeRole.CATEGORICAL)
        expr = Compare(
            r, MapOp(Ratio(Agg(c, "sum"), Agg(c, "count")), "avg")
        )
        goal = translate(expr, "customer_service")
        text = sql(goal)
        assert "SUM(calls) / COUNT(calls)" in text
        assert "GROUP BY repID" in text

    def test_constant_filter_becomes_not_in(self):
        goal = translate(FilterOp(Compare(Q, Agg(L, "count")), Const("D")), "t")
        assert "queue NOT IN ('D')" in sql(goal)

    def test_where_vs_having_placement(self):
        # Non-aggregate condition goes to WHERE.
        h = Attribute("hour", AttributeRole.QUANTITATIVE)
        expr = FilterOp(
            Compare(Q, Agg(L, "count")),
            FilterCondition(h, "<", 9),
        )
        goal = translate(expr, "t")
        assert "WHERE hour >= 9" in sql(goal)

    def test_nest_adds_both_keys(self):
        goal = translate(
            Nest(Q, Compare(Attribute("repID"), Agg(L, "count"))), "t"
        )
        text = sql(goal)
        assert "GROUP BY queue, repID" in text

    def test_bin_map(self):
        d = Attribute("duration", AttributeRole.QUANTITATIVE)
        goal = translate(
            Compare(MapOp(d, "bin", arg=5), Agg(L, "count")), "t"
        )
        assert "BIN(duration, 5)" in sql(goal)

    def test_lone_constant_raises(self):
        with pytest.raises(GoalError):
            translate(Compare(Q, Const(5)), "t")

    def test_empty_expression_raises(self):
        with pytest.raises(GoalError):
            translate(FilterOp(Const(1), Const(2)), "t")


class TestTemplates:
    SCHEMA = Schema(
        [
            ColumnDef("queue", DataType.STRING),
            ColumnDef("hour", DataType.INTEGER),
            ColumnDef("duration", DataType.FLOAT),
            ColumnDef("ts", DataType.TIMESTAMP),
        ]
    )

    def test_registry_has_six_templates(self):
        assert len(GOAL_TEMPLATES) == 6

    def test_all_templates_auto_instantiate(self):
        for name, template in GOAL_TEMPLATES.items():
            goal = template.instantiate_for_schema(
                "t", self.SCHEMA, random.Random(3)
            )
            assert goal.template == name
            assert goal.query.from_table.name == "t"

    def test_get_template_unknown_raises(self):
        with pytest.raises(TemplateParameterError):
            get_template("nope")

    def test_requirements_block_unsatisfiable(self):
        schema = Schema([ColumnDef("only_string", DataType.STRING)])
        with pytest.raises(TemplateParameterError):
            get_template("finding_correlations").instantiate_for_schema(
                "t", schema
            )

    def test_usable_columns_restrict_choice(self):
        goal = get_template("measuring_differences").instantiate_for_schema(
            "t",
            self.SCHEMA,
            random.Random(0),
            usable_columns={"queue", "duration"},
        )
        text = format_query(goal.query)
        assert "queue" in text
        assert "duration" in text

    def test_correlations_modulated_form(self):
        goal = get_template("finding_correlations").instantiate(
            "cs",
            quantitative1="calls",
            quantitative2="abandoned",
            modulator="hour",
            agg1="count",
            agg2="sum",
        )
        text = format_query(goal.query)
        assert "GROUP BY hour" in text
        assert "COUNT(calls)" in text
        assert "SUM(abandoned)" in text

    def test_filtering_comparison_direction(self):
        goal = get_template("filtering").instantiate(
            "t",
            categorical="queue",
            quantitative="duration",
            agg="sum",
            comparison=">",
            constant=10,
        )
        assert "HAVING SUM(duration) > 10" in format_query(goal.query)

    def test_identification_shape(self):
        goal = get_template("identification").instantiate(
            "t", categorical="queue", quantitative="duration"
        )
        text = format_query(goal.query)
        assert "MAX(duration)" in text
        assert "MIN(duration)" in text

    def test_temporal_patterns_units(self):
        goal = get_template("temporal_patterns").instantiate(
            "t", temporal="ts", quantitative="duration", agg="avg",
            unit="day",
        )
        assert "DAY(ts)" in format_query(goal.query)

    def test_goal_types_cover_battle_heer_categories(self):
        goal_types = {t.goal_type for t in GOAL_TEMPLATES.values()}
        assert len(goal_types) == 4
