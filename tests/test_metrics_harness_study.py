"""Tests for metrics, the benchmark harness, and the user-study module."""

import pytest

from repro.errors import ConfigError
from repro.harness import BenchmarkConfig, BenchmarkRunner, table3_matrix
from repro.metrics import duration_summary, format_table, workload_statistics
from repro.metrics.workload_stats import MeanStd, _mean_std


class TestMeanStd:
    def test_empty(self):
        stat = _mean_std([])
        assert stat.mean == 0.0
        assert stat.count == 0

    def test_single_value(self):
        stat = _mean_std([5.0])
        assert stat.mean == 5.0
        assert stat.std == 0.0

    def test_known_values(self):
        stat = _mean_std([1.0, 2.0, 3.0])
        assert stat.mean == pytest.approx(2.0)
        assert stat.std == pytest.approx(1.0)

    def test_format(self):
        assert str(MeanStd(1.5, 0.25, 10)) == "1.5 ± 0.2"


class TestWorkloadStatistics:
    def test_from_sql_strings(self):
        stats = workload_statistics(
            [
                "SELECT q, COUNT(x) FROM t WHERE a = 1 GROUP BY q",
                "SELECT a, b FROM t WHERE a = 1 AND b = 2",
            ],
            label="demo",
        )
        assert stats.query_count == 2
        assert stats.plain_columns.mean == pytest.approx(1.5)
        assert stats.aggregated_columns.mean == pytest.approx(0.5)
        assert stats.filters.mean == pytest.approx(1.5)

    def test_as_row_format(self):
        stats = workload_statistics(["SELECT a FROM t"], label="x")
        row = stats.as_row()
        assert row["statistic"] == "x"
        assert "±" in row["count_plain_columns"]


class TestDurationSummary:
    def test_empty(self):
        summary = duration_summary("x", [])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_quartiles_ordered(self):
        summary = duration_summary("x", [float(i) for i in range(100)])
        assert summary.p25 <= summary.median <= summary.p75 <= summary.p95
        assert summary.iqr == pytest.approx(summary.p75 - summary.p25)

    def test_as_row(self):
        row = duration_summary("x", [1.0, 2.0]).as_row()
        assert row["label"] == "x"
        assert row["queries"] == 2


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_alignment(self):
        text = format_table([{"a": 1, "bb": "xy"}, {"a": 222, "bb": "z"}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")


class TestBenchmarkConfig:
    def test_defaults_valid(self):
        BenchmarkConfig()

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError):
            BenchmarkConfig(engines=("oracle-12c",))

    def test_unknown_workflow_rejected(self):
        with pytest.raises(ConfigError):
            BenchmarkConfig(workflows=("random-walk",))

    def test_unknown_dashboard_rejected(self):
        with pytest.raises(ConfigError):
            BenchmarkConfig(dashboards=("excel",))

    def test_zero_runs_rejected(self):
        with pytest.raises(ConfigError):
            BenchmarkConfig(runs=0)

    def test_paper_scale_matches_table3(self):
        config = BenchmarkConfig.paper_scale()
        assert config.sizes == {
            "100K": 100_000, "1M": 1_000_000, "10M": 10_000_000,
        }
        assert config.runs == 8

    def test_table3_matrix_enumeration(self):
        config = BenchmarkConfig(
            dashboards=("circulation", "myride"),
            workflows=("shneiderman",),
            sizes={"1K": 1000},
        )
        rows = table3_matrix(config)
        assert len(rows) == 2
        assert rows[0]["goal_sequence"] == "shneiderman"


class TestBenchmarkRunner:
    @pytest.fixture(scope="class")
    def result(self):
        config = BenchmarkConfig(
            dashboards=("customer_service", "myride"),
            workflows=("shneiderman", "battle_heer"),
            engines=("vectorstore", "sqlite"),
            sizes={"800": 800},
            runs=1,
            reference_rows=800,
        )
        return BenchmarkRunner(config).run()

    def test_myride_battle_heer_skipped(self, result):
        assert ("myride", "battle_heer", "800") in result.skipped

    def test_run_count(self, result):
        # (cs x 2 workflows + myride x 1 workflow) x 2 engines x 1 run
        assert len(result.runs) == 6

    def test_durations_filterable(self, result):
        cs = result.durations(dashboard="customer_service")
        assert cs
        sqlite_only = result.durations(engine="sqlite")
        assert len(sqlite_only) < len(cs) + len(
            result.durations(dashboard="myride")
        )

    def test_summaries_by_dashboard(self, result):
        labels = {s.label for s in result.summaries_by("dashboard")}
        assert labels == {"customer_service", "myride"}

    def test_summaries_by_two_fields(self, result):
        summaries = result.summaries_by("workflow", "engine")
        assert all(" / " in s.label for s in summaries)

    def test_every_run_has_queries(self, result):
        for run in result.runs:
            assert run.queries > 0
            assert run.durations_ms
            assert run.average_duration > 0


class TestStudy:
    def test_study_structure(self):
        from repro.study import run_user_study

        result = run_user_study(seed=4, rows=800, num_experts=4)
        assert result.total_guesses == 8
        assert set(result.guesses_by_dashboard) == {
            "it_monitor", "customer_service",
        }
        assert 0.0 <= result.p_value <= 1.0
        rows = result.as_rows()
        assert rows[-1]["dashboard"] == "overall"

    def test_features_recorded(self):
        from repro.study import run_user_study

        result = run_user_study(seed=4, rows=800, num_experts=2)
        for dashboard in ("it_monitor", "customer_service"):
            features = result.features[dashboard]
            assert "simba_repeat_signal" in features
            assert features["human_repeat_signal"] == 0.0

    def test_judge_flips_coin_below_sensitivity(self):
        import random

        from repro.simulation.session import SessionLog
        from repro.study.discriminator import ExpertJudge

        empty_log = SessionLog(dashboard="d", engine="e", workflow=None)
        judge = ExpertJudge(rng=random.Random(0))
        guesses = {
            judge.guess_simulated(empty_log, empty_log) for _ in range(20)
        }
        assert guesses == {0, 1}  # pure coin flips

    def test_suppress_repeated_empty(self):
        from repro.simulation.session import (
            InteractionRecord,
            SessionLog,
        )
        from repro.dashboard.state import Interaction, InteractionKind
        from repro.engine.interface import QueryResult, ResultSet
        from repro.study.experiment import suppress_repeated_empty

        def record(step, empty):
            rs = ResultSet(["a"], [] if empty else [(1,)])
            qr = QueryResult(rs, 1.0, "e", "SELECT a FROM t")
            return InteractionRecord(
                step=step,
                goal_index=0,
                model="markov",
                interaction=Interaction(InteractionKind.RESET),
                queries=[qr],
                progress_after=0.0,
            )

        log = SessionLog(dashboard="d", engine="e", workflow=None)
        log.records = [record(1, True), record(2, True), record(3, False)]
        cleaned = suppress_repeated_empty(log)
        assert len(cleaned.records) == 2  # second empty dropped


class TestHarnessLogExport:
    def test_runner_exports_jsonl_logs(self, tmp_path):
        from repro.harness.config import BenchmarkConfig
        from repro.harness.runner import BenchmarkRunner
        from repro.logs.io import read_jsonl
        from repro.logs.replay import replay_log
        from repro.engine.registry import create_engine
        from repro.workload import generate_dataset

        config = BenchmarkConfig(
            dashboards=("customer_service",),
            workflows=("shneiderman",),
            engines=("vectorstore",),
            sizes={"tiny": 2_000},
            runs=1,
            seed=4,
        )
        directory = tmp_path / "logs"
        result = BenchmarkRunner(config, log_directory=str(directory)).run()
        files = sorted(directory.glob("*.jsonl"))
        assert len(files) == len(result.runs) == 1
        log = read_jsonl(files[0])
        assert log.query_count == result.runs[0].queries

        # The exported log replays cleanly against the same dataset.
        engine = create_engine("vectorstore")
        engine.load_table(generate_dataset("customer_service", 2_000, seed=4))
        assert replay_log(log, engine).matched
