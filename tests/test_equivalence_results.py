"""Unit tests for result coverage, subsumption, and the suite."""

import pytest

from repro.engine.interface import ResultSet
from repro.equivalence import (
    EquivalenceMethod,
    EquivalenceSuite,
    ResultCache,
    coverage_fraction,
    covers,
)
from repro.equivalence.results import (
    goal_set_covered,
    goal_set_overlap,
    result_equal,
    result_subsumes,
)
from repro.equivalence.syntactic import (
    is_textual_prefix,
    similarity,
    syntactically_equivalent,
)
from repro.sql.parser import parse_query


def rs(columns, rows):
    return ResultSet(columns, rows)


class TestCoverage:
    def test_identical_results_cover(self):
        goal = rs(["q", "n"], [("A", 1), ("B", 2)])
        assert covers(goal, [rs(["q", "n"], [("A", 1), ("B", 2)])])

    def test_union_of_partial_results_covers(self):
        goal = rs(["q", "n"], [("A", 1), ("B", 2)])
        parts = [
            rs(["q", "n"], [("A", 1)]),
            rs(["q", "n"], [("B", 2)]),
        ]
        assert covers(goal, parts)

    def test_missing_value_blocks_coverage(self):
        goal = rs(["q", "n"], [("A", 1), ("B", 2)])
        assert not covers(goal, [rs(["q", "n"], [("A", 1)])])

    def test_extra_columns_ok(self):
        goal = rs(["n"], [(5,)])
        observed = rs(["n", "extra"], [(5, "x")])
        assert covers(goal, [observed])

    def test_empty_goal_always_covered(self):
        assert covers(rs(["a"], []), [])

    def test_column_name_case_insensitive(self):
        goal = rs(["N"], [(5,)])
        assert covers(goal, [rs(["n"], [(5,)])])

    def test_float_int_normalization(self):
        goal = rs(["n"], [(2,)])
        assert covers(goal, [rs(["n"], [(2.0,)])])

    def test_value_match_fallback_for_renamed_column(self):
        goal = rs(["total"], [(7,), (9,)])
        observed = rs(["some_alias"], [(7,), (9,), (11,)])
        assert covers(goal, [observed])

    def test_fraction_partial(self):
        goal = rs(["q"], [("A",), ("B",), ("C",), ("D",)])
        observed = rs(["q"], [("A",), ("B",)])
        assert coverage_fraction(goal, [observed]) == 0.5

    def test_fraction_counts_distinct_cells(self):
        goal = rs(["q"], [("A",), ("A",), ("B",)])  # 2 distinct cells
        observed = rs(["q"], [("A",)])
        assert coverage_fraction(goal, [observed]) == 0.5


class TestSubsumptionAndEquality:
    def test_subsumes(self):
        goal = rs(["a"], [(1,)])
        assert result_subsumes(goal, rs(["a"], [(1,), (2,)]))

    def test_equal_is_mutual(self):
        a = rs(["a"], [(1,), (2,)])
        b = rs(["a"], [(2,), (1,)])
        assert result_equal(a, b)

    def test_unequal(self):
        assert not result_equal(rs(["a"], [(1,)]), rs(["a"], [(2,)]))


class TestResultCache:
    def test_caches_by_sql(self, vector_engine):
        cache = ResultCache(vector_engine)
        query = parse_query("SELECT COUNT(*) FROM customer_service")
        cache.execute(query)
        cache.execute(query)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_clear(self, vector_engine):
        cache = ResultCache(vector_engine)
        cache.execute(parse_query("SELECT COUNT(*) FROM customer_service"))
        cache.clear()
        assert cache.misses == 0


class TestGoalSetFunctions:
    def test_goal_set_covered(self, vector_engine):
        cache = ResultCache(vector_engine)
        goal = parse_query(
            "SELECT queue, COUNT(*) AS n FROM customer_service GROUP BY queue"
        )
        same = parse_query(
            "SELECT queue, COUNT(*) AS n FROM customer_service GROUP BY queue"
        )
        assert goal_set_covered([goal], [same], cache)

    def test_goal_set_covered_by_union(self, vector_engine):
        cache = ResultCache(vector_engine)
        goal = parse_query(
            "SELECT queue, COUNT(lostCalls) AS count_lostCalls "
            "FROM customer_service GROUP BY queue"
        )
        pieces = [
            parse_query(
                f"SELECT COUNT(lostCalls) AS count_lostCalls "
                f"FROM customer_service WHERE queue IN ('{q}')"
            )
            for q in "ABCD"
        ] + [
            parse_query(
                "SELECT queue, COUNT(*) FROM customer_service GROUP BY queue"
            )
        ]
        assert goal_set_covered([goal], pieces, cache)

    def test_overlap_grows_monotonically(self, vector_engine):
        cache = ResultCache(vector_engine)
        goal = parse_query(
            "SELECT queue, COUNT(lostCalls) AS count_lostCalls "
            "FROM customer_service GROUP BY queue"
        )
        observed = [
            parse_query(
                "SELECT queue, COUNT(*) FROM customer_service GROUP BY queue"
            )
        ]
        first = goal_set_overlap([goal], observed, cache)
        observed.append(
            parse_query(
                "SELECT COUNT(lostCalls) AS count_lostCalls "
                "FROM customer_service WHERE queue IN ('A')"
            )
        )
        second = goal_set_overlap([goal], observed, cache)
        assert second >= first


class TestSyntactic:
    def test_exact_match(self):
        assert syntactically_equivalent(
            "SELECT a FROM t", "select  a  from t"
        )

    def test_similarity_reflexive(self):
        assert similarity("SELECT a FROM t", "SELECT a FROM t") == 1.0

    def test_below_threshold_not_equivalent(self):
        assert not syntactically_equivalent(
            "SELECT a FROM t", "SELECT z9 FROM other_table WHERE x = 1"
        )

    def test_small_whitespace_difference_equivalent(self):
        assert syntactically_equivalent(
            "SELECT a, b FROM t WHERE x = 1",
            "SELECT a,b FROM t   WHERE x=1",
        )

    def test_prefix_detection(self):
        assert is_textual_prefix(
            "SELECT a FROM t", "SELECT a FROM t WHERE x = 1"
        )
        assert not is_textual_prefix(
            "SELECT a FROM t WHERE x = 1", "SELECT a FROM t"
        )


class TestSuite:
    @pytest.fixture()
    def suite(self, vector_engine):
        return EquivalenceSuite(vector_engine)

    def test_syntactic_tier_fires_first(self, suite):
        a = parse_query("SELECT queue FROM customer_service")
        verdict = suite.equivalent(a, a)
        assert verdict.equivalent
        assert verdict.method is EquivalenceMethod.SYNTACTIC

    def test_semantic_tier(self, suite):
        a = parse_query(
            "SELECT queue, COUNT(calls) FROM customer_service "
            "WHERE hour >= 9 AND queue IN ('A','B') GROUP BY queue"
        )
        b = parse_query(
            "SELECT COUNT(calls), queue FROM customer_service "
            "WHERE queue IN ('B','A') AND hour >= 9 GROUP BY queue"
        )
        verdict = suite.equivalent(a, b)
        assert verdict.equivalent
        assert verdict.method in (
            EquivalenceMethod.SYNTACTIC,
            EquivalenceMethod.SEMANTIC,
        )

    def test_result_tier(self, suite):
        # Different shapes, same result set: hour < 24 is a no-op filter.
        a = parse_query("SELECT COUNT(*) AS c FROM customer_service")
        b = parse_query(
            "SELECT COUNT(*) AS c FROM customer_service WHERE hour < 24"
        )
        verdict = suite.equivalent(a, b)
        assert verdict.equivalent
        assert verdict.method is EquivalenceMethod.RESULT

    def test_non_equivalent(self, suite):
        a = parse_query("SELECT COUNT(*) FROM customer_service")
        b = parse_query(
            "SELECT COUNT(*) FROM customer_service WHERE queue = 'A'"
        )
        assert not suite.equivalent(a, b)

    def test_subsumes_semantic(self, suite):
        goal = parse_query(
            "SELECT queue FROM customer_service WHERE hour > 5 AND queue = 'A'"
        )
        candidate = parse_query(
            "SELECT queue FROM customer_service WHERE hour > 5"
        )
        verdict = suite.subsumes(goal, candidate)
        assert verdict.equivalent

    def test_progress_bounded(self, suite):
        goal = parse_query(
            "SELECT queue, COUNT(*) FROM customer_service GROUP BY queue"
        )
        value = suite.progress(
            [goal],
            [parse_query("SELECT queue FROM customer_service LIMIT 1")],
        )
        assert 0.0 <= value <= 1.0

    def test_goal_completed_via_results(self, suite):
        goal = parse_query(
            "SELECT queue, COUNT(*) AS n FROM customer_service GROUP BY queue"
        )
        assert suite.goal_completed([goal], [goal])

    def test_statistics_recorded(self, suite):
        a = parse_query("SELECT queue FROM customer_service")
        suite.equivalent(a, a)
        assert suite.statistics.syntactic == 1

    def test_disabled_tiers(self, vector_engine):
        suite = EquivalenceSuite(
            vector_engine, enable_semantic=False, enable_result=False
        )
        a = parse_query("SELECT a FROM customer_service WHERE x = 1 AND y = 2")
        b = parse_query("SELECT a FROM customer_service WHERE y = 2 AND x = 1")
        # Conjunct reordering needs the semantic tier... unless the text
        # similarity is above threshold, which it is here; use distinct text.
        c = parse_query(
            "SELECT abandoned, lostCalls, repID FROM customer_service "
            "WHERE queue IN ('A','B','C') AND hour BETWEEN 2 AND 20"
        )
        assert not suite.equivalent(a, c)
