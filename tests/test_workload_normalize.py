"""Star-schema normalization: extraction, validation, query reassembly."""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.engine import available_engines, create_engine
from repro.engine.table import Table
from repro.errors import SchemaError
from repro.sql.parser import parse_query
from repro.workload.datasets import (
    RETAIL_STAR_DIMENSIONS,
    generate_retail_orders,
)
from repro.workload.normalize import (
    DimensionSpec,
    load_star,
    normalize_star,
    reassembly_query,
)


@pytest.fixture(scope="module")
def retail():
    return generate_retail_orders(3000, seed=11)


@pytest.fixture(scope="module")
def retail_star(retail):
    return normalize_star(
        retail, [DimensionSpec(*d) for d in RETAIL_STAR_DIMENSIONS]
    )


class TestDimensionSpec:
    def test_requires_attributes(self):
        with pytest.raises(SchemaError):
            DimensionSpec("d", "k", ())

    def test_key_cannot_be_attribute(self):
        with pytest.raises(SchemaError):
            DimensionSpec("d", "k", ("k", "x"))


class TestNormalizeStar:
    def test_fact_loses_dimension_attributes(self, retail, retail_star):
        assert "category" not in retail_star.fact.schema
        assert "city" not in retail_star.fact.schema
        # Foreign keys stay in the fact table.
        assert "product_id" in retail_star.fact.schema
        assert "store_id" in retail_star.fact.schema

    def test_fact_row_count_unchanged(self, retail, retail_star):
        assert retail_star.fact.num_rows == retail.num_rows

    def test_dimension_tables_are_distinct_keys(self, retail_star):
        product = retail_star.dimensions[0]
        keys = product.column("product_id")
        assert len(keys) == len(set(keys))

    def test_dimension_naming_convention(self, retail_star):
        assert [d.name for d in retail_star.dimensions] == [
            "retail_orders_product",
            "retail_orders_store",
        ]

    def test_attribute_owner_mapping(self, retail_star):
        assert (
            retail_star.attribute_owner["category"]
            == "retail_orders_product"
        )
        assert retail_star.attribute_owner["region"] == "retail_orders_store"

    def test_joins_align_with_dimensions(self, retail_star):
        assert len(retail_star.joins) == len(retail_star.dimensions)
        for join, dim in zip(retail_star.joins, retail_star.dimensions):
            assert join.table.name == dim.name
            assert join.kind == "INNER"

    def test_unknown_column_rejected(self, retail):
        with pytest.raises(SchemaError, match="not in"):
            normalize_star(retail, [DimensionSpec("d", "nosuch", ("city",))])

    def test_attribute_claimed_twice_rejected(self, retail):
        with pytest.raises(SchemaError, match="claimed by both"):
            normalize_star(
                retail,
                [
                    DimensionSpec("a", "product_id", ("category",)),
                    DimensionSpec("b", "store_id", ("category",)),
                ],
            )

    def test_fd_violation_rejected_when_strict(self):
        table = Table.from_rows(
            "t",
            [
                {"k": 1, "attr": "x", "v": 1},
                {"k": 1, "attr": "y", "v": 2},  # k=1 maps to two attrs
            ],
        )
        with pytest.raises(SchemaError, match="functionally dependent"):
            normalize_star(table, [DimensionSpec("d", "k", ("attr",))])

    def test_fd_violation_first_wins_when_lenient(self):
        table = Table.from_rows(
            "t",
            [
                {"k": 1, "attr": "x", "v": 1},
                {"k": 1, "attr": "y", "v": 2},
            ],
        )
        star = normalize_star(
            table, [DimensionSpec("d", "k", ("attr",))], strict=False
        )
        assert star.dimensions[0].column("attr") == ["x"]

    def test_null_keys_have_no_dimension_row(self):
        table = Table.from_rows(
            "t",
            [
                {"k": 1, "attr": "x", "v": 1},
                {"k": None, "attr": "z", "v": 2},
            ],
        )
        star = normalize_star(table, [DimensionSpec("d", "k", ("attr",))])
        assert star.dimensions[0].column("k") == [1]
        # The fact row with the NULL key survives in the fact table.
        assert star.fact.num_rows == 2


class TestReassemblyQuery:
    def test_only_needed_dimensions_joined(self, retail_star):
        query = parse_query(
            "SELECT category, COUNT(*) FROM retail_orders GROUP BY category"
        )
        rewritten = reassembly_query(retail_star, query)
        assert [j.table.name for j in rewritten.joins] == [
            "retail_orders_product"
        ]

    def test_fact_only_query_gets_no_joins(self, retail_star):
        query = parse_query(
            "SELECT store_id, SUM(revenue) FROM retail_orders GROUP BY store_id"
        )
        assert reassembly_query(retail_star, query).joins == ()

    def test_both_dimensions_joined_when_needed(self, retail_star):
        query = parse_query(
            "SELECT region, category, COUNT(*) FROM retail_orders "
            "GROUP BY region, category"
        )
        rewritten = reassembly_query(retail_star, query)
        assert len(rewritten.joins) == 2

    def test_wrong_table_rejected(self, retail_star):
        with pytest.raises(SchemaError):
            reassembly_query(retail_star, parse_query("SELECT x FROM other"))

    def test_query_with_joins_rejected(self, retail_star):
        query = parse_query(
            "SELECT category FROM retail_orders "
            "JOIN retail_orders_product ON retail_orders.product_id = "
            "retail_orders_product.product_id"
        )
        with pytest.raises(SchemaError, match="already contains joins"):
            reassembly_query(retail_star, query)

    def test_where_column_triggers_join(self, retail_star):
        query = parse_query(
            "SELECT order_id FROM retail_orders WHERE region = 'east'"
        )
        rewritten = reassembly_query(retail_star, query)
        assert [j.table.name for j in rewritten.joins] == [
            "retail_orders_store"
        ]


class TestStarEquivalence:
    """Denormalized and star-schema execution must agree on every engine."""

    QUERIES = [
        "SELECT category, SUM(revenue) AS rev FROM retail_orders "
        "GROUP BY category ORDER BY category",
        "SELECT region, category, COUNT(*) AS n FROM retail_orders "
        "WHERE quantity > 5 GROUP BY region, category ORDER BY region, category",
        "SELECT region, AVG(revenue) AS a FROM retail_orders "
        "WHERE category IN ('Technology') GROUP BY region ORDER BY region",
        "SELECT order_id, unit_price FROM retail_orders "
        "WHERE city = 'City-03' ORDER BY order_id LIMIT 20",
    ]

    @pytest.mark.parametrize("engine_name", available_engines())
    @pytest.mark.parametrize("sql", QUERIES)
    def test_star_matches_denormalized(
        self, retail, retail_star, engine_name, sql
    ):
        query = parse_query(sql)
        denormalized = create_engine(engine_name)
        denormalized.load_table(retail)
        normalized = create_engine(engine_name)
        load_star(normalized, retail_star)
        expected = denormalized.execute(query)
        actual = normalized.execute(reassembly_query(retail_star, query))
        assert actual.sorted_rows() == expected.sorted_rows()


# ---------------------------------------------------------------------------
# Property: normalize/reassemble is lossless for FD-clean random tables
# ---------------------------------------------------------------------------


@st.composite
def _fd_table(draw):
    num_keys = draw(st.integers(min_value=1, max_value=5))
    labels = ["a", "b", "c", "d", "e"]
    attr_of_key = {k: labels[k % len(labels)] for k in range(num_keys)}
    num_rows = draw(st.integers(min_value=1, max_value=30))
    rows = []
    for i in range(num_rows):
        key = draw(st.integers(min_value=0, max_value=num_keys - 1))
        rows.append(
            {
                "id": i,
                "k": key,
                "attr": attr_of_key[key],
                "v": draw(st.integers(min_value=-10, max_value=10)),
            }
        )
    return Table.from_rows("t", rows)


@given(_fd_table())
@settings(max_examples=40, deadline=None)
def test_normalization_round_trip_property(table):
    star = normalize_star(table, [DimensionSpec("d", "k", ("attr",))])
    query = parse_query(
        "SELECT attr, COUNT(*) AS n, SUM(v) AS s FROM t GROUP BY attr"
    )
    denormalized = create_engine("vectorstore")
    denormalized.load_table(table)
    normalized = create_engine("vectorstore")
    load_star(normalized, star)
    expected = denormalized.execute(query)
    actual = normalized.execute(reassembly_query(star, query))
    assert actual.sorted_rows() == expected.sorted_rows()
