"""Unit tests for the fluent query builder."""

import pytest

from repro.sql.ast import Column, InList, Literal, Star
from repro.sql.builder import (
    QueryBuilder,
    avg,
    col,
    count,
    func,
    lit,
    max_,
    min_,
    select,
    sum_,
)
from repro.sql.formatter import format_query
from repro.sql.parser import parse_query


class TestExpressionSugar:
    def test_comparison_operators(self):
        assert format_sql(col("a") > 5) == "a > 5"
        assert format_sql(col("a") <= 2) == "a <= 2"
        assert format_sql(col("a") == "x") == "a = 'x'"
        assert format_sql(col("a") != 1) == "a != 1"

    def test_arithmetic(self):
        assert format_sql(col("a") + 1) == "a + 1"
        assert format_sql(col("a") / col("b")) == "a / b"

    def test_boolean_combinators(self):
        expr = (col("a") > 1).and_(col("b") < 2)
        assert format_sql(expr) == "a > 1 AND b < 2"
        expr = (col("a") > 1).or_(col("b") < 2)
        assert format_sql(expr) == "a > 1 OR b < 2"

    def test_not(self):
        assert format_sql((col("a") > 1).not_()) == "NOT a > 1"

    def test_in_list_sugar(self):
        expr = col("q").in_list(["A", "B"])
        assert isinstance(expr.expr, InList)

    def test_between_sugar(self):
        assert format_sql(col("h").between(1, 5)) == "h BETWEEN 1 AND 5"

    def test_like_sugar(self):
        assert format_sql(col("n").like("a%")) == "n LIKE 'a%'"

    def test_is_null_sugar(self):
        assert format_sql(col("n").is_null()) == "n IS NULL"

    def test_label_builds_aliased_item(self):
        item = count().label("n")
        assert item.alias == "n"


class TestAggregateHelpers:
    def test_count_star_default(self):
        assert count().expr.args == (Star(),)

    def test_count_column(self):
        assert count(col("a")).expr.args == (Column("a"),)

    def test_count_distinct(self):
        assert count(col("a"), distinct=True).expr.distinct

    @pytest.mark.parametrize(
        "helper,name",
        [(sum_, "SUM"), (avg, "AVG"), (min_, "MIN"), (max_, "MAX")],
    )
    def test_named_aggregates(self, helper, name):
        assert helper(col("x")).expr.name == name

    def test_func_coerces_plain_values(self):
        call = func("BIN", col("x"), 10).expr
        assert call.args[1] == Literal(10)

    def test_lit(self):
        assert lit(3).expr == Literal(3)


class TestQueryBuilder:
    def test_minimal_query(self):
        query = select("a").from_table("t").build()
        assert format_query(query) == "SELECT a FROM t"

    def test_string_star(self):
        query = select("*").from_table("t").build()
        assert format_query(query) == "SELECT * FROM t"

    def test_full_query_matches_parser(self):
        built = (
            select("queue", count().label("n"))
            .from_table("cs")
            .where(col("hour") >= 9)
            .where(col("queue").in_list(["A"]))
            .group_by("queue")
            .having(count() > 1)
            .order_by("n", descending=True)
            .limit(5)
            .build()
        )
        parsed = parse_query(
            "SELECT queue, COUNT(*) AS n FROM cs "
            "WHERE hour >= 9 AND queue IN ('A') GROUP BY queue "
            "HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 5"
        )
        assert built == parsed

    def test_where_calls_accumulate_with_and(self):
        query = (
            select("a")
            .from_table("t")
            .where(col("a") > 1)
            .where(col("b") < 2)
            .build()
        )
        assert query.where.op == "AND"

    def test_having_accumulates(self):
        query = (
            select("a", count())
            .from_table("t")
            .group_by("a")
            .having(count() > 1)
            .having(count() < 9)
            .build()
        )
        assert query.having.op == "AND"

    def test_distinct(self):
        assert select("a").distinct().from_table("t").build().distinct

    def test_group_by_expression_object(self):
        query = (
            select(func("HOUR", col("ts")), count())
            .from_table("t")
            .group_by(func("HOUR", col("ts")))
            .build()
        )
        assert query.group_by[0].name == "HOUR"

    def test_build_without_from_raises(self):
        with pytest.raises(ValueError):
            QueryBuilder(["a"]).build()

    def test_select_requires_items(self):
        with pytest.raises(ValueError):
            select()

    def test_table_alias(self):
        query = select("a").from_table("t", alias="x").build()
        assert query.from_table.alias == "x"


def format_sql(wrapper):
    from repro.sql.formatter import format_expression

    return format_expression(wrapper.expr)
