"""Tests for the dashboard graph, data layer, components, and state."""

import pytest

from repro.dashboard.components import RangeStep, WidgetRuntime
from repro.dashboard.datalayer import (
    base_query,
    filtered_query,
    membership_filter,
    range_filter,
)
from repro.dashboard.graph import DashboardGraph
from repro.dashboard.state import DashboardState, Interaction, InteractionKind
from repro.errors import InteractionError, SpecificationError
from repro.sql.formatter import format_query
from repro.sql.parser import parse_query


@pytest.fixture()
def state(cs_spec, cs_data):
    return DashboardState(cs_spec, cs_data)


class TestGraph:
    def test_node_partition(self, cs_spec):
        graph = DashboardGraph(cs_spec)
        assert len(graph.visualization_ids) == 5
        assert len(graph.widget_ids) == 4

    def test_widget_reaches_all_targets(self, cs_spec):
        graph = DashboardGraph(cs_spec)
        reached = graph.reachable_visualizations("queue_checkbox")
        assert set(reached) == set(graph.visualization_ids)

    def test_viz_crossfilter_reaches_links(self, cs_spec):
        graph = DashboardGraph(cs_spec)
        reached = graph.reachable_visualizations("calls_by_queue")
        assert "lost_calls" in reached
        assert "calls_by_queue" not in reached  # not itself

    def test_influencers_inverse_of_reachability(self, cs_spec):
        graph = DashboardGraph(cs_spec)
        assert "queue_checkbox" in graph.influencers("lost_calls")

    def test_unknown_node_raises(self, cs_spec):
        graph = DashboardGraph(cs_spec)
        with pytest.raises(SpecificationError):
            graph.reachable_visualizations("ghost")

    def test_out_degree_stats(self, cs_spec):
        stats = DashboardGraph(cs_spec).out_degree_stats()
        assert stats["avg"] > 0
        assert stats["max"] <= 5


class TestDataLayer:
    def test_base_query_matches_figure2(self, cs_spec):
        viz = cs_spec.interface.visualization("total_calls_by_hour")
        query = base_query(viz, cs_spec)
        assert parse_query(format_query(query)) == parse_query(
            "SELECT queue, hour, callDirection, COUNT(calls) AS count_calls "
            "FROM customer_service GROUP BY queue, hour, callDirection"
        )

    def test_stat_viz_has_no_group_by(self, cs_spec):
        viz = cs_spec.interface.visualization("lost_calls")
        query = base_query(viz, cs_spec)
        assert not query.group_by
        assert "COUNT(lostCalls)" in format_query(query)

    def test_filters_are_sorted_deterministically(self, cs_spec):
        viz = cs_spec.interface.visualization("lost_calls")
        f1 = membership_filter("queue", ["A"])
        f2 = range_filter("hour", 9, 17)
        a = format_query(filtered_query(viz, cs_spec, [f1, f2]))
        b = format_query(filtered_query(viz, cs_spec, [f2, f1]))
        assert a == b

    def test_membership_filter_sorts_members(self):
        assert format_query_expr(membership_filter("q", ["B", "A"])) == (
            "q IN ('A', 'B')"
        )

    def test_membership_filter_empty_raises(self):
        with pytest.raises(SpecificationError):
            membership_filter("q", [])

    def test_range_filter(self):
        assert format_query_expr(range_filter("h", 1, 5)) == (
            "h BETWEEN 1 AND 5"
        )


class TestWidgetRuntime:
    def test_checkbox_options_from_data(self, cs_spec, cs_data):
        widget = cs_spec.interface.widget("queue_checkbox")
        runtime = WidgetRuntime(widget, cs_data)
        assert runtime.options == ["A", "B", "C", "D"]

    def test_slider_ranges_from_domain(self, cs_spec, cs_data):
        widget = cs_spec.interface.widget("hour_slider")
        runtime = WidgetRuntime(widget, cs_data)
        assert runtime.ranges
        assert all(isinstance(s, RangeStep) for s in runtime.ranges)
        assert runtime.ranges[0].low == 0

    def test_filter_for_none_state(self, cs_spec, cs_data):
        widget = cs_spec.interface.widget("queue_checkbox")
        runtime = WidgetRuntime(widget, cs_data)
        assert runtime.filter_for(None) is None

    def test_selecting_everything_is_no_filter(self, cs_spec, cs_data):
        widget = cs_spec.interface.widget("queue_checkbox")
        runtime = WidgetRuntime(widget, cs_data)
        assert runtime.filter_for(frozenset("ABCD")) is None

    def test_filter_for_members(self, cs_spec, cs_data):
        widget = cs_spec.interface.widget("queue_checkbox")
        runtime = WidgetRuntime(widget, cs_data)
        predicate = runtime.filter_for(frozenset(["B", "A"]))
        assert format_query_expr(predicate) == "queue IN ('A', 'B')"

    def test_invalid_member_rejected(self, cs_spec, cs_data):
        widget = cs_spec.interface.widget("queue_checkbox")
        runtime = WidgetRuntime(widget, cs_data)
        with pytest.raises(InteractionError):
            runtime.validate_member("Z")

    def test_inverted_range_rejected(self, cs_spec, cs_data):
        widget = cs_spec.interface.widget("hour_slider")
        runtime = WidgetRuntime(widget, cs_data)
        with pytest.raises(InteractionError):
            runtime.validate_range(10, 2)


class TestDashboardState:
    def test_initial_queries_one_per_viz(self, state):
        assert len(state.initial_queries()) == 5

    def test_checkbox_filter_propagates_to_all(self, state):
        emitted = state.apply(
            Interaction(InteractionKind.WIDGET_TOGGLE, "queue_checkbox", "A")
        )
        assert len(emitted) == 5
        for query in emitted:
            assert "queue IN ('A')" in format_query(query)

    def test_toggle_twice_removes_filter(self, state):
        toggle = Interaction(
            InteractionKind.WIDGET_TOGGLE, "queue_checkbox", "A"
        )
        state.apply(toggle)
        emitted = state.apply(toggle)
        for query in emitted:
            assert "WHERE" not in format_query(query)

    def test_radio_is_exclusive(self, state):
        state.apply(
            Interaction(
                InteractionKind.WIDGET_TOGGLE, "direction_radio", "incoming"
            )
        )
        emitted = state.apply(
            Interaction(
                InteractionKind.WIDGET_TOGGLE, "direction_radio", "outgoing"
            )
        )
        text = format_query(emitted[0])
        assert "outgoing" in text
        assert "incoming" not in text

    def test_widget_set_replaces_members(self, state):
        state.apply(
            Interaction(InteractionKind.WIDGET_TOGGLE, "queue_checkbox", "A")
        )
        state.apply(
            Interaction(InteractionKind.WIDGET_TOGGLE, "queue_checkbox", "B")
        )
        emitted = state.apply(
            Interaction(InteractionKind.WIDGET_SET, "queue_checkbox", "C")
        )
        assert "queue IN ('C')" in format_query(emitted[0])

    def test_slider_set(self, state):
        emitted = state.apply(
            Interaction(InteractionKind.WIDGET_SET, "hour_slider", (9, 17))
        )
        assert "hour BETWEEN 9 AND 17" in format_query(emitted[0])

    def test_widget_clear(self, state):
        state.apply(
            Interaction(InteractionKind.WIDGET_SET, "hour_slider", (9, 17))
        )
        emitted = state.apply(
            Interaction(InteractionKind.WIDGET_CLEAR, "hour_slider")
        )
        for query in emitted:
            assert "BETWEEN" not in format_query(query)

    def test_mark_selection_replaces(self, state):
        state.apply(
            Interaction(
                InteractionKind.VIZ_SELECT, "calls_by_queue",
                ("repID", "rep-00"),
            )
        )
        emitted = state.apply(
            Interaction(
                InteractionKind.VIZ_SELECT, "calls_by_queue",
                ("repID", "rep-01"),
            )
        )
        text = format_query(emitted[0])
        assert "rep-01" in text
        assert "rep-00" not in text

    def test_mark_reselect_deselects(self, state):
        pair = ("repID", "rep-00")
        state.apply(
            Interaction(InteractionKind.VIZ_SELECT, "calls_by_queue", pair)
        )
        emitted = state.apply(
            Interaction(InteractionKind.VIZ_SELECT, "calls_by_queue", pair)
        )
        for query in emitted:
            assert "rep-00" not in format_query(query)

    def test_selection_does_not_filter_source(self, state):
        state.apply(
            Interaction(
                InteractionKind.VIZ_SELECT, "calls_by_queue",
                ("repID", "rep-00"),
            )
        )
        own_query = state.query_for("calls_by_queue")
        assert "rep-00" not in format_query(own_query)

    def test_reset_restores_baseline(self, state):
        state.apply(
            Interaction(InteractionKind.WIDGET_TOGGLE, "queue_checkbox", "A")
        )
        emitted = state.apply(Interaction(InteractionKind.RESET))
        assert len(emitted) == 5
        for query in emitted:
            assert "WHERE" not in format_query(query)

    def test_filters_combine_across_widgets(self, state):
        state.apply(
            Interaction(InteractionKind.WIDGET_TOGGLE, "queue_checkbox", "A")
        )
        state.apply(
            Interaction(InteractionKind.WIDGET_SET, "hour_slider", (9, 17))
        )
        text = format_query(state.query_for("lost_calls"))
        assert "queue IN ('A')" in text
        assert "hour BETWEEN 9 AND 17" in text

    def test_unknown_widget_raises(self, state):
        with pytest.raises(InteractionError):
            state.apply(
                Interaction(InteractionKind.WIDGET_TOGGLE, "ghost", "A")
            )

    def test_toggle_on_range_widget_raises(self, state):
        with pytest.raises(InteractionError):
            state.apply(
                Interaction(InteractionKind.WIDGET_TOGGLE, "hour_slider", 5)
            )

    def test_invalid_selection_raises(self, state):
        with pytest.raises(InteractionError):
            state.apply(
                Interaction(
                    InteractionKind.VIZ_SELECT, "calls_by_queue",
                    ("repID", "nobody"),
                )
            )

    def test_unselectable_viz_rejects_selection(self, state):
        with pytest.raises(InteractionError):
            state.apply(
                Interaction(
                    InteractionKind.VIZ_SELECT, "lost_calls", ("queue", "A")
                )
            )

    def test_copy_isolates_state(self, state):
        clone = state.copy()
        clone.apply(
            Interaction(InteractionKind.WIDGET_TOGGLE, "queue_checkbox", "A")
        )
        assert state.widget_state["queue_checkbox"] is None
        assert clone.widget_state["queue_checkbox"] is not None

    def test_state_key_changes_with_state(self, state):
        before = state.state_key()
        state.apply(
            Interaction(InteractionKind.WIDGET_TOGGLE, "queue_checkbox", "A")
        )
        assert state.state_key() != before

    def test_available_interactions_nonempty(self, state):
        actions = state.available_interactions()
        kinds = {a.kind for a in actions}
        assert InteractionKind.WIDGET_TOGGLE in kinds
        assert InteractionKind.VIZ_SELECT in kinds

    def test_available_includes_clear_when_active(self, state):
        state.apply(
            Interaction(InteractionKind.WIDGET_TOGGLE, "queue_checkbox", "A")
        )
        actions = state.available_interactions()
        assert any(
            a.kind is InteractionKind.WIDGET_CLEAR
            and a.target == "queue_checkbox"
            for a in actions
        )

    def test_interaction_describe(self):
        assert "reset" in Interaction(InteractionKind.RESET).describe()
        toggle = Interaction(InteractionKind.WIDGET_TOGGLE, "w", "A")
        assert "toggle" in toggle.describe()


class TestLibrary:
    def test_all_dashboards_load_and_validate(self):
        from repro.dashboard.library import all_dashboards

        boards = all_dashboards()
        assert len(boards) == 6

    def test_figure6_visualization_counts(self):
        from repro.dashboard.library import load_dashboard

        expectations = {
            "circulation": 2,
            "myride": 2,
            "it_monitor": 3,
            "customer_service": 5,
        }
        for name, count in expectations.items():
            assert load_dashboard(name).num_visualizations == count

    def test_figure6_column_role_counts(self):
        from repro.dashboard.library import load_dashboard

        expectations = {  # (quantitative, categorical) per Figure 6
            "circulation": (2, 2),
            "supply_chain": (5, 18),
            "ubc_energy": (22, 4),
            "myride": (10, 3),
            "it_monitor": (3, 5),
            "customer_service": (10, 6),
        }
        for name, (quant, cat) in expectations.items():
            schema = load_dashboard(name).database.schema()
            assert len(schema.numeric_columns()) == quant, name
            assert len(schema.categorical_columns()) == cat, name

    def test_unknown_dashboard_raises(self):
        from repro.dashboard.library import load_dashboard
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            load_dashboard("nope")


def format_query_expr(expr):
    from repro.sql.formatter import format_expression

    return format_expression(expr)


class TestJsonSpecFiles:
    """The shipped JSON files are the canonical dashboard artifacts."""

    def test_json_files_match_builders(self):
        from repro.dashboard.library import (
            DASHBOARD_NAMES,
            load_dashboard,
            load_dashboard_json,
        )

        for name in DASHBOARD_NAMES:
            assert load_dashboard_json(name) == load_dashboard(name), name

    def test_unknown_json_spec_raises(self):
        from repro.dashboard.library import load_dashboard_json
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            load_dashboard_json("nope")
