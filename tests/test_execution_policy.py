"""The unified ExecutionPolicy and the repro.connect() session facade.

Three contracts under test:

1. **Equivalence** — any knob combination passed through the deprecated
   per-knob keywords produces byte-identical results to the equivalent
   :class:`~repro.execution.ExecutionPolicy`, on every redesigned entry
   point (``execute_batch``, ``DashboardState.refresh``,
   ``replay_log``). This is the property that makes the deprecation
   shim safe to ship.
2. **Validation** — invalid combinations fail at policy construction
   (``shards > 1`` / ``multiplan`` without batch used to silently
   no-op ten layers down); the deprecated-kwarg shim instead warns and
   preserves the old behavior.
3. **Facade** — ``repro.connect()`` produces exactly what the piecewise
   API produces, with the policy applied session-wide.
"""

from __future__ import annotations

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.dashboard.state import DashboardState
from repro.engine import create_engine
from repro.errors import ConfigError
from repro.execution import (
    AUTO_MAX_WORKERS,
    AUTO_MIN_WORKERS,
    AUTO_ROWS_PER_SHARD,
    ExecutionPolicy,
    compose_cli_policy,
    policy_from_knobs,
    resolve_policy,
)
from repro.logs.records import ExportedLog, LogEntry
from repro.logs.replay import replay_log
from repro.sql.formatter import format_query
from repro.sql.parser import parse_query

from tests.conftest import make_calls_table


# ---------------------------------------------------------------------------
# Construction, validation, presets
# ---------------------------------------------------------------------------


def test_default_policy_is_single_worker_batch():
    policy = ExecutionPolicy()
    assert policy.batch is True
    assert policy.workers == 1
    assert policy.shards == 1
    assert policy.multiplan is False


@pytest.mark.parametrize(
    "kwargs",
    [
        {"workers": 0},
        {"workers": -1},
        {"shards": 0},
        {"workers": 2.5},
        {"workers": True},  # bools are not worker counts
        {"batch": False, "shards": 2},
        {"batch": False, "multiplan": True},
    ],
)
def test_invalid_combinations_raise_at_construction(kwargs):
    with pytest.raises(ConfigError):
        ExecutionPolicy(**kwargs)


def test_policy_is_frozen_and_evolve_revalidates():
    policy = ExecutionPolicy(workers=2)
    with pytest.raises(Exception):
        policy.workers = 4  # frozen dataclass
    assert policy.evolve(workers=4).workers == 4
    with pytest.raises(ConfigError):
        policy.evolve(batch=False, shards=3)


def test_presets():
    assert ExecutionPolicy.serial() == ExecutionPolicy(batch=False)
    assert ExecutionPolicy.batched() == ExecutionPolicy()
    concurrent = ExecutionPolicy.concurrent(3)
    assert concurrent == ExecutionPolicy(workers=3)
    top = ExecutionPolicy.max_throughput()
    assert top.batch and top.multiplan
    assert 1 <= top.workers <= AUTO_MAX_WORKERS
    assert top.shards == top.workers


def test_preset_names_resolve_and_normalize():
    assert ExecutionPolicy.preset("serial") == ExecutionPolicy.serial()
    assert ExecutionPolicy.preset("batch") == ExecutionPolicy()
    assert ExecutionPolicy.preset("MAX_THROUGHPUT") == (
        ExecutionPolicy.max_throughput()
    )
    assert ExecutionPolicy.preset("auto").batch is True
    with pytest.raises(ConfigError):
        ExecutionPolicy.preset("warp-speed")


def test_auto_clamps_workers_to_cpu_count(monkeypatch):
    import repro.execution as execution

    # Ceiling regime: big machines clamp to AUTO_MAX_WORKERS.
    monkeypatch.setattr(execution.os, "cpu_count", lambda: 64)
    assert ExecutionPolicy.auto().workers == AUTO_MAX_WORKERS
    # Floor regime: small (or unknown-CPU) machines still get a real
    # concurrent configuration — a 1-CPU CI runner used to degenerate
    # to one worker and one shard, silently skipping the cross-thread
    # machinery the concurrent presets exist to exercise.
    monkeypatch.setattr(execution.os, "cpu_count", lambda: 2)
    assert ExecutionPolicy.auto().workers == AUTO_MIN_WORKERS
    monkeypatch.setattr(execution.os, "cpu_count", lambda: None)
    assert ExecutionPolicy.auto().workers == AUTO_MIN_WORKERS
    monkeypatch.setattr(execution.os, "cpu_count", lambda: 1)
    top = ExecutionPolicy.max_throughput()
    assert top.workers == AUTO_MIN_WORKERS
    assert top.shards == AUTO_MIN_WORKERS


def test_backend_validates_at_construction():
    policy = ExecutionPolicy(backend="processes")
    assert policy.backend == "processes"
    assert "process-backed" in policy.describe()
    with pytest.raises(ConfigError, match="unknown backend"):
        ExecutionPolicy(backend="fibers")
    with pytest.raises(ConfigError, match="requires batch"):
        ExecutionPolicy(batch=False, backend="processes")
    with pytest.raises(ConfigError, match="requires batch"):
        ExecutionPolicy().evolve(batch=False, backend="processes")


def test_auto_picks_processes_only_on_multicore_exporting_engines(
    monkeypatch,
):
    import repro.execution as execution

    engine = create_engine("vectorstore")
    engine.load_table(make_calls_table())
    try:
        monkeypatch.setattr(execution.os, "cpu_count", lambda: 8)
        assert ExecutionPolicy.auto(engine).backend == "processes"
        # One CPU: worker processes only add serialization overhead.
        monkeypatch.setattr(execution.os, "cpu_count", lambda: 1)
        assert ExecutionPolicy.auto(engine).backend == "threads"
        # No engine to inspect, or one that cannot export, stays on
        # the thread backend even with spare cores.
        monkeypatch.setattr(execution.os, "cpu_count", lambda: 8)
        assert ExecutionPolicy.auto().backend == "threads"
        assert (
            ExecutionPolicy.auto(_FixedRowCountEngine(10)).backend
            == "threads"
        )
    finally:
        engine.close()


class _FixedRowCountEngine:
    """Just enough engine surface for ExecutionPolicy.auto()."""

    def __init__(self, rows):
        self._rows = rows

    def table_row_count(self, name):
        return self._rows


def test_auto_sizes_shards_from_table_row_count(monkeypatch):
    import repro.execution as execution

    monkeypatch.setattr(execution.os, "cpu_count", lambda: 8)
    # Small table: not worth sharding.
    assert ExecutionPolicy.auto(_FixedRowCountEngine(1_000), "t").shards == 1
    # Two shards' worth of rows.
    rows = 2 * AUTO_ROWS_PER_SHARD
    assert ExecutionPolicy.auto(_FixedRowCountEngine(rows), "t").shards == 2
    # Huge table: clamped to the worker count.
    rows = 100 * AUTO_ROWS_PER_SHARD
    policy = ExecutionPolicy.auto(_FixedRowCountEngine(rows), "t")
    assert policy.shards == policy.workers
    # Unknown row count: degrade to unsharded, like the executor does.
    assert ExecutionPolicy.auto(_FixedRowCountEngine(None), "t").shards == 1
    # A real engine answers through the same interface.
    engine = create_engine("vectorstore")
    engine.load_table(make_calls_table())
    assert (
        ExecutionPolicy.auto(engine, "customer_service").shards == 1
    )  # 240 rows


def test_describe_is_one_line_and_names_the_knobs():
    for policy in (
        ExecutionPolicy.serial(),
        ExecutionPolicy(),
        ExecutionPolicy(workers=4, shards=2, multiplan=True),
        ExecutionPolicy(batch=False, workers=3),
    ):
        summary = policy.describe()
        assert "\n" not in summary and summary
    assert "4 workers" in ExecutionPolicy(workers=4).describe()
    assert "2 row-range shards" in ExecutionPolicy(shards=2).describe()
    assert "multiplan" in ExecutionPolicy(multiplan=True).describe()
    assert "sequential" in ExecutionPolicy.serial().describe()


def test_policy_from_knobs_preserves_legacy_silent_noop_with_a_warning():
    with pytest.warns(UserWarning, match="ignored without batch"):
        policy = policy_from_knobs(batch=False, shards=4, multiplan=True)
    assert policy == ExecutionPolicy.serial()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert policy_from_knobs(
            batch=False, shards=4, warn_ignored=False
        ) == ExecutionPolicy.serial()


def test_resolve_policy_rejects_mixing_styles():
    with pytest.raises(ConfigError, match="not both"):
        resolve_policy(ExecutionPolicy(), api="x", workers=4)
    with pytest.raises(ConfigError, match="preset"):
        resolve_policy(object(), api="x")


def test_compose_cli_policy():
    assert compose_cli_policy(None) is None
    assert compose_cli_policy("serial") == ExecutionPolicy.serial()
    composed = compose_cli_policy("batch", workers=4, multiplan=True)
    assert composed == ExecutionPolicy(workers=4, multiplan=True)
    # Flags without a preset start from the CLI's base default.
    assert compose_cli_policy(
        None, base=ExecutionPolicy.serial(), workers=2
    ) == ExecutionPolicy(batch=False, workers=2)
    # The old silent no-op is now a loud composition error.
    with pytest.raises(ConfigError):
        compose_cli_policy(None, base=ExecutionPolicy.serial(), shards=4)


# ---------------------------------------------------------------------------
# Equivalence: deprecated kwargs == equivalent policy, byte for byte
# ---------------------------------------------------------------------------


_REFRESH_SQL = [
    "SELECT queue, COUNT(*) AS n FROM customer_service GROUP BY queue",
    "SELECT queue, SUM(calls) AS total FROM customer_service GROUP BY queue",
    "SELECT hour, AVG(duration) AS avg_d FROM customer_service GROUP BY hour",
    "SELECT COUNT(*) AS n FROM customer_service WHERE hour BETWEEN 0 AND 11",
    "SELECT queue, MAX(duration) AS m FROM customer_service "
    "WHERE hour BETWEEN 0 AND 11 GROUP BY queue",
    "SELECT repID, COUNT(*) AS n FROM customer_service "
    "WHERE queue = 'A' GROUP BY repID ORDER BY n DESC LIMIT 3",
]


def _snapshot(results):
    return [
        (t.result.columns, t.result.rows, t.engine, t.sql) for t in results
    ]


@settings(max_examples=20, deadline=None)
@given(
    batch=st.booleans(),
    workers=st.integers(min_value=1, max_value=3),
    shards=st.integers(min_value=1, max_value=3),
    multiplan=st.booleans(),
)
def test_property_deprecated_kwargs_match_equivalent_policy(
    batch, workers, shards, multiplan
):
    """Any knob combination == its equivalent policy, byte for byte."""
    table = make_calls_table()
    queries = [parse_query(sql) for sql in _REFRESH_SQL]
    engine = create_engine("vectorstore")
    engine.load_table(table)
    try:
        with warnings.catch_warnings():
            # The deprecated path warns by design; equivalence is the
            # property under test here.
            warnings.simplefilter("ignore")
            legacy = engine.execute_batch(
                list(queries),
                workers=workers,
                shards=shards,
                multiplan=multiplan,
            ) if batch else replay_and_noop_guard(
                engine, queries, workers, shards, multiplan
            )
        equivalent = policy_from_knobs(
            batch=batch,
            workers=workers,
            shards=shards,
            multiplan=multiplan,
            warn_ignored=False,
        )
        via_policy = engine.execute_batch(list(queries), equivalent)
        assert _snapshot(via_policy) == _snapshot(legacy)
    finally:
        engine.close()


def replay_and_noop_guard(engine, queries, workers, shards, multiplan):
    """The legacy sequential path: execute_batch had no batch= kwarg, so
    batch=False rides through the other entry points; at engine level
    the pre-policy equivalent was per-query execute_timed (workers
    overlapping)."""
    from repro.concurrency.sessions import execute_all

    if workers > 1:
        return execute_all(engine, list(queries), workers=workers)
    return [engine.execute_timed(q) for q in queries]


@pytest.mark.parametrize("batch", [False, True])
@pytest.mark.parametrize("workers,shards,multiplan", [
    (1, 1, False),
    (3, 1, False),
    (2, 2, True),
])
def test_refresh_deprecated_kwargs_match_policy(
    cs_spec, batch, workers, shards, multiplan
):
    table = repro.generate_dataset("customer_service", 300, seed=3)
    engine = create_engine("sqlite")
    engine.load_table(table)
    try:
        legacy_state = DashboardState(cs_spec, table)
        policy_state = DashboardState(cs_spec, table)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            legacy = legacy_state.refresh(
                engine, batch=batch, workers=workers, shards=shards,
                multiplan=multiplan,
            )
        equivalent = policy_from_knobs(
            batch=batch, workers=workers, shards=shards,
            multiplan=multiplan, warn_ignored=False,
        )
        via_policy = policy_state.refresh(engine, policy=equivalent)
        assert {
            viz: (t.result.columns, t.result.rows)
            for viz, t in legacy.items()
        } == {
            viz: (t.result.columns, t.result.rows)
            for viz, t in via_policy.items()
        }
    finally:
        engine.close()


def _exported_log(engine, table):
    """A small two-step log recorded against ``engine``'s dataset."""
    entries = []
    for step, sql in enumerate(_REFRESH_SQL):
        query = parse_query(sql)
        result = engine.execute(query)
        entries.append(
            LogEntry(
                step=step // 3,  # two steps of three queries each
                model="oracle",
                interaction="test",
                sql=format_query(query),
                rows_returned=len(result),
                duration_ms=0.1,
                elapsed_ms=0.1 * (step + 1),
                goal_index=0,
                progress_after=0.0,
            )
        )
    return ExportedLog(
        dashboard="customer_service",
        engine=engine.name,
        workflow="test",
        goals_completed=0,
        goals_total=1,
        entries=entries,
    )


@pytest.mark.parametrize("batch", [False, True])
@pytest.mark.parametrize("workers,shards,multiplan", [
    (1, 1, False),
    (2, 1, False),
    (2, 3, True),
])
def test_replay_deprecated_kwargs_match_policy(
    batch, workers, shards, multiplan
):
    table = make_calls_table()
    engine = create_engine("vectorstore")
    engine.load_table(table)
    try:
        log = _exported_log(engine, table)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            legacy = replay_log(
                log, engine, batch=batch, workers=workers,
                shards=shards, multiplan=multiplan,
            )
        equivalent = policy_from_knobs(
            batch=batch, workers=workers, shards=shards,
            multiplan=multiplan, warn_ignored=False,
        )
        via_policy = replay_log(log, engine, policy=equivalent)
        assert legacy.matched and via_policy.matched
        assert _snapshot(legacy.results) == _snapshot(via_policy.results)
    finally:
        engine.close()


def test_deprecated_kwargs_warn_and_policy_path_does_not():
    table = make_calls_table()
    engine = create_engine("vectorstore")
    engine.load_table(table)
    queries = [parse_query(_REFRESH_SQL[0])]
    try:
        with pytest.warns(DeprecationWarning, match="deprecated"):
            engine.execute_batch(list(queries), workers=2)
        with warnings.catch_warnings():
            # Any warning on the policy path — deprecation or shim —
            # is a regression.
            warnings.simplefilter("error")
            engine.execute_batch(list(queries), ExecutionPolicy(workers=2))
    finally:
        engine.close()


def test_mixing_policy_and_deprecated_kwargs_raises():
    table = make_calls_table()
    engine = create_engine("vectorstore")
    engine.load_table(table)
    queries = [parse_query(_REFRESH_SQL[0])]
    try:
        with pytest.raises(ConfigError, match="not both"):
            engine.execute_batch(
                list(queries), ExecutionPolicy(), workers=2
            )
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# Configs carry one policy
# ---------------------------------------------------------------------------


def test_session_config_policy_defaults_to_serial():
    from repro.simulation.session import SessionConfig

    config = SessionConfig()
    assert config.policy == ExecutionPolicy.serial()
    assert config.batch is False and config.workers == 1


def test_session_config_legacy_fields_warn_and_map():
    from repro.simulation.session import SessionConfig

    with pytest.warns(DeprecationWarning, match="deprecated"):
        config = SessionConfig(batch=True, workers=3)
    assert config.policy == ExecutionPolicy(workers=3)
    assert config.batch is True and config.workers == 3


def test_session_config_policy_mirrors_into_legacy_fields():
    from dataclasses import replace

    from repro.simulation.session import SessionConfig

    config = SessionConfig(policy=ExecutionPolicy(workers=4, multiplan=True))
    assert config.batch is True
    assert config.workers == 4
    assert config.multiplan is True
    # replace() round-trips without warnings (policy and mirrored
    # fields travel together).
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        reseeded = replace(config, seed=9)
    assert reseeded.policy == config.policy
    # with_policy swaps the whole execution strategy.
    serial = config.with_policy("serial")
    assert serial.policy == ExecutionPolicy.serial()
    assert serial.batch is False and serial.workers == 1


def test_session_config_conflicting_policy_and_fields_raise():
    from repro.simulation.session import SessionConfig

    with pytest.raises(ConfigError, match="conflicts"):
        SessionConfig(policy=ExecutionPolicy(workers=4), workers=2)


def test_benchmark_config_accepts_policy_and_keeps_cell_overlap():
    from repro.harness.config import BenchmarkConfig

    config = BenchmarkConfig(policy=ExecutionPolicy(workers=4, shards=2))
    assert config.workers == 4  # runner cell overlap
    assert config.session.policy == ExecutionPolicy(workers=4, shards=2)
    assert config.batch is True and config.shards == 2
    preset = BenchmarkConfig(policy="serial")
    assert preset.session.policy == ExecutionPolicy.serial()


def test_benchmark_config_propagates_backend_to_session():
    from repro.harness.config import BenchmarkConfig
    from repro.simulation.session import SessionConfig

    # backend has no legacy knob mirror, so the knob-wise merge into
    # the session must carry it on the policy itself (regression: it
    # used to be rebuilt as "threads", silently ignoring --backend).
    config = BenchmarkConfig(
        policy=ExecutionPolicy(workers=4, shards=4, backend="processes")
    )
    assert config.session.policy.backend == "processes"
    assert config.policy.backend == "processes"
    assert "process-backed" in config.policy.describe()

    # An explicitly configured session keeps its own backend choice.
    session = SessionConfig(
        policy=ExecutionPolicy(workers=2, backend="processes")
    )
    kept = BenchmarkConfig(
        policy=ExecutionPolicy(workers=8), session=session
    )
    assert kept.session.policy.backend == "processes"


def test_benchmark_config_explicit_session_policy_wins():
    from repro.harness.config import BenchmarkConfig
    from repro.simulation.session import SessionConfig

    session = SessionConfig(policy=ExecutionPolicy(workers=2))
    config = BenchmarkConfig(
        policy=ExecutionPolicy(workers=8), session=session
    )
    # Knob-wise merge: the session's explicit width is kept; the
    # config's own field still drives cell overlap.
    assert config.session.workers == 2
    assert config.workers == 8


def test_refresh_job_carries_a_policy():
    from repro.concurrency import RefreshJob

    class _Stub:
        pass

    job = RefreshJob(_Stub(), create_engine("vectorstore"))
    assert job.policy == ExecutionPolicy()
    with pytest.warns(DeprecationWarning):
        legacy = RefreshJob(
            _Stub(), create_engine("vectorstore"), workers=3
        )
    assert legacy.policy == ExecutionPolicy(workers=3)
    assert legacy.workers == 3


# ---------------------------------------------------------------------------
# CLI composition
# ---------------------------------------------------------------------------


def test_cli_parsers_accept_policy_presets():
    from repro.harness.cli import build_parser as harness_parser
    from repro.logs.cli import build_parser as logs_parser

    args = harness_parser().parse_args(["--policy", "concurrent"])
    assert args.policy == "concurrent"
    assert args.batch is None and args.workers is None
    args = harness_parser().parse_args(
        ["--policy", "max-throughput", "--no-multiplan"]
    )
    assert args.policy == "max-throughput" and args.multiplan is False
    args = logs_parser().parse_args(
        ["replay", "log.jsonl", "--policy", "serial", "--workers", "2"]
    )
    assert args.policy == "serial" and args.workers == 2


def test_logs_cli_replay_policy_end_to_end(tmp_path):
    from repro.logs.cli import main as logs_main
    from repro.logs.io import write_jsonl

    engine = create_engine("vectorstore")
    table = repro.generate_dataset("customer_service", 1_000, seed=0)
    engine.load_table(table)
    query = parse_query(_REFRESH_SQL[0])
    result = engine.execute(query)
    log = ExportedLog(
        dashboard="customer_service",
        engine=engine.name,
        workflow="test",
        goals_completed=0,
        goals_total=1,
        entries=[
            LogEntry(
                step=0,
                model="oracle",
                interaction="test",
                sql=format_query(query),
                rows_returned=len(result),
                duration_ms=0.1,
                elapsed_ms=0.1,
                goal_index=0,
                progress_after=0.0,
            )
        ],
    )
    path = tmp_path / "log.jsonl"
    write_jsonl(log, path)
    assert logs_main(
        ["replay", str(path), "--engine", "vectorstore",
         "--rows", "1000", "--policy", "concurrent"]
    ) == 0
    engine.close()


# ---------------------------------------------------------------------------
# The repro.connect() facade
# ---------------------------------------------------------------------------


def test_connect_refresh_matches_piecewise_api(cs_spec):
    table = repro.generate_dataset("customer_service", 300, seed=3)
    direct_engine = create_engine("sqlite")
    direct_engine.load_table(table)
    direct = DashboardState(cs_spec, table).refresh(
        direct_engine, policy=ExecutionPolicy(workers=2)
    )
    direct_engine.close()

    with repro.connect(
        "sqlite", policy=ExecutionPolicy(workers=2)
    ) as session:
        session.load(table)
        via_facade = session.refresh(cs_spec)
        assert {
            viz: (t.result.columns, t.result.rows)
            for viz, t in direct.items()
        } == {
            viz: (t.result.columns, t.result.rows)
            for viz, t in via_facade.items()
        }
        stats = session.stats
        assert stats.refreshes == 1
        assert stats.queries == len(via_facade)
        assert stats.engine == "sqlite"
        assert stats.policy == ExecutionPolicy(workers=2).describe()


def test_connect_requires_loaded_table(cs_spec):
    with repro.connect("vectorstore") as session:
        with pytest.raises(ConfigError, match="not loaded"):
            session.refresh(cs_spec)


def test_connect_replay_and_execute():
    table = make_calls_table()
    with repro.connect("vectorstore") as session:
        session.load(table)
        log = _exported_log(session.engine, table)
        report = session.replay(log)
        assert report.matched
        timed = session.execute(_REFRESH_SQL[0])
        assert timed.rows_returned == 4  # four queues
        batch = session.execute_batch(_REFRESH_SQL[:2])
        assert len(batch) == 2
        stats = session.stats
        assert stats.replays == 1
        assert stats.queries == len(log.entries) + 3


def test_connect_dashboard_state_persists_interactions():
    from repro.dashboard.state import InteractionKind

    table = repro.generate_dataset("customer_service", 300, seed=3)
    with repro.connect("vectorstore") as session:
        session.load(table)
        state = session.dashboard("customer_service")
        assert session.dashboard("customer_service") is state
        action = next(
            a
            for a in state.available_interactions()
            if a.kind is InteractionKind.WIDGET_TOGGLE
        )
        results = session.apply_and_refresh("customer_service", action)
        assert results  # the fan-out re-ran on the same live state
        assert state.widget_state[action.target] == frozenset(
            [action.value]
        )


def test_connect_cache_wrapper_reports_hit_rate():
    table = make_calls_table()
    with repro.connect("vectorstore", cache=True) as session:
        session.load(table)
        session.execute(_REFRESH_SQL[0])
        session.execute(_REFRESH_SQL[0])
        assert session.stats.cache_hit_rate == 0.5


def test_connect_accepts_engine_instances_and_presets():
    engine = create_engine("vectorstore")
    engine.load_table(make_calls_table())
    with repro.connect(engine, policy="serial") as session:
        assert session.engine is engine
        assert session.policy == ExecutionPolicy.serial()
        timed = session.execute(_REFRESH_SQL[0])
        assert timed.rows_returned == 4


def test_refresh_job_replace_round_trips_without_conflict():
    from dataclasses import replace

    from repro.concurrency import RefreshJob

    class _Stub:
        pass

    job = RefreshJob(_Stub(), create_engine("vectorstore"),
                     policy=ExecutionPolicy(workers=2))
    # replace() passes the mirrored knob fields back in alongside the
    # policy; values equal to the policy's own are not a conflict.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        narrowed = replace(job, viz_ids=("a",))
    assert narrowed.policy == job.policy
    assert narrowed.viz_ids == ("a",)
    with pytest.raises(ConfigError, match="conflicts"):
        RefreshJob(_Stub(), create_engine("vectorstore"),
                   policy=ExecutionPolicy(workers=2), workers=4)


def test_session_load_invalidates_cached_dashboard_states():
    table_v1 = repro.generate_dataset("customer_service", 300, seed=3)
    table_v2 = repro.generate_dataset("customer_service", 400, seed=9)
    with repro.connect("vectorstore") as session:
        session.load(table_v1)
        state = session.dashboard("customer_service")
        assert state.table is table_v1
        session.load(table_v2)
        rebuilt = session.dashboard("customer_service")
        assert rebuilt is not state
        assert rebuilt.table is table_v2


def test_scan_group_executor_rejects_sequential_policies():
    from repro.concurrency import ScanGroupExecutor
    from repro.engine.batch import BatchExecutor

    engine = create_engine("vectorstore")
    engine.load_table(make_calls_table())
    queries = [parse_query(_REFRESH_SQL[0])]
    try:
        with pytest.raises(ConfigError, match="shared-scan path"):
            ScanGroupExecutor(engine, ExecutionPolicy.serial())
        with pytest.raises(ConfigError, match="shared-scan path"):
            BatchExecutor(engine, ExecutionPolicy.serial())
        executor = ScanGroupExecutor(engine)
        try:
            with pytest.raises(ConfigError, match="shared-scan path"):
                executor.run(queries, ExecutionPolicy.serial())
        finally:
            executor.close()
    finally:
        engine.close()


def test_config_policy_with_matching_mirror_field_is_not_a_conflict():
    from repro.harness.config import BenchmarkConfig
    from repro.simulation.session import SessionConfig

    # A legacy field equal to the policy's own value is its mirror, not
    # a conflict; unset fields mirror the policy so reads stay coherent.
    config = SessionConfig(policy=ExecutionPolicy(workers=4), workers=4)
    assert config.workers == 4
    assert config.batch is True  # unset field mirrors the policy
    bench = BenchmarkConfig(policy=ExecutionPolicy(workers=4), workers=4)
    assert bench.workers == 4 and bench.batch is True
    # A genuinely different value still conflicts.
    with pytest.raises(ConfigError, match="conflicts"):
        SessionConfig(policy=ExecutionPolicy(workers=4), workers=2)
