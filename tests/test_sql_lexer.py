"""Unit tests for the SQL tokenizer."""

import pytest

from repro.errors import LexError
from repro.sql.lexer import Token, TokenType, tokenize


def kinds(text):
    return [t.type for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)][:-1]  # drop EOF


class TestBasicTokens:
    def test_keywords_are_uppercased(self):
        tokens = tokenize("select From WHERE")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifier(self):
        (token, _eof) = tokenize("customer_service")
        assert token.type is TokenType.IDENTIFIER
        assert token.value == "customer_service"

    def test_identifier_case_preserved(self):
        assert values("repID") == ["repID"]

    def test_quoted_identifier(self):
        (token, _eof) = tokenize('"weird name"')
        assert token.type is TokenType.IDENTIFIER
        assert token.value == "weird name"

    def test_star(self):
        assert kinds("*")[0] is TokenType.STAR

    def test_punctuation(self):
        assert kinds("( , )")[:3] == [
            TokenType.LPAREN,
            TokenType.COMMA,
            TokenType.RPAREN,
        ]

    def test_eof_is_final(self):
        assert kinds("x")[-1] is TokenType.EOF

    def test_empty_input_yields_only_eof(self):
        assert kinds("") == [TokenType.EOF]

    def test_whitespace_only(self):
        assert kinds("   \n\t ") == [TokenType.EOF]


class TestNumbers:
    def test_integer(self):
        assert values("42") == ["42"]

    def test_decimal(self):
        assert values("3.14") == ["3.14"]

    def test_leading_dot(self):
        assert values(".5") == [".5"]

    def test_exponent(self):
        assert values("1e6") == ["1e6"]

    def test_exponent_with_sign(self):
        assert values("1.5e-3") == ["1.5e-3"]

    def test_number_followed_by_dot_identifier_stops(self):
        tokens = tokenize("1.5.x")
        assert tokens[0].value == "1.5"

    def test_e_not_followed_by_digits_is_not_exponent(self):
        tokens = tokenize("2e")
        assert tokens[0].value == "2"
        assert tokens[1].value == "e"


class TestStrings:
    def test_simple_string(self):
        (token, _eof) = tokenize("'hello'")
        assert token.type is TokenType.STRING
        assert token.value == "hello"

    def test_escaped_quote(self):
        (token, _eof) = tokenize("'it''s'")
        assert token.value == "it's"

    def test_empty_string(self):
        (token, _eof) = tokenize("''")
        assert token.value == ""

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_unterminated_quoted_identifier_raises(self):
        with pytest.raises(LexError):
            tokenize('"oops')


class TestOperators:
    @pytest.mark.parametrize(
        "text", ["=", "!=", "<", "<=", ">", ">=", "+", "-", "/", "%"]
    )
    def test_single_operator(self, text):
        tokens = tokenize(text)
        assert tokens[0].type is TokenType.OPERATOR
        assert tokens[0].value == text

    def test_angle_bracket_inequality_normalized(self):
        assert values("<>") == ["!="]

    def test_two_char_operator_not_split(self):
        assert values("a <= b") == ["a", "<=", "b"]

    def test_unknown_character_raises_with_position(self):
        with pytest.raises(LexError) as info:
            tokenize("a ? b")
        assert info.value.position == 2


class TestTokenMatches:
    def test_matches_type_only(self):
        token = Token(TokenType.KEYWORD, "SELECT", 0)
        assert token.matches(TokenType.KEYWORD)

    def test_matches_value_case_insensitive(self):
        token = Token(TokenType.KEYWORD, "SELECT", 0)
        assert token.matches(TokenType.KEYWORD, "select")

    def test_matches_rejects_wrong_type(self):
        token = Token(TokenType.IDENTIFIER, "select", 0)
        assert not token.matches(TokenType.KEYWORD, "select")

    def test_positions_recorded(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3


class TestFullStatement:
    def test_realistic_query_token_stream(self):
        text = (
            "SELECT queue, COUNT(*) FROM cs WHERE hour >= 9 "
            "AND queue IN ('A', 'B') GROUP BY queue LIMIT 5"
        )
        tokens = tokenize(text)
        assert tokens[-1].type is TokenType.EOF
        keyword_values = [
            t.value for t in tokens if t.type is TokenType.KEYWORD
        ]
        assert keyword_values == [
            "SELECT", "FROM", "WHERE", "AND", "IN", "GROUP", "BY", "LIMIT",
        ]
