"""Tests for single-pass multi-plan evaluation of unfiltered groups.

Core property: for every engine and every ``(workers, shards)``
combination, ``execute_batch(queries, multiplan=True, ...)`` returns
results byte-identical to sequential per-query execution — same
columns, same rows, same order — while issuing one combined base scan
for the unfiltered group instead of one per fusion class.

Float exactness note: the per-plan merge re-associates floating-point
addition (per-fine-group SUMs are rounded before the merge SUM), so
the byte-identity property holds whenever partial sums are exactly
representable. The tables here use integers and dyadic-rational floats
(multiples of 0.25), for which IEEE-754 addition is exact — the same
documented boundary as the sharded rollup
(:class:`repro.engine.batch.AggregateRollup`).
"""

from __future__ import annotations

import datetime as dt
import random

import pytest

from repro.concurrency import ScanGroupExecutor
from repro.dashboard.library import load_dashboard
from repro.dashboard.state import DashboardState
from repro.engine.batch import TEMP_PREFIX, BatchExecutor
from repro.engine.cache import CachedEngine
from repro.engine.instrument import CountingEngine
from repro.engine.multiplan import build_multiplan, eligible_plan
from repro.engine.registry import create_engine
from repro.engine.table import Table
from repro.sql.formatter import format_query
from repro.sql.parser import parse_query
from repro.workload.datasets import generate_dataset

ENGINES = ["rowstore", "vectorstore", "matstore", "sqlite"]


def _events_table(rows: int = 240, seed: int = 3) -> Table:
    """Deterministic table with NULLs and exactly-summable floats."""
    rng = random.Random(seed)
    return Table.from_columns(
        "events",
        {
            "queue": [rng.choice(["a", "b", "c", None]) for _ in range(rows)],
            "status": [
                rng.choice(["open", "closed", "waiting"]) for _ in range(rows)
            ],
            "priority": [rng.randint(1, 5) for _ in range(rows)],
            # Dyadic floats: partial sums are exact in IEEE double.
            "latency": [
                None if rng.random() < 0.1 else rng.randint(0, 360) * 0.25
                for _ in range(rows)
            ],
            "day": [
                dt.date(2024, 1, 1) + dt.timedelta(days=rng.randint(0, 6))
                for _ in range(rows)
            ],
            "flag": [bool(rng.randint(0, 1)) for _ in range(rows)],
        },
    )


#: An initial-render-shaped suite: one unfiltered scan group holding
#: several fusion classes (distinct GROUP BYs, a fused pair, a global
#: aggregate), plus shapes the combined pass must leave alone.
_SUITE = [
    "SELECT queue, COUNT(*) AS n FROM events GROUP BY queue",
    "SELECT queue, AVG(latency) AS a, SUM(latency) AS s FROM events "
    "GROUP BY queue",
    "SELECT day, MIN(latency) AS lo, MAX(latency) AS hi FROM events "
    "GROUP BY day",
    "SELECT flag, AVG(priority) AS ap FROM events GROUP BY flag",
    "SELECT COUNT(*) AS n, SUM(latency) AS s FROM events",
    # A filtered group rides along on the shared-scan path.
    "SELECT status, COUNT(latency) AS nv FROM events "
    "WHERE priority >= 3 GROUP BY status",
    "SELECT status, AVG(priority) AS ap FROM events "
    "WHERE priority >= 3 GROUP BY status",
    # Ineligible shapes fall back to per-class execution.
    "SELECT queue, COUNT(*) AS n FROM events GROUP BY queue "
    "ORDER BY n DESC LIMIT 2",
    "SELECT DISTINCT status FROM events",
]


def _queries():
    return [parse_query(sql) for sql in _SUITE]


def _assert_identical(sequential, batched, context: str) -> None:
    assert len(sequential) == len(batched), context
    for i, (seq, timed) in enumerate(zip(sequential, batched)):
        assert seq.columns == timed.result.columns, f"{context} [{i}] columns"
        assert seq.rows == timed.result.rows, f"{context} [{i}] rows"


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------


def test_build_multiplan_combines_keys_and_dedups_aggregates():
    plan = build_multiplan(
        [
            parse_query(
                "SELECT queue, SUM(latency) AS s FROM events GROUP BY queue"
            ),
            parse_query(
                "SELECT day, SUM(latency) AS s, AVG(latency) AS a "
                "FROM events GROUP BY day"
            ),
        ]
    )
    assert plan is not None
    combined = format_query(plan.combined_query("events"))
    # Finest grouping: union of both key sets, bare columns keep names.
    assert "GROUP BY queue, day" in combined
    # SUM(latency) appears once even though both plans ask for it (the
    # AVG decomposition reuses it as its sum piece or adds its own —
    # either way no duplicate partial for the plain SUM).
    assert combined.count("SUM(latency)") <= 2  # plain SUM + AVG's sum piece
    merge_0 = format_query(plan.plans[0].merge_query("__batchscan_p"))
    assert "GROUP BY queue" in merge_0 and "SUM(" in merge_0
    merge_1 = format_query(plan.plans[1].merge_query("__batchscan_p"))
    assert "GROUP BY day" in merge_1
    assert "* 1.0 /" in merge_1  # AVG merges as SUM(sums)*1.0/SUM(counts)


def test_build_multiplan_rejects_uncombinable_shapes():
    grouped = "SELECT queue, COUNT(*) AS n FROM events GROUP BY queue"
    assert build_multiplan([parse_query(grouped)]) is None  # needs >= 2
    for bad in [
        "SELECT queue FROM events",  # projection: nothing to decompose
        "SELECT queue, COUNT(*) AS n FROM events GROUP BY queue "
        "ORDER BY n DESC",
        "SELECT queue, COUNT(*) AS n FROM events GROUP BY queue LIMIT 3",
        "SELECT queue, COUNT(*) AS n FROM events GROUP BY queue "
        "HAVING COUNT(*) > 2",
        "SELECT queue, COUNT(DISTINCT status) AS n FROM events "
        "GROUP BY queue",
        "SELECT COUNT(*) FROM events",  # unaliased non-column item
    ]:
        assert eligible_plan(parse_query(bad)) is None, bad
        assert build_multiplan([parse_query(grouped), parse_query(bad)]) is (
            None
        ), bad


def test_expression_keys_get_internal_names():
    plan = build_multiplan(
        [
            parse_query(
                "SELECT YEAR(day) AS y, COUNT(*) AS n FROM events "
                "GROUP BY YEAR(day)"
            ),
            parse_query(
                "SELECT queue, COUNT(*) AS n FROM events GROUP BY queue"
            ),
        ]
    )
    assert plan is not None
    assert "__mkey0" in plan.combined_names
    assert "queue" in plan.combined_names


# ---------------------------------------------------------------------------
# Byte-identity: multiplan x engines x workers x shards
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine_name", ENGINES)
@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize("shards", [1, 4])
def test_multiplan_results_identical_to_sequential(
    engine_name, workers, shards
):
    engine = create_engine(engine_name)
    engine.load_table(_events_table())
    queries = _queries()
    sequential = [engine.execute(q) for q in queries]
    batched = engine.execute_batch(
        list(queries), workers=workers, shards=shards, multiplan=True
    )
    _assert_identical(
        sequential, batched,
        f"{engine_name} workers={workers} shards={shards}",
    )
    engine.close()


@pytest.mark.parametrize("engine_name", ENGINES)
def test_multiplan_matches_per_group_path_bytewise(engine_name):
    """--multiplan vs --no-multiplan: same bytes, fewer base scans."""
    queries = _queries()
    off = create_engine(engine_name)
    off.load_table(_events_table())
    baseline = off.execute_batch(list(queries), multiplan=False)

    counting = CountingEngine(create_engine(engine_name))
    counting.load_table(_events_table())
    combined = counting.inner.execute_batch(list(queries), multiplan=True)
    _assert_identical(
        [t.result for t in baseline], combined, engine_name
    )
    off.close()
    counting.close()


def test_multiplan_collapses_unfiltered_group_to_one_scan():
    counting = CountingEngine(create_engine("vectorstore"))
    counting.load_table(_events_table())
    unfiltered = [parse_query(sql) for sql in _SUITE[:5]]  # one group

    counting.reset()
    BatchExecutor(counting, multiplan=False).run(list(unfiltered))
    per_class_scans = counting.base_scans()

    counting.reset()
    result = BatchExecutor(counting, multiplan=True).run(list(unfiltered))
    combined_scans = counting.base_scans()

    assert per_class_scans == 4  # queue (fused pair), day, flag, global
    assert combined_scans == 1  # the single combined pass
    assert result.stats.multiplan_groups == 1
    assert result.stats.multiplan_plans == 4
    assert result.stats.base_scans == 1
    counting.close()


def test_multiplan_off_is_the_exact_preexisting_path():
    """multiplan=False matches the default executor in results *and*
    statistics, and never reaches the evaluator at all."""
    queries = _queries()
    plain = create_engine("vectorstore")
    plain.load_table(_events_table())
    reference = BatchExecutor(plain).run(list(queries))
    assert reference.stats.multiplan_groups == 0
    assert reference.stats.multiplan_plans == 0
    executor = ScanGroupExecutor(plain, workers=1, shards=1, multiplan=False)
    off = executor.run(list(queries))
    _assert_identical(
        [t.result for t in reference.results], off.results, "multiplan=False"
    )
    for field in (
        "queries", "groups", "base_scans", "shared_scans", "fused_queries",
        "cache_hits", "fallbacks", "sharded_groups", "shard_scans",
        "multiplan_groups", "multiplan_plans",
    ):
        assert getattr(off.stats, field) == getattr(
            reference.stats, field
        ), field
    executor.close()
    plain.close()


def test_ineligible_classes_ride_along_per_class():
    """ORDER BY/DISTINCT shapes in an unfiltered group still execute
    individually while the eligible classes share the combined pass."""
    counting = CountingEngine(create_engine("rowstore"))
    counting.load_table(_events_table())
    queries = [
        parse_query(sql)
        for sql in (_SUITE[0], _SUITE[2], _SUITE[7], _SUITE[8])
    ]
    sequential = [counting.inner.execute(q) for q in queries]
    counting.reset()
    result = BatchExecutor(counting, multiplan=True).run(list(queries))
    _assert_identical(sequential, result.results, "mixed group")
    # One combined pass for the two eligible classes + one scan each
    # for ORDER BY and DISTINCT.
    assert counting.base_scans() == 3
    assert result.stats.multiplan_plans == 2
    counting.close()


def test_no_temp_relation_survives_the_combined_pass():
    engine = create_engine("rowstore")
    engine.load_table(_events_table())
    BatchExecutor(engine, multiplan=True).run(
        [parse_query(sql) for sql in _SUITE[:5]]
    )
    assert not [
        name
        for name in engine._db.table_names
        if name.startswith(TEMP_PREFIX)
    ]
    engine.close()


# ---------------------------------------------------------------------------
# Edge cases
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine_name", ENGINES)
def test_empty_table_global_and_grouped_plans(engine_name):
    """A cold render over an empty table: grouped plans yield zero
    rows; global aggregates still owe the engine's one-row result."""
    schema = _events_table().schema
    empty = Table.from_columns(
        "events", {c.name: [] for c in schema}, schema=schema
    )
    engine = create_engine(engine_name)
    engine.load_table(empty)
    queries = _queries()
    sequential = [engine.execute(q) for q in queries]
    for workers, shards in [(1, 1), (2, 3)]:
        batched = engine.execute_batch(
            list(queries), workers=workers, shards=shards, multiplan=True
        )
        _assert_identical(
            sequential, batched, f"empty {engine_name} s={shards}"
        )
    engine.close()


@pytest.mark.parametrize("engine_name", ENGINES)
def test_all_global_plans_combine(engine_name):
    """A group holding only global aggregates (no GROUP BY anywhere)
    runs as one keyless combined pass — one row in, N rows out."""
    queries = [
        parse_query("SELECT COUNT(*) AS n FROM events"),
        parse_query("SELECT SUM(latency) AS s, MIN(latency) AS lo "
                    "FROM events"),
        parse_query("SELECT AVG(priority) AS ap FROM events"),
    ]
    engine = create_engine(engine_name)
    engine.load_table(_events_table())
    sequential = [engine.execute(q) for q in queries]
    counting = CountingEngine(create_engine(engine_name))
    counting.load_table(_events_table())
    batched = BatchExecutor(counting, multiplan=True).run(list(queries))
    _assert_identical(sequential, batched.results, engine_name)
    assert counting.base_scans() == 1
    engine.close()
    counting.close()


def test_duplicate_queries_fuse_then_combine():
    """Repeated identical queries dedup in fusion before the combined
    pass; positional alignment must survive."""
    queries = [
        parse_query(_SUITE[0]),
        parse_query(_SUITE[2]),
        parse_query(_SUITE[0]),
    ]
    engine = create_engine("matstore")
    engine.load_table(_events_table())
    sequential = [engine.execute(q) for q in queries]
    result = BatchExecutor(engine, multiplan=True).run(list(queries))
    _assert_identical(sequential, result.results, "duplicates")
    assert result.stats.fused_queries == 1
    assert result.stats.multiplan_plans == 2
    engine.close()


@pytest.mark.parametrize("engine_name", ENGINES)
def test_dashboard_initial_render_is_identical(engine_name):
    """The motivating workload: a cold six-chart render, byte-identical
    with the combined pass on integer measures and temporal keys."""
    spec = load_dashboard("customer_service")
    table = generate_dataset("customer_service", 400, seed=11)
    state = DashboardState(spec, table)
    queries = state.initial_queries()
    engine = create_engine(engine_name)
    engine.load_table(table)
    sequential = [engine.execute(q) for q in queries]
    refreshed = state.refresh(engine, batch=True, multiplan=True)
    batched = [refreshed[v] for v in sorted(state.visualizations)]
    _assert_identical(sequential, batched, engine_name)
    engine.close()


# ---------------------------------------------------------------------------
# Cache interaction
# ---------------------------------------------------------------------------


def test_cached_engine_serves_repeat_renders_without_scans():
    counting = CountingEngine(create_engine("vectorstore"))
    engine = CachedEngine(counting)
    engine.load_table(_events_table())
    queries = _queries()
    first = engine.execute_batch(list(queries), multiplan=True)
    scans_after_first = counting.base_scans()
    assert scans_after_first > 0
    second = engine.execute_batch(list(queries), multiplan=True)
    _assert_identical([t.result for t in first], second, "warm repeat")
    assert counting.base_scans() == scans_after_first  # zero new work
    # The per-plan results were cached under their own SQL, so a
    # non-multiplan repeat is served from the same entries.
    third = engine.execute_batch(list(queries), multiplan=False)
    _assert_identical([t.result for t in first], third, "cross-mode repeat")
    assert counting.base_scans() == scans_after_first
    engine.close()


def test_load_table_invalidates_multiplan_cache_entries():
    counting = CountingEngine(create_engine("vectorstore"))
    engine = CachedEngine(counting)
    engine.load_table(_events_table())
    queries = _queries()
    engine.execute_batch(list(queries), multiplan=True)
    scans_cold = counting.base_scans()

    engine.load_table(_events_table(seed=9))  # mutate the base table
    fresh_sequential = [counting.inner.execute(q) for q in queries]
    recomputed = engine.execute_batch(list(queries), multiplan=True)
    _assert_identical(fresh_sequential, recomputed, "post-invalidation")
    assert counting.base_scans() > scans_cold  # really recomputed
    engine.close()


@pytest.mark.parametrize("shards", [1, 4])
def test_cached_engine_multiplan_with_workers_and_shards(shards):
    counting = CountingEngine(create_engine("sqlite"))
    engine = CachedEngine(counting)
    engine.load_table(_events_table())
    queries = _queries()
    sequential = [counting.inner.execute(q) for q in queries]
    batched = engine.execute_batch(
        list(queries), workers=4, shards=shards, multiplan=True
    )
    _assert_identical(sequential, batched, f"cached shards={shards}")
    repeat = engine.execute_batch(
        list(queries), workers=4, shards=shards, multiplan=True
    )
    _assert_identical(sequential, repeat, f"cached repeat shards={shards}")
    engine.close()


# ---------------------------------------------------------------------------
# Sharded composition details
# ---------------------------------------------------------------------------


def test_sharded_multiplan_keeps_per_shard_scan_shape():
    """multiplan does not change how many range scans sharding issues —
    it removes the per-class partial queries, not the shard scans."""
    counting = CountingEngine(create_engine("vectorstore"))
    counting.load_table(_events_table())
    unfiltered = [parse_query(sql) for sql in _SUITE[:5]]  # one group
    executor = ScanGroupExecutor(
        counting, workers=1, shards=4, multiplan=True
    )
    result = executor.run(list(unfiltered))
    executor.close()
    assert result.stats.sharded_groups == 1
    assert result.stats.shard_scans == 4
    assert result.stats.multiplan_groups == 1
    assert result.stats.multiplan_plans == 4
    assert counting.shard_scans.get("events") == 4
    assert counting.scans.get("events") == 4  # nothing else reads base
    counting.close()


def test_session_and_benchmark_configs_carry_the_flag():
    from repro.harness.config import BenchmarkConfig
    from repro.simulation.session import SessionConfig

    assert SessionConfig().multiplan is False
    assert BenchmarkConfig().multiplan is False
    config = BenchmarkConfig(multiplan=True)
    assert config.session.multiplan is True  # mirrored into the session
    explicit = BenchmarkConfig(
        session=SessionConfig(multiplan=True, run_to_max=True)
    )
    assert explicit.multiplan is True  # session remains source of truth


def test_cli_parsers_accept_the_toggle():
    from repro.harness.cli import build_parser as harness_parser
    from repro.logs.cli import build_parser as logs_parser

    args = harness_parser().parse_args(["--batch", "--multiplan"])
    assert args.multiplan is True
    args = harness_parser().parse_args(["--batch", "--no-multiplan"])
    assert args.multiplan is False
    args = logs_parser().parse_args(
        ["replay", "log.jsonl", "--batch", "--multiplan"]
    )
    assert args.multiplan is True
