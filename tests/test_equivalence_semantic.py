"""Unit tests for the SPES-style semantic equivalence checker."""

from repro.equivalence.semantic import (
    canonical_form,
    semantically_equivalent,
    semantically_subsumes,
)
from repro.sql.parser import parse_query


def equivalent(a, b):
    return semantically_equivalent(parse_query(a), parse_query(b))


def subsumes(goal, candidate):
    return semantically_subsumes(parse_query(goal), parse_query(candidate))


class TestEquivalent:
    def test_identical(self):
        assert equivalent("SELECT a FROM t", "SELECT a FROM t")

    def test_select_order_irrelevant(self):
        assert equivalent(
            "SELECT a, b FROM t", "SELECT b, a FROM t"
        )

    def test_aliases_ignored(self):
        assert equivalent(
            "SELECT COUNT(x) AS n FROM t", "SELECT COUNT(x) AS total FROM t"
        )

    def test_conjunct_order_irrelevant(self):
        assert equivalent(
            "SELECT a FROM t WHERE x = 1 AND y = 2",
            "SELECT a FROM t WHERE y = 2 AND x = 1",
        )

    def test_in_list_order_irrelevant(self):
        assert equivalent(
            "SELECT a FROM t WHERE q IN ('A','B')",
            "SELECT a FROM t WHERE q IN ('B','A')",
        )

    def test_between_equals_comparisons(self):
        assert equivalent(
            "SELECT a FROM t WHERE h BETWEEN 1 AND 5",
            "SELECT a FROM t WHERE h >= 1 AND h <= 5",
        )

    def test_de_morgan(self):
        assert equivalent(
            "SELECT a FROM t WHERE NOT (x = 1 OR y = 2)",
            "SELECT a FROM t WHERE x != 1 AND y != 2",
        )

    def test_table_qualifiers_stripped(self):
        assert equivalent("SELECT t.a FROM t", "SELECT a FROM t")

    def test_table_name_case_insensitive(self):
        assert equivalent("SELECT a FROM T", "SELECT a FROM t")

    def test_group_by_order_irrelevant(self):
        assert equivalent(
            "SELECT a, b, COUNT(*) FROM t GROUP BY a, b",
            "SELECT b, a, COUNT(*) FROM t GROUP BY b, a",
        )

    def test_order_by_ignored_without_limit(self):
        assert equivalent(
            "SELECT a FROM t ORDER BY a", "SELECT a FROM t"
        )


class TestNotEquivalent:
    def test_different_tables(self):
        assert not equivalent("SELECT a FROM t1", "SELECT a FROM t2")

    def test_different_predicates(self):
        assert not equivalent(
            "SELECT a FROM t WHERE x > 1", "SELECT a FROM t WHERE x >= 1"
        )

    def test_different_aggregates(self):
        assert not equivalent(
            "SELECT SUM(x) FROM t", "SELECT AVG(x) FROM t"
        )

    def test_extra_select_column(self):
        assert not equivalent("SELECT a FROM t", "SELECT a, b FROM t")

    def test_distinct_matters(self):
        assert not equivalent(
            "SELECT a FROM t", "SELECT DISTINCT a FROM t"
        )

    def test_limit_matters(self):
        assert not equivalent(
            "SELECT a FROM t", "SELECT a FROM t LIMIT 5"
        )

    def test_order_matters_with_limit(self):
        assert not equivalent(
            "SELECT a FROM t ORDER BY a LIMIT 5",
            "SELECT a FROM t ORDER BY a DESC LIMIT 5",
        )

    def test_having_matters(self):
        assert not equivalent(
            "SELECT a, COUNT(*) FROM t GROUP BY a",
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1",
        )


class TestSubsumption:
    def test_fewer_conjuncts_subsume(self):
        assert subsumes(
            "SELECT a FROM t WHERE x = 1 AND y = 2",
            "SELECT a FROM t WHERE x = 1",
        )

    def test_more_conjuncts_do_not(self):
        assert not subsumes(
            "SELECT a FROM t WHERE x = 1",
            "SELECT a FROM t WHERE x = 1 AND y = 2",
        )

    def test_superset_select_subsumes(self):
        assert subsumes("SELECT a FROM t", "SELECT a, b FROM t")

    def test_subset_select_does_not(self):
        assert not subsumes("SELECT a, b FROM t", "SELECT a FROM t")

    def test_equal_queries_subsume(self):
        assert subsumes("SELECT a FROM t", "SELECT a FROM t")

    def test_unfiltered_subsumes_filtered(self):
        assert subsumes(
            "SELECT a FROM t WHERE q = 'A'", "SELECT a FROM t"
        )

    def test_different_grouping_blocks(self):
        assert not subsumes(
            "SELECT a, COUNT(*) FROM t GROUP BY a",
            "SELECT b, COUNT(*) FROM t GROUP BY b",
        )

    def test_limit_blocks_subsumption(self):
        assert not subsumes(
            "SELECT a FROM t", "SELECT a FROM t LIMIT 5"
        )


class TestCanonicalForm:
    def test_is_hashable(self):
        form = canonical_form(parse_query("SELECT a FROM t"))
        assert hash(form) == hash(
            canonical_form(parse_query("SELECT a FROM t"))
        )

    def test_captures_limit_and_order(self):
        form = canonical_form(
            parse_query("SELECT a FROM t ORDER BY a DESC LIMIT 3")
        )
        assert form.limit == 3
        assert form.order == ("-a",)
