"""Ablation: Oracle lookahead depth (plan quality vs planning cost).

DESIGN.md calls out the LookAhead depth as a design choice worth
ablating: depth 1 is the paper's greedy default; depth 2 expands a beam
of candidates one extra step. Expectation: depth 2 never needs *more*
interactions to reach the goal, but evaluates far more candidate plans.
"""

import random

from _common import write_result

from repro.dashboard.library import load_dashboard
from repro.engine.registry import create_engine
from repro.equivalence.results import ResultCache
from repro.dashboard.state import DashboardState
from repro.metrics import format_table
from repro.simulation.goals import GoalTracker
from repro.simulation.oracle import OracleModel
from repro.algebra import get_template
from repro.workload import generate_dataset


def run_oracle(lookahead):
    spec = load_dashboard("customer_service")
    table = generate_dataset("customer_service", 2_000, seed=21)
    engine = create_engine("vectorstore")
    engine.load_table(table)
    goal = get_template("analyzing_spread").instantiate(
        "customer_service",
        categorical="queue",
        quantitative="lostCalls",
        agg="count",
        threshold=1,
    )
    state = DashboardState(spec, table)
    cache = ResultCache(engine)
    tracker = GoalTracker([goal.query], cache)
    tracker.observe(state.initial_queries())
    oracle = OracleModel(
        tracker, lookahead=lookahead, rng=random.Random(0)
    )
    steps = 0
    while not tracker.complete and steps < 25:
        interaction = oracle.next_interaction(state)
        if interaction is None:
            break
        tracker.observe(state.apply(interaction))
        steps += 1
    return {
        "lookahead": lookahead,
        "interactions": steps,
        "completed": tracker.complete,
        "plans_evaluated": oracle.plans_evaluated,
    }


def run_ablation():
    return [run_oracle(1), run_oracle(2)]


def test_ablation_lookahead(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    write_result("ablation_lookahead", format_table(rows))

    depth1, depth2 = rows
    assert depth1["completed"] and depth2["completed"]
    # Deeper planning must not need more interactions...
    assert depth2["interactions"] <= depth1["interactions"] + 1
    # ...but pays a much larger planning bill.
    assert depth2["plans_evaluated"] > depth1["plans_evaluated"] * 2
