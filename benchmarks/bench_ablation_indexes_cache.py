"""Ablation: indexing and result caching (paper §6.2.2).

The paper benchmarks every DBMS with "no indexing or caching". Expert E5
(§6.4) argues simulated workloads are precisely how you would choose
indexes ahead of time. This ablation runs the same selective,
widget-shaped filter workload three ways on each engine that supports
indexes:

- cold: no indexes, no cache (the paper's configuration);
- indexed: hash+range indexes on the filtered columns;
- cached: an LRU result cache in front of the cold engine, replaying the
  repetitive query stream a real dashboard session produces.

Expected shape: indexes help the scan-bound engines on selective
filters; the cache collapses repeated queries on every engine.
"""

import time

from _common import BENCH_ROWS, write_result

from repro.engine import CachedEngine
from repro.engine.registry import create_engine
from repro.metrics import format_table
from repro.sql.parser import parse_query
from repro.workload import generate_dataset

#: Selective widget-style filters (a checkbox plus a narrow slider), the
#: shape interactions emit; each appears several times per session
#: because users toggle back and forth.
FILTERS = [
    "SELECT repID, COUNT(*) AS n FROM customer_service "
    "WHERE queue = 'D' AND hour = 3 GROUP BY repID",
    "SELECT COUNT(*) AS n FROM customer_service "
    "WHERE queue IN ('C', 'D') AND hour BETWEEN 22 AND 23",
    "SELECT hour, SUM(abandoned) AS ab FROM customer_service "
    "WHERE queue = 'C' AND hour < 2 GROUP BY hour",
]

#: Queries per simulated session; revisits make the cache realistic.
SESSION_LENGTH = 30
INDEXED_ENGINES = ("rowstore", "matstore", "sqlite")


def run_ablation():
    table = generate_dataset("customer_service", BENCH_ROWS, seed=17)
    queries = [parse_query(sql) for sql in FILTERS]
    stream = [queries[i % len(queries)] for i in range(SESSION_LENGTH)]

    rows = []
    for engine_name in INDEXED_ENGINES:
        cold = create_engine(engine_name)
        cold.load_table(table)

        indexed = create_engine(engine_name)
        indexed.load_table(table)
        indexed.create_index("customer_service", "queue")
        indexed.create_index("customer_service", "hour")

        cached = CachedEngine(create_engine(engine_name), capacity=64)
        cached.load_table(table)

        # Correctness first: all three modes must agree.
        for query in queries:
            expected = cold.execute(query).sorted_rows()
            assert indexed.execute(query).sorted_rows() == expected
            assert cached.execute(query).sorted_rows() == expected
        cached.invalidate()

        cold_ms = _time_stream(cold, stream)
        indexed_ms = _time_stream(indexed, stream)
        cached_ms = _time_stream(cached, stream)
        rows.append(
            {
                "engine": engine_name,
                "cold_ms": round(cold_ms, 2),
                "indexed_ms": round(indexed_ms, 2),
                "cached_ms": round(cached_ms, 2),
                "index_speedup": f"{cold_ms / indexed_ms:.2f}x",
                "cache_speedup": f"{cold_ms / cached_ms:.2f}x",
                "cache_hit_rate": f"{cached.hit_rate:.2f}",
            }
        )
        cold.close()
        indexed.close()
        cached.close()
    return rows


def _time_stream(engine, stream) -> float:
    start = time.perf_counter()
    for query in stream:
        engine.execute(query)
    return (time.perf_counter() - start) * 1000


def test_ablation_indexes_cache(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    write_result("ablation_indexes_cache", format_table(rows))

    by_engine = {row["engine"]: row for row in rows}
    # Shape claims:
    # 1. Indexes speed up the tuple-at-a-time engine on selective
    #    filters (it otherwise pays full-scan dict materialization).
    assert float(by_engine["rowstore"]["index_speedup"].rstrip("x")) > 1.5
    # 2. The cache turns repeats into hits on every engine, with a high
    #    hit rate for a 3-distinct-query session of 30 queries.
    for row in rows:
        assert float(row["cache_hit_rate"]) > 0.8
        assert float(row["cache_speedup"].rstrip("x")) > 1.5
