"""Multi-tenant serving under simulated dashboard traffic.

Drives one :class:`~repro.serving.app.ServingApp` process with hundreds
of IDEBench-mix simulated users (think-time included, latency measured
per request) and reports the serving tier's headline numbers:

- request latency p50/p95/p99 (ms) as the users observed it,
- sessions/sec (session churn is part of the op mix) and requests/sec,
- the cross-session cache hit rate — the multiplier that makes many
  co-tenants cheaper than many engines,
- byte-identity: a served refresh against an uncached direct
  :class:`repro.Session` over the same table.

Honest framing: the 500-user leg drives the app **in-process**
(transport excluded) — on this container's single core
(``cpu_count`` is recorded in the artifact) an HTTP hop would measure
the GIL-bound ``http.server`` thread scheduler more than the serving
tier. A smaller HTTP leg is included so the artifact also reports
transport-included latency; CI's soak drives the real server socket.

Writes ``benchmarks/results/BENCH_serving.json``. Run standalone with
``python bench_serving.py --smoke`` (few users — CI wiring check, not
a measurement).
"""

from __future__ import annotations

import json
import os
import sys
import time

from _common import BENCH_ROWS, RESULTS_DIR, write_result

import repro
from repro.dashboard.library import load_dashboard
from repro.metrics import format_table
from repro.serving import (
    DashboardServer,
    InProcessClient,
    ServingApp,
    ServingClient,
    ServingConfig,
    results_signature,
    run_load,
)
from repro.serving.loadgen import LoadReport
from repro.workload import generate_dataset

DASHBOARD = "customer_service"
ENGINE = "sqlite"

#: The acceptance floor: one server process must sustain this many
#: concurrent simulated users.
FULL_USERS = 500
SMOKE_USERS = 32
HTTP_USERS = 24

CONFIG = ServingConfig(
    session_ttl=120.0,
    sweep_interval=30.0,
    max_in_flight=8,
    max_queue_depth=512,
    queue_timeout=60.0,
    retry_after=0.2,
    cache_capacity=256,
)


def _serving_rows() -> int:
    # Latency benchmark, not a scan benchmark: cap the table so a cache
    # miss costs milliseconds and the numbers measure the serving tier.
    return min(BENCH_ROWS, 6000)


def _check_identity(app: ServingApp, table) -> dict:
    """Cold + cross-session-warm served results vs a direct Session."""
    with repro.connect(ENGINE) as direct:
        direct.load(table)
        expected = results_signature(direct.refresh(DASHBOARD))
    first = app.create_session("identity-a", DASHBOARD, engine=ENGINE)
    cold = app.refresh(first["session_id"])
    second = app.create_session("identity-b", DASHBOARD, engine=ENGINE)
    warm = app.refresh(second["session_id"])
    app.close_session(first["session_id"])
    app.close_session(second["session_id"])
    cold_ok = results_signature(cold) == expected
    warm_ok = results_signature(warm) == expected
    assert cold_ok, "cold served refresh != direct session"
    assert warm_ok, "cache-served refresh != direct session"
    return {"cold_identical": cold_ok, "warm_identical": warm_ok}


def _load_block(report: LoadReport, app_stats: dict) -> dict:
    block = report.summary()
    cache = app_stats["caches"].get(ENGINE, {})
    block["cross_session_hit_rate"] = cache.get("hit_rate", 0.0)
    block["cache"] = cache
    block["admission"] = {
        key: app_stats["admission"][key]
        for key in ("admitted", "rejected_queue_full", "rejected_timeout")
    }
    block["server_errors"] = app_stats["errors"]
    return block


def run_serving(users: int, operations: int = 4, think_s: float = 0.25):
    table = generate_dataset(DASHBOARD, _serving_rows(), seed=31)
    spec = load_dashboard(DASHBOARD)

    app = ServingApp(CONFIG, default_engine=ENGINE)
    app.load_table(table)
    app.register_dashboard(spec)
    with app:
        identity = _check_identity(app, table)
        report = run_load(
            lambda: InProcessClient(app),
            spec,
            table,
            users=users,
            operations=operations,
            think_s=think_s,
            tenants=8,
            seed=17,
            engine=ENGINE,
        )
        inprocess = _load_block(report, app.stats())
        inprocess["transport"] = "in-process (transport excluded)"
        assert not report.errors, report.errors[:3]
        assert app.error_count == 0, "serving app recorded server faults"

    # Transport-included mini-leg over the real HTTP socket.
    http_app = ServingApp(CONFIG, default_engine=ENGINE)
    http_app.load_table(table)
    http_app.register_dashboard(spec)
    with DashboardServer(http_app) as server:
        http_report = run_load(
            lambda: ServingClient(server.url),
            spec,
            table,
            users=min(HTTP_USERS, users),
            operations=operations,
            think_s=think_s,
            tenants=4,
            seed=19,
            engine=ENGINE,
        )
        http_block = _load_block(http_report, http_app.stats())
        http_block["transport"] = "http (stdlib ThreadingHTTPServer)"
        assert not http_report.errors, http_report.errors[:3]
        assert http_app.error_count == 0, "HTTP leg recorded 5xx"

    return identity, inprocess, http_block


def _write_artifact(identity, inprocess, http_block, users) -> dict:
    rows = [
        {
            "leg": "in-process",
            "users": inprocess["users"],
            "p50_ms": inprocess["latency_ms"]["p50"],
            "p95_ms": inprocess["latency_ms"]["p95"],
            "p99_ms": inprocess["latency_ms"]["p99"],
            "sessions_per_sec": inprocess["sessions_per_sec"],
            "hit_rate": inprocess["cross_session_hit_rate"],
        },
        {
            "leg": "http",
            "users": http_block["users"],
            "p50_ms": http_block["latency_ms"]["p50"],
            "p95_ms": http_block["latency_ms"]["p95"],
            "p99_ms": http_block["latency_ms"]["p99"],
            "sessions_per_sec": http_block["sessions_per_sec"],
            "hit_rate": http_block["cross_session_hit_rate"],
        },
    ]
    write_result("serving", format_table(rows))
    RESULTS_DIR.mkdir(exist_ok=True)
    artifact = {
        "suite": "multi-tenant serving tier under IDEBench-mix load",
        "dashboard": DASHBOARD,
        "engine": ENGINE,
        "rows": _serving_rows(),
        "users": users,
        "cpu_count": os.cpu_count(),
        "config": {
            "max_in_flight": CONFIG.max_in_flight,
            "max_queue_depth": CONFIG.max_queue_depth,
            "session_ttl": CONFIG.session_ttl,
            "cache_capacity": CONFIG.cache_capacity,
        },
        "identity": identity,
        "inprocess": inprocess,
        "http": http_block,
        "note": (
            "p99 includes admission queueing; the 500-user leg is "
            "in-process because on a single core an HTTP hop measures "
            "the stdlib server's thread scheduler, not the serving "
            "tier — the http leg reports transport-included latency "
            "at lower concurrency"
        ),
    }
    (RESULTS_DIR / "BENCH_serving.json").write_text(
        json.dumps(artifact, indent=2) + "\n"
    )
    return artifact


def _assert_shape(identity, inprocess, http_block, users, smoke) -> None:
    assert identity["cold_identical"] and identity["warm_identical"]
    if not smoke:
        assert users >= FULL_USERS, f"only {users} users simulated"
    # Every user finished its script: nothing errored server- or
    # client-side, and latency percentiles exist.
    assert inprocess["errors"] == 0 and inprocess["server_errors"] == 0
    assert http_block["errors"] == 0 and http_block["server_errors"] == 0
    assert inprocess["completed"] > 0 and inprocess["latency_ms"]["p99"] > 0
    # The headline cache claim: co-tenants actually share results.
    assert inprocess["cross_session_hit_rate"] > 0, (
        "cross-session cache never hit"
    )


def test_serving_load(benchmark):
    users = SMOKE_USERS  # pytest leg is a wiring check, not the 500-user run
    identity, inprocess, http_block = benchmark.pedantic(
        run_serving, args=(users,), rounds=1, iterations=1
    )
    _write_artifact(identity, inprocess, http_block, users)
    _assert_shape(identity, inprocess, http_block, users, smoke=True)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="serving-tier benchmark (writes BENCH_serving.json)"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="few users, short think-time — CI wiring check",
    )
    parser.add_argument(
        "--users", type=int, default=None,
        help=f"simulated users (default {FULL_USERS}, smoke {SMOKE_USERS})",
    )
    args = parser.parse_args(argv)
    users = args.users or (SMOKE_USERS if args.smoke else FULL_USERS)
    think_s = 0.05 if args.smoke else 0.25
    started = time.perf_counter()
    identity, inprocess, http_block = run_serving(users, think_s=think_s)
    _write_artifact(identity, inprocess, http_block, users)
    _assert_shape(identity, inprocess, http_block, users, smoke=args.smoke)
    print(
        f"\nserving bench done in {time.perf_counter() - started:.1f}s: "
        f"{users} users, p99 "
        f"{inprocess['latency_ms']['p99']:.1f} ms (in-process), "
        f"hit rate {inprocess['cross_session_hit_rate']:.2f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
