"""Shared helpers for the reproduction benchmarks.

Each benchmark regenerates one table or figure from the paper's
evaluation (§6), prints the corresponding rows, and writes them to
``benchmarks/results/`` so EXPERIMENTS.md can reference stable outputs.
Absolute numbers differ from the paper (simulated engines, laptop
scale); assertions check the *shape* claims instead.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Default dataset size for benchmarks: large enough to separate the
#: engines, small enough for laptop runs. Override with SIMBA_BENCH_ROWS.
BENCH_ROWS = int(os.environ.get("SIMBA_BENCH_ROWS", "20000"))

#: Runs per parameter combination (the paper uses 8 on a 48-core server).
BENCH_RUNS = int(os.environ.get("SIMBA_BENCH_RUNS", "2"))


def policy_block(policy) -> dict:
    """The artifact config block for an ExecutionPolicy.

    Every ``BENCH_*.json`` embeds the policy it measured — the knob
    values plus the one-line ``describe()`` summary — so a result file
    is self-describing about how its queries executed.
    """
    block = dict(policy.knobs())
    block["summary"] = policy.describe()
    return block


def telemetry_block(telemetry) -> dict:
    """The artifact telemetry block for a finished Telemetry bundle.

    A thin alias for :func:`repro.telemetry.export.telemetry_snapshot`
    so benchmarks embed the same schema the docs describe: metric
    snapshot, span counts by name, and the per-tier query histogram.
    """
    from repro.telemetry import telemetry_snapshot

    return telemetry_snapshot(telemetry)


def write_result(name: str, text: str) -> None:
    """Persist one benchmark's rendered table and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===")
    print(text)
