"""Extension: approximate visualization support (paper §5).

The paper places SIMBA alongside Crossfilter and IDEBench as benchmarks
that "provide support for approximate visualization". This bench
characterizes that support: for a dashboard-shaped grouped aggregation,
it sweeps sampling fractions and reports the latency/error frontier,
then runs the progressive (online-aggregation) executor and reports how
the estimate converges step by step.

Expected shape: error falls monotonically (in trend) with fraction while
latency rises; the progressive run reaches a few-percent error long
before it has read the full table.
"""

from _common import BENCH_ROWS, write_result

from repro.approx import (
    approximate_execute,
    progressive_execute,
    relative_error,
)
from repro.engine.registry import create_engine
from repro.metrics import format_table
from repro.sql.parser import parse_query
from repro.workload import generate_dataset

QUERY = (
    "SELECT queue, COUNT(*) AS calls, SUM(abandoned) AS ab "
    "FROM customer_service GROUP BY queue"
)

FRACTIONS = (0.01, 0.05, 0.1, 0.25, 0.5)
SEEDS = (3, 11, 29)


def run_bench():
    table = generate_dataset("customer_service", BENCH_ROWS, seed=23)
    query = parse_query(QUERY)

    exact_engine = create_engine("vectorstore")
    exact_engine.load_table(table)
    exact_timed = exact_engine.execute_timed(query)
    exact = exact_timed.result

    frontier = []
    for fraction in FRACTIONS:
        errors = []
        latencies = []
        for seed in SEEDS:
            engine = create_engine("vectorstore")
            import time

            start = time.perf_counter()
            result = approximate_execute(
                engine, table, query, fraction, seed=seed
            )
            latencies.append((time.perf_counter() - start) * 1000)
            errors.append(relative_error(exact, result.estimate))
        frontier.append(
            {
                "fraction": fraction,
                "mean_rel_error": round(sum(errors) / len(errors), 4),
                "mean_latency_ms": round(
                    sum(latencies) / len(latencies), 2
                ),
            }
        )
    frontier.append(
        {
            "fraction": 1.0,
            "mean_rel_error": 0.0,
            "mean_latency_ms": round(exact_timed.duration_ms, 2),
        }
    )

    progressive = []
    engine = create_engine("vectorstore")
    for update in progressive_execute(
        engine, table, query, seed=7, epsilon=0.01
    ):
        progressive.append(
            {
                "step": update.step,
                "fraction": update.fraction,
                "rows_read": update.rows_read,
                "rel_error_vs_exact": round(
                    relative_error(exact, update.estimate), 4
                ),
                "change": (
                    "" if update.change is None else round(update.change, 4)
                ),
                "converged": update.converged,
            }
        )
    return frontier, progressive


def test_approx_progressive(benchmark):
    frontier, progressive = benchmark.pedantic(
        run_bench, rounds=1, iterations=1
    )
    text = (
        "Latency/error frontier (sample-and-scale):\n"
        + format_table(frontier)
        + "\n\nProgressive refinement (online aggregation):\n"
        + format_table(progressive)
    )
    write_result("approx_progressive", text)

    # Shape claims:
    # 1. Error at the smallest fraction exceeds error at the largest.
    assert frontier[0]["mean_rel_error"] > frontier[-2]["mean_rel_error"]
    # 2. Even 1% sampling keeps mean error within 35% (about 20 sample
    #    rows land in the smallest group at bench scale).
    assert all(row["mean_rel_error"] < 0.35 for row in frontier)
    # 3. Progressive error at the last step is under 5%.
    assert progressive[-1]["rel_error_vs_exact"] < 0.05
