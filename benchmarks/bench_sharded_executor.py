"""Sharded vs unsharded execution of the six-dashboard refresh suite.

The sharded executor (:mod:`repro.sharding`) splits each shardable scan
group's base scan into row-range shards — one task per (group, shard) —
and rolls per-shard partial aggregates up into the final results. This
benchmark drives identical interaction walks through all six library
dashboards (each on its own engine, the multi-session deployment shape)
at ``shards ∈ {1, 4}`` with ``workers=4``, and reports:

- **wall-clock** for the serving scenario (every engine call charged a
  simulated client/server round trip, ``SIMBA_BENCH_RTT_MS``) and
  compute-only (``rtt=0``);
- **per-shard scan counts** measured at the engine boundary with
  :class:`~repro.engine.instrument.CountingEngine`: ``base_scans`` is
  every base-table read, ``shard_scans`` the subset that carried a row
  range — at ``shards=4`` each sharded group issues four quarter-table
  range scans instead of one full scan.

Honest framing: sharding trades one full scan for N smaller scans plus
a merge, so it *costs* extra round trips in the latency-bound serving
scenario and extra task overhead on a single core (``cpu_count`` is
recorded in the artifact — this container has one). Its win is CPU
parallelism of the scan itself on multi-core hosts, where the quarter
scans run on four cores. What must hold everywhere, and is asserted
here, is result equivalence (IEEE-rounding-normalized — the rollup
re-associates float addition) and the scan-count shape.

Writes ``benchmarks/results/BENCH_sharded.json``.
"""

from __future__ import annotations

import json
import math
import os
import random
import time

from _common import BENCH_ROWS, RESULTS_DIR, policy_block, write_result

from repro.concurrency import run_tasks
from repro.execution import ExecutionPolicy
from repro.dashboard.library import DASHBOARD_NAMES, load_dashboard
from repro.dashboard.state import DashboardState, InteractionKind
from repro.engine.instrument import CountingEngine, DispatchLatencyEngine
from repro.engine.interface import normalize_value
from repro.engine.registry import create_engine
from repro.metrics import format_table
from repro.workload.datasets import generate_dataset

#: Interaction refreshes per dashboard session (plus the initial render).
WALK_STEPS = 3
WORKERS = 4
SHARD_LEVELS = (1, 4)
ENGINES = ("rowstore", "vectorstore", "matstore", "sqlite")
#: Simulated client<->DBMS round trip charged per engine call.
RTT_MS = float(os.environ.get("SIMBA_BENCH_RTT_MS", "10"))


def _record_walks():
    """Per dashboard: the (table, refresh query lists) of one session."""
    suites = []
    for name in DASHBOARD_NAMES:
        spec = load_dashboard(name)
        table = generate_dataset(name, BENCH_ROWS, seed=23)
        state = DashboardState(spec, table)
        rng = random.Random(47)
        refreshes = [state.initial_queries()]
        for _ in range(WALK_STEPS):
            actions = state.available_interactions()
            filtering = [
                a
                for a in actions
                if a.kind
                in (InteractionKind.WIDGET_TOGGLE, InteractionKind.WIDGET_SET)
            ] or actions
            refreshes.append(state.apply(rng.choice(filtering)))
        suites.append((name, table, refreshes))
    return suites


def _run_suite(engine_name, suites, shards, rtt_ms):
    """Drain every dashboard session once at one shard level.

    Returns ``(wall_ms, results, per_dashboard)`` where
    ``per_dashboard`` carries each dashboard's engine-boundary scan
    counts (base scans and the per-shard subset).
    """
    engines = []
    counters = []
    tasks = []
    for name, table, refreshes in suites:
        counting = CountingEngine(create_engine(engine_name))
        counting.load_table(table)
        engine = DispatchLatencyEngine(counting, rtt_ms)
        engines.append(engine)
        counters.append((name, table.name, counting))

        def session(engine=engine, refreshes=refreshes):
            collected = []
            for queries in refreshes:
                timed = engine.execute_batch(
                    list(queries),
                    ExecutionPolicy(workers=WORKERS, shards=shards),
                )
                collected.append([t.result for t in timed])
            return collected

        tasks.append(session)
    start = time.perf_counter()
    results = run_tasks(tasks, workers=WORKERS)
    wall_ms = (time.perf_counter() - start) * 1000.0
    per_dashboard = [
        {
            "dashboard": name,
            "base_scans": counting.base_scans(),
            "shard_scans": counting.shard_scans.get(table_name, 0),
        }
        for name, table_name, counting in counters
    ]
    for engine in engines:
        engine.close()
    return wall_ms, results, per_dashboard


def _flattened(results):
    return [
        r for session in results for refresh in session for r in refresh
    ]


def _cells_close(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, (int, float)):
        # Rollup re-associates float addition: equal to IEEE rounding.
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
    if isinstance(b, float) and isinstance(a, (int, float)):
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
    return normalize_value(a) == normalize_value(b)


def _assert_equivalent(results, baseline, context: str) -> None:
    flat, base = _flattened(results), _flattened(baseline)
    assert len(flat) == len(base), context
    for i, (got, want) in enumerate(zip(flat, base)):
        assert got.columns == want.columns, f"{context} [{i}] columns"
        assert len(got.rows) == len(want.rows), f"{context} [{i}] rows"
        for got_row, want_row in zip(got.rows, want.rows):
            assert len(got_row) == len(want_row), f"{context} [{i}]"
            assert all(
                _cells_close(g, w) for g, w in zip(got_row, want_row)
            ), f"{context} [{i}]: {got_row} != {want_row}"


def run_comparison():
    suites = _record_walks()
    rows = []
    per_shard_counts = {}
    for engine_name in ENGINES:
        row = {"engine": engine_name}
        baseline = None
        for shards in SHARD_LEVELS:
            serving_ms, results, per_dashboard = _run_suite(
                engine_name, suites, shards, RTT_MS
            )
            compute_ms, compute_results, _ = _run_suite(
                engine_name, suites, shards, 0.0
            )
            if baseline is None:
                baseline = results
            else:
                _assert_equivalent(
                    results, baseline, f"{engine_name} shards={shards}"
                )
            _assert_equivalent(
                compute_results, baseline,
                f"{engine_name} compute-only shards={shards}",
            )
            total_base = sum(d["base_scans"] for d in per_dashboard)
            total_shard = sum(d["shard_scans"] for d in per_dashboard)
            if shards == 1:
                assert total_shard == 0, "unsharded run issued range scans"
            else:
                assert total_shard > 0, "sharded run issued no range scans"
                assert total_shard % shards == 0, (
                    "per-shard scans must come in whole groups"
                )
            row[f"serving_ms_s{shards}"] = round(serving_ms, 1)
            row[f"compute_ms_s{shards}"] = round(compute_ms, 1)
            row[f"base_scans_s{shards}"] = total_base
            row[f"shard_scans_s{shards}"] = total_shard
            per_shard_counts[f"{engine_name}_shards{shards}"] = per_dashboard
        rows.append(row)
    return rows, per_shard_counts


def test_sharded_executor_equivalence_and_scan_shape(benchmark):
    rows, per_shard_counts = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )

    text = format_table(rows)
    write_result("sharded_executor", text)
    RESULTS_DIR.mkdir(exist_ok=True)
    artifact = {
        "suite": "six-dashboard refresh serving, sharded",
        "dashboards": list(DASHBOARD_NAMES),
        "rows": BENCH_ROWS,
        "walk_steps": WALK_STEPS,
        "refreshes_per_dashboard": 1 + WALK_STEPS,
        "workers": WORKERS,
        "shard_levels": list(SHARD_LEVELS),
        "config": {
            "policy": policy_block(
                ExecutionPolicy(workers=WORKERS, shards=max(SHARD_LEVELS))
            )
        },
        "simulated_rtt_ms": RTT_MS,
        "cpu_count": os.cpu_count(),
        "engines": {row["engine"]: row for row in rows},
        "per_dashboard_scan_counts": per_shard_counts,
    }
    (RESULTS_DIR / "BENCH_sharded.json").write_text(
        json.dumps(artifact, indent=2) + "\n"
    )

    # Shape claims (results were asserted equivalent inside the run):
    for row in rows:
        # Sharding replaces whole-table scans with per-range scans, so
        # the shards=4 run must issue range scans in multiples of 4.
        assert row["shard_scans_s4"] > 0, row
        assert row["shard_scans_s4"] % 4 == 0, row
        assert row["shard_scans_s1"] == 0, row
