"""Generated adversarial workloads vs the static optimizer presets.

The workload generator (:mod:`repro.workloadgen`) exists to hit each
optimizer's documented losing regime on purpose. This benchmark runs
every adversarial preset's dashboard (cold initial render) on all four
engines and stages a **duel** per preset: the policy whose optimizer
the preset targets vs the plain batched baseline, compute-only timing
(no simulated round trips — the regimes here are about compute and
merge overhead, not saved scans):

- ``key_union_explosion`` / ``high_cardinality_groupby`` duel
  **multiplan**: one chart per column makes the combined pass's finest
  grouping (GROUP BY the union of every chart's keys) approach the row
  count, so building and re-rolling the giant partial relation costs
  more than the per-class scans it replaced.
- ``tiny_tables_sharded`` duels **sharding**: at 64 rows the per-shard
  dispatch and partial-aggregate merge are pure overhead.
- ``empty_result_filters`` duels **max_throughput** against serial:
  a near-no-op dashboard where any fixed policy cost shows up directly.

Reported per (preset, engine): plain vs optimized wall-clock (best of
``BENCH_RUNS`` repetitions), engine-boundary base scans via
:class:`~repro.engine.instrument.CountingEngine`, and the loss ratio
``optimized / plain``. The artifact's ``losses`` section lists every
duel the optimizer lost (ratio > 1.0); the suite asserts at least one
preset shows a measurable loss (ratio >= 1.05) — the generator's
reason to exist. Byte-identity (``rows ==``) between the duelling
policies is asserted on every cell of the matrix; generated measures
are dyadic, so even float SUM/AVG merges are IEEE-exact.

Writes ``benchmarks/results/BENCH_workloadgen.json``.
"""

from __future__ import annotations

import json
import os
import time

from _common import BENCH_ROWS, BENCH_RUNS, RESULTS_DIR, policy_block, write_result

from repro.dashboard.state import DashboardState
from repro.engine.instrument import CountingEngine
from repro.engine.registry import create_engine
from repro.execution import ExecutionPolicy
from repro.metrics import format_table
from repro.workloadgen import PRESET_NAMES, generate_preset

ENGINES = ("rowstore", "vectorstore", "matstore", "sqlite")
CORPUS_SEED = 0
#: Shards used where a duel exercises the sharded rollup.
SHARDS = 4

#: preset -> (schema, optimizer label, plain policy, optimized policy).
#: The optimized side is the static choice the preset is built to punish.
DUELS = {
    "key_union_explosion": (
        "web_analytics",
        "multiplan",
        ExecutionPolicy(),
        ExecutionPolicy(multiplan=True),
    ),
    "high_cardinality_groupby": (
        "web_analytics",
        "multiplan",
        ExecutionPolicy(),
        ExecutionPolicy(multiplan=True),
    ),
    "tiny_tables_sharded": (
        "retail_sales",
        "sharding",
        ExecutionPolicy(),
        ExecutionPolicy(shards=SHARDS),
    ),
    "empty_result_filters": (
        "fleet_telemetry",
        "max_throughput",
        ExecutionPolicy.serial(),
        ExecutionPolicy.max_throughput(),
    ),
}


def _workloads():
    """One GeneratedWorkload per preset, bench-sized where that makes sense.

    ``tiny_tables_sharded`` keeps its 64-row table — shrinking the
    input is the preset; scaling it up would delete the regime.
    """
    loads = {}
    for preset in PRESET_NAMES:
        schema_name = DUELS[preset][0]
        rows = None if preset == "tiny_tables_sharded" else BENCH_ROWS
        workload = generate_preset(
            preset, schema_name, seed=CORPUS_SEED, rows=rows
        )
        loads[preset] = (workload, workload.build_table())
    return loads


def _timed_render(engine_name, table, queries, policy):
    """(best wall ms, base scans, results) for one cold render."""
    counting = CountingEngine(create_engine(engine_name))
    counting.load_table(table)
    best_ms = None
    results = None
    for _ in range(max(1, BENCH_RUNS)):
        counting.reset()
        start = time.perf_counter()
        timed = counting.execute_batch(list(queries), policy)
        elapsed = (time.perf_counter() - start) * 1000.0
        results = [t.result for t in timed]
        if best_ms is None or elapsed < best_ms:
            best_ms = elapsed
    scans = counting.base_scans()
    counting.close()
    return best_ms, scans, results


def run_matrix():
    rows = []
    losses = []
    identity_checks = []
    for preset, (workload, table) in _workloads().items():
        _, optimizer, plain_policy, optimized_policy = DUELS[preset]
        queries = DashboardState(workload.spec, table).initial_queries()
        for engine_name in ENGINES:
            plain_ms, plain_scans, plain_results = _timed_render(
                engine_name, table, queries, plain_policy
            )
            opt_ms, opt_scans, opt_results = _timed_render(
                engine_name, table, queries, optimized_policy
            )
            # Byte identity between the duelling policies: dyadic data
            # makes even re-associated float rollups exact.
            for want, got in zip(plain_results, opt_results):
                assert got.columns == want.columns, (preset, engine_name)
                assert got.rows == want.rows, (preset, engine_name)
            identity_checks.append(
                {"preset": preset, "engine": engine_name, "byte_identical": True}
            )
            ratio = opt_ms / plain_ms if plain_ms > 0 else float("inf")
            rows.append(
                {
                    "preset": preset,
                    "engine": engine_name,
                    "optimizer": optimizer,
                    "plain_ms": round(plain_ms, 2),
                    "optimized_ms": round(opt_ms, 2),
                    "ratio": round(ratio, 3),
                    "scans_plain": plain_scans,
                    "scans_optimized": opt_scans,
                }
            )
            if ratio > 1.0:
                losses.append(
                    {
                        "preset": preset,
                        "engine": engine_name,
                        "optimizer": optimizer,
                        "ratio": round(ratio, 3),
                    }
                )
    return rows, losses, identity_checks


def test_workloadgen_adversarial_matrix(benchmark):
    rows, losses, identity_checks = benchmark.pedantic(
        run_matrix, rounds=1, iterations=1
    )

    text = format_table(rows)
    write_result("workloadgen", text)
    RESULTS_DIR.mkdir(exist_ok=True)
    workload_meta = {
        preset: {
            "schema": DUELS[preset][0],
            "optimizer": DUELS[preset][1],
            "rows": 64 if preset == "tiny_tables_sharded" else BENCH_ROWS,
            "note": generate_preset(
                preset, DUELS[preset][0], seed=CORPUS_SEED
            ).note,
            "plain_policy": policy_block(DUELS[preset][2]),
            "optimized_policy": policy_block(DUELS[preset][3]),
        }
        for preset in PRESET_NAMES
    }
    artifact = {
        "suite": "generated adversarial workloads, cold render duels",
        "corpus_seed": CORPUS_SEED,
        "bench_rows": BENCH_ROWS,
        "bench_runs": BENCH_RUNS,
        "cpu_count": os.cpu_count(),
        "presets": workload_meta,
        "matrix": rows,
        "losses": sorted(
            losses, key=lambda l: l["ratio"], reverse=True
        ),
        "identity_checks": identity_checks,
    }
    (RESULTS_DIR / "BENCH_workloadgen.json").write_text(
        json.dumps(artifact, indent=2) + "\n"
    )

    # Identity held everywhere (asserted inside the run).
    assert len(identity_checks) == len(PRESET_NAMES) * len(ENGINES)
    # The generator's headline: at least one preset makes a static
    # optimizer measurably lose.
    assert any(loss["ratio"] >= 1.05 for loss in losses), losses
