"""§6.4 user study: can experts tell SIMBA logs from analyst logs?

Paper results: 6/12 correct guesses overall, binomial p = .774
(indistinguishable from chance), but 5/6 on IT Monitoring — where the
fixed randomization level repeatedly produced zero-result queries — vs
1/6 on Customer Service.

We run the simulated study (scripted judges applying the experts' own
reported strategy; see DESIGN.md substitutions) over several seeds and
check the *shape*: IT Monitoring success is above chance, Customer
Service success sits near chance, and IT Monitoring success exceeds
Customer Service success on average.
"""

from _common import write_result

from repro.metrics import format_table
from repro.study import run_user_study

SEEDS = range(5)


def run_study_sweep():
    return [run_user_study(seed=seed, rows=2_500) for seed in SEEDS]


def test_section64_user_study(benchmark):
    results = benchmark.pedantic(run_study_sweep, rounds=1, iterations=1)
    rows = []
    for seed, outcome in zip(SEEDS, results):
        rows.append(
            {
                "seed": seed,
                "it_monitor": f"{outcome.successes_by_dashboard['it_monitor']}/6",
                "customer_service": (
                    f"{outcome.successes_by_dashboard['customer_service']}/6"
                ),
                "overall": f"{outcome.total_successes}/12",
                "binomial_p": round(outcome.p_value, 3),
            }
        )
    text = format_table(rows)
    write_result("section64_study", text)

    it_total = sum(
        r.successes_by_dashboard["it_monitor"] for r in results
    )
    cs_total = sum(
        r.successes_by_dashboard["customer_service"] for r in results
    )
    n = 6 * len(results)
    # IT Monitoring: clearly above chance (paper: 5/6).
    assert it_total / n > 0.6
    # Customer Service: near chance (paper: 1/6; chance = 0.5).
    assert cs_total / n < 0.8
    # The dashboard-sensitivity finding: IT Monitor is easier to spot.
    assert it_total > cs_total
