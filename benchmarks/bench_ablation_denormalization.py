"""Ablation: denormalized vs. star-schema storage (paper §6.2.2).

The paper loads every dataset denormalized. This ablation quantifies
that choice: the same dashboard-style aggregation workload runs against
(a) the single wide table and (b) the equivalent star schema with joins
reassembled per query, on every engine. Expected shape: denormalized
wins on every engine (joins add per-query work and none of these
engines pre-materializes them), which is exactly why the paper — and
production dashboard backends — denormalize first.
"""

import time

from _common import BENCH_ROWS, write_result

from repro.engine.registry import available_engines, create_engine
from repro.metrics import format_table
from repro.sql.parser import parse_query
from repro.workload.datasets import (
    RETAIL_STAR_DIMENSIONS,
    generate_retail_orders,
)
from repro.workload.normalize import (
    DimensionSpec,
    load_star,
    normalize_star,
    reassembly_query,
)

#: Dashboard-shaped workload over the retail dataset: grouped aggregates
#: filtered by widget-style predicates, touching 0-2 dimensions each.
WORKLOAD = [
    "SELECT category, SUM(revenue) AS rev FROM retail_orders "
    "GROUP BY category",
    "SELECT region, category, COUNT(*) AS n FROM retail_orders "
    "WHERE quantity > 5 GROUP BY region, category",
    "SELECT region, AVG(revenue) AS avg_rev FROM retail_orders "
    "WHERE category IN ('Technology', 'Furniture') GROUP BY region",
    "SELECT city, SUM(quantity) AS q FROM retail_orders "
    "WHERE discount > 0 GROUP BY city",
    "SELECT store_id, COUNT(*) AS n FROM retail_orders GROUP BY store_id",
]

REPEATS = 3


def run_ablation():
    table = generate_retail_orders(BENCH_ROWS, seed=13)
    star = normalize_star(
        table, [DimensionSpec(*d) for d in RETAIL_STAR_DIMENSIONS]
    )
    queries = [parse_query(sql) for sql in WORKLOAD]
    star_queries = [reassembly_query(star, q) for q in queries]

    rows = []
    for engine_name in available_engines():
        denormalized = create_engine(engine_name)
        denormalized.load_table(table)
        normalized = create_engine(engine_name)
        load_star(normalized, star)

        # Verify once per engine that both layouts agree, then time.
        for query, star_query in zip(queries, star_queries):
            flat = denormalized.execute(query)
            joined = normalized.execute(star_query)
            assert flat.sorted_rows() == joined.sorted_rows(), engine_name

        flat_ms = _time_workload(denormalized, queries)
        star_ms = _time_workload(normalized, star_queries)
        rows.append(
            {
                "engine": engine_name,
                "denormalized_ms": round(flat_ms, 2),
                "star_schema_ms": round(star_ms, 2),
                "join_overhead": f"{star_ms / flat_ms:.2f}x",
            }
        )
        denormalized.close()
        normalized.close()
    return rows


def _time_workload(engine, queries) -> float:
    start = time.perf_counter()
    for _ in range(REPEATS):
        for query in queries:
            engine.execute(query)
    return (time.perf_counter() - start) * 1000 / REPEATS


def test_ablation_denormalization(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    write_result("ablation_denormalization", format_table(rows))

    overheads = {
        row["engine"]: float(row["join_overhead"].rstrip("x")) for row in rows
    }
    # Shape claim: star-schema reassembly costs extra on every engine —
    # the reason the paper's setup (and real dashboard backends)
    # denormalizes. Tolerance below 1.0 guards against timer noise on
    # engines where the joined tables are small.
    assert sum(overheads.values()) / len(overheads) > 1.0
    assert all(value > 0.8 for value in overheads.values())
