"""Table 3: the benchmark parameter matrix.

Enumerates the full grid (dataset sizes × goal sequences × dashboards)
and smoke-runs one cell per dashboard to prove every row is executable.
"""

import random

from _common import write_result

from repro.harness import BenchmarkConfig, table3_matrix
from repro.harness.config import PAPER_SIZES
from repro.metrics import format_table
from repro.simulation.workflows import get_workflow
from repro.dashboard.library import load_dashboard


def enumerate_matrix():
    config = BenchmarkConfig(sizes=dict(PAPER_SIZES))
    return table3_matrix(config)


def test_table3_matrix(benchmark):
    rows = benchmark.pedantic(enumerate_matrix, rounds=1, iterations=1)
    # 3 sizes x 3 workflows x 6 dashboards, as in the paper.
    assert len(rows) == 3 * 3 * 6

    # Every (workflow, dashboard) pair must either instantiate goals or
    # be the documented MyRide incompatibility.
    execution_notes = []
    for row in rows:
        if row["dataset_size"] != "100K":
            continue
        workflow = get_workflow(str(row["goal_sequence"]))
        spec = load_dashboard(str(row["dashboard"]))
        applicable = workflow.is_applicable_to_dashboard(spec)
        if not applicable:
            assert row["dashboard"] == "myride"
            assert row["goal_sequence"] in ("battle_heer", "crossfilter")
        execution_notes.append(
            {
                "goal_sequence": row["goal_sequence"],
                "dashboard": row["dashboard"],
                "applicable": applicable,
            }
        )
    text = format_table(rows) + "\n\napplicability:\n" + format_table(
        execution_notes
    )
    write_result("table3_matrix", text)
