"""Figure 8: query durations grouped by workflow and dashboard.

Shape claims under test (paper §6.3):

- the Shneiderman workflow achieves the lowest (or tied-lowest) query
  durations overall;
- for dashboards with few attributes and near-identical visualizations
  (Circulation Activity) the workflow barely matters, while Customer
  Service shows clear per-workflow differences.
"""

from _common import BENCH_ROWS, BENCH_RUNS, write_result

from repro.harness import BenchmarkConfig, BenchmarkRunner
from repro.metrics import format_table


def run_grid():
    config = BenchmarkConfig(
        engines=("vectorstore",),
        workflows=("shneiderman", "battle_heer", "crossfilter"),
        sizes={"bench": BENCH_ROWS},
        runs=BENCH_RUNS,
        reference_rows=1_500,
    )
    return BenchmarkRunner(config).run()


def test_figure8_workflow_distributions(benchmark):
    result = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    summaries = result.summaries_by("workflow", "dashboard")
    text = format_table([s.as_row() for s in summaries])
    write_result("figure8_workflows", text)

    by_workflow = {s.label: s for s in result.summaries_by("workflow")}
    text2 = format_table([s.as_row() for s in by_workflow.values()])
    write_result("figure8_by_workflow_only", text2)

    # Shneiderman is the cheapest (or within 15% of the cheapest).
    cheapest = min(s.mean for s in by_workflow.values())
    assert by_workflow["shneiderman"].mean <= cheapest * 1.15

    # Circulation varies little across workflows relative to Customer
    # Service (ratio of max/min mean duration across workflows).
    def spread(dashboard):
        means = [
            s.mean
            for s in summaries
            if s.label.endswith(dashboard) and s.count > 0
        ]
        return max(means) / max(min(means), 1e-9) if means else 1.0

    assert spread("circulation") <= spread("customer_service") * 1.5
