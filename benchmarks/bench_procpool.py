"""Process-backed vs thread-backed sharded execution of a refresh batch.

The thread backend overlaps scan groups only where the engine releases
the GIL; the pure-Python stores run their shard tasks as a serialized
queue, so ``workers=4`` buys them nothing compute-wise. The process
backend (:mod:`repro.concurrency.procpool`) ships each shard to a
worker process over a shared-memory table export, so the quarter-table
scans genuinely overlap on multi-core hosts.

This benchmark executes one aggregate-heavy refresh batch on all four
engines under three policies — serial, ``backend="threads"``
(``workers=4, shards=4``), and ``backend="processes"`` (same shape) —
and reports ``compute_speedup = threads_ms / processes_ms`` per engine.

Honest framing: worker processes pay export, pickling, and dispatch
overhead that threads do not. On a single-core host (``cpu_count`` is
recorded in the artifact) the processes leg *loses* — shards serialize
across processes with extra copies — so the speedup assertion only
applies when the machine actually has more than one CPU. What must
hold everywhere, and is asserted here, is byte identity between the
two backends and cleanup of every shared-memory segment.

Writes ``benchmarks/results/BENCH_procpool.json``. Run standalone with
``python bench_procpool.py --smoke`` (tiny rows, one run) or through
pytest like the other benchmarks.
"""

from __future__ import annotations

import json
import math
import os
import sys
import time
from multiprocessing import shared_memory

from _common import BENCH_ROWS, BENCH_RUNS, RESULTS_DIR, policy_block, write_result

from repro.concurrency.procpool import shared_process_pool, shutdown_shared_pool
from repro.engine.interface import normalize_value
from repro.engine.registry import create_engine
from repro.execution import ExecutionPolicy
from repro.metrics import format_table
from repro.sql.parser import parse_query
from repro.workload.datasets import generate_dataset

ENGINES = ("rowstore", "vectorstore", "matstore", "sqlite")
#: Engines whose shard tasks the GIL serializes on the thread backend —
#: the stores the process backend exists for.
PURE_PYTHON = ("rowstore", "vectorstore", "matstore")
WORKERS = 4
SHARDS = 4

#: One dashboard refresh's worth of shardable aggregate fan-out over
#: the customer_service dataset (unfiltered multi-class group plus a
#: filtered group), repeated to give each timing run real work.
_REFRESH_SQL = [
    "SELECT queue, COUNT(*) AS n FROM customer_service GROUP BY queue",
    "SELECT queue, SUM(calls) AS total FROM customer_service "
    "GROUP BY queue",
    "SELECT hour, AVG(duration) AS avg_d FROM customer_service "
    "GROUP BY hour",
    "SELECT repID, MIN(duration) AS lo, MAX(duration) AS hi "
    "FROM customer_service GROUP BY repID",
    "SELECT queue, SUM(abandoned) AS ab FROM customer_service "
    "WHERE hour BETWEEN 0 AND 11 GROUP BY queue",
    "SELECT queue, AVG(duration) AS avg_d FROM customer_service "
    "WHERE hour BETWEEN 0 AND 11 GROUP BY queue",
]


def _policies():
    return {
        "serial": ExecutionPolicy.serial(),
        "threads": ExecutionPolicy(
            workers=WORKERS, shards=SHARDS, backend="threads"
        ),
        "processes": ExecutionPolicy(
            workers=WORKERS, shards=SHARDS, backend="processes"
        ),
    }


def _time_policy(engine_name, table, queries, policy, runs):
    """Mean per-batch wall-clock, after one unmeasured warmup batch.

    The warmup amortizes one-time costs out of the measurement on both
    sides symmetrically: thread-pool start and SQLite replica snapshots
    for threads, worker spawn and the shared-memory export for
    processes (the export is per table generation, so steady-state
    serving — the deployment shape — never re-exports).
    """
    engine = create_engine(engine_name)
    engine.load_table(table)
    try:
        results = engine.execute_batch(list(queries), policy)
        snapshot = [(t.result.columns, t.result.rows) for t in results]
        start = time.perf_counter()
        for _ in range(runs):
            engine.execute_batch(list(queries), policy)
        wall_ms = (time.perf_counter() - start) * 1000.0 / runs
    finally:
        engine.close()
    return wall_ms, snapshot


def _cells_close(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, (int, float)):
        # The rollup re-associates float addition vs the serial path:
        # equal to IEEE rounding.
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
    if isinstance(b, float) and isinstance(a, (int, float)):
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
    return normalize_value(a) == normalize_value(b)


def _assert_close(got, want, context):
    assert len(got) == len(want), context
    for i, ((g_cols, g_rows), (w_cols, w_rows)) in enumerate(
        zip(got, want)
    ):
        assert g_cols == w_cols, f"{context} [{i}] columns"
        assert len(g_rows) == len(w_rows), f"{context} [{i}] rows"
        for g_row, w_row in zip(g_rows, w_rows):
            assert all(
                _cells_close(g, w) for g, w in zip(g_row, w_row)
            ), f"{context} [{i}]: {g_row} != {w_row}"


def run_comparison(rows_count=None, runs=None):
    rows_count = BENCH_ROWS if rows_count is None else rows_count
    runs = BENCH_RUNS if runs is None else runs
    table = generate_dataset("customer_service", rows_count, seed=23)
    queries = [parse_query(sql) for sql in _REFRESH_SQL]
    policies = _policies()
    report_rows = []
    for engine_name in ENGINES:
        timings = {}
        snapshots = {}
        for label, policy in policies.items():
            timings[label], snapshots[label] = _time_policy(
                engine_name, table, queries, policy, runs
            )
        # Byte identity between the two concurrent backends — same
        # shard algebra, different side of a process boundary.
        assert snapshots["processes"] == snapshots["threads"], (
            f"{engine_name}: processes != threads"
        )
        _assert_close(
            snapshots["processes"], snapshots["serial"],
            f"{engine_name} vs serial",
        )
        report_rows.append(
            {
                "engine": engine_name,
                "serial_ms": round(timings["serial"], 2),
                "threads_ms": round(timings["threads"], 2),
                "processes_ms": round(timings["processes"], 2),
                "compute_speedup": round(
                    timings["threads"] / timings["processes"], 3
                ),
            }
        )
    # Lifecycle: a finished benchmark leaves no shared-memory segments
    # — everything live at the end must be unlinked by shutdown.
    live = shared_process_pool().segment_names()
    shutdown_shared_pool()
    leftover = []
    for name in live:
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue  # unlinked, as required
        segment.close()
        leftover.append(name)
    return report_rows, leftover


def _write_artifact(report_rows, leftover, rows_count, runs):
    multicore = (os.cpu_count() or 1) > 1
    text = format_table(report_rows)
    write_result("procpool", text)
    RESULTS_DIR.mkdir(exist_ok=True)
    artifact = {
        "suite": "process-backed vs thread-backed sharded refresh batch",
        "rows": rows_count,
        "runs": runs,
        "queries_per_batch": len(_REFRESH_SQL),
        "workers": WORKERS,
        "shards": SHARDS,
        "cpu_count": os.cpu_count(),
        "multicore": multicore,
        "config": {
            "policy": policy_block(
                ExecutionPolicy(
                    workers=WORKERS, shards=SHARDS, backend="processes"
                )
            )
        },
        "engines": {row["engine"]: row for row in report_rows},
        "segments_left_after_shutdown": leftover,
        "note": (
            "compute_speedup = threads_ms / processes_ms; expected > 1 "
            "on the pure-Python stores only when cpu_count > 1 — on a "
            "single core the process backend pays export/dispatch "
            "overhead with nothing to overlap"
            if not multicore
            else "compute_speedup = threads_ms / processes_ms"
        ),
    }
    (RESULTS_DIR / "BENCH_procpool.json").write_text(
        json.dumps(artifact, indent=2) + "\n"
    )
    return multicore


def _assert_shape(report_rows, leftover, multicore):
    assert leftover == [], f"leaked shared-memory segments: {leftover}"
    if multicore:
        # The headline claim: on a real multi-core host at least one
        # GIL-bound store must run its shards faster in processes.
        speedups = {
            row["engine"]: row["compute_speedup"]
            for row in report_rows
            if row["engine"] in PURE_PYTHON
        }
        assert any(s > 1.0 for s in speedups.values()), (
            f"no pure-Python store sped up in processes: {speedups}"
        )
    else:
        print(
            "single-core host: compute_speedup assertion skipped "
            "(nothing to overlap; see artifact note)"
        )


def test_procpool_backend_speedup_and_identity(benchmark):
    report_rows, leftover = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )
    multicore = _write_artifact(report_rows, leftover, BENCH_ROWS, BENCH_RUNS)
    _assert_shape(report_rows, leftover, multicore)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="process-backend benchmark (writes BENCH_procpool.json)"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny rows, one run — CI wiring check, not a measurement",
    )
    args = parser.parse_args(argv)
    rows_count = min(BENCH_ROWS, 4000) if args.smoke else BENCH_ROWS
    runs = 1 if args.smoke else BENCH_RUNS
    report_rows, leftover = run_comparison(rows_count, runs)
    multicore = _write_artifact(report_rows, leftover, rows_count, runs)
    _assert_shape(report_rows, leftover, multicore)
    return 0


if __name__ == "__main__":
    sys.exit(main())
