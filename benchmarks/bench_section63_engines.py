"""§6.3 cross-DBMS comparison: four engines over the six dashboards.

The paper's four systems map to our engines (see DESIGN.md):
PostgreSQL -> rowstore (tuple-at-a-time), DuckDB -> vectorstore,
MonetDB -> matstore, SQLite -> sqlite. Shape claims:

- the tuple-at-a-time row store is the slowest engine on these
  aggregation-heavy dashboard workloads;
- the columnar engines (vectorstore/matstore) and SQLite are markedly
  faster;
- relative engine ordering is consistent across dashboards.
"""

from _common import BENCH_ROWS, write_result

from repro.harness import BenchmarkConfig, BenchmarkRunner
from repro.metrics import format_table


def run_grid():
    config = BenchmarkConfig(
        engines=("rowstore", "vectorstore", "matstore", "sqlite"),
        workflows=("shneiderman",),
        sizes={"bench": BENCH_ROWS},
        runs=1,
        reference_rows=1_500,
    )
    return BenchmarkRunner(config).run()


def test_section63_engine_comparison(benchmark):
    result = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    by_engine = {s.label: s for s in result.summaries_by("engine")}
    detailed = result.summaries_by("dashboard", "engine")
    text = (
        format_table([s.as_row() for s in by_engine.values()])
        + "\n\nper dashboard:\n"
        + format_table([s.as_row() for s in detailed])
    )
    write_result("section63_engines", text)

    assert set(by_engine) == {"rowstore", "vectorstore", "matstore", "sqlite"}
    # Row store pays per-tuple interpretation overhead: slowest engine.
    slowest = max(by_engine.values(), key=lambda s: s.mean).label
    assert slowest == "rowstore"
    # Columnar engines are at least 3x faster than the row store here.
    assert by_engine["rowstore"].mean > by_engine["vectorstore"].mean * 3
    # Engines are separated: the spread is real, not noise.
    means = sorted(s.mean for s in by_engine.values())
    assert means[-1] > means[0] * 2
