"""Ablation: exponential-decay rate of P(Markov) (paper §4.3, Figure 5).

The decay rate models user familiarity: experts decay fast (quick goal
focus), novices slowly (long open-ended phase). Expectations:

- slower decay -> larger share of Markov-chosen interactions;
- the expert profile completes goals in fewer interactions than the
  novice profile;
- session length shrinks as decay accelerates.
"""

import random

from _common import write_result

from repro.dashboard.library import load_dashboard
from repro.engine.registry import create_engine
from repro.metrics import format_table
from repro.simulation import SessionConfig, SessionSimulator, get_workflow
from repro.workload import generate_dataset

PROFILES = [
    ("novice", SessionConfig.novice(seed=5)),
    ("default", SessionConfig(seed=5)),
    ("expert", SessionConfig.expert(seed=5)),
]


def run_profile(config):
    spec = load_dashboard("customer_service")
    table = generate_dataset("customer_service", 2_000, seed=5)
    measured = create_engine("vectorstore")
    measured.load_table(table)
    reference = create_engine("vectorstore")
    reference.load_table(table)
    goals = get_workflow("shneiderman").instantiate_for_dashboard(
        spec, random.Random(5)
    )
    log = SessionSimulator(
        spec,
        table,
        [g.query for g in goals],
        measured_engine=measured,
        reference_engine=reference,
        config=config,
    ).run()
    mix = log.model_mix()
    markov = mix.get("markov", 0)
    total = max(log.interaction_count, 1)
    return {
        "interactions": log.interaction_count,
        "markov_fraction": round(markov / total, 3),
        "goals_completed": log.goals_completed,
        "queries": log.query_count,
    }


def run_ablation():
    return {name: run_profile(config) for name, config in PROFILES}


def test_ablation_decay(benchmark):
    outcomes = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        {"profile": name, **stats} for name, stats in outcomes.items()
    ]
    write_result("ablation_decay", format_table(rows))

    # Novices wander more than experts.
    assert (
        outcomes["novice"]["markov_fraction"]
        > outcomes["expert"]["markov_fraction"]
    )
    # Experts finish in fewer interactions.
    assert (
        outcomes["expert"]["interactions"]
        <= outcomes["novice"]["interactions"]
    )
    # All profiles make goal progress.
    for stats in outcomes.values():
        assert stats["goals_completed"] >= 1
