"""Batch vs sequential execution on the Figure-7 dashboards.

A dashboard refresh fans out one query per visualization, all over the
same table and — after any interaction — the same AND-ed widget
filters. The shared-scan batch executor collapses each such refresh to
one base-table scan per (table, normalized filter) group. This
benchmark drives identical interaction walks through all six library
dashboards in both modes, verifies the results stay identical, and
records scans-per-refresh and wall-clock, writing the
``BENCH_batch.json`` artifact.

Headline claim under test: on interaction-driven refreshes (the bulk
of a session; the unfiltered initial render has no redundant filter
work to share), batch mode performs at least 2x fewer base-table scans
than sequential mode.
"""

from __future__ import annotations

import json
import random
import time

from _common import (
    BENCH_ROWS,
    RESULTS_DIR,
    policy_block,
    telemetry_block,
    write_result,
)

from repro.dashboard.library import DASHBOARD_NAMES, load_dashboard
from repro.dashboard.state import DashboardState, InteractionKind
from repro.engine.batch import BatchExecutor
from repro.execution import ExecutionPolicy
from repro.engine.instrument import CountingEngine
from repro.engine.registry import create_engine
from repro.metrics import format_table
from repro.workload.datasets import generate_dataset

#: Interactions per dashboard walk (each triggers one refresh).
WALK_STEPS = 6
ENGINES = ("rowstore", "vectorstore", "sqlite")


def _record_walk(spec, table, steps: int):
    """One deterministic interaction walk: per-refresh query lists."""
    state = DashboardState(spec, table)
    rng = random.Random(41)
    render = state.initial_queries()
    interactions = []
    for _ in range(steps):
        actions = state.available_interactions()
        filtering = [
            a
            for a in actions
            if a.kind
            in (InteractionKind.WIDGET_TOGGLE, InteractionKind.WIDGET_SET)
        ] or actions
        interactions.append(state.apply(rng.choice(filtering)))
    return render, interactions


def _run_mode(engine_name, refreshes, table, batch: bool):
    """Execute every refresh; return (base_scans, wall_ms, results)."""
    counting = CountingEngine(create_engine(engine_name))
    counting.load_table(table)
    executor = BatchExecutor(counting)
    collected = []
    start = time.perf_counter()
    for queries in refreshes:
        if batch:
            collected.append(
                [t.result for t in executor.run(queries).results]
            )
        else:
            collected.append([counting.execute(q) for q in queries])
    wall_ms = (time.perf_counter() - start) * 1000.0
    scans = counting.base_scans()
    counting.close()
    return scans, wall_ms, collected


def run_comparison():
    rows = []
    for name in DASHBOARD_NAMES:
        spec = load_dashboard(name)
        table = generate_dataset(name, BENCH_ROWS, seed=17)
        render, interactions = _record_walk(spec, table, WALK_STEPS)
        row = {
            "dashboard": name,
            "refreshes": 1 + len(interactions),
            "queries": len(render) + sum(len(r) for r in interactions),
        }
        for engine_name in ENGINES:
            seq_scans, seq_ms, seq_results = _run_mode(
                engine_name, [render] + interactions, table, batch=False
            )
            bat_scans, bat_ms, bat_results = _run_mode(
                engine_name, [render] + interactions, table, batch=True
            )
            assert seq_results == bat_results, (
                f"{name}/{engine_name}: batch diverged from sequential"
            )
            row[f"{engine_name}_speedup"] = round(seq_ms / bat_ms, 2)
            if engine_name == ENGINES[0]:
                # Scan counts are engine-independent; measure once,
                # split render vs interaction refreshes.
                i_seq, _, _ = _run_mode(
                    engine_name, interactions, table, batch=False
                )
                i_bat, _, _ = _run_mode(
                    engine_name, interactions, table, batch=True
                )
                row.update(
                    sequential_scans=seq_scans,
                    batch_scans=bat_scans,
                    interaction_sequential_scans=i_seq,
                    interaction_batch_scans=i_bat,
                    interaction_scan_reduction=round(i_seq / i_bat, 2),
                )
        rows.append(row)
    return rows


def _traced_walk():
    """One traced batched walk; returns the artifact telemetry block.

    Runs outside the timed comparison so the measured numbers stay on
    the untraced path, but the artifact still records *how* a batched
    refresh executes: span counts, per-tier query attribution, and the
    metric snapshot (scan-group stats, per-engine query histograms).
    """
    from repro.telemetry import Telemetry

    name = DASHBOARD_NAMES[0]
    spec = load_dashboard(name)
    table = generate_dataset(name, BENCH_ROWS, seed=17)
    render, interactions = _record_walk(spec, table, WALK_STEPS)
    telemetry = Telemetry()
    with telemetry.install():
        _run_mode(ENGINES[0], [render] + interactions, table, batch=True)
    return telemetry_block(telemetry)


def test_batch_executor_scan_reduction(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    text = format_table(rows)
    write_result("batch_executor", text)
    RESULTS_DIR.mkdir(exist_ok=True)
    artifact = {
        "engines": list(ENGINES),
        "rows": BENCH_ROWS,
        "walk_steps": WALK_STEPS,
        "config": {"policy": policy_block(ExecutionPolicy())},
        "telemetry": _traced_walk(),
        "dashboards": rows,
        "total_interaction_sequential_scans": sum(
            r["interaction_sequential_scans"] for r in rows
        ),
        "total_interaction_batch_scans": sum(
            r["interaction_batch_scans"] for r in rows
        ),
    }
    artifact["overall_interaction_scan_reduction"] = round(
        artifact["total_interaction_sequential_scans"]
        / artifact["total_interaction_batch_scans"],
        2,
    )
    (RESULTS_DIR / "BENCH_batch.json").write_text(
        json.dumps(artifact, indent=2) + "\n"
    )

    # Acceptance: >=2x fewer base-table scans per interaction refresh,
    # on every one of the six dashboards.
    for row in rows:
        assert (
            row["interaction_sequential_scans"]
            >= 2 * row["interaction_batch_scans"]
        ), row
    assert artifact["overall_interaction_scan_reduction"] >= 2.0
    # Batch must never scan more than sequential, render included.
    for row in rows:
        assert row["batch_scans"] <= row["sequential_scans"], row
