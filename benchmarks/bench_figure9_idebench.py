"""Figure 9 + §6.3: IDEBench's unconstrained dashboards vs SIMBA.

The paper generates 50 IDEBench workflows over the IT Monitor dataset
and reverse engineers the implied dashboards:

- ~13 visualizations on average (min 7, max 20) vs the real dashboard's 3;
- ~9 visualization updates per interaction (min 1, max 15);
- 2.1 ± attributes and 13.2 filters per visualization vs SIMBA's
  3.8 / 5.8.
"""

import random

from _common import write_result

from repro.dashboard.library import load_dashboard
from repro.engine.registry import create_engine
from repro.idebench import IDEBenchConfig, IDEBenchSimulator, analyze_workflows
from repro.metrics import format_table
from repro.metrics.workload_stats import (
    session_workload_statistics,
    workload_statistics,
)
from repro.simulation import SessionConfig, SessionSimulator, get_workflow
from repro.workload import generate_dataset

NUM_WORKFLOWS = 50


def run_figure9():
    table = generate_dataset("it_monitor", 2_000, seed=7)
    workflows = [
        IDEBenchSimulator(table, IDEBenchConfig(seed=i)).run()
        for i in range(NUM_WORKFLOWS)
    ]
    stats = analyze_workflows(workflows)

    idebench_queries = [q for flow in workflows[:10] for q in flow.queries]
    idebench_shape = workload_statistics(idebench_queries, "IDEBench")

    spec = load_dashboard("it_monitor")
    logs = []
    for seed in range(4):
        measured = create_engine("vectorstore")
        measured.load_table(table)
        reference = create_engine("vectorstore")
        reference.load_table(table)
        goals = get_workflow("shneiderman").instantiate_for_dashboard(
            spec, random.Random(seed)
        )
        logs.append(
            SessionSimulator(
                spec,
                table,
                [g.query for g in goals],
                measured_engine=measured,
                reference_engine=reference,
                config=SessionConfig(
                    seed=seed, run_to_max=True, max_steps_per_goal=12
                ),
            ).run()
        )
    simba_shape = session_workload_statistics(logs, "SIMBA")
    return stats, idebench_shape, simba_shape


def test_figure9_idebench_reverse_engineering(benchmark):
    stats, idebench_shape, simba_shape = benchmark.pedantic(
        run_figure9, rounds=1, iterations=1
    )
    text = (
        format_table([stats.as_row()])
        + "\n\nworkload shape comparison (Table 4 axis):\n"
        + format_table([idebench_shape.as_row(), simba_shape.as_row()])
    )
    write_result("figure9_idebench", text)

    # Paper: avg 13 visualizations (min 7, max 20); real dashboard has 3.
    assert 9 <= stats.avg_visualizations <= 17
    assert stats.min_visualizations >= 4
    assert stats.max_visualizations <= 20
    assert stats.avg_visualizations > 3 * 2  # far above the real board

    # Paper: ~2.1 attributes per visualization.
    assert 1.5 <= stats.attributes_per_viz.mean <= 3.0

    # Paper: 13.2 filters per visualization, an order more than SIMBA.
    assert stats.filters_per_viz.mean > 8
    assert idebench_shape.filters.mean > simba_shape.filters.mean * 2

    # Paper: dense linking — many visualization updates per interaction
    # (IT Monitor's real widgets update at most 3 visualizations).
    assert stats.updates_per_interaction.mean > 3
