"""Concurrent vs sequential execution of the six-dashboard refresh suite.

The scan-group executor (:mod:`repro.concurrency`) exists to overlap
independent work: scan groups within a refresh, and whole refreshes
across dashboards. This benchmark drives identical interaction walks
through all six library dashboards — each dashboard served by its own
engine instance, the multi-session deployment shape — and measures the
wall-clock of draining the whole suite with ``workers=1`` (today's
sequential path) versus ``workers=4``, verifying byte-identical results.

Two scenarios per engine:

- **Serving** (the headline): each engine call is charged a simulated
  client/server round trip (``SIMBA_BENCH_RTT_MS``, default 10 ms) via
  :class:`~repro.engine.instrument.DispatchLatencyEngine` — the paper's
  DBMSs are networked services, and interactive dashboards are
  latency-bound. Round trips overlap on any core count, so this is the
  honest demonstration of what the worker pool buys; on multi-core
  hosts compute overlaps too and the numbers only improve.
- **Compute-only** (``rtt=0``), reported alongside for transparency:
  on a single-core container (``cpu_count`` is recorded in the
  artifact) GIL-bound engines cannot speed up and SQLite only gains
  what scheduling overlap allows, so this column is ~1x there.

Headline claim under test: >=1.5x wall-clock speedup on the SQLite
engine for the six-dashboard serving suite, workers=4 vs workers=1.
Writes ``benchmarks/results/BENCH_async.json``.
"""

from __future__ import annotations

import json
import os
import random
import time

from _common import BENCH_ROWS, RESULTS_DIR, policy_block, write_result

from repro.concurrency import run_tasks
from repro.execution import ExecutionPolicy
from repro.dashboard.library import DASHBOARD_NAMES, load_dashboard
from repro.dashboard.state import DashboardState, InteractionKind
from repro.engine.instrument import DispatchLatencyEngine
from repro.engine.registry import create_engine
from repro.metrics import format_table
from repro.workload.datasets import generate_dataset

#: Interaction refreshes per dashboard session (plus the initial render).
WALK_STEPS = 4
WORKERS = 4
ENGINES = ("rowstore", "vectorstore", "matstore", "sqlite")
#: Simulated client<->DBMS round trip charged per engine call.
RTT_MS = float(os.environ.get("SIMBA_BENCH_RTT_MS", "10"))


def _record_walks():
    """Per dashboard: the (table, refresh query lists) of one session."""
    suites = []
    for name in DASHBOARD_NAMES:
        spec = load_dashboard(name)
        table = generate_dataset(name, BENCH_ROWS, seed=17)
        state = DashboardState(spec, table)
        rng = random.Random(43)
        refreshes = [state.initial_queries()]
        for _ in range(WALK_STEPS):
            actions = state.available_interactions()
            filtering = [
                a
                for a in actions
                if a.kind
                in (InteractionKind.WIDGET_TOGGLE, InteractionKind.WIDGET_SET)
            ] or actions
            refreshes.append(state.apply(rng.choice(filtering)))
        suites.append((name, table, refreshes))
    return suites


def _run_suite(engine_name, suites, workers, rtt_ms):
    """Drain every dashboard session once; returns (wall_ms, results).

    One engine instance per dashboard (loaded outside the timed
    region); sessions run as tasks over a ``workers``-wide pool, and
    each refresh's scan groups use the same width. ``workers=1`` is the
    sequential baseline.
    """
    engines = []
    tasks = []
    for _, table, refreshes in suites:
        inner = create_engine(engine_name)
        inner.load_table(table)
        engine = DispatchLatencyEngine(inner, rtt_ms)
        engines.append(engine)

        def session(engine=engine, refreshes=refreshes):
            collected = []
            for queries in refreshes:
                timed = engine.execute_batch(
                    list(queries), ExecutionPolicy(workers=workers)
                )
                collected.append([t.result for t in timed])
            return collected

        tasks.append(session)
    start = time.perf_counter()
    results = run_tasks(tasks, workers=workers)
    wall_ms = (time.perf_counter() - start) * 1000.0
    for engine in engines:
        engine.close()
    return wall_ms, results


def run_comparison():
    suites = _record_walks()
    rows = []
    for engine_name in ENGINES:
        serial_ms, serial_results = _run_suite(engine_name, suites, 1, RTT_MS)
        conc_ms, conc_results = _run_suite(engine_name, suites, WORKERS, RTT_MS)
        assert serial_results == conc_results, (
            f"{engine_name}: workers={WORKERS} diverged from sequential"
        )
        compute_serial_ms, base_results = _run_suite(
            engine_name, suites, 1, 0.0
        )
        compute_conc_ms, overlap_results = _run_suite(
            engine_name, suites, WORKERS, 0.0
        )
        assert base_results == overlap_results, (
            f"{engine_name}: compute-only workers={WORKERS} diverged"
        )
        assert serial_results == base_results, (
            f"{engine_name}: latency wrapper changed results"
        )
        rows.append(
            {
                "engine": engine_name,
                "serial_ms": round(serial_ms, 1),
                "concurrent_ms": round(conc_ms, 1),
                "speedup": round(serial_ms / conc_ms, 2),
                "compute_serial_ms": round(compute_serial_ms, 1),
                "compute_concurrent_ms": round(compute_conc_ms, 1),
                "compute_speedup": round(
                    compute_serial_ms / compute_conc_ms, 2
                ),
            }
        )
    return rows


def test_async_executor_speedup(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    text = format_table(rows)
    write_result("async_executor", text)
    RESULTS_DIR.mkdir(exist_ok=True)
    artifact = {
        "suite": "six-dashboard refresh serving",
        "dashboards": list(DASHBOARD_NAMES),
        "rows": BENCH_ROWS,
        "walk_steps": WALK_STEPS,
        "refreshes_per_dashboard": 1 + WALK_STEPS,
        "workers": WORKERS,
        "config": {"policy": policy_block(ExecutionPolicy(workers=WORKERS))},
        "simulated_rtt_ms": RTT_MS,
        "cpu_count": os.cpu_count(),
        "engines": {row["engine"]: row for row in rows},
    }
    sqlite_row = artifact["engines"]["sqlite"]
    artifact["sqlite_speedup"] = sqlite_row["speedup"]
    (RESULTS_DIR / "BENCH_async.json").write_text(
        json.dumps(artifact, indent=2) + "\n"
    )

    # Acceptance: >=1.5x wall-clock on SQLite for the serving suite.
    assert sqlite_row["speedup"] >= 1.5, sqlite_row
    # Overlap must never lose to sequential in the latency-bound
    # scenario, on any engine.
    for row in rows:
        assert row["speedup"] >= 1.0, row
