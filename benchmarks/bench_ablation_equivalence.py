"""Ablation: equivalence-testing tiers (paper §4.1.2).

The suite tries syntactic, then semantic, then result equivalence. This
ablation measures what each tier contributes:

- syntactic-only misses reordered-but-identical queries;
- adding the semantic tier recovers them without executing anything;
- the result tier is the only one that proves *differently shaped*
  queries equivalent, at execution cost.
"""

import time

from _common import write_result

from repro.engine.registry import create_engine
from repro.equivalence import EquivalenceSuite
from repro.metrics import format_table
from repro.sql.parser import parse_query
from repro.workload import generate_dataset

#: (goal, candidate, truly_equivalent) triples exercising each tier.
PAIRS = [
    # Textually identical.
    (
        "SELECT queue, COUNT(calls) FROM customer_service GROUP BY queue",
        "SELECT queue, COUNT(calls) FROM customer_service GROUP BY queue",
        True,
    ),
    # Reordered conjuncts + IN members (semantic tier).
    (
        "SELECT repID, SUM(duration) FROM customer_service "
        "WHERE queue IN ('A','B') AND hour >= 9 GROUP BY repID",
        "SELECT SUM(duration), repID FROM customer_service "
        "WHERE hour >= 9 AND queue IN ('B','A') GROUP BY repID",
        True,
    ),
    # BETWEEN vs comparisons (semantic tier).
    (
        "SELECT COUNT(*) FROM customer_service WHERE hour BETWEEN 9 AND 17",
        "SELECT COUNT(*) FROM customer_service WHERE hour >= 9 AND hour <= 17",
        True,
    ),
    # Same results, different shape: no-op filter (result tier only).
    (
        "SELECT COUNT(*) AS c FROM customer_service",
        "SELECT COUNT(*) AS c FROM customer_service WHERE hour < 24",
        True,
    ),
    # Genuinely different.
    (
        "SELECT COUNT(*) FROM customer_service",
        "SELECT COUNT(*) FROM customer_service WHERE queue = 'A'",
        False,
    ),
    (
        "SELECT queue, SUM(calls) FROM customer_service GROUP BY queue",
        "SELECT queue, AVG(calls) FROM customer_service GROUP BY queue",
        False,
    ),
]

TIER_SETTINGS = {
    "syntactic_only": dict(enable_semantic=False, enable_result=False),
    "syntactic+semantic": dict(enable_result=False),
    "all_tiers": {},
}


def evaluate_tiers():
    table = generate_dataset("customer_service", 2_000, seed=2)
    outcomes = {}
    for name, settings in TIER_SETTINGS.items():
        engine = create_engine("vectorstore")
        engine.load_table(table)
        suite = EquivalenceSuite(engine, **settings)
        correct = 0
        false_negatives = 0
        start = time.perf_counter()
        for goal_sql, candidate_sql, truth in PAIRS:
            verdict = suite.equivalent(
                parse_query(goal_sql), parse_query(candidate_sql)
            )
            if verdict.equivalent == truth:
                correct += 1
            elif truth and not verdict.equivalent:
                false_negatives += 1
        elapsed_ms = (time.perf_counter() - start) * 1000
        outcomes[name] = {
            "tiers": name,
            "correct": f"{correct}/{len(PAIRS)}",
            "false_negatives": false_negatives,
            "time_ms": round(elapsed_ms, 2),
        }
    return outcomes


def test_ablation_equivalence_tiers(benchmark):
    outcomes = benchmark.pedantic(evaluate_tiers, rounds=1, iterations=1)
    write_result(
        "ablation_equivalence", format_table(list(outcomes.values()))
    )

    # Each added tier is at least as accurate as the previous one.
    def correct(name):
        return int(outcomes[name]["correct"].split("/")[0])

    assert correct("syntactic_only") <= correct("syntactic+semantic")
    assert correct("syntactic+semantic") <= correct("all_tiers")
    # The full suite decides every pair correctly.
    assert correct("all_tiers") == len(PAIRS)
    # Syntactic-only must miss at least one true equivalence.
    assert outcomes["syntactic_only"]["false_negatives"] >= 1
