"""Table 4: workload-shape statistics for Customer Service & IT Monitor.

Paper values (mean ± sd per query):

=================  ==============  ===================  ============
Statistic          Plain columns   Aggregated columns   Filters
=================  ==============  ===================  ============
Customer Service   1.5 ± 1.3       1.0 ± 0              1.9 ± 0.9
IT Monitor         3.0 ± 1.2       0.8 ± 2.0            5.8 ± 0.8
=================  ==============  ===================  ============

Shape claims: SIMBA queries carry a handful of plain columns, about one
aggregate, and a *bounded* number of filters (single digits) — in sharp
contrast to IDEBench's 13.2 filters per visualization.
"""

import random

from _common import write_result

from repro.dashboard.library import load_dashboard
from repro.engine.registry import create_engine
from repro.metrics import format_table
from repro.metrics.workload_stats import session_workload_statistics
from repro.simulation import SessionConfig, SessionSimulator, get_workflow
from repro.workload import generate_dataset

SESSIONS_PER_DASHBOARD = 4


def collect_logs(dashboard):
    spec = load_dashboard(dashboard)
    table = generate_dataset(dashboard, 2_000, seed=11)
    logs = []
    for seed in range(SESSIONS_PER_DASHBOARD):
        measured = create_engine("vectorstore")
        measured.load_table(table)
        reference = create_engine("vectorstore")
        reference.load_table(table)
        goals = get_workflow("shneiderman").instantiate_for_dashboard(
            spec, random.Random(seed)
        )
        logs.append(
            SessionSimulator(
                spec,
                table,
                [g.query for g in goals],
                measured_engine=measured,
                reference_engine=reference,
                config=SessionConfig(
                    seed=seed, run_to_max=True, max_steps_per_goal=12
                ),
            ).run()
        )
    return logs


def run_table4():
    return {
        dashboard: session_workload_statistics(
            collect_logs(dashboard), dashboard
        )
        for dashboard in ("customer_service", "it_monitor")
    }


def test_table4_workload_statistics(benchmark):
    stats = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    text = format_table([s.as_row() for s in stats.values()])
    write_result("table4_workload_stats", text)

    for dashboard, stat in stats.items():
        # Plain columns: small positive counts (paper 1.5 / 3.0).
        assert 0.5 <= stat.plain_columns.mean <= 4.0, dashboard
        # Roughly one aggregate per query (paper 1.0 / 0.8).
        assert 0.5 <= stat.aggregated_columns.mean <= 3.0, dashboard
        # Bounded filter counts, single digits (paper 1.9 / 5.8).
        assert stat.filters.mean < 7.0, dashboard

    # Customer Service emits wider grouped queries than IT Monitor has
    # filters? No — the comparable paper relation is that IT Monitor
    # carries MORE filters per query than Customer Service (5.8 vs 1.9).
    assert (
        stats["it_monitor"].filters.mean
        >= stats["customer_service"].filters.mean * 0.8
    )
