"""Figure 7: per-dashboard query-duration distributions (DuckDB analogue).

The paper runs the vectorized engine (DuckDB) over all six dashboards at
10M rows and shows box plots of query durations. Shape claims under
test:

- MyRide / Customer Service / Circulation are the cheap dashboards with
  small inter-quartile ranges;
- Supply Chain / IT Monitor / UBC Energy report higher durations and
  wider IQRs (the paper: 3,145 / 741 / 243 ms at its scale).
"""

from _common import BENCH_ROWS, BENCH_RUNS, write_result

from repro.harness import BenchmarkConfig, BenchmarkRunner
from repro.metrics import format_table


def run_grid():
    config = BenchmarkConfig(
        engines=("vectorstore",),
        workflows=("shneiderman", "battle_heer"),
        sizes={"bench": BENCH_ROWS},
        runs=BENCH_RUNS,
        reference_rows=1_500,
    )
    return BenchmarkRunner(config).run()


def test_figure7_dashboard_distributions(benchmark):
    result = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    summaries = {
        s.label: s for s in result.summaries_by("dashboard")
    }
    text = format_table([s.as_row() for s in summaries.values()])
    write_result("figure7_dashboards", text)

    assert len(summaries) == 6
    # The section's headline claim: differences in dashboards lead to
    # differences in DBMS performance — the duration distributions must
    # genuinely differ across dashboards.
    means = sorted(s.mean for s in summaries.values())
    assert means[-1] > means[0] * 1.3, (
        "dashboards should induce a meaningful duration spread"
    )
    medians = sorted(s.median for s in summaries.values())
    assert medians[-1] > medians[0] * 1.2
    # Structural variability claim: the two-visualization dashboards
    # (Circulation Activity, MyRide) leave "limited options for
    # variation in SQL queries" — they emit the fewest queries of the
    # six under identical session budgets.
    query_counts = {label: s.count for label, s in summaries.items()}
    few = sorted(query_counts, key=query_counts.get)[:2]
    assert set(few) == {"circulation", "myride"}
    # Heavy tails live in the complex dashboards: the largest p95
    # belongs to a multi-widget, multi-dimension board.
    heaviest = max(summaries.values(), key=lambda s: s.p95).label
    assert heaviest in (
        "supply_chain", "ubc_energy", "it_monitor", "customer_service",
    )
