"""Alternative metric: response rate (paper §6.2.5).

The paper measures query duration and notes SIMBA "also supports
alternative metrics such as response rate", omitting it only because
thresholds must be tuned per dashboard. This bench computes the full
threshold curve per engine — the artifact a dashboard developer would
use to pick an interactivity budget.

Shape claims: response rates are monotone in the threshold, and the
vectorized engine answers a larger fraction of queries within 50 ms
than the tuple-at-a-time row store.
"""

from _common import BENCH_ROWS, write_result

from repro.harness import BenchmarkConfig, BenchmarkRunner
from repro.metrics import format_table, response_rate


def run_grid():
    config = BenchmarkConfig(
        dashboards=("customer_service", "it_monitor"),
        workflows=("shneiderman",),
        engines=("rowstore", "vectorstore", "matstore", "sqlite"),
        sizes={"bench": BENCH_ROWS},
        runs=1,
        reference_rows=1_500,
    )
    return BenchmarkRunner(config).run()


def test_response_rate_curves(benchmark):
    result = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rates = {
        engine: response_rate(engine, result.durations(engine=engine))
        for engine in ("rowstore", "vectorstore", "matstore", "sqlite")
    }
    text = format_table([r.as_row() for r in rates.values()])
    write_result("response_rate", text)

    for rate in rates.values():
        curve = [rate.rates[t] for t in sorted(rate.rates)]
        assert curve == sorted(curve)  # monotone in the threshold
    assert rates["vectorstore"].rate(50.0) > rates["rowstore"].rate(50.0)
    # Every engine eventually answers nearly everything within 1 s at
    # this scale.
    for rate in rates.values():
        assert rate.rate(1000.0) > 0.9
