"""Static invariant suite over the tree — rule drift as an artifact.

Not a performance benchmark: this runs ``repro.analysis`` over
``src/repro`` exactly as the CI ``lint`` job does and writes the
counts — findings per rule (must be zero on a merged tree), inline
suppressions per rule, baselined findings, stale baseline entries,
files scanned, wall-clock — into
``benchmarks/results/BENCH_analysis.json``. Comparing the artifact
across PRs makes rule drift visible the same way the perf artifacts
make scan-count drift visible: a PR that adds five suppressions or
starts leaning on the baseline shows up as a diff in bench-smoke even
though CI stays green.

Asserted: zero findings, zero stale baseline entries, and every
inline suppression carries a reason (RA100 enforces this at lint
time; the assert here keeps the artifact honest even if the rule set
changes).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from _common import RESULTS_DIR, write_result

from repro.analysis import (
    ModuleInfo,
    all_rules,
    collect_suppressions,
    iter_source_files,
    load_baseline,
    run_suite,
)

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
BASELINE = REPO / "tools" / "invariants_baseline.json"


def test_invariant_suite_artifact():
    start = time.perf_counter()
    result = run_suite(
        [SRC], baseline=load_baseline(BASELINE), root=REPO
    )
    duration_ms = (time.perf_counter() - start) * 1000.0

    assert result.clean, [f.render() for f in result.findings]
    assert not result.stale_baseline, result.stale_baseline

    suppression_reasons = 0
    suppression_total = 0
    per_code_suppressed: dict[str, int] = {}
    for path in iter_source_files([SRC]):
        module = ModuleInfo.parse(path, root=REPO)
        for sup in collect_suppressions(module):
            suppression_total += 1
            if sup.reason:
                suppression_reasons += 1
            for code in sup.codes:
                per_code_suppressed[code] = (
                    per_code_suppressed.get(code, 0) + 1
                )
    assert suppression_reasons == suppression_total, (
        "inline suppressions without reasons"
    )

    artifact = {
        "benchmark": "analysis",
        "files": result.files,
        "duration_ms": round(duration_ms, 1),
        "rules": [
            {"code": rule.code, "name": rule.name}
            for rule in all_rules()
        ],
        "findings_per_rule": result.counts(),  # empty == clean tree
        "suppressed_per_rule": dict(sorted(per_code_suppressed.items())),
        "suppressed_total": suppression_total,
        "baselined": len(result.baselined),
        "stale_baseline": len(result.stale_baseline),
    }

    lines = [
        f"invariant suite: {result.files} files in "
        f"{duration_ms:.0f} ms — 0 findings",
        "suppressions by rule: " + (
            ", ".join(
                f"{code}={count}"
                for code, count in sorted(per_code_suppressed.items())
            ) or "none"
        ),
        f"baselined: {len(result.baselined)}  "
        f"stale baseline entries: {len(result.stale_baseline)}",
    ]
    write_result("analysis", "\n".join(lines))
    (RESULTS_DIR / "BENCH_analysis.json").write_text(
        json.dumps(artifact, indent=2) + "\n"
    )
