"""Multiplan vs per-class execution of the six-dashboard initial render.

The multi-plan evaluator (:mod:`repro.engine.multiplan`) targets the
one refresh the earlier tiers cannot help: the *cold render*. With no
WHERE clause there is no filter to share, so shared-scan batching still
pays one base scan per fusion class — one per distinct GROUP BY. With
``multiplan=True`` every unfiltered group's eligible classes compute in
a single combined pass (finest grouping + per-plan merges), so a
six-chart dashboard opens with one scan of its table.

This benchmark renders all six library dashboards cold (each on its own
engine — the multi-session deployment shape) with ``multiplan`` off and
on, and reports:

- **base scans** measured at the engine boundary with
  :class:`~repro.engine.instrument.CountingEngine` (not executor
  self-reporting); the per-engine reduction is asserted >= 2x;
- **wall-clock** for the serving scenario (every engine call charged a
  simulated client/server round trip, ``SIMBA_BENCH_RTT_MS``) and
  compute-only (``rtt=0``), reported for transparency;
- **result identity**: renders are asserted equivalent between modes
  for every ``(workers, shards)`` combination tested — to IEEE-754
  rounding on this generated data (the merge re-associates float
  addition, the same documented boundary as the sharded rollup), and
  **byte-identical** on the integer/dyadic identity suite
  (``identity_checks`` in the artifact), matching
  ``tests/test_multiplan.py``.

Honest framing: the scan reduction is the scale-invariant claim — the
table's data is read once per dashboard instead of once per chart,
which is what matters when the scan is the expensive part (the paper's
100K–10M-row deployments, cold caches, real I/O). The wall-clock
columns at laptop scale can go either way: the combined pass computes
the *finest* grouping (GROUP BY the union of every chart's keys), so a
dashboard whose charts group by many unrelated keys produces a large
partial relation whose construction and per-plan merges — each merge
also costing a round trip in the serving scenario — can outweigh the
saved scans at 20K rows. The artifact records both columns so the
crossover is visible rather than hidden.

Writes ``benchmarks/results/BENCH_multiplan.json``.
"""

from __future__ import annotations

import json
import math
import os
import random
import time

import datetime as dt

from _common import BENCH_ROWS, RESULTS_DIR, policy_block, write_result

from repro.concurrency import run_tasks
from repro.execution import ExecutionPolicy
from repro.dashboard.library import DASHBOARD_NAMES, load_dashboard
from repro.dashboard.state import DashboardState
from repro.engine.instrument import CountingEngine, DispatchLatencyEngine
from repro.engine.interface import normalize_value
from repro.engine.registry import create_engine
from repro.engine.table import Table
from repro.metrics import format_table
from repro.sql.parser import parse_query
from repro.workload.datasets import generate_dataset

WORKERS = 4
ENGINES = ("rowstore", "vectorstore", "matstore", "sqlite")
#: (workers, shards) combinations the identity checks cover.
COMBINATIONS = ((1, 1), (4, 1), (4, 4))
#: Simulated client<->DBMS round trip charged per engine call.
RTT_MS = float(os.environ.get("SIMBA_BENCH_RTT_MS", "10"))


def _render_suites():
    """Per dashboard: (name, table, the cold render's query list)."""
    suites = []
    for name in DASHBOARD_NAMES:
        spec = load_dashboard(name)
        table = generate_dataset(name, BENCH_ROWS, seed=23)
        state = DashboardState(spec, table)
        suites.append((name, table, state.initial_queries()))
    return suites


def _run_suite(engine_name, suites, multiplan, rtt_ms, workers=1, shards=1):
    """Render every dashboard once, cold.

    Returns ``(wall_ms, results, per_dashboard)`` where
    ``per_dashboard`` carries each dashboard's engine-boundary base
    scans.
    """
    engines = []
    counters = []
    tasks = []
    for name, table, queries in suites:
        counting = CountingEngine(create_engine(engine_name))
        counting.load_table(table)
        engine = DispatchLatencyEngine(counting, rtt_ms)
        engines.append(engine)
        counters.append((name, counting))

        policy = ExecutionPolicy(
            workers=workers, shards=shards, multiplan=multiplan
        )

        def render(engine=engine, queries=queries, policy=policy):
            timed = engine.execute_batch(list(queries), policy)
            return [t.result for t in timed]

        tasks.append(render)
    start = time.perf_counter()
    results = run_tasks(tasks, workers=WORKERS)
    wall_ms = (time.perf_counter() - start) * 1000.0
    per_dashboard = [
        {"dashboard": name, "base_scans": counting.base_scans()}
        for name, counting in counters
    ]
    for engine in engines:
        engine.close()
    return wall_ms, results, per_dashboard


def _flattened(results):
    return [r for render in results for r in render]


def _cells_close(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, (int, float)):
        # The merge re-associates float addition: equal to IEEE rounding.
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
    if isinstance(b, float) and isinstance(a, (int, float)):
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
    return normalize_value(a) == normalize_value(b)


def _assert_equivalent(results, baseline, context: str) -> None:
    flat, base = _flattened(results), _flattened(baseline)
    assert len(flat) == len(base), context
    for i, (got, want) in enumerate(zip(flat, base)):
        assert got.columns == want.columns, f"{context} [{i}] columns"
        assert len(got.rows) == len(want.rows), f"{context} [{i}] rows"
        for got_row, want_row in zip(got.rows, want.rows):
            assert len(got_row) == len(want_row), f"{context} [{i}]"
            assert all(
                _cells_close(g, w) for g, w in zip(got_row, want_row)
            ), f"{context} [{i}]: {got_row} != {want_row}"


def _dyadic_table(rows: int = 960) -> Table:
    """Integer/dyadic-float data: multiplan sums are IEEE-exact."""
    rng = random.Random(5)
    return Table.from_columns(
        "events",
        {
            "queue": [rng.choice(["a", "b", "c", None]) for _ in range(rows)],
            "status": [
                rng.choice(["open", "closed", "waiting"])
                for _ in range(rows)
            ],
            "priority": [rng.randint(1, 5) for _ in range(rows)],
            "latency": [
                None if rng.random() < 0.1 else rng.randint(0, 360) * 0.25
                for _ in range(rows)
            ],
            "day": [
                dt.date(2024, 1, 1) + dt.timedelta(days=rng.randint(0, 6))
                for _ in range(rows)
            ],
        },
    )


_DYADIC_RENDER = [
    "SELECT queue, COUNT(*) AS n FROM events GROUP BY queue",
    "SELECT queue, AVG(latency) AS a, SUM(latency) AS s FROM events "
    "GROUP BY queue",
    "SELECT day, MIN(latency) AS lo, MAX(latency) AS hi FROM events "
    "GROUP BY day",
    "SELECT status, AVG(priority) AS ap FROM events GROUP BY status",
    "SELECT priority, COUNT(latency) AS nv FROM events GROUP BY priority",
    "SELECT COUNT(*) AS n, SUM(latency) AS s FROM events",
]


def _byte_identity_matrix():
    """Strict rows== identity across engines x modes x (workers, shards)."""
    table = _dyadic_table()
    queries = [parse_query(sql) for sql in _DYADIC_RENDER]
    checked = []
    for engine_name in ENGINES:
        engine = create_engine(engine_name)
        engine.load_table(table)
        sequential = [engine.execute(q) for q in queries]
        for workers, shards in COMBINATIONS:
            for multiplan in (False, True):
                timed = engine.execute_batch(
                    list(queries),
                    ExecutionPolicy(
                        workers=workers, shards=shards, multiplan=multiplan
                    ),
                )
                for seq, got in zip(sequential, timed):
                    assert seq.columns == got.result.columns, (
                        engine_name, workers, shards, multiplan,
                    )
                    assert seq.rows == got.result.rows, (
                        engine_name, workers, shards, multiplan,
                    )
                checked.append(
                    {
                        "engine": engine_name,
                        "workers": workers,
                        "shards": shards,
                        "multiplan": multiplan,
                    }
                )
        engine.close()
    return checked


def run_comparison():
    suites = _render_suites()
    rows = []
    per_dashboard_counts = {}
    for engine_name in ENGINES:
        row = {"engine": engine_name}
        serving_off, baseline, scans_off = _run_suite(
            engine_name, suites, False, RTT_MS
        )
        compute_off, compute_base, _ = _run_suite(
            engine_name, suites, False, 0.0
        )
        serving_on, combined, scans_on = _run_suite(
            engine_name, suites, True, RTT_MS
        )
        compute_on, compute_comb, _ = _run_suite(
            engine_name, suites, True, 0.0
        )
        _assert_equivalent(combined, baseline, f"{engine_name} multiplan")
        _assert_equivalent(
            compute_base, baseline, f"{engine_name} compute off"
        )
        _assert_equivalent(
            compute_comb, baseline, f"{engine_name} compute on"
        )
        # Equivalence for every (workers, shards) combination, both modes.
        for workers, shards in COMBINATIONS:
            for multiplan in (False, True):
                if (workers, shards, multiplan) == (1, 1, False):
                    continue  # already ran as the compute-off baseline
                _, results, _ = _run_suite(
                    engine_name, suites, multiplan, 0.0,
                    workers=workers, shards=shards,
                )
                _assert_equivalent(
                    results, baseline,
                    f"{engine_name} w={workers} s={shards} mp={multiplan}",
                )
        total_off = sum(d["base_scans"] for d in scans_off)
        total_on = sum(d["base_scans"] for d in scans_on)
        assert total_on > 0, engine_name
        reduction = total_off / total_on
        row["serving_ms_off"] = round(serving_off, 1)
        row["serving_ms_on"] = round(serving_on, 1)
        row["compute_ms_off"] = round(compute_off, 1)
        row["compute_ms_on"] = round(compute_on, 1)
        row["base_scans_off"] = total_off
        row["base_scans_on"] = total_on
        row["scan_reduction"] = round(reduction, 2)
        per_dashboard_counts[f"{engine_name}_off"] = scans_off
        per_dashboard_counts[f"{engine_name}_on"] = scans_on
        rows.append(row)
    identity = _byte_identity_matrix()
    return rows, per_dashboard_counts, identity


def test_multiplan_initial_render_scan_reduction(benchmark):
    rows, per_dashboard_counts, identity = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )

    text = format_table(rows)
    write_result("multiplan", text)
    RESULTS_DIR.mkdir(exist_ok=True)
    artifact = {
        "suite": "six-dashboard initial render (cold), multiplan",
        "dashboards": list(DASHBOARD_NAMES),
        "rows": BENCH_ROWS,
        "workers": WORKERS,
        "config": {"policy": policy_block(ExecutionPolicy(multiplan=True))},
        "identity_combinations": [list(c) for c in COMBINATIONS],
        "simulated_rtt_ms": RTT_MS,
        "cpu_count": os.cpu_count(),
        "engines": {row["engine"]: row for row in rows},
        "per_dashboard_scan_counts": per_dashboard_counts,
        "identity_checks": {
            "byte_identical_dyadic": identity,
            "generated_data": "equivalent to IEEE-754 rounding "
            "(merge re-associates float addition; see docs/BENCHMARKS.md)",
        },
    }
    (RESULTS_DIR / "BENCH_multiplan.json").write_text(
        json.dumps(artifact, indent=2) + "\n"
    )

    # Shape claims (results were asserted equivalent inside the run):
    for row in rows:
        # The headline: the cold render must cost at least 2x fewer
        # base scans with the combined pass.
        assert row["scan_reduction"] >= 2.0, row
        assert row["base_scans_on"] < row["base_scans_off"], row
