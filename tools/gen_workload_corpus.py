"""Regenerate (or verify) the generated-workload regression corpus.

The corpus under ``tests/data/generated/`` is one adversarial workload
per preset × built-in schema (see
:mod:`repro.workloadgen.presets`): a dashboard spec JSON, a generated
interaction-session JSON, and a ``manifest.json`` pinning the SHA-256
of every file plus the (rows, seed) recipe that rebuilds each table.
``tests/test_workloadgen_corpus.py`` asserts the checked-in files match
a fresh regeneration — the seed-determinism golden test — so any
intentional generator change must re-run this script and commit the
diff.

Usage::

    PYTHONPATH=src python tools/gen_workload_corpus.py          # rewrite
    PYTHONPATH=src python tools/gen_workload_corpus.py --check  # verify
    PYTHONPATH=src python tools/gen_workload_corpus.py --smoke  # CI smoke

``--smoke`` is the CI generator step: it generates 20+ dashboards from
the 3 built-in schemas, validates each, and executes one of them per
schema on the vectorstore engine (the fastest of the four on grouped
aggregates).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.workloadgen import (  # noqa: E402
    SCHEMA_NAMES,
    generate_corpus,
    generate_dashboards,
    generate_session,
    generate_table,
    workload_schema,
)

CORPUS_DIR = REPO / "tests" / "data" / "generated"
#: One seed for the whole corpus; bump deliberately to refresh it.
CORPUS_SEED = 0
#: Steps per pinned session (kept short: the stress matrix replays
#: every session on 4 engines x 2 policies inside tier-1).
SESSION_STEPS = 3


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def build_corpus() -> tuple[dict, dict[str, str]]:
    """(manifest dict, {filename: contents}) for the current generator."""
    files: dict[str, str] = {}
    entries = []
    for workload in generate_corpus(seed=CORPUS_SEED):
        spec_text = workload.spec.to_json() + "\n"
        table = workload.build_table()
        session = generate_session(
            workload.spec, table, length=SESSION_STEPS, seed=CORPUS_SEED
        )
        session_text = session.to_json() + "\n"
        spec_file = f"{workload.name}.json"
        session_file = f"{workload.name}__session.json"
        files[spec_file] = spec_text
        files[session_file] = session_text
        entries.append(
            {
                "name": workload.name,
                "preset": workload.preset,
                "schema": workload.schema_name,
                "rows": workload.rows,
                "seed": workload.seed,
                "note": workload.note,
                "spec_file": spec_file,
                "session_file": session_file,
                "spec_sha256": _sha256(spec_text),
                "session_sha256": _sha256(session_text),
            }
        )
    manifest = {
        "corpus_seed": CORPUS_SEED,
        "session_steps": SESSION_STEPS,
        "regenerate": "PYTHONPATH=src python tools/gen_workload_corpus.py",
        "workloads": entries,
    }
    return manifest, files


def write_corpus() -> int:
    manifest, files = build_corpus()
    CORPUS_DIR.mkdir(parents=True, exist_ok=True)
    for name, text in files.items():
        (CORPUS_DIR / name).write_text(text, encoding="utf-8")
    (CORPUS_DIR / "manifest.json").write_text(
        json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {len(files) + 1} files to {CORPUS_DIR.relative_to(REPO)}")
    return 0


def check_corpus() -> int:
    manifest, files = build_corpus()
    errors = []
    manifest_path = CORPUS_DIR / "manifest.json"
    if not manifest_path.exists():
        print(f"ERROR: {manifest_path} missing; run without --check first")
        return 1
    on_disk = json.loads(manifest_path.read_text(encoding="utf-8"))
    if on_disk != manifest:
        errors.append("manifest.json does not match regeneration")
    for name, text in files.items():
        path = CORPUS_DIR / name
        if not path.exists():
            errors.append(f"{name}: missing")
        elif path.read_text(encoding="utf-8") != text:
            errors.append(f"{name}: contents differ from regeneration")
    if errors:
        for error in errors:
            print(f"ERROR: {error}", file=sys.stderr)
        print(
            "corpus is stale; regenerate with "
            "`PYTHONPATH=src python tools/gen_workload_corpus.py` "
            "and commit the diff",
            file=sys.stderr,
        )
        return 1
    print(f"corpus OK ({len(files)} files match regeneration)")
    return 0


def smoke(specs_per_schema: int = 7, rows: int = 400) -> int:
    """CI smoke: generate, validate, and execute generated dashboards."""
    from repro.engine import create_engine

    total = 0
    distinct = set()
    for schema_name in SCHEMA_NAMES:
        schema = workload_schema(schema_name)
        specs = generate_dashboards(schema, specs_per_schema, seed=1)
        for spec in specs:
            spec.validate()
            distinct.add(spec.to_json())
        total += len(specs)
        # Execute one generated dashboard end to end per schema.
        from repro.dashboard.state import DashboardState

        table = generate_table(schema, rows, seed=1)
        engine = create_engine("vectorstore")
        engine.load_table(table)
        state = DashboardState(specs[0], table)
        results = state.refresh(engine)
        assert results, f"no results for {specs[0].name}"
        print(
            f"{schema_name}: {len(specs)} specs valid, "
            f"refreshed {len(results)} visualizations on vectorstore"
        )
        engine.close()
    assert len(distinct) == total, "generated specs are not distinct"
    print(f"smoke OK: {total} distinct specs from {len(SCHEMA_NAMES)} schemas")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--check", action="store_true",
        help="verify the checked-in corpus matches regeneration",
    )
    mode.add_argument(
        "--smoke", action="store_true",
        help="generate+validate+execute specs without touching disk",
    )
    args = parser.parse_args()
    if args.check:
        return check_corpus()
    if args.smoke:
        return smoke()
    return write_corpus()


if __name__ == "__main__":
    sys.exit(main())
