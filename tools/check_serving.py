"""CI soak for the serving tier: simulator traffic over real HTTP.

Starts one :class:`~repro.serving.server.DashboardServer`, drives it
with IDEBench-mix simulated users through the urllib client (the real
socket path, not the in-process shortcut), on the **processes**
execution backend so shared-memory exports are actually created, and
then asserts the three things the serving tier promises:

1. zero 5xx — ``app.error_count`` stays 0 and no user recorded an
   unexplained failure (429s and expired-session re-creates are fine,
   they are the protocol working);
2. zero leaked ``/dev/shm`` segments once the server closes — every
   export the worker pool published during the soak must be unlinked
   (the workflow also diffs ``ls /dev/shm`` around this script);
3. the cross-session cache actually crossed sessions (hit rate > 0)
   while serving byte-identical results — identity itself is pinned by
   ``tests/test_serving.py``; the soak checks the rate is not zero
   under churn.

Usage: ``PYTHONPATH=src python tools/check_serving.py``
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.dashboard.library import load_dashboard
from repro.serving import DashboardServer, ServingApp, ServingClient, ServingConfig
from repro.serving.loadgen import run_load
from repro.workload import generate_dataset

DASHBOARD = "customer_service"
ENGINE = "vectorstore"
USERS = 16
OPERATIONS = 5

CONFIG = ServingConfig(
    session_ttl=60.0,
    sweep_interval=1.0,
    max_in_flight=4,
    max_queue_depth=64,
    queue_timeout=30.0,
    retry_after=0.1,
)


def _shm_names() -> set[str]:
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:  # non-Linux: the workflow-level diff is skipped too
        return set()


def main() -> int:
    table = generate_dataset(DASHBOARD, 4000, seed=7)
    spec = load_dashboard(DASHBOARD)
    before = _shm_names()

    app = ServingApp(CONFIG, default_engine=ENGINE)
    app.load_table(table)
    app.register_dashboard(spec)
    with DashboardServer(app) as server:
        report = run_load(
            lambda: ServingClient(server.url),
            spec,
            table,
            users=USERS,
            operations=OPERATIONS,
            think_s=0.02,
            tenants=4,
            seed=23,
            engine=ENGINE,
            policy="max_throughput",
        )
        stats = app.stats()

    summary = report.summary()
    cache = stats["caches"][ENGINE]
    print(
        f"soak: {summary['requests']} requests from {USERS} users "
        f"({summary['rejected']} rejected, {summary['recreated']} recreated), "
        f"p50 {summary['latency_ms']['p50']:.1f} ms, "
        f"p95 {summary['latency_ms']['p95']:.1f} ms, "
        f"hit rate {cache['hit_rate']:.2f}"
    )

    failures = []
    if report.errors:
        failures.append(f"user-visible errors: {report.errors[:5]}")
    if stats["errors"]:
        failures.append(f"server recorded {stats['errors']} 5xx faults")
    if summary["completed"] == 0:
        failures.append("no operation completed")
    if cache["hit_rate"] <= 0:
        failures.append("cross-session cache never hit")
    leaked = _shm_names() - before
    if leaked:
        failures.append(f"leaked /dev/shm segments: {sorted(leaked)}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("serving soak OK: zero 5xx, zero leaked segments, cache shared")
    return 0


if __name__ == "__main__":
    sys.exit(main())
