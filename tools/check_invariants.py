"""Run the project's static invariant suite over the source tree.

The rules live in ``src/repro/analysis/rules/`` (one file each, see
ARCHITECTURE §15): lock ordering (RA101), telemetry purity (RA102),
shared-memory lifecycle (RA103), frozen ExecutionPolicy (RA104),
deprecated per-knob kwargs (RA105), bare threading primitives
(RA106), plus suppression hygiene (RA100) from the framework itself.

Usage::

    PYTHONPATH=src python tools/check_invariants.py               # src/repro
    PYTHONPATH=src python tools/check_invariants.py --strict      # CI mode
    PYTHONPATH=src python tools/check_invariants.py --json        # machine-readable
    PYTHONPATH=src python tools/check_invariants.py path/to/file.py

Exit codes: 0 clean, 1 findings (or, with ``--strict``, stale
baseline entries), 2 usage/parse errors.

Findings are suppressed inline (``# repro: allow(RA106) — reason``,
reason mandatory) or accepted wholesale in the baseline file
(``tools/invariants_baseline.json``; regenerate with
``--write-baseline --reason "why"``). ``--strict`` additionally fails
on baseline entries that no longer match anything, so the accepted
set can only shrink.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.analysis import (  # noqa: E402 - path bootstrap above
    all_rules,
    load_baseline,
    run_suite,
    save_baseline,
)
from repro.errors import ConfigError  # noqa: E402

DEFAULT_BASELINE = REPO / "tools" / "invariants_baseline.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="repro static invariant checks"
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files/directories to scan (default: src/repro)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="also fail on stale baseline entries (CI mode)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit one JSON document instead of file:line text",
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help=f"baseline file (default {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept every current finding into the baseline and exit",
    )
    parser.add_argument(
        "--reason", default=None,
        help="shared reason recorded with --write-baseline entries",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name:18s} {rule.summary}")
        return 0

    paths = args.paths or [REPO / "src" / "repro"]
    try:
        baseline = (
            {} if (args.no_baseline or args.write_baseline)
            else load_baseline(args.baseline)
        )
        result = run_suite(paths, baseline=baseline, root=REPO)
    except ConfigError as exc:
        print(f"check_invariants: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        if not args.reason:
            print(
                "check_invariants: --write-baseline requires --reason "
                "(baselined findings must say why they are accepted)",
                file=sys.stderr,
            )
            return 2
        save_baseline(args.baseline, result.findings, args.reason)
        print(
            f"wrote {len(result.findings)} entr"
            f"{'y' if len(result.findings) == 1 else 'ies'} to "
            f"{args.baseline}"
        )
        return 0

    failed = bool(result.findings) or (
        args.strict and bool(result.stale_baseline)
    )

    if args.as_json:
        payload = result.as_dict()
        payload["strict"] = args.strict
        payload["ok"] = not failed
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if failed else 0

    for finding in result.findings:
        print(finding.render())
    for entry in result.stale_baseline:
        line = (
            f"baseline: stale entry {entry['fingerprint']} "
            f"({entry.get('code', '?')} {entry.get('path', '?')}) — "
            f"no longer matches; remove it"
        )
        print(line if args.strict else f"note: {line}")
    counts = result.counts()
    summary = ", ".join(
        f"{code}={n}" for code, n in sorted(counts.items())
    ) or "none"
    print(
        f"checked {result.files} files: "
        f"{len(result.findings)} finding(s) [{summary}], "
        f"{len(result.suppressed)} suppressed inline, "
        f"{len(result.baselined)} baselined, "
        f"{len(result.stale_baseline)} stale baseline entr"
        f"{'y' if len(result.stale_baseline) == 1 else 'ies'}"
    )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
