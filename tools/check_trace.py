#!/usr/bin/env python
"""CI traced-replay check: corpus session + --trace schema validation.

Replays one hash-pinned workloadgen corpus session (the same files
``tests/test_workloadgen_corpus.py`` golden-tests) with telemetry
active under a concurrent sharded policy, writes the Chrome trace to a
temp file, and validates the whole chain:

- recorded spans pass :func:`repro.telemetry.export.validate_spans`
  (closed, unique ids, resolvable acyclic parentage);
- the written file passes
  :func:`repro.telemetry.export.validate_trace_file` (Perfetto-loadable
  Chrome trace-event JSON);
- shard spans nest under scan groups that nest under refresh spans —
  the cross-thread parentage the tracer exists to preserve;
- every replayed query is attributed to exactly one tier.

Run it the way CI does::

    PYTHONPATH=src python tools/check_trace.py
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.dashboard.spec import DashboardSpec  # noqa: E402
from repro.engine import create_engine  # noqa: E402
from repro.execution import ExecutionPolicy  # noqa: E402
from repro.telemetry import (  # noqa: E402
    Telemetry,
    validate_spans,
    validate_trace_file,
    write_chrome_trace,
)
from repro.telemetry.explain import TIERS  # noqa: E402
from repro.workloadgen import generate_preset  # noqa: E402
from repro.workloadgen.sessions import GeneratedSession  # noqa: E402

CORPUS_DIR = Path(__file__).resolve().parent.parent / "tests" / "data" / "generated"

#: The corpus workload replayed under tracing. key_union_explosion
#: drives the widest per-refresh fan-out, so the sharded scan groups
#: carry the most members per span.
WORKLOAD = "retail_sales__key_union_explosion"

#: max_throughput sizes workers with a floor of
#: ``AUTO_MIN_WORKERS`` (and shards to match), so even single-core CI
#: runners exercise the cross-thread span nesting this check exists
#: to validate — the old explicit workers=4/shards=3 workaround is
#: obsolete.
POLICY = ExecutionPolicy.max_throughput()


def _load_workload(name: str):
    manifest = json.loads(
        (CORPUS_DIR / "manifest.json").read_text(encoding="utf-8")
    )
    entry = next(w for w in manifest["workloads"] if w["name"] == name)
    spec = DashboardSpec.from_json(
        (CORPUS_DIR / entry["spec_file"]).read_text(encoding="utf-8")
    )
    table = generate_preset(
        entry["preset"], entry["schema"], seed=entry["seed"], rows=entry["rows"]
    ).build_table()
    session = GeneratedSession.from_json(
        (CORPUS_DIR / entry["session_file"]).read_text(encoding="utf-8")
    )
    return spec, table, session


def main() -> int:
    spec, table, session = _load_workload(WORKLOAD)
    engine = create_engine("sqlite")
    engine.load_table(table)

    telemetry = Telemetry()
    with telemetry.install():
        log = session.replay(spec, table, engine, policy=POLICY)
    engine.close()

    failures: list[str] = []
    spans = telemetry.tracer.spans()
    failures += validate_spans(spans)

    by_id = {span.span_id: span for span in spans}
    by_name: dict[str, list] = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span)

    refreshes = by_name.get("refresh", [])
    if not refreshes:
        failures.append("no refresh spans recorded")

    # Cross-thread nesting: every shard span's chain must pass through
    # a scan_group and terminate at a refresh span.
    shard_spans = [s for s in spans if s.name.startswith("shard[")]
    if not shard_spans:
        failures.append(
            f"no shard spans under {POLICY.describe()!r} — sharded path "
            f"not exercised"
        )
    for span in shard_spans:
        chain = []
        cursor = span
        while cursor.parent_id is not None:
            cursor = by_id[cursor.parent_id]
            chain.append(cursor.name)
        if "scan_group" not in chain or chain[-1] != "refresh":
            failures.append(
                f"shard span {span.span_id} chain {chain!r} does not "
                f"nest scan_group-under-refresh"
            )
    worker_threads = {s.thread for s in shard_spans}
    if shard_spans and not any(
        t.startswith("repro-worker-") for t in worker_threads
    ):
        failures.append(
            f"shard spans ran on {sorted(worker_threads)!r}, expected "
            f"repro-worker-N threads"
        )

    # Tier attribution: queries were tagged, with known tier names, and
    # the refresh spans account for every replayed query. (The replay
    # log keeps result sets, not SQL, so per-query attribution is
    # asserted via the span bookkeeping rather than text matching.)
    tiers = telemetry.tracer.query_tiers
    if not tiers:
        failures.append("no queries attributed to any tier")
    unknown = {t for t in tiers.values() if t not in TIERS}
    if unknown:
        failures.append(f"unknown tier names {sorted(unknown)!r}")
    span_queries = sum(s.attrs.get("queries", 0) for s in refreshes)
    if span_queries != log.total_queries:
        failures.append(
            f"refresh spans account for {span_queries} queries, replay "
            f"log says {log.total_queries}"
        )

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "trace.json"
        write_chrome_trace(telemetry.tracer, trace_path)
        failures += validate_trace_file(trace_path)

    queries = sum(len(record.results) for record in log.records)
    print(
        f"check_trace: {WORKLOAD} replayed {queries} queries over "
        f"{len(log.records)} refreshes; {len(spans)} spans "
        f"({len(shard_spans)} shard) on threads "
        f"{sorted({s.thread for s in spans})}"
    )
    print(f"check_trace: tiers {dict(sorted_tier_counts(tiers))}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("check_trace: trace schema + nesting OK")
    return 0


def sorted_tier_counts(tiers: dict) -> list[tuple[str, int]]:
    counts: dict[str, int] = {}
    for tier in tiers.values():
        counts[tier] = counts.get(tier, 0) + 1
    return sorted(counts.items())


if __name__ == "__main__":
    sys.exit(main())
