"""Docs health check: links resolve, snippets and examples run.

Three guarantees, enforced by the CI ``docs`` job
(``.github/workflows/tests.yml``) so the guides cannot rot:

1. Every relative markdown link in ``docs/*.md`` and ``README.md``
   points at a file that exists (anchors are stripped; absolute URLs
   are skipped).
2. Every ```` ```python ```` fence in ``docs/ARCHITECTURE.md`` executes
   cleanly, doctest-style. Blocks run in order in one shared namespace
   — the guide builds its example refresh incrementally — and the
   asserts inside them are real: a drifted SQL rendering or a changed
   grouping breaks the build.
3. The tutorial examples listed in ``EXAMPLE_FILES`` run to completion
   (their internal asserts are real identity checks), at a small
   dataset size so the job stays fast.

Run locally::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = sorted((REPO / "docs").glob("*.md")) + [REPO / "README.md"]
SNIPPET_FILES = [REPO / "docs" / "ARCHITECTURE.md"]
#: Tutorial examples executed end to end (kept fast via env knobs).
EXAMPLE_FILES = [
    REPO / "examples" / "multiplan_render.py",
    REPO / "examples" / "policy_quickstart.py",
    REPO / "examples" / "generated_workload.py",
    REPO / "examples" / "traced_refresh.py",
    REPO / "examples" / "process_shards.py",
    REPO / "examples" / "serving_quickstart.py",
]

#: Markdown inline links: [text](target). Reference-style links are
#: not used in this repo's docs.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def check_links() -> list[str]:
    errors = []
    for doc in DOC_FILES:
        text = doc.read_text(encoding="utf-8")
        for target in _LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:  # same-file anchor
                continue
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(
                    f"{doc.relative_to(REPO)}: broken link -> {target}"
                )
    return errors


def run_snippets() -> list[str]:
    errors = []
    for doc in SNIPPET_FILES:
        text = doc.read_text(encoding="utf-8")
        namespace: dict[str, object] = {"__name__": "__docs__"}
        for index, block in enumerate(_FENCE.findall(text)):
            try:
                exec(compile(block, f"{doc.name}[snippet {index}]", "exec"),
                     namespace)
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                errors.append(
                    f"{doc.relative_to(REPO)} snippet {index}: "
                    f"{type(exc).__name__}: {exc}"
                )
                break  # later blocks depend on earlier state
        print(
            f"{doc.relative_to(REPO)}: "
            f"{len(_FENCE.findall(text))} snippets executed"
        )
    return errors


def run_examples() -> list[str]:
    errors = []
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.setdefault("SIMBA_EXAMPLE_ROWS", "2000")
    for example in EXAMPLE_FILES:
        proc = subprocess.run(
            [sys.executable, str(example)],
            env=env,
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            tail = (proc.stderr or proc.stdout).strip().splitlines()[-5:]
            errors.append(
                f"{example.relative_to(REPO)}: exit {proc.returncode}: "
                + " | ".join(tail)
            )
        else:
            print(f"{example.relative_to(REPO)}: executed OK")
    return errors


def main() -> int:
    errors = check_links() + run_snippets() + run_examples()
    checked = sum(
        len(_LINK.findall(doc.read_text(encoding='utf-8')))
        for doc in DOC_FILES
    )
    print(f"checked {checked} links across {len(DOC_FILES)} files")
    if errors:
        for error in errors:
            print(f"ERROR: {error}", file=sys.stderr)
        return 1
    print("docs OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
