"""Docs health check: links resolve, architecture snippets run.

Two guarantees, enforced by the CI ``docs`` job
(``.github/workflows/tests.yml``) so the guides cannot rot:

1. Every relative markdown link in ``docs/*.md`` and ``README.md``
   points at a file that exists (anchors are stripped; absolute URLs
   are skipped).
2. Every ```` ```python ```` fence in ``docs/ARCHITECTURE.md`` executes
   cleanly, doctest-style. Blocks run in order in one shared namespace
   — the guide builds its example refresh incrementally — and the
   asserts inside them are real: a drifted SQL rendering or a changed
   grouping breaks the build.

Run locally::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = sorted((REPO / "docs").glob("*.md")) + [REPO / "README.md"]
SNIPPET_FILES = [REPO / "docs" / "ARCHITECTURE.md"]

#: Markdown inline links: [text](target). Reference-style links are
#: not used in this repo's docs.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def check_links() -> list[str]:
    errors = []
    for doc in DOC_FILES:
        text = doc.read_text(encoding="utf-8")
        for target in _LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:  # same-file anchor
                continue
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(
                    f"{doc.relative_to(REPO)}: broken link -> {target}"
                )
    return errors


def run_snippets() -> list[str]:
    errors = []
    for doc in SNIPPET_FILES:
        text = doc.read_text(encoding="utf-8")
        namespace: dict[str, object] = {"__name__": "__docs__"}
        for index, block in enumerate(_FENCE.findall(text)):
            try:
                exec(compile(block, f"{doc.name}[snippet {index}]", "exec"),
                     namespace)
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                errors.append(
                    f"{doc.relative_to(REPO)} snippet {index}: "
                    f"{type(exc).__name__}: {exc}"
                )
                break  # later blocks depend on earlier state
        print(
            f"{doc.relative_to(REPO)}: "
            f"{len(_FENCE.findall(text))} snippets executed"
        )
    return errors


def main() -> int:
    errors = check_links() + run_snippets()
    checked = sum(
        len(_LINK.findall(doc.read_text(encoding='utf-8')))
        for doc in DOC_FILES
    )
    print(f"checked {checked} links across {len(DOC_FILES)} files")
    if errors:
        for error in errors:
            print(f"ERROR: {error}", file=sys.stderr)
        return 1
    print("docs OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
