"""Cold dashboard renders in one pass: the multi-plan evaluator.

Opening a dashboard emits one query per chart with **no WHERE clause**
— there is no filter for shared-scan batching to share, so even in
batch mode the initial render pays one base scan per distinct GROUP BY.
The multi-plan evaluator (:mod:`repro.engine.multiplan`) collapses
those scans: one combined query computes the *finest* grouping (GROUP
BY the union of every chart's keys, aggregates decomposed into
mergeable pieces), and each chart's exact result is then derived by a
small merge query over the combined rows — entirely on the engine, so
results stay byte-identical.

This walkthrough shows all three pieces on a live dashboard:

1. the decomposition — the combined SQL and one chart's merge SQL;
2. an instrumented cold render with ``multiplan`` off and on —
   base-scan counts measured at the engine boundary;
3. the identity check — both modes return the same rows (for this
   dataset's arbitrary-decimal measures, to IEEE-754 rounding: the
   merge re-associates float addition; integer and dyadic data match
   bit-for-bit, as ``tests/test_multiplan.py`` pins down).

Run with::

    PYTHONPATH=src python examples/multiplan_render.py

CI executes this file (``tools/check_docs.py``) so it cannot rot;
``SIMBA_EXAMPLE_ROWS`` scales the dataset.
"""

from __future__ import annotations

import math
import os
import time

from repro.dashboard.library import load_dashboard
from repro.dashboard.state import DashboardState
from repro.engine.batch import BatchExecutor, fuse_members, group_queries
from repro.execution import ExecutionPolicy
from repro.engine.instrument import CountingEngine
from repro.engine.multiplan import build_multiplan, eligible_plan
from repro.engine.registry import create_engine
from repro.sql.formatter import format_query
from repro.workload.datasets import generate_dataset

ROWS = int(os.environ.get("SIMBA_EXAMPLE_ROWS", "8000"))
DASHBOARD = "customer_service"


def show_decomposition(queries) -> None:
    """Print the combined pass and one chart's merge query."""
    group = group_queries(list(queries))[0]
    classes = [
        cls
        for cls in fuse_members(group.members)
        if eligible_plan(cls.merged_query()) is not None
    ]
    plan = build_multiplan([cls.merged_query() for cls in classes])
    print(f"The cold render's {len(queries)} chart queries fuse into "
          f"{len(classes)} group-by shapes; all of them fold into one pass:")
    print(f"  {format_query(plan.combined_query(group.signature.table))}")
    print("and each chart is derived by a merge over the combined rows,")
    print("e.g. the first one:")
    print(f"  {format_query(plan.plans[0].merge_query('<combined>'))}")
    print()


def instrumented_render(state, queries, multiplan: bool):
    """Render through a counting engine; returns the batch result."""
    counting = CountingEngine(create_engine("sqlite"))
    counting.load_table(state.table)
    executor = BatchExecutor(
        counting, ExecutionPolicy(multiplan=multiplan)
    )
    start = time.perf_counter()
    batch = executor.run(list(queries))
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    label = "--multiplan   " if multiplan else "--no-multiplan"
    print(
        f"  {label}: {len(queries)} chart queries -> "
        f"{counting.base_scans()} base scans "
        f"({batch.stats.multiplan_groups} combined passes covering "
        f"{batch.stats.multiplan_plans} group-bys), "
        f"{elapsed_ms:.1f} ms"
    )
    counting.close()
    return batch


def main() -> None:
    spec = load_dashboard(DASHBOARD)
    table = generate_dataset(DASHBOARD, ROWS, seed=7)
    state = DashboardState(spec, table)
    # The cold render: every chart's query, no filters applied yet.
    queries = state.initial_queries()

    show_decomposition(queries)

    print(f"Instrumented cold render of {DASHBOARD!r} on sqlite, "
          f"{ROWS} rows:")
    before = instrumented_render(state, queries, multiplan=False)
    after = instrumented_render(state, queries, multiplan=True)

    # This dataset's measures are arbitrary decimals, so the merged
    # SUM/AVG agree with the per-class path to IEEE-754 rounding (the
    # merge re-associates float addition; integer and dyadic data
    # match bit-for-bit — see docs/ARCHITECTURE.md). Structure,
    # ordering, and counts must match exactly.
    def cells_close(a, b) -> bool:
        if isinstance(a, float) and isinstance(b, (int, float)):
            return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
        return a == b

    identical = all(
        a.result.columns == b.result.columns
        and len(a.result.rows) == len(b.result.rows)
        and all(
            cells_close(x, y)
            for row_a, row_b in zip(a.result.rows, b.result.rows)
            for x, y in zip(row_a, row_b)
        )
        for a, b in zip(before.results, after.results)
    )
    print(
        "  verified: both modes return "
        f"{'identical results (to IEEE float rounding)' if identical else 'DIFFERENT results (bug!)'}"
    )
    assert identical
    print()
    print(
        "The dashboard now opens with one scan of its table instead of "
        "one per chart — the same knob is --multiplan on the harness "
        "and replay CLIs and ExecutionPolicy(multiplan=True) everywhere "
        "a policy= is accepted, and it composes with "
        "--workers and --shards (combined passes schedule on the same "
        "pool; sharded tables run one combined pass per shard)."
    )


if __name__ == "__main__":
    main()
