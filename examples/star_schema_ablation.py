#!/usr/bin/env python3
"""Star-schema normalization vs. the paper's denormalized layout.

The paper's setup denormalizes every dataset before loading (§6.2.2).
This example shows what that choice buys: it splits the retail-orders
dataset into a fact table plus product/store dimensions, rewrites a
dashboard-style workload into the equivalent join queries, and compares
latencies on two engines.

Usage::

    python examples/star_schema_ablation.py [rows] [seed]
"""

import sys
import time

from repro import DimensionSpec, create_engine, normalize_star, parse_query
from repro.workload.datasets import (
    RETAIL_STAR_DIMENSIONS,
    generate_retail_orders,
)
from repro.workload.normalize import load_star, reassembly_query

WORKLOAD = [
    "SELECT category, SUM(revenue) AS rev FROM retail_orders "
    "GROUP BY category",
    "SELECT region, category, COUNT(*) AS n FROM retail_orders "
    "WHERE quantity > 5 GROUP BY region, category",
    "SELECT city, SUM(quantity) AS q FROM retail_orders "
    "WHERE discount > 0 GROUP BY city",
]


def time_workload(engine, queries, repeats=3):
    start = time.perf_counter()
    for _ in range(repeats):
        for query in queries:
            engine.execute(query)
    return (time.perf_counter() - start) * 1000 / repeats


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 30_000
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 13

    print(f"Generating retail_orders ({rows:,} rows, seed {seed})...")
    table = generate_retail_orders(rows, seed=seed)
    star = normalize_star(
        table, [DimensionSpec(*d) for d in RETAIL_STAR_DIMENSIONS]
    )
    print(f"Fact table: {star.fact.num_rows:,} rows, "
          f"{len(star.fact.schema)} columns")
    for dimension in star.dimensions:
        print(f"Dimension {dimension.name}: {dimension.num_rows} rows")

    queries = [parse_query(sql) for sql in WORKLOAD]
    star_queries = [reassembly_query(star, q) for q in queries]
    print("\nReassembled join queries:")
    for query in star_queries:
        print(f"  {query}")

    print(f"\n{'engine':<12} {'denormalized':>14} {'star schema':>13} "
          f"{'overhead':>9}")
    for engine_name in ("vectorstore", "sqlite"):
        flat_engine = create_engine(engine_name)
        flat_engine.load_table(table)
        star_engine = create_engine(engine_name)
        load_star(star_engine, star)

        # Both layouts must agree before we time anything.
        for query, star_query in zip(queries, star_queries):
            assert (
                flat_engine.execute(query).sorted_rows()
                == star_engine.execute(star_query).sorted_rows()
            )

        flat_ms = time_workload(flat_engine, queries)
        star_ms = time_workload(star_engine, star_queries)
        print(
            f"{engine_name:<12} {flat_ms:>12.2f}ms {star_ms:>11.2f}ms "
            f"{star_ms / flat_ms:>8.2f}x"
        )

    print(
        "\nDenormalized wins on both engines — the join work is pure "
        "overhead\nfor this query class, which is why the paper (and "
        "dashboard backends)\ndenormalize before benchmarking."
    )


if __name__ == "__main__":
    main()
