#!/usr/bin/env python3
"""Execution policies and the one-import session facade.

The whole execution surface — shared scans, worker overlap, row-range
sharding, multi-plan combined passes — is configured once through
``repro.ExecutionPolicy`` and travels the stack as a single ``policy=``
value. ``repro.connect()`` opens a session that applies the policy to
everything it runs: dashboard refreshes, log replays, raw query
batches.

This example refreshes the Customer Service dashboard under four
policies and verifies the contract the whole redesign leans on:
**every policy returns byte-identical results** — only scheduling and
scan counts change.

Usage::

    python examples/policy_quickstart.py [rows]

CI runs it via ``tools/check_docs.py`` (``SIMBA_EXAMPLE_ROWS`` keeps it
fast there).
"""

import os
import sys

import repro


def main() -> None:
    rows = int(
        sys.argv[1]
        if len(sys.argv) > 1
        else os.environ.get("SIMBA_EXAMPLE_ROWS", "20000")
    )

    policies = {
        "serial": repro.ExecutionPolicy.serial(),
        "batch": repro.ExecutionPolicy(),
        "concurrent": repro.ExecutionPolicy(workers=4),
        "everything": repro.ExecutionPolicy(
            workers=4, shards=2, multiplan=True
        ),
    }
    print("The four policies under test:")
    for name, policy in policies.items():
        print(f"  {name:12s} {policy.describe()}")

    # One malformed combination the old per-knob threading silently
    # ignored: sharding without batch mode has nothing to shard.
    try:
        repro.ExecutionPolicy(batch=False, shards=4)
    except repro.errors.ConfigError as exc:
        print(f"\nInvalid combinations fail at construction:\n  {exc}")

    table = repro.generate_dataset("customer_service", rows, seed=11)
    outcomes = {}
    for name, policy in policies.items():
        # One session per policy: engine + policy + data in one value.
        with repro.connect("sqlite", policy=policy) as session:
            session.load(table)
            results = session.refresh("customer_service")
            outcomes[name] = {
                viz: (timed.result.columns, timed.result.rows)
                for viz, timed in results.items()
            }
            stats = session.stats
            print(
                f"\n[{name}] {stats.queries} queries on {stats.engine} "
                f"under: {stats.policy}"
            )
            for viz, timed in sorted(results.items()):
                print(
                    f"  {viz:24s} {timed.rows_returned:4d} rows "
                    f"{timed.duration_ms:8.3f} ms"
                )

    # The identity contract: same columns, same rows, same order, for
    # every policy.
    baseline = outcomes.pop("serial")
    for name, outcome in outcomes.items():
        assert outcome == baseline, f"policy {name!r} diverged from serial"
    print(
        "\nverified: all four policies returned byte-identical results "
        "(the policy changes how a refresh executes, never what it "
        "returns)"
    )

    # auto() sizes workers from the machine and shards from the data.
    with repro.connect("sqlite") as session:
        session.load(table)
        auto = repro.ExecutionPolicy.auto(session.engine, table.name)
        print(f"auto() on this machine and table: {auto.describe()}")


if __name__ == "__main__":
    main()
