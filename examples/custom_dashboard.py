#!/usr/bin/env python3
"""Benchmark *your own* dashboard — SIMBA's distinguishing feature.

Builds a dashboard specification from scratch (a small e-commerce
monitoring board), round-trips it through the JSON specification
language, defines a custom exploration goal in the algebra, and runs a
simulated session against it.
"""

import random

import numpy as np

from repro import SessionConfig, SessionSimulator, create_engine
from repro.algebra import get_template
from repro.dashboard.spec import (
    ColumnSpec,
    DashboardSpec,
    DatabaseSpec,
    DimensionSpec,
    InterfaceSpec,
    LinkSpec,
    MeasureSpec,
    VisualizationSpec,
    WidgetSpec,
)
from repro.engine.table import Table


def build_dataset(rows: int = 8_000, seed: int = 1) -> Table:
    """A synthetic e-commerce orders table."""
    rng = np.random.default_rng(seed)
    stores = ["Berlin", "Paris", "Madrid", "Rome", "Vienna"]
    categories = ["Apparel", "Electronics", "Books", "Grocery"]
    price = rng.gamma(2.0, 25.0, size=rows) + 1
    quantity = rng.integers(1, 6, size=rows)
    return Table.from_columns(
        "orders",
        {
            "store": list(rng.choice(stores, size=rows)),
            "category": list(rng.choice(categories, size=rows)),
            "status": list(
                rng.choice(
                    ["delivered", "returned", "cancelled"],
                    size=rows,
                    p=[0.9, 0.07, 0.03],
                )
            ),
            "price": [round(float(v), 2) for v in price],
            "quantity": [int(v) for v in quantity],
            "revenue": [
                round(float(p * q), 2) for p, q in zip(price, quantity)
            ],
        },
    )


def build_dashboard(table: Table) -> DashboardSpec:
    """Hand-written specification, exactly what a developer would write."""
    database = DatabaseSpec(
        table="orders",
        columns=tuple(
            ColumnSpec(c.name, c.dtype.value) for c in table.schema.columns
        ),
    )
    visualizations = (
        VisualizationSpec(
            id="revenue_by_store",
            type="bar",
            title="Revenue by Store",
            dimensions=(DimensionSpec("store"),),
            measures=(MeasureSpec("sum", "revenue"),),
        ),
        VisualizationSpec(
            id="orders_by_category",
            type="pie",
            title="Orders by Category",
            dimensions=(DimensionSpec("category"),),
            measures=(MeasureSpec("count", None),),
        ),
        VisualizationSpec(
            id="total_revenue",
            type="stat",
            title="Total Revenue",
            measures=(
                MeasureSpec("sum", "revenue"),
                MeasureSpec("avg", "price"),
            ),
            selectable=False,
        ),
    )
    widgets = (
        WidgetSpec(
            id="status_radio",
            type="radio",
            column="status",
            targets=("revenue_by_store", "orders_by_category", "total_revenue"),
        ),
        WidgetSpec(
            id="price_slider",
            type="range_slider",
            column="price",
            targets=("revenue_by_store", "orders_by_category", "total_revenue"),
        ),
    )
    links = (
        LinkSpec("revenue_by_store", "orders_by_category"),
        LinkSpec("revenue_by_store", "total_revenue"),
        LinkSpec("orders_by_category", "revenue_by_store"),
        LinkSpec("orders_by_category", "total_revenue"),
    )
    return DashboardSpec(
        name="ecommerce_monitor",
        dashboard_type="operational decision making",
        description="Hand-built example dashboard.",
        database=database,
        interface=InterfaceSpec(
            visualizations=visualizations, widgets=widgets, links=links
        ),
    )


def main() -> None:
    table = build_dataset()
    spec = build_dashboard(table)

    # The JSON round-trip: store the spec as a file, load it back.
    as_json = spec.to_json()
    spec = DashboardSpec.from_json(as_json)
    print(f"Dashboard spec: {spec.num_visualizations} visualizations, "
          f"{spec.num_widgets} widgets, {len(as_json)} bytes of JSON")

    # A custom goal: how does revenue spread across categories? No single
    # visualization groups revenue by category, so the simulated user has
    # to iterate category selections against the Total Revenue stat.
    goal = get_template("analyzing_spread").instantiate(
        "orders",
        categorical="category",
        quantitative="revenue",
        agg="sum",
        threshold=1,
    )
    print(f"Custom goal: {goal}")

    measured = create_engine("sqlite")
    measured.load_table(table)
    reference = create_engine("vectorstore")
    reference.load_table(table)
    log = SessionSimulator(
        spec,
        table,
        [goal.query],
        measured_engine=measured,
        reference_engine=reference,
        config=SessionConfig(seed=3),
    ).run()
    print(
        f"Session: {log.interaction_count} interactions, "
        f"{log.query_count} queries, goals {log.goals_completed}/"
        f"{log.goals_total}, avg {log.average_duration():.2f} ms"
    )
    mix = log.model_mix()
    print(f"Model mix: {mix}")
    rng = random.Random(0)
    sample = rng.sample(log.queries(), min(5, len(log.queries())))
    print("Sample emitted SQL:")
    for sql in sample:
        print("  ", sql)


if __name__ == "__main__":
    main()
