#!/usr/bin/env python3
"""Approximate visualization: trade accuracy for interactive latency.

The paper notes SIMBA "provides support for approximate visualization"
(§5). This example answers a dashboard question — abandonment per call
queue — three ways:

1. exactly, over the full table;
2. from a 5% sample with Horvitz–Thompson scaling and bootstrap
   confidence intervals;
3. progressively (online aggregation), refining until the estimate
   stabilizes.

Usage::

    python examples/approximate_dashboard.py [rows] [seed]
"""

import sys

from repro import (
    approximate_execute,
    create_engine,
    generate_dataset,
    parse_query,
    progressive_execute,
)
from repro.approx import relative_error

QUERY = (
    "SELECT queue, COUNT(*) AS calls, SUM(abandoned) AS abandoned "
    "FROM customer_service GROUP BY queue ORDER BY queue"
)


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 100_000
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 23

    print(f"Generating customer_service ({rows:,} rows)...")
    table = generate_dataset("customer_service", rows, seed=seed)
    query = parse_query(QUERY)

    exact_engine = create_engine("vectorstore")
    exact_engine.load_table(table)
    exact_timed = exact_engine.execute_timed(query)
    exact = exact_timed.result
    print(f"\nExact answer ({exact_timed.duration_ms:.1f} ms):")
    for row in exact.rows:
        print(f"  queue {row[0]}: {row[1]:,} calls, {row[2]:,} abandoned")

    print("\n5% sample with bootstrap 95% confidence intervals:")
    engine = create_engine("vectorstore")
    result = approximate_execute(
        engine, table, query, fraction=0.05, seed=seed, bootstrap=40
    )
    for index, row in enumerate(result.estimate.rows):
        interval = result.cell_interval(index, "calls")
        low, high = interval if interval else (float("nan"), float("nan"))
        print(
            f"  queue {row[0]}: ~{row[1]:,.0f} calls "
            f"(95% CI {low:,.0f} – {high:,.0f})"
        )
    error = relative_error(exact, result.estimate)
    print(f"  mean relative error vs exact: {error:.1%} "
          f"from {result.sample_rows:,} sampled rows")

    print("\nProgressive refinement (stop when change < 2%):")
    engine = create_engine("vectorstore")
    for update in progressive_execute(
        engine, table, query, seed=seed, epsilon=0.02
    ):
        error = relative_error(exact, update.estimate)
        change = "—" if update.change is None else f"{update.change:.1%}"
        print(
            f"  step {update.step}: read {update.rows_read:>8,} rows "
            f"({update.fraction:>5.0%})  error {error:>6.1%}  "
            f"change {change:>6}  "
            f"{'CONVERGED' if update.converged else ''}"
        )


if __name__ == "__main__":
    main()
