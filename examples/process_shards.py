"""Process-backed shard execution: shared-memory exports + worker pool.

The thread backend overlaps scan groups only where the engine releases
the GIL (SQLite); the pure-Python stores run their shard tasks as a
serialized queue. ``ExecutionPolicy(backend="processes")`` ships each
row-range shard to a *worker process* instead: the base table is
exported once per generation into ``multiprocessing.shared_memory``,
workers attach and slice zero-copy, run the shard's partial queries
locally, and the parent merges the partials through the exact rollup
algebra the thread path uses — so results stay byte-identical.

This walkthrough shows:

1. which engines can export, and how (the per-engine shard mode);
2. a refresh under ``backend="threads"`` vs ``backend="processes"``,
   with the shared-memory segments visible mid-run;
3. the identity check, and the lifecycle check (no segments survive
   pool shutdown).

Run with::

    PYTHONPATH=src python examples/process_shards.py
"""

from __future__ import annotations

import os
import time

from repro.concurrency import ScanGroupExecutor, process_shard_engine
from repro.concurrency.procpool import ProcessShardPool
from repro.dashboard.library import load_dashboard
from repro.dashboard.state import DashboardState
from repro.engine.registry import create_engine
from repro.execution import ExecutionPolicy
from repro.workload.datasets import generate_dataset

ROWS = int(os.environ.get("SIMBA_EXAMPLE_ROWS", "20000"))
SHARDS = 4
# Two workers keep the walkthrough quick even on a single-core host,
# where each spawned worker pays a full interpreter + import start-up.
WORKERS = 2


def show_capabilities() -> None:
    """Print each engine's process-shard export mode."""
    print("Per-engine export modes (how a table crosses the boundary):")
    for name in ("rowstore", "vectorstore", "matstore", "sqlite"):
        engine = create_engine(name)
        mode = getattr(engine, "process_shard_mode", None)
        detail = {
            "shm": "float64 column segments + pickled object columns",
            "pickle": "whole column dict as one pickle blob (exact ints)",
            "file": "snapshot file via the backup API (rowids preserved)",
        }.get(mode, "cannot export; degrades to the thread backend")
        print(f"  {name:<12} {str(mode):<8} {detail}")
        engine.close()
    print()


def timed_refresh(queries, table, backend: str, pool=None):
    """One refresh batch on a fresh vectorstore under ``backend``."""
    engine = create_engine("vectorstore")
    engine.load_table(table)
    policy = ExecutionPolicy(
        workers=WORKERS, shards=SHARDS, backend=backend
    )
    executor = ScanGroupExecutor(engine, policy, proc_pool=pool)
    start = time.perf_counter()
    batch = executor.run(list(queries))
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    segments = pool.segment_names() if pool is not None else []
    executor.close()
    engine.close()
    print(
        f"  backend={backend}: {len(queries)} queries -> "
        f"{batch.stats.groups} groups, "
        f"{batch.stats.proc_shard_scans} shards in worker processes, "
        f"{elapsed_ms:.1f} ms"
        + (f", {len(segments)} shm segments live" if segments else "")
    )
    return batch


def main() -> None:
    show_capabilities()

    spec = load_dashboard("customer_service")
    table = generate_dataset("customer_service", ROWS, seed=7)
    state = DashboardState(spec, table)
    queries = [state.query_for(v) for v in sorted(state.visualizations)]
    # The vectorstore advertises support (walked through any wrapper
    # chain by process_shard_engine); a policy on an engine that does
    # not is advisory — it degrades to threads instead of failing.
    assert process_shard_engine(create_engine("vectorstore")) is not None

    print(f"Refresh fan-out on vectorstore, {ROWS} rows:")
    threaded = timed_refresh(queries, table, "threads")
    pool = ProcessShardPool(workers=WORKERS)
    processed = timed_refresh(queries, table, "processes", pool=pool)

    identical = all(
        a.result.columns == b.result.columns
        and a.result.rows == b.result.rows
        for a, b in zip(threaded.results, processed.results)
    )
    print(
        f"  verified: thread and process results are "
        f"{'byte-identical' if identical else 'DIFFERENT (bug!)'}"
    )
    assert identical

    pool.shutdown()
    assert pool.segment_names() == []
    print("  verified: pool shutdown unlinked every shm segment")
    print()
    cpus = os.cpu_count() or 1
    print(
        f"This host has {cpus} CPU(s). Worker processes overlap the "
        "shard *compute* the GIL serializes for threads — a win on "
        "multi-core hosts, pure overhead on one core (the export, "
        "pickling, and dispatch are not free). ExecutionPolicy.auto() "
        "therefore picks backend='processes' only when the machine has "
        "spare cores AND the engine can export; the same knob is "
        "--backend on the harness and replay CLIs."
    )


if __name__ == "__main__":
    main()
