"""Serving tier quickstart: one server, many tenants, one shared cache.

Everything below ``repro.serving`` runs dashboards inside a single
``repro.connect()`` session that lives as long as its caller. The
serving tier turns that stack into a *service*: a long-lived
:class:`~repro.serving.app.ServingApp` multiplexes many concurrent
user sessions over shared engines, with admission control at the door
and a cross-session result cache in the middle — one tenant's refresh
warms every co-tenant's, byte for byte.

This walkthrough shows:

1. creating sessions for two tenants and watching the second tenant's
   cold refresh get served from the cache the first tenant warmed;
2. the same protocol over the real HTTP socket
   (:class:`~repro.serving.server.DashboardServer` +
   :class:`~repro.serving.server.ServingClient`), including an
   interaction round-trip;
3. overload behavior: a saturated server answers 429 + ``Retry-After``
   instead of hanging;
4. the accounting roll-up (`/stats`): live sessions, admission
   counters, per-engine cache hit rate.

Run with::

    PYTHONPATH=src python examples/serving_quickstart.py
"""

from __future__ import annotations

import os

from repro.dashboard.library import load_dashboard
from repro.serving import (
    DashboardServer,
    ServerReply,
    ServingApp,
    ServingClient,
    ServingConfig,
    encode_interaction,
    results_signature,
)
from repro.workload.datasets import generate_dataset

ROWS = int(os.environ.get("SIMBA_EXAMPLE_ROWS", "5000"))
DASHBOARD = "customer_service"


def in_process_tour(table, spec) -> None:
    """Two tenants, one engine host, one shared cache."""
    print("In-process: two tenants share one engine host")
    with ServingApp(default_engine="sqlite") as app:
        app.load_table(table)
        app.register_dashboard(spec)

        alice = app.create_session("tenant-alice", DASHBOARD)
        bob = app.create_session("tenant-bob", DASHBOARD)
        cold = app.refresh(alice["session_id"])
        warm = app.refresh(bob["session_id"])

        identical = results_signature(cold) == results_signature(warm)
        stats = app.host_for("sqlite").cache.stats
        print(
            f"  alice rendered {len(cold)} visualizations cold; "
            f"bob's refresh hit the cross-session cache "
            f"({stats.hits} hits, hit rate {stats.hit_rate:.2f})"
        )
        print(
            "  verified: served results are "
            + ("byte-identical" if identical else "DIFFERENT (bug!)")
        )
        assert identical and stats.hits > 0
    print()


def http_tour(table, spec) -> None:
    """The same protocol over a real socket, plus an interaction."""
    print("HTTP: stdlib server, urllib client")
    app = ServingApp(default_engine="sqlite")
    app.load_table(table)
    app.register_dashboard(spec)
    with DashboardServer(app) as server:
        client = ServingClient(server.url)
        session = client.create_session("tenant-http", DASHBOARD)
        results = client.refresh(session["session_id"])
        print(
            f"  {server.url} -> session {session['session_id']}, "
            f"{len(results)} visualizations rendered"
        )

        # Drive one real interaction end to end: the server applies it,
        # recomputes only the affected visualizations, and returns them.
        state = app.registry.get(session["session_id"]).state
        interaction = state.available_interactions()[0]
        affected, partial = client.interact(
            session["session_id"], encode_interaction(interaction)
        )
        print(
            f"  interaction {interaction.kind.value!r} affected "
            f"{len(affected)} visualization(s); partial refresh returned "
            f"{len(partial)}"
        )
        assert set(affected) == set(partial)

        roll_up = client.stats()
        print(
            f"  /stats: {roll_up['sessions']['live']} live session(s), "
            f"{roll_up['admission']['admitted']} admitted, "
            f"{roll_up['errors']} server faults"
        )
        assert roll_up["errors"] == 0
        client.close_session(session["session_id"])
    print()


def overload_tour(table, spec) -> None:
    """A saturated server rejects loudly — 429, never a hang."""
    print("Overload: bounded in-flight, bounded queue, Retry-After")
    config = ServingConfig(
        max_in_flight=1, max_queue_depth=0, queue_timeout=0.2, retry_after=0.5
    )
    app = ServingApp(config, default_engine="sqlite")
    app.load_table(table)
    app.register_dashboard(spec)
    with DashboardServer(app) as server:
        client = ServingClient(server.url)
        session = client.create_session("tenant-burst", DASHBOARD)
        # Hold the only slot so the next request finds the server full.
        with app.admission.slot("tenant-hog"):
            try:
                client.refresh(session["session_id"])
            except ServerReply as reply:
                print(
                    f"  saturated -> HTTP {reply.status}, "
                    f"Retry-After {reply.retry_after:g}s"
                )
                assert reply.status == 429 and reply.retry_after > 0
            else:
                raise AssertionError("expected a 429 while saturated")
        # Slot released: the same request now succeeds.
        results = client.refresh(session["session_id"])
        print(f"  after backoff: refresh served {len(results)} visualizations")
    print()


def main() -> None:
    table = generate_dataset(DASHBOARD, ROWS, seed=11)
    spec = load_dashboard(DASHBOARD)
    in_process_tour(table, spec)
    http_tour(table, spec)
    overload_tour(table, spec)
    print(
        "One process, many tenants: sessions are cheap bookkeeping, "
        "engines are shared and refcounted, and the cross-session cache "
        "turns co-tenant refreshes into lookups. bench_serving.py "
        "measures what this sustains under 500 simulated users."
    )


if __name__ == "__main__":
    main()
