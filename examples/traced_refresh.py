#!/usr/bin/env python3
"""Telemetry: traced refreshes, the metrics registry, and EXPLAIN.

Telemetry is off by default — uninstalled, the execution stack runs its
exact pre-telemetry code path. This example turns it on three ways:

1. **A session-scoped bundle.** ``repro.connect(..., telemetry=)``
   scopes a :class:`repro.Telemetry` bundle around every session
   operation: the refresh records a span tree (``refresh`` →
   ``scan_group`` → shards/merges) and the registry collects the
   ``engine.query_ms`` histogram, ``batch.*`` counters, and per-worker
   task gauges.
2. **EXPLAIN.** ``session.explain(dashboard)`` attributes every
   visualization's query to exactly one answering tier (``cache`` /
   ``multiplan`` / ``sharded`` / ``shared_scan`` / ``fallback``) and
   prints the span tree — "why was that refresh slow" in one call.
3. **Chrome trace export.** The recorded spans write as trace-event
   JSON loadable in Perfetto / ``chrome://tracing`` (the same file the
   CLIs produce with ``--trace FILE``).

Usage::

    python examples/traced_refresh.py [rows]

CI runs it via ``tools/check_docs.py`` (``SIMBA_EXAMPLE_ROWS`` keeps it
fast there).
"""

import json
import os
import sys
import tempfile
from pathlib import Path

import repro
from repro.telemetry import validate_trace_file, write_chrome_trace


def main() -> None:
    rows = int(
        sys.argv[1]
        if len(sys.argv) > 1
        else os.environ.get("SIMBA_EXAMPLE_ROWS", "20000")
    )
    table = repro.generate_dataset("customer_service", rows, seed=11)

    # 1. A session-scoped telemetry bundle. The policy pins workers and
    # shards explicitly so the trace shows real cross-thread nesting
    # even on single-core machines.
    telemetry = repro.Telemetry()
    policy = repro.ExecutionPolicy(workers=4, shards=3)
    with repro.connect("sqlite", policy=policy, telemetry=telemetry) as s:
        s.load(table)
        results = s.refresh("customer_service")
    spans = telemetry.tracer.spans()
    print(f"refresh returned {len(results)} visualizations")
    print(f"recorded {len(spans)} spans on threads "
          f"{sorted({span.thread for span in spans})}")
    assert any(span.name.startswith("shard[") for span in spans)
    assert any(
        span.thread.startswith("repro-worker-") for span in spans
    ), "shard work should land on named pool workers"

    query_histogram = telemetry.registry.histogram(
        "engine.query_ms", engine="sqlite"
    )
    assert query_histogram is not None and query_histogram.count >= len(results)
    print(
        f"engine.query_ms: count={query_histogram.count} "
        f"p50={query_histogram.p50:.3f} p95={query_histogram.p95:.3f}"
    )

    # 2. EXPLAIN: every query attributed to exactly one tier. The
    # session above is closed, so open a cached one and warm it — the
    # second refresh's explain must attribute every query to the cache.
    with repro.connect("sqlite", cache=True) as session:
        session.load(table)
        cold = session.explain("customer_service")
        warm = session.explain("customer_service")
    print("\ncold refresh explain:")
    print(cold)
    assert set(cold.tiers.values()) <= {
        "cache", "multiplan", "sharded", "shared_scan", "fallback"
    }
    assert set(warm.tiers.values()) == {"cache"}, warm.tiers
    print("\nwarm refresh: every query answered from cache")

    # 3. Chrome trace export, validated the way CI validates it.
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = write_chrome_trace(
            telemetry.tracer, Path(tmp) / "refresh_trace.json"
        )
        assert validate_trace_file(trace_path) == []
        events = json.loads(trace_path.read_text())["traceEvents"]
        print(f"\nwrote {len(events)} trace events -> {trace_path.name} "
              f"(open in Perfetto / chrome://tracing)")

    print("\ntelemetry example OK")


if __name__ == "__main__":
    main()
