#!/usr/bin/env python3
"""Cross-engine comparison (the §6.3 experiment, scaled down).

Runs the same simulated workloads against all four engines and prints
per-engine duration distributions for each dashboard — the data behind
the paper's claim that differences in dashboards lead to differences in
DBMS performance.

Usage::

    python examples/compare_engines.py [rows] [runs]
"""

import sys

from repro import BenchmarkConfig, BenchmarkRunner
from repro.engine.registry import PAPER_ANALOGUE
from repro.metrics import format_table


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    runs = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    config = BenchmarkConfig(
        dashboards=("customer_service", "it_monitor", "circulation"),
        workflows=("shneiderman", "battle_heer"),
        engines=("rowstore", "vectorstore", "matstore", "sqlite"),
        sizes={"bench": rows},
        runs=runs,
    )
    print("Engines under test:")
    for engine in config.engines:
        print(f"  {engine:12s} -> {PAPER_ANALOGUE[engine]}")
    print(f"\nRunning {len(config.dashboards)} dashboards x "
          f"{len(config.workflows)} workflows x {runs} runs at {rows:,} rows...")

    result = BenchmarkRunner(config).run(progress=False)

    print("\nQuery durations by dashboard and engine:")
    rows_out = [s.as_row() for s in result.summaries_by("dashboard", "engine")]
    print(format_table(rows_out))

    print("\nOverall by engine:")
    print(format_table([s.as_row() for s in result.summaries_by("engine")]))
    if result.skipped:
        print(f"\nSkipped (workflow not applicable): {result.skipped}")


if __name__ == "__main__":
    main()
