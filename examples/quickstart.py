#!/usr/bin/env python3
"""Quickstart: simulate one exploration session and read its metrics.

Runs the paper's running example — the Customer Service call-center
dashboard (Figure 1) — through the Shneiderman workflow on SQLite, then
prints the interaction log summary and per-query durations.

Usage::

    python examples/quickstart.py [rows] [seed]
"""

import random
import sys

from repro import (
    SessionConfig,
    SessionSimulator,
    create_engine,
    generate_dataset,
    get_workflow,
    load_dashboard,
)
from repro.metrics import duration_summary, format_table


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7

    print(f"Generating customer_service dataset ({rows:,} rows)...")
    spec = load_dashboard("customer_service")
    table = generate_dataset("customer_service", rows, seed=seed)

    # The measured engine is the system under test; the reference engine
    # runs the (smaller) goal-coverage bookkeeping.
    measured = create_engine("sqlite")
    measured.load_table(table)
    reference_table = generate_dataset("customer_service", 2_000, seed=seed)
    reference = create_engine("vectorstore")
    reference.load_table(reference_table)

    workflow = get_workflow("shneiderman")
    goals = workflow.instantiate_for_dashboard(spec, random.Random(seed))
    print("\nGoal queries (from the Table 2 templates):")
    for index, goal in enumerate(goals):
        print(f"  {index + 1}. [{goal.template}] {goal}")

    simulator = SessionSimulator(
        spec,
        reference_table,
        [g.query for g in goals],
        measured_engine=measured,
        reference_engine=reference,
        config=SessionConfig(seed=seed),
        workflow_name="shneiderman",
    )
    log = simulator.run()

    print(
        f"\nSession: {log.interaction_count} interactions, "
        f"{log.query_count} queries, "
        f"{log.goals_completed}/{log.goals_total} goals completed, "
        f"model mix {log.model_mix()}"
    )
    summary = duration_summary("customer_service/sqlite", log.query_durations())
    print(format_table([summary.as_row()]))

    print("\nFirst 10 log rows (what the user-study experts saw):")
    print(format_table(log.to_rows()[:10]))


if __name__ == "__main__":
    main()
