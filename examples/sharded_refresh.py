"""Sharded dashboard refreshes: per-shard scans + partial-agg rollup.

The sharded executor (:mod:`repro.sharding`) splits each shardable
scan group's base scan into contiguous row-range shards — one task per
(group, shard) — runs decomposed *partial* aggregates per shard (AVG
becomes SUM + COUNT), and re-aggregates the partials through the
engine into results byte-identical to unsharded execution.

This walkthrough shows all three pieces on a live dashboard:

1. the rollup itself — the partial and merge SQL for an AVG measure;
2. an instrumented refresh at ``shards ∈ {1, 4}`` — per-shard scan
   counts measured at the engine boundary;
3. the identity check — sharded and unsharded results match (for this
   dataset's arbitrary-decimal floats, to IEEE-754 rounding: the
   rollup re-associates float addition; integer and dyadic data match
   bit-for-bit, as the property tests in ``tests/test_sharding.py``
   pin down).

Run with::

    PYTHONPATH=src python examples/sharded_refresh.py
"""

from __future__ import annotations

import math
import time

from repro.concurrency import ScanGroupExecutor
from repro.execution import ExecutionPolicy
from repro.dashboard.library import load_dashboard
from repro.dashboard.state import DashboardState, InteractionKind
from repro.engine.batch import build_rollup, group_queries
from repro.engine.instrument import CountingEngine
from repro.engine.registry import create_engine
from repro.sql.formatter import format_query
from repro.workload.datasets import generate_dataset

ROWS = 20_000
SHARDS = 4
WORKERS = 4


def show_rollup(queries) -> None:
    """Print the partial/merge decomposition of one AVG query."""
    avg_query = next(
        q for q in queries if "AVG(" in format_query(q)
    )
    rollup = build_rollup(avg_query)
    print("One visualization's query:")
    print(f"  {format_query(avg_query)}")
    print("decomposes for sharding into a per-shard partial query")
    print(f"  {format_query(rollup.partial_query('<shard_temp>', avg_query.from_table.name))}")
    print("and one merge over the concatenated per-shard partials:")
    print(f"  {format_query(rollup.merge_query('<partials>'))}")
    print()


def instrumented_refresh(state, queries, shards: int):
    """Refresh through a counting engine; returns (results, stats)."""
    counting = CountingEngine(create_engine("sqlite"))
    counting.load_table(state.table)
    executor = ScanGroupExecutor(
        counting, ExecutionPolicy(workers=WORKERS, shards=shards)
    )
    start = time.perf_counter()
    batch = executor.run(list(queries))
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    executor.close()
    table = state.table.name
    print(
        f"  shards={shards}: {len(queries)} queries -> "
        f"{batch.stats.groups} scan groups "
        f"({batch.stats.sharded_groups} sharded), "
        f"{counting.scans.get(table, 0)} base scans "
        f"({counting.shard_scans.get(table, 0)} per-shard range scans), "
        f"{elapsed_ms:.1f} ms"
    )
    counting.close()
    return batch


def main() -> None:
    spec = load_dashboard("ubc_energy")
    table = generate_dataset("ubc_energy", ROWS, seed=7)
    state = DashboardState(spec, table)
    # Apply one filter so the refresh exercises filtered scan groups.
    action = next(
        (
            a
            for a in state.available_interactions()
            if a.kind is InteractionKind.WIDGET_TOGGLE
        ),
        None,
    )
    if action is not None:
        state.apply(action)
    queries = [state.query_for(v) for v in sorted(state.visualizations)]

    show_rollup(queries)

    groups = group_queries(list(queries))
    print(
        f"Refresh fan-out: {len(queries)} component queries in "
        f"{len(groups)} scan groups."
    )
    print(f"Instrumented refresh on sqlite, workers={WORKERS}:")
    unsharded = instrumented_refresh(state, queries, shards=1)
    sharded = instrumented_refresh(state, queries, shards=SHARDS)

    # This dataset's measures are arbitrary decimals, so sharded
    # SUM/AVG agree with unsharded to IEEE-754 rounding (the rollup
    # re-associates float addition; integer and dyadic data match
    # bit-for-bit — see docs/ARCHITECTURE.md). Structure, ordering,
    # and counts must match exactly.
    def cells_close(a, b) -> bool:
        if isinstance(a, float) and isinstance(b, (int, float)):
            return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
        return a == b

    identical = all(
        a.result.columns == b.result.columns
        and len(a.result.rows) == len(b.result.rows)
        and all(
            cells_close(x, y)
            for row_a, row_b in zip(a.result.rows, b.result.rows)
            for x, y in zip(row_a, row_b)
        )
        for a, b in zip(unsharded.results, sharded.results)
    )
    print(
        f"  verified: shards=1 and shards={SHARDS} results are "
        f"{'identical (to IEEE float rounding)' if identical else 'DIFFERENT (bug!)'}"
    )
    assert identical
    print()
    print(
        "Each sharded group traded one full-table scan for "
        f"{SHARDS} quarter-table range scans — the unit of work that "
        "parallelizes across cores on multi-core hosts. The same knob "
        "is --shards on the harness and replay CLIs, and "
        "ExecutionPolicy(shards=...) everywhere a policy= is accepted."
    )


if __name__ == "__main__":
    main()
