#!/usr/bin/env python3
"""SIMBA vs. IDEBench workload comparison (the §6.3 / Figure 9 analysis).

Generates 50 IDEBench workflows over the IT Monitor dataset, reverse
engineers the dashboards they imply, and contrasts their structure with
SIMBA's (which is pinned to the real IT Monitor specification).

Usage::

    python examples/idebench_vs_simba.py [workflows] [rows]
"""

import random
import sys

from repro import (
    IDEBenchConfig,
    IDEBenchSimulator,
    SessionConfig,
    SessionSimulator,
    create_engine,
    generate_dataset,
    get_workflow,
    load_dashboard,
)
from repro.idebench import analyze_workflows
from repro.metrics import format_table
from repro.metrics.workload_stats import (
    session_workload_statistics,
    workload_statistics,
)


def main() -> None:
    num_workflows = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    rows = int(sys.argv[2]) if len(sys.argv) > 2 else 5_000

    table = generate_dataset("it_monitor", rows, seed=9)

    print(f"Generating {num_workflows} IDEBench workflows...")
    flows = [
        IDEBenchSimulator(table, IDEBenchConfig(seed=i)).run()
        for i in range(num_workflows)
    ]
    stats = analyze_workflows(flows)
    print("\nReverse-engineered IDEBench dashboards (paper Figure 9):")
    print(format_table([stats.as_row()]))
    print(
        "\nThe real IT Monitor dashboard has 3 visualizations — IDEBench "
        f"grew an average of {stats.avg_visualizations:.0f}."
    )

    print("\nWorkload-shape statistics (paper Table 4 comparison):")
    idebench_queries = [q for flow in flows[:10] for q in flow.queries]
    spec = load_dashboard("it_monitor")
    measured = create_engine("vectorstore")
    measured.load_table(table)
    reference = create_engine("vectorstore")
    reference.load_table(table)
    logs = []
    for seed in range(4):
        goals = get_workflow("shneiderman").instantiate_for_dashboard(
            spec, random.Random(seed)
        )
        logs.append(
            SessionSimulator(
                spec,
                table,
                [g.query for g in goals],
                measured_engine=measured,
                reference_engine=reference,
                config=SessionConfig(seed=seed),
            ).run()
        )
    rows_out = [
        workload_statistics(idebench_queries, "IDEBench (IT Monitor data)").as_row(),
        session_workload_statistics(logs, "SIMBA (IT Monitor dashboard)").as_row(),
    ]
    print(format_table(rows_out))
    print(
        "\nShape check: IDEBench stacks filters (high count_filters) onto "
        "simple views; SIMBA emits fewer but more complex queries."
    )


if __name__ == "__main__":
    main()
