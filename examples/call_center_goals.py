#!/usr/bin/env python3
"""The paper's running example, end to end (Examples 1.1 - 3.1, Fig. 3/4).

Walks through:

1. expressing the "Analyzing Spread" goal for the call-center dashboard
   in the goal algebra (``Q × count(lostCalls) - {count(lostCalls) < 2}``);
2. translating it to the SQL goal query of Figure 3;
3. showing that the goal is *not* syntactically achievable by any single
   dashboard query, but *is* semantically achievable as a union of
   filtered queries (Figure 3's four per-queue queries);
4. letting the Oracle model discover the Figure 4 interaction sequence.
"""

import random

from repro import create_engine, generate_dataset, load_dashboard
from repro.algebra import get_template
from repro.dashboard.state import DashboardState
from repro.equivalence import EquivalenceSuite
from repro.equivalence.results import ResultCache
from repro.simulation.goals import GoalTracker
from repro.simulation.oracle import OracleModel
from repro.sql.formatter import format_query


def main() -> None:
    spec = load_dashboard("customer_service")
    table = generate_dataset("customer_service", 10_000, seed=42)
    engine = create_engine("vectorstore")
    engine.load_table(table)

    # 1-2. The Figure 3 goal, via the Analyzing Spread template.
    template = get_template("analyzing_spread")
    goal = template.instantiate(
        "customer_service",
        categorical="queue",
        quantitative="lostCalls",
        agg="count",
        threshold=2,
    )
    print("Algebra expression:", goal.expression)
    print("Goal query:        ", goal)

    # 3. No single dashboard query is syntactically equivalent...
    state = DashboardState(spec, table)
    suite = EquivalenceSuite(engine)
    matches = [
        viz_id
        for viz_id, query in state.all_queries().items()
        if suite.equivalent(goal.query, query)
    ]
    print(f"\nVisualizations whose base query answers the goal: {matches or 'none'}")

    # 4. ...but the Oracle finds the Figure 4 sequence.
    cache = ResultCache(engine)
    tracker = GoalTracker([goal.query], cache)
    tracker.observe(state.initial_queries())
    oracle = OracleModel(tracker, rng=random.Random(0))
    print("\nOracle interaction sequence:")
    step = 0
    while not tracker.complete and step < 20:
        interaction = oracle.next_interaction(state)
        if interaction is None:
            print("  (no further progress possible)")
            break
        emitted = state.apply(interaction)
        gained = tracker.observe(emitted)
        step += 1
        print(
            f"  {step}. {interaction.describe():40s} "
            f"-> {len(emitted)} queries, +{gained} goal cells, "
            f"progress {tracker.progress:.0%}"
        )
        for query in emitted:
            text = format_query(query)
            if "lostCalls" in text and "COUNT" in text:
                print(f"       {text}")
    if tracker.complete:
        print(
            f"\nGoal achieved in {step} interactions — the union of the "
            f"filtered Lost Calls queries covers the goal result set, "
            f"exactly as Figure 3 describes."
        )


if __name__ == "__main__":
    main()
