#!/usr/bin/env python3
"""Session logs: export, EVA metrics, and cross-engine replay.

Simulates one exploration session (the paper's user study handed exactly
these logs to experts, §6.4), writes it to JSONL and CSV, computes the
log-derived exploration metrics from the paper's §7 survey, and finally
replays the query stream on a different engine to compare latencies.

Usage::

    python examples/session_logs_replay.py [rows] [seed]
"""

import random
import sys
import tempfile
from pathlib import Path

from repro import (
    SessionConfig,
    SessionSimulator,
    create_engine,
    eva_metrics,
    export_session,
    generate_dataset,
    get_workflow,
    load_dashboard,
    replay_log,
)
from repro.logs import read_jsonl, write_csv, write_jsonl


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7

    print(f"Simulating a session on customer_service ({rows:,} rows)...")
    spec = load_dashboard("customer_service")
    table = generate_dataset("customer_service", rows, seed=seed)
    measured = create_engine("vectorstore")
    measured.load_table(table)
    reference_table = generate_dataset("customer_service", 2_000, seed=seed)
    reference = create_engine("vectorstore")
    reference.load_table(reference_table)

    workflow = get_workflow("battle_heer")
    goals = workflow.instantiate_for_dashboard(spec, random.Random(seed))
    session = SessionSimulator(
        spec,
        reference_table,
        [g.query for g in goals],
        measured_engine=measured,
        reference_engine=reference,
        config=SessionConfig(seed=seed),
        workflow_name="battle_heer",
    ).run()

    log = export_session(session)
    print(f"Session: {log.interaction_count} interactions, "
          f"{log.query_count} queries, "
          f"{log.goals_completed}/{log.goals_total} goals")

    directory = Path(tempfile.mkdtemp(prefix="simba_logs_"))
    jsonl_path = directory / "session.jsonl"
    csv_path = directory / "session.csv"
    write_jsonl(log, jsonl_path)
    write_csv(log, csv_path)
    print(f"Wrote {jsonl_path} and {csv_path}")

    restored = read_jsonl(jsonl_path)
    metrics = eva_metrics(restored)
    print("\nEVA metrics (paper §7) computed from the log:")
    print(f"  total exploration time : {metrics.total_exploration_ms:.0f} ms")
    print(f"  interactions performed : {metrics.total_interactions}")
    print(f"  interaction rate       : "
          f"{metrics.interaction_rate_per_minute:.0f} / minute")
    print(f"  mean / p95 / max resp. : {metrics.mean_response_ms:.2f} / "
          f"{metrics.p95_response_ms:.2f} / {metrics.max_response_ms:.2f} ms")
    print(f"  attributes explored    : "
          f"{sorted(metrics.attributes_explored)}")
    print(f"  empty-result fraction  : {metrics.empty_result_fraction:.1%}")
    print(f"  model mix              : {metrics.model_mix}")

    print("\nReplaying the same query stream on sqlite...")
    replay_engine = create_engine("sqlite")
    replay_engine.load_table(table)
    report = replay_log(restored, replay_engine)
    print(f"  {report.query_count} queries, "
          f"cardinalities matched: {report.matched}")
    print(f"  original engine mean : "
          f"{metrics.mean_response_ms:.2f} ms (vectorstore)")
    print(f"  replay engine mean   : "
          f"{report.average_duration_ms():.2f} ms (sqlite)")


if __name__ == "__main__":
    main()
