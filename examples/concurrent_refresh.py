"""Concurrent multi-dashboard refreshes through the worker pool.

A deployment serving several analysts holds one live
:class:`~repro.dashboard.state.DashboardState` per dashboard, each
backed by its own engine. When their refreshes land together, the
inter-session layer (:func:`repro.concurrency.refresh_many`) drains
them over one worker pool — SQLite-backed dashboards refresh in true
parallel (per-thread connections), pure-Python ones serialize per
engine but overlap across engines — and every result is byte-identical
to refreshing one dashboard at a time.

Run with::

    PYTHONPATH=src python examples/concurrent_refresh.py
"""

from __future__ import annotations

import time

from repro.concurrency import RefreshJob, refresh_many
from repro.execution import ExecutionPolicy
from repro.dashboard.library import DASHBOARD_NAMES, load_dashboard
from repro.dashboard.state import DashboardState, InteractionKind
from repro.engine.registry import create_engine
from repro.workload.datasets import generate_dataset

ROWS = 5_000
WORKERS = 4


def build_jobs() -> list[RefreshJob]:
    """One live dashboard per library spec, each on its own engine."""
    jobs: list[RefreshJob] = []
    for name in DASHBOARD_NAMES:
        spec = load_dashboard(name)
        table = generate_dataset(name, ROWS, seed=7)
        engine = create_engine("sqlite")
        engine.load_table(table)
        state = DashboardState(spec, table)
        # Simulate an analyst mid-exploration: apply one filter so the
        # refresh exercises the shared-scan path, not just the render.
        action = next(
            (
                a
                for a in state.available_interactions()
                if a.kind is InteractionKind.WIDGET_TOGGLE
            ),
            None,
        )
        if action is not None:
            state.apply(action)
        # workers here is the *intra-refresh* level: each refresh's
        # independent scan groups also overlap.
        jobs.append(
            RefreshJob(
                state, engine, policy=ExecutionPolicy(workers=WORKERS)
            )
        )
    return jobs


def drain(jobs: list[RefreshJob], workers: int) -> float:
    start = time.perf_counter()
    results = refresh_many(jobs, workers=workers)
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    total = sum(len(r) for r in results)
    print(
        f"  workers={workers}: {len(jobs)} dashboards, "
        f"{total} visualizations refreshed in {elapsed_ms:.1f} ms"
    )
    return elapsed_ms


def main() -> None:
    jobs = build_jobs()
    print("In-process engines (gains need multiple cores):")
    sequential_ms = drain(jobs, workers=1)
    concurrent_ms = drain(jobs, workers=WORKERS)
    print(f"  overlap: {sequential_ms / concurrent_ms:.2f}x")

    # The results really are identical:
    seq = refresh_many(jobs, workers=1)
    conc = refresh_many(jobs, workers=WORKERS)
    assert all(
        a[v].result == b[v].result
        for a, b in zip(seq, conc)
        for v in a
    )
    print("  verified: workers=1 and workers=4 results are byte-identical")

    # The deployment shape the pool is really for: a networked DBMS,
    # where every call pays a round trip. Round trips overlap on any
    # machine, so concurrent refreshes win even on one core.
    from repro.engine.instrument import DispatchLatencyEngine

    for job in jobs:
        job.engine = DispatchLatencyEngine(job.engine, latency_ms=5.0)
    print("Same suite over a simulated 5 ms client/server round trip:")
    sequential_ms = drain(jobs, workers=1)
    concurrent_ms = drain(jobs, workers=WORKERS)
    print(f"  overlap: {sequential_ms / concurrent_ms:.2f}x")
    for job in jobs:
        job.engine.close()


if __name__ == "__main__":
    main()
