"""Single-flight execution: concurrent identical work computes once.

When several threads ask for the same expensive computation at the same
time — the classic cache-stampede shape: two dashboard sessions refresh
the same scan group in the same instant — only the first caller (the
*leader*) runs it; the rest block until the leader finishes and then
share its value. Distinct keys never wait on each other.

Error semantics follow the Go ``singleflight`` package this mirrors:
a leader's exception propagates to every waiter of that flight, and the
key is released either way, so the next request retries fresh.
"""

from __future__ import annotations

import threading
from typing import Callable, TypeVar

R = TypeVar("R")


class _Flight:
    """One in-progress computation and its rendezvous point."""

    __slots__ = ("done", "value", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: object = None
        self.error: BaseException | None = None


class SingleFlight:
    """Deduplicates concurrent calls by key.

    ``do(key, fn)`` returns ``(value, leader)`` where ``leader`` tells
    the caller whether *its* invocation ran ``fn``. Followers receive
    the leader's value object itself — callers that hand out mutable
    results should copy before returning (the engine caches already
    copy ResultSets on the way out).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[object, _Flight] = {}

    @property
    def in_flight(self) -> int:
        """Number of keys currently being computed (for tests/metrics)."""
        with self._lock:
            return len(self._flights)

    def do(self, key: object, fn: Callable[[], R]) -> tuple[R, bool]:
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                lead = True
            else:
                lead = False
        if lead:
            try:
                flight.value = fn()
            except BaseException as exc:
                flight.error = exc
                raise
            finally:
                with self._lock:
                    self._flights.pop(key, None)
                flight.done.set()
            return flight.value, True  # type: ignore[return-value]
        flight.done.wait()
        if flight.error is not None:
            raise flight.error
        return flight.value, False  # type: ignore[return-value]


__all__ = ["SingleFlight"]
