"""Per-engine execution policies for concurrent scheduling.

Engines differ in what concurrency they tolerate and what it buys:

- **SQLite** maintains one connection per thread (see
  :mod:`repro.engine.sqlite_engine`), releases the GIL inside the C
  library, and has no shared mutable Python state — scan groups for it
  run genuinely in parallel.
- **The pure-Python stores** (rowstore/vectorstore/matstore) keep
  tables and lazily-built index structures in shared dictionaries and
  are GIL-bound anyway; their work runs as a *serialized task queue* —
  one task at a time per engine instance — overlapping only with other
  engines' and sessions' work.
- **Wrappers** (cache, instrumentation) advertise the policy of the
  stack they guard.

Two engine attributes drive scheduling (declared on
:class:`~repro.engine.interface.Engine` and defaulting to ``False``):

``thread_safe``
    The engine may be *invoked* from multiple threads concurrently
    without corruption. Callers must wrap non-thread-safe engines in
    :func:`execution_slot`.
``parallel_scans``
    Concurrent invocations can actually overlap compute — scheduling
    extra workers at them is profitable, not just safe.

:func:`execution_slot` hands out the per-instance mutex that implements
the serialized queue. Locks live in a weak registry so an engine's
slot dies with the engine.
"""

from __future__ import annotations

import contextlib
import threading
import weakref
from typing import ContextManager

from repro.engine.interface import Engine, ResultSet
from repro.engine.table import Schema, Table
from repro.sql.ast import Query

_REGISTRY_LOCK = threading.Lock()
_SLOTS: "weakref.WeakKeyDictionary[Engine, threading.RLock]" = (
    weakref.WeakKeyDictionary()
)


def thread_safe(engine: Engine) -> bool:
    """May this engine be called from multiple threads concurrently?"""
    return bool(getattr(engine, "thread_safe", False))


def parallel_scans(engine: Engine) -> bool:
    """Does concurrent invocation overlap actual compute for this engine?"""
    return bool(getattr(engine, "parallel_scans", False))


def process_shard_engine(engine: Engine) -> Engine | None:
    """The innermost engine able to export process shards, or ``None``.

    Walks the wrapper chain (slot gates, caches, instrumentation — any
    object exposing ``.inner``) looking for ``supports_process_shards``.
    The *unwrapped* engine is what the process pool exports from and
    what parent-side merges run against; wrappers keep doing their job
    on the parent because the executor only uses the returned engine
    for the export itself.
    """
    seen: set[int] = set()
    current: object = engine
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        if getattr(current, "supports_process_shards", False):
            return current  # type: ignore[return-value]
        current = getattr(current, "inner", None)
    return None


def serialization_lock(engine: Engine) -> threading.RLock:
    """The per-instance mutex backing this engine's serialized queue."""
    with _REGISTRY_LOCK:
        lock = _SLOTS.get(engine)
        if lock is None:
            lock = threading.RLock()
            _SLOTS[engine] = lock
        return lock


def execution_slot(engine: Engine) -> ContextManager[None]:
    """Context manager gating one unit of work on ``engine``.

    Thread-safe engines get a no-op slot (their tasks overlap freely);
    everything else shares a per-instance reentrant lock, which turns a
    worker pool into a serialized task queue for that engine while
    still overlapping work across *different* engines.

    Reentrant so a task that holds its engine's slot can call helpers
    that defensively take it again; distinct tasks on distinct threads
    still exclude each other.
    """
    if thread_safe(engine):
        return contextlib.nullcontext()
    return serialization_lock(engine)


class SlotGatedEngine(Engine):
    """Serializes every call into a non-thread-safe engine.

    Leaf-granular: each individual engine call runs inside the inner
    engine's :func:`execution_slot`, and the slot is never held across
    anything that can block on another thread (holding it for a longer
    span deadlocks against single-flight waits). Interleaving calls
    from different tasks is safe because shared-scan temp relations
    carry unique per-execution names.
    """

    thread_safe = True  # safe to call from any thread — that's the point
    parallel_scans = False

    def __init__(self, inner: Engine) -> None:
        self._inner = inner
        self.name = inner.name  # results stay stamped with the real name

    @property
    def inner(self) -> Engine:
        return self._inner

    @property
    def supports_indexes(self) -> bool:  # type: ignore[override]
        return self._inner.supports_indexes

    def load_table(self, table: Table) -> None:
        with execution_slot(self._inner):
            self._inner.load_table(table)

    def unload_table(self, name: str) -> None:
        with execution_slot(self._inner):
            self._inner.unload_table(name)

    def table_schema(self, name: str) -> Schema | None:
        with execution_slot(self._inner):
            return self._inner.table_schema(name)

    def table_row_count(self, name: str) -> int | None:
        with execution_slot(self._inner):
            return self._inner.table_row_count(name)

    def table_version(self, name: str) -> int | None:
        with execution_slot(self._inner):
            return self._inner.table_version(name)

    def materialize_filtered(
        self, name, source: str, predicate, row_range=None
    ) -> bool:
        with execution_slot(self._inner):
            if row_range is None:  # legacy three-argument inners work
                return self._inner.materialize_filtered(
                    name, source, predicate
                )
            return self._inner.materialize_filtered(
                name, source, predicate, row_range
            )

    def create_index(self, table: str, column: str) -> None:
        with execution_slot(self._inner):
            self._inner.create_index(table, column)

    def execute(self, query: Query) -> ResultSet:
        with execution_slot(self._inner):
            return self._inner.execute(query)

    def close(self) -> None:
        self._inner.close()


def slot_gated(engine: Engine) -> Engine:
    """The engine itself when thread-safe, else a slot-gating wrapper."""
    if thread_safe(engine):
        return engine
    return SlotGatedEngine(engine)


__all__ = [
    "SlotGatedEngine",
    "execution_slot",
    "parallel_scans",
    "process_shard_engine",
    "serialization_lock",
    "slot_gated",
    "thread_safe",
]
