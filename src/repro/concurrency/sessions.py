"""Inter-session concurrency: overlap refreshes, cells, and query runs.

The scan-group executor overlaps work *within* one batch; this layer
overlaps *between* independent units of work:

- :func:`refresh_many` — concurrent ``DashboardState.refresh`` calls:
  a multi-dashboard deployment (one backend serving several analysts)
  refreshing many dashboards at once over one pool.
- :func:`run_tasks` — a generic ordered task map the harness uses to
  overlap engine x run grid cells, and the log replayer uses to overlap
  query re-execution.
- :func:`execute_all` — one query list on one engine, overlapped when
  the engine tolerates it, sequential otherwise.

Every function takes ``workers`` and degrades to today's sequential
behavior at ``workers=1`` (inline :class:`~repro.concurrency.pool.SerialPool`,
no threads). Results always come back in request order.

Engines that are not thread-safe are gated behind their
:func:`~repro.concurrency.policy.execution_slot`, so two concurrent
jobs on the same pure-Python store serialize while jobs on *different*
engines overlap — the multi-engine benchmark-grid shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

from repro.engine.interface import Engine, QueryResult
from repro.concurrency.policy import execution_slot, thread_safe
from repro.concurrency.pool import create_pool, map_ordered
from repro.sql.ast import Query

R = TypeVar("R")


@dataclass
class RefreshJob:
    """One dashboard refresh to schedule: a state, its engine, options.

    ``viz_ids=None`` refreshes every visualization. ``workers`` here is
    the *intra-batch* level passed down to the scan-group executor,
    ``shards`` the per-group row-range shard count
    (:mod:`repro.sharding`), and ``multiplan`` the combined-pass
    evaluation of unfiltered groups (:mod:`repro.engine.multiplan`);
    the pool running jobs concurrently is sized by
    :func:`refresh_many`'s own ``workers`` argument.
    """

    state: object  # DashboardState (duck-typed; avoids a circular import)
    engine: Engine
    viz_ids: Sequence[str] | None = None
    batch: bool = True
    workers: int = 1
    shards: int = 1
    multiplan: bool = False


def refresh_many(
    jobs: Sequence[RefreshJob], workers: int = 1
) -> list[dict[str, QueryResult]]:
    """Run many dashboard refreshes concurrently; results in job order.

    Each job produces exactly what ``job.state.refresh(job.engine, ...)``
    returns — timed results keyed by visualization id — and jobs touch
    disjoint states, so overlap cannot change any job's result, only
    the wall-clock of the whole set.
    """

    def run_job(job: RefreshJob) -> dict[str, QueryResult]:
        with execution_slot(job.engine):
            return job.state.refresh(
                job.engine,
                viz_ids=job.viz_ids,
                batch=job.batch,
                workers=job.workers,
                shards=job.shards,
                multiplan=job.multiplan,
            )

    return run_tasks([lambda j=job: run_job(j) for job in jobs], workers)


def run_tasks(tasks: Sequence[Callable[[], R]], workers: int = 1) -> list[R]:
    """Run zero-argument tasks over a pool; results in submission order.

    The generic overlap primitive for independent units (benchmark grid
    cells, replay chunks). Tasks are responsible for their own engine
    slots; :func:`refresh_many` shows the pattern.
    """
    pool = create_pool(workers)
    try:
        return map_ordered(pool, lambda task: task(), tasks)
    finally:
        pool.shutdown()


def execute_all(
    engine: Engine, queries: Sequence[Query], workers: int = 1
) -> list[QueryResult]:
    """Execute queries individually (no shared-scan optimization).

    The sequential-mode counterpart of ``execute_batch``: with
    ``workers > 1`` on a thread-safe engine, the per-query executions
    overlap and reassemble in request order; otherwise this is a plain
    loop. Results are byte-identical either way — the queries are
    independent reads.
    """
    if workers <= 1 or not thread_safe(engine) or len(queries) <= 1:
        return [engine.execute_timed(q) for q in queries]
    pool = create_pool(workers)
    try:
        return map_ordered(pool, engine.execute_timed, queries)
    finally:
        pool.shutdown()


__all__ = ["RefreshJob", "execute_all", "refresh_many", "run_tasks"]
