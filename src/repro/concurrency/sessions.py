"""Inter-session concurrency: overlap refreshes, cells, and query runs.

The scan-group executor overlaps work *within* one batch; this layer
overlaps *between* independent units of work:

- :func:`refresh_many` — concurrent ``DashboardState.refresh`` calls:
  a multi-dashboard deployment (one backend serving several analysts)
  refreshing many dashboards at once over one pool.
- :func:`run_tasks` — a generic ordered task map the harness uses to
  overlap engine x run grid cells, and the log replayer uses to overlap
  query re-execution.
- :func:`execute_all` — one query list on one engine, overlapped when
  the engine tolerates it, sequential otherwise.

Every function takes ``workers`` and degrades to today's sequential
behavior at ``workers=1`` (inline :class:`~repro.concurrency.pool.SerialPool`,
no threads). Results always come back in request order.

Engines that are not thread-safe are gated behind their
:func:`~repro.concurrency.policy.execution_slot`, so two concurrent
jobs on the same pure-Python store serialize while jobs on *different*
engines overlap — the multi-engine benchmark-grid shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

from repro.engine.interface import Engine, QueryResult
from repro.concurrency.policy import execution_slot, thread_safe
from repro.concurrency.pool import create_pool, map_ordered
from repro.sql.ast import Query

R = TypeVar("R")


@dataclass
class RefreshJob:
    """One dashboard refresh to schedule: a state, its engine, a policy.

    ``viz_ids=None`` refreshes every visualization. ``policy`` is the
    *intra-refresh* execution policy passed down to
    ``state.refresh`` (an :class:`~repro.execution.ExecutionPolicy`
    or preset name; ``None`` = the default shared-scan policy); the
    pool running jobs concurrently is sized by :func:`refresh_many`'s
    own ``workers`` argument. The per-knob fields are deprecated and
    map onto the equivalent policy at construction.
    """

    state: object  # DashboardState (duck-typed; avoids a circular import)
    engine: Engine
    viz_ids: Sequence[str] | None = None
    policy: object = None  # ExecutionPolicy | preset name | None
    batch: bool | None = None
    workers: int | None = None
    shards: int | None = None
    multiplan: bool | None = None

    def __post_init__(self) -> None:
        from repro.errors import ConfigError
        from repro.execution import (
            POLICY_KNOBS,
            ExecutionPolicy,
            coerce_policy,
            resolve_policy,
        )

        if self.policy is not None:
            resolved = coerce_policy(self.policy)
            # Knob fields equal to the policy's own values are its
            # mirrors riding along (``dataclasses.replace`` passes
            # every field back in) — only a *differing* value is a
            # real conflict.
            mismatched = sorted(
                k
                for k in POLICY_KNOBS
                if getattr(self, k) is not None
                and getattr(self, k) != getattr(resolved, k)
            )
            if mismatched:
                raise ConfigError(
                    f"RefreshJob: policy= conflicts with the deprecated "
                    f"{', '.join(mismatched)} field(s); set only policy"
                )
        else:
            resolved = resolve_policy(
                None,
                api="RefreshJob",
                default=ExecutionPolicy(),
                # One extra hop: the dataclass-generated __init__ sits
                # between the caller and __post_init__.
                stacklevel=4,
                batch=self.batch,
                workers=self.workers,
                shards=self.shards,
                multiplan=self.multiplan,
            )
        self.policy = resolved
        # The deprecated fields keep reading coherently.
        self.batch = resolved.batch
        self.workers = resolved.workers
        self.shards = resolved.shards
        self.multiplan = resolved.multiplan


def refresh_many(
    jobs: Sequence[RefreshJob], workers: int = 1
) -> list[dict[str, QueryResult]]:
    """Run many dashboard refreshes concurrently; results in job order.

    Each job produces exactly what ``job.state.refresh(job.engine, ...)``
    returns — timed results keyed by visualization id — and jobs touch
    disjoint states, so overlap cannot change any job's result, only
    the wall-clock of the whole set.
    """

    def run_job(job: RefreshJob) -> dict[str, QueryResult]:
        with execution_slot(job.engine):
            return job.state.refresh(
                job.engine, viz_ids=job.viz_ids, policy=job.policy
            )

    return run_tasks([lambda j=job: run_job(j) for job in jobs], workers)


def run_tasks(tasks: Sequence[Callable[[], R]], workers: int = 1) -> list[R]:
    """Run zero-argument tasks over a pool; results in submission order.

    The generic overlap primitive for independent units (benchmark grid
    cells, replay chunks). Tasks are responsible for their own engine
    slots; :func:`refresh_many` shows the pattern.
    """
    pool = create_pool(workers)
    try:
        return map_ordered(pool, lambda task: task(), tasks)
    finally:
        pool.shutdown()


def execute_all(
    engine: Engine, queries: Sequence[Query], workers: int = 1
) -> list[QueryResult]:
    """Execute queries individually (no shared-scan optimization).

    The sequential-mode counterpart of ``execute_batch``: with
    ``workers > 1`` on a thread-safe engine, the per-query executions
    overlap and reassemble in request order; otherwise this is a plain
    loop. Results are byte-identical either way — the queries are
    independent reads.
    """
    if workers <= 1 or not thread_safe(engine) or len(queries) <= 1:
        return [engine.execute_timed(q) for q in queries]
    pool = create_pool(workers)
    try:
        return map_ordered(pool, engine.execute_timed, queries)
    finally:
        pool.shutdown()


__all__ = ["RefreshJob", "execute_all", "refresh_many", "run_tasks"]
