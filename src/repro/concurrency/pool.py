"""Worker pools with a sequential degenerate case.

Two implementations share one surface (``submit`` returning a
:class:`concurrent.futures.Future`, plus ``shutdown``):

- :class:`SerialPool` executes the task inline at submit time and
  returns an already-resolved future. ``workers=1`` everywhere in the
  system resolves to this pool, so the default configuration runs the
  exact sequential code path — no threads are created, and interleaving
  cannot differ from pre-concurrency behavior.
- :class:`WorkerPool` wraps a :class:`~concurrent.futures.ThreadPoolExecutor`.

Result ordering is the caller's job; :func:`map_ordered` is the shared
helper: submit everything, gather in submission order, and only after
every task settled re-raise the first (submission-order) failure. The
wait-then-raise discipline matters — callers hand tasks shared output
slots, so no task may still be running when an exception propagates.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import ConfigError
from repro.telemetry import metrics as _metrics

T = TypeVar("T")
R = TypeVar("R")


class SerialPool:
    """Inline 'pool': submit executes immediately on the calling thread."""

    workers = 1

    def submit(self, fn: Callable[..., R], /, *args, **kwargs) -> "Future[R]":
        future: "Future[R]" = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except (KeyboardInterrupt, SystemExit):
            # Inline execution runs on the caller's thread: aborting
            # must abort *now*, not after the rest of the task list.
            raise
        except BaseException as exc:  # resolved future carries the error
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True) -> None:
        """Nothing to release."""

    def __enter__(self) -> "SerialPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


class WorkerPool:
    """A thread-backed pool for overlapping engine work.

    Threads suit this system's unit of work: SQLite releases the GIL
    inside the C library (true parallelism on multi-core hosts), and
    latency-bound deployments (client/server round trips) overlap even
    on one core. The pure-Python engines gain only cross-engine overlap
    — the per-engine policies in :mod:`repro.concurrency.policy` keep
    their tasks serialized.

    Threads are named deterministically (``repro-worker-0`` … in
    creation order), so trace timelines and per-worker gauges are
    stable identifiers across runs of the same pool size.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigError("worker pool needs at least one worker")
        self.workers = workers
        self._thread_ids = itertools.count()
        self._task_counts: dict[str, int] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=workers,
            thread_name_prefix="repro-worker",
            initializer=self._name_worker,
        )

    def _name_worker(self) -> None:
        # ThreadPoolExecutor spawns threads lazily but serially, so the
        # counter assigns 0..workers-1 in creation order.
        threading.current_thread().name = (
            f"repro-worker-{next(self._thread_ids)}"
        )

    def submit(self, fn: Callable[..., R], /, *args, **kwargs) -> "Future[R]":
        return self._executor.submit(self._run, fn, args, kwargs)

    def _run(self, fn, args, kwargs):
        # Each worker writes only its own key (dict ops are atomic
        # under the GIL), so the counts need no lock.
        name = threading.current_thread().name
        count = self._task_counts.get(name, 0) + 1
        self._task_counts[name] = count
        registry = _metrics.ACTIVE
        if registry is not None:
            registry.set_gauge("pool.worker_tasks", count, worker=name)
        return fn(*args, **kwargs)

    @property
    def task_counts(self) -> dict[str, int]:
        """Tasks executed so far, per worker thread (snapshot copy)."""
        return dict(self._task_counts)

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


#: Either pool flavor; they are duck-typed rather than subclassed.
Pool = SerialPool | WorkerPool


def create_pool(workers: int) -> Pool:
    """SerialPool for ``workers <= 1``, WorkerPool otherwise."""
    if workers <= 1:
        return SerialPool()
    return WorkerPool(workers)


def map_ordered(
    pool: Pool,
    fn: Callable[[T], R],
    items: Iterable[T],
) -> list[R]:
    """Apply ``fn`` over ``items`` on the pool; results in input order.

    With a :class:`SerialPool` this is a plain loop — an exception
    aborts at the failing item, exactly the pre-pool sequential
    behavior (no point draining a task list that already failed).

    On a :class:`WorkerPool`, all futures settle before anything is
    raised, so a failing task can never leave siblings running against
    shared state; the first failure *by submission order* then
    propagates (deterministic regardless of completion order).
    """
    if isinstance(pool, SerialPool):
        return [fn(item) for item in items]
    futures: Sequence[Future] = [pool.submit(fn, item) for item in items]
    results: list[R] = []
    first_error: BaseException | None = None
    for future in futures:
        try:
            results.append(future.result())
        except BaseException as exc:
            if first_error is None:
                first_error = exc
            results.append(None)  # type: ignore[arg-type]
    if first_error is not None:
        raise first_error
    return results


__all__ = ["Pool", "SerialPool", "WorkerPool", "create_pool", "map_ordered"]
