"""Process-backed shard execution: shared-memory exports + worker pool.

The thread backend (:mod:`repro.concurrency.executor`) overlaps scan
groups only on engines that release the GIL; the pure-Python stores run
as serialized queues, so ``workers > 1`` buys them nothing. This module
ships sharded scan-group work to *worker processes* instead:

1. **Export** — the parent exports a base table once per *generation*
   (:meth:`~repro.engine.interface.Engine.table_version`) using the
   engine's declared :attr:`process_shard_mode`:

   - ``"shm"`` (vectorstore/matstore): numeric and BOOLEAN columns as
     raw float64 bytes in :mod:`multiprocessing.shared_memory`
     segments — execution-equivalent because those engines' normal path
     converts through the same ``Table.array`` float64 view — plus one
     pickle blob per object column (STRING/DATE/TIMESTAMP).
   - ``"pickle"`` (rowstore): the whole column dict as one pickle blob
     in a single segment. The documented slow path — the rowstore's
     accumulators do exact Python-object arithmetic, so a lossy float64
     view would change results beyond 2^53.
   - ``"file"`` (sqlite): a database snapshot written with the backup
     API; workers restore it with ``from_snapshot`` (rowids preserved,
     so rowid-window shard ranges address the same rows as the parent).

2. **Attach** — each worker attaches once per export id and caches the
   attachment; per task it slices ``[start:stop)`` zero-copy, restores
   Python values, loads the shard slice into a fresh engine of the same
   kind, materializes the shard's filtered temp relation, and runs the
   group's partial queries locally.

3. **Merge** — workers return :class:`ShardPayload` partials; the
   parent merges them with the existing rollup algebra
   (:mod:`repro.sharding`), so byte-identity with serial execution
   carries over unchanged.

Generation safety: an export is keyed ``(engine uid, table, version)``
and every payload echoes its ``(export_id, version)``; the parent
refuses payloads whose generation does not match the job it dispatched,
so an append racing an in-flight run can never contribute
mixed-generation partials (it simply re-exports on the next run).

Lifecycle: segments are unlinked when their export is retired *and* no
dispatched task still references it (a pending-task refcount), on
:meth:`ProcessShardPool.shutdown`, and — as a last resort — by a
``weakref.finalize``/``atexit`` sweep so a parent exit leaves no
orphaned ``/dev/shm`` entries. Workers attach with ``track=False``
(falling back to ``resource_tracker.unregister`` before Python 3.13) so
a worker's exit can never unlink the parent's segments (bpo-38119).
"""

from __future__ import annotations

import atexit
import contextlib
import faulthandler
import itertools
import os
import pickle
import tempfile
import threading
import time
import weakref
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool, ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing import shared_memory as _shm

import numpy as np

from repro.engine.interface import Engine, ResultSet
from repro.engine.table import Schema, Table
from repro.engine.types import DataType
from repro.errors import ExecutionError
from repro.sql.ast import Query

#: Upper bound on worker processes for the shared pool (mirrors the
#: thread-side AUTO_MAX_WORKERS cap).
MAX_PROC_WORKERS = 8

#: Fault-injection hook for the test suite: ``"kill"`` or
#: ``"kill:<table>"`` makes a worker die mid-shard with ``os._exit``.
#: Read per task in the worker; inherited from the parent environment
#: at spawn time.
FAULT_ENV = "REPRO_PROCPOOL_FAULT"

_SEGMENT_SEQ = itertools.count()
_UID_SEQ = itertools.count()


# -- wire format -------------------------------------------------------------


@dataclass(frozen=True)
class ColumnSegment:
    """One exported column: where it lives and how to decode it."""

    name: str  # column name
    kind: str  # "f8" (raw float64 rows) | "obj" (pickle blob)
    segment: str  # shared-memory segment name
    size: int  # blob bytes for "obj"; unused for "f8"


@dataclass(frozen=True)
class ExportSpec:
    """Picklable description of one exported table generation."""

    export_id: str
    engine: str  # registry name; workers create_engine() this
    mode: str  # "shm" | "pickle" | "file"
    table: str
    version: int
    num_rows: int
    schema: Schema
    columns: tuple[ColumnSegment, ...] = ()
    segment: str | None = None  # "pickle" mode: the single blob segment
    size: int = 0  # "pickle" mode: blob bytes
    path: str | None = None  # "file" mode: snapshot file


@dataclass
class ShardJob:
    """One unit of worker work: a row-range shard of one scan group."""

    export_id: str
    version: int
    table: str
    shard: int
    start: int
    stop: int
    temp: str
    queries: tuple[Query, ...]
    predicate: object | None
    #: Serialized parent span context ({"span_id": ...}) when tracing;
    #: its presence tells the worker to record span tuples.
    trace: dict | None = None


@dataclass
class ShardPayload:
    """What a worker sends back: partials plus provenance and timings."""

    export_id: str
    version: int
    shard: int
    pid: int
    partials: list[ResultSet]
    partial_ms: list[float]  # per-query durations, aligned with partials
    scan_ms: float
    #: (name, start_offset_ms, end_offset_ms, attrs) tuples relative to
    #: task start; the parent re-anchors them under the shard span.
    spans: list = field(default_factory=list)


# -- parent side -------------------------------------------------------------


class _Export:
    """Parent-side record of one live export generation."""

    __slots__ = ("spec", "segments", "pending", "retired")

    def __init__(
        self, spec: ExportSpec, segments: list[_shm.SharedMemory]
    ) -> None:
        self.spec = spec
        self.segments = segments
        self.pending = 0  # dispatched-but-unfinished tasks
        self.retired = False


def _sweep(
    live: dict[str, _shm.SharedMemory], files: set[str], dirs: set[str]
) -> None:
    """Last-resort cleanup shared by finalize and shutdown."""
    for seg in list(live.values()):
        with contextlib.suppress(OSError):
            seg.close()
            seg.unlink()
    live.clear()
    for path in list(files):
        with contextlib.suppress(OSError):
            os.remove(path)
    files.clear()
    for path in list(dirs):
        with contextlib.suppress(OSError):
            os.rmdir(path)
    dirs.clear()


class ProcessShardPool:
    """Exports tables to shared memory and runs shard jobs in processes.

    One pool serves any number of engines and executors; exports are
    keyed per (engine, table) and rebuilt only when the table's
    generation moves. The pool survives worker death: a
    ``BrokenProcessPool`` surfaces as a clean
    :class:`~repro.errors.ExecutionError` for the affected run and the
    executor is rebuilt for the next submit.
    """

    def __init__(self, workers: int | None = None) -> None:
        if workers is None:
            workers = max(2, min(os.cpu_count() or 1, MAX_PROC_WORKERS))
        self.workers = workers
        self._ctx = get_context("spawn")  # fork is unsafe with threads
        self._executor: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()
        self._exports: dict[tuple[int, str], _Export] = {}
        self._live: dict[str, _shm.SharedMemory] = {}
        self._files: set[str] = set()
        self._dirs: set[str] = set()
        self._snapshot_dir: str | None = None
        self._closed = False
        self._finalizer = weakref.finalize(
            self, _sweep, self._live, self._files, self._dirs
        )

    # -- exports -------------------------------------------------------------

    def export_table(self, engine: Engine, table: str):
        """The current export of ``table``, building it if stale/absent.

        Returns ``None`` when the engine cannot export this table (no
        shard mode, unknown generation/schema/row count, or no backing
        storage for its mode) — callers then degrade to thread-backed
        execution.
        """
        mode = getattr(engine, "process_shard_mode", None)
        if mode is None:
            return None
        version = engine.table_version(table)
        schema = engine.table_schema(table)
        rows = engine.table_row_count(table)
        if version is None or schema is None or rows is None:
            return None
        uid = self._engine_uid(engine)
        key = (uid, table)
        with self._lock:
            if self._closed:
                raise ExecutionError("process shard pool is shut down")
            current = self._exports.get(key)
            if current is not None:
                if current.spec.version == version:
                    return current
                self._retire_locked(current)
            export = self._build_export(
                engine, uid, mode, table, version, rows, schema
            )
            if export is not None:
                self._exports[key] = export
            return export

    def _engine_uid(self, engine: Engine) -> int:
        # Stamped on the instance (not keyed by id()) so a recycled
        # object address can never alias a dead engine's exports.
        uid = getattr(engine, "_procpool_uid", None)
        if uid is None:
            uid = next(_UID_SEQ)
            engine._procpool_uid = uid  # type: ignore[attr-defined]
        return uid

    def _build_export(
        self,
        engine: Engine,
        uid: int,
        mode: str,
        table: str,
        version: int,
        rows: int,
        schema: Schema,
    ):
        export_id = f"u{uid}:{table}:{version}"
        if mode == "file":
            snapshot_to = getattr(engine, "snapshot_to", None)
            if snapshot_to is None:
                return None
            path = os.path.join(
                self._snapshots_locked(), f"export_{uid}_{version}.db"
            )
            snapshot_to(path)
            self._files.add(path)
            spec = ExportSpec(
                export_id, engine.name, mode, table, version, rows, schema,
                path=path,
            )
            return _Export(spec, [])
        source = engine.table_object(table)
        if source is None:
            return None
        segments: list[_shm.SharedMemory] = []
        try:
            if mode == "shm":
                columns = []
                for coldef in schema:
                    raw = (
                        coldef.dtype.is_numeric
                        or coldef.dtype is DataType.BOOLEAN
                    )
                    if raw:
                        arr = source.array(coldef.name)
                        seg = self._create_segment_locked(max(arr.nbytes, 1))
                        if arr.nbytes:
                            view = np.ndarray(
                                arr.shape, dtype=np.float64, buffer=seg.buf
                            )
                            view[:] = arr
                        columns.append(
                            ColumnSegment(coldef.name, "f8", seg.name, 0)
                        )
                    else:
                        blob = pickle.dumps(
                            source.column(coldef.name),
                            protocol=pickle.HIGHEST_PROTOCOL,
                        )
                        seg = self._create_segment_locked(max(len(blob), 1))
                        seg.buf[: len(blob)] = blob
                        columns.append(
                            ColumnSegment(
                                coldef.name, "obj", seg.name, len(blob)
                            )
                        )
                    segments.append(seg)
                spec = ExportSpec(
                    export_id, engine.name, mode, table, version, rows,
                    schema, tuple(columns),
                )
            elif mode == "pickle":
                blob = pickle.dumps(
                    {n: source.column(n) for n in schema.names},
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                seg = self._create_segment_locked(max(len(blob), 1))
                seg.buf[: len(blob)] = blob
                segments.append(seg)
                spec = ExportSpec(
                    export_id, engine.name, mode, table, version, rows,
                    schema, segment=seg.name, size=len(blob),
                )
            else:
                raise ExecutionError(
                    f"unknown process shard mode {mode!r} on engine "
                    f"{engine.name!r}"
                )
        except BaseException:
            for seg in segments:
                self._unlink_locked(seg.name)
            raise
        return _Export(spec, segments)

    def _create_segment_locked(self, size: int) -> _shm.SharedMemory:
        name = f"repro_{os.getpid()}_{next(_SEGMENT_SEQ)}"
        seg = _shm.SharedMemory(name=name, create=True, size=size)
        self._live[name] = seg
        return seg

    def _snapshots_locked(self) -> str:
        if self._snapshot_dir is None:
            self._snapshot_dir = tempfile.mkdtemp(prefix="repro-procpool-")
            self._dirs.add(self._snapshot_dir)
        return self._snapshot_dir

    def _retire_locked(self, export: _Export) -> None:
        export.retired = True
        if export.pending == 0:
            self._release_locked(export)

    def _release_locked(self, export: _Export) -> None:
        for seg in export.segments:
            self._unlink_locked(seg.name)
        export.segments = []
        if export.spec.path is not None:
            with contextlib.suppress(OSError):
                os.remove(export.spec.path)
            self._files.discard(export.spec.path)

    def _unlink_locked(self, name: str) -> None:
        seg = self._live.pop(name, None)
        if seg is None:
            return
        with contextlib.suppress(OSError):
            seg.close()
            seg.unlink()

    def segment_names(self) -> list[str]:
        """Names of every live shared-memory segment (for leak probes)."""
        with self._lock:
            return sorted(self._live)

    def release_engine(self, engine: Engine) -> int:
        """Retire every export owned by ``engine``; returns the count.

        Segments unlink immediately unless a dispatched task still
        references them (the pending-task refcount defers the unlink to
        task completion). An engine that never exported — no stamped
        uid — is a no-op, so callers can release unconditionally on
        close paths.
        """
        uid = getattr(engine, "_procpool_uid", None)
        if uid is None:
            return 0
        with self._lock:
            keys = [key for key in self._exports if key[0] == uid]
            for key in keys:
                self._retire_locked(self._exports.pop(key))
        return len(keys)

    # -- dispatch ------------------------------------------------------------

    def submit(self, export: _Export, job: ShardJob) -> Future:
        """Dispatch one shard job against an export; returns its future.

        Recovers once from a broken worker pool (the executor is
        discarded and respawned); a second failure propagates.
        """
        with self._lock:
            if self._closed:
                raise ExecutionError("process shard pool is shut down")
            if export.retired:
                raise ExecutionError(
                    "mixed-generation partials: export "
                    f"{export.spec.export_id!r} was retired before dispatch"
                )
            export.pending += 1
            executor = self._executor_locked()
        try:
            try:
                future = executor.submit(_worker_run, export.spec, job)
            except BrokenProcessPool:
                with self._lock:
                    self._discard_executor_locked()
                    executor = self._executor_locked()
                try:
                    future = executor.submit(_worker_run, export.spec, job)
                except BrokenProcessPool as exc:
                    # Never leak the raw concurrent.futures type: the
                    # caller's contract is ExecutionError either way.
                    raise ExecutionError(
                        f"process shard worker died executing shard "
                        f"{job.shard} of table {job.table!r}; pool "
                        f"respawns on next run"
                    ) from exc
        except BaseException:
            self._task_done(export)
            raise
        future.add_done_callback(lambda _f: self._task_done(export))
        return future

    def collect(
        self, future: Future, job: ShardJob, timeout: float | None = None
    ) -> ShardPayload:
        """The payload of a dispatched job, with fault translation.

        A dead worker (``BrokenProcessPool``) becomes a clean
        :class:`ExecutionError` and marks the executor for rebuild; a
        payload from a different export generation than the job was
        dispatched against is refused.
        """
        try:
            payload = future.result(timeout)
        except BrokenProcessPool as exc:
            with self._lock:
                self._discard_executor_locked()
            raise ExecutionError(
                f"process shard worker died executing shard {job.shard} "
                f"of table {job.table!r}; pool respawns on next run"
            ) from exc
        if (
            payload.export_id != job.export_id
            or payload.version != job.version
        ):
            raise ExecutionError(
                "mixed-generation partials: shard "
                f"{job.shard} of {job.table!r} answered for export "
                f"{payload.export_id!r} v{payload.version}, expected "
                f"{job.export_id!r} v{job.version}"
            )
        return payload

    def _task_done(self, export: _Export) -> None:
        with self._lock:
            export.pending -= 1
            if export.retired and export.pending == 0:
                self._release_locked(export)

    def _executor_locked(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=self._ctx,
                initializer=_worker_init,
            )
        return self._executor

    def _discard_executor_locked(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    # -- lifecycle -----------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop workers and unlink every export. Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executor, self._executor = self._executor, None
            exports = list(self._exports.values())
            self._exports.clear()
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=True)
        with self._lock:
            for export in exports:
                self._release_locked(export)
        _sweep(self._live, self._files, self._dirs)
        self._snapshot_dir = None
        self._finalizer.detach()

    def __enter__(self) -> "ProcessShardPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


# -- shared pool -------------------------------------------------------------

_SHARED: ProcessShardPool | None = None
_SHARED_LOCK = threading.Lock()
_ATEXIT_ARMED = False


def shared_process_pool() -> ProcessShardPool:
    """The module-level pool shared by all executors.

    Spawning worker processes costs hundreds of milliseconds, so the
    pool is a long-lived singleton amortized across runs; it is torn
    down at interpreter exit (or explicitly with
    :func:`shutdown_shared_pool`).
    """
    global _SHARED, _ATEXIT_ARMED
    with _SHARED_LOCK:
        if _SHARED is None:
            _SHARED = ProcessShardPool()
            if not _ATEXIT_ARMED:
                atexit.register(shutdown_shared_pool)
                _ATEXIT_ARMED = True
        return _SHARED


def shutdown_shared_pool() -> None:
    """Tear down the shared pool (a later use lazily recreates it)."""
    global _SHARED
    with _SHARED_LOCK:
        pool, _SHARED = _SHARED, None
    if pool is not None:
        pool.shutdown()


def release_engine_exports(engine: Engine) -> int:
    """Release the shared pool's exports for one engine's whole stack.

    Walks the wrapper chain (``CachedEngine.inner`` and friends) so a
    session closing a wrapped engine releases the exports stamped on
    whichever layer actually supports process shards. The worker pool
    itself stays warm — only this engine's ``/dev/shm`` segments and
    snapshot files go. No-op when the shared pool was never created.
    """
    with _SHARED_LOCK:
        pool = _SHARED
    if pool is None:
        return 0
    released = 0
    seen: set[int] = set()
    obj: object = engine
    while obj is not None and id(obj) not in seen:
        seen.add(id(obj))
        released += pool.release_engine(obj)  # type: ignore[arg-type]
        obj = getattr(obj, "inner", None)
    return released


# -- worker side -------------------------------------------------------------

#: Per-process attachment cache, keyed by export id. Stale generations
#: of the same (engine, table) are evicted when a newer export arrives.
_ATTACHED: dict[str, "_Attachment"] = {}


def _worker_init() -> None:
    # Satellite hang-guard support: a stuck worker dumps stacks when
    # the parent-side faulthandler timeout fires it a fatal signal.
    faulthandler.enable()


def _attach_segment(name: str) -> _shm.SharedMemory:
    """Attach to a parent-owned segment without tracker registration.

    Registering an *attached* segment with the resource tracker makes
    worker exit unlink the parent's memory (bpo-38119). Python 3.13+
    exposes ``track=False``; earlier versions need the unregister
    workaround.
    """
    try:
        return _shm.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track kwarg
        # Suppressing registration beats unregistering after the fact:
        # the tracker process is shared with the parent, so a worker's
        # unregister would erase the parent's own (legitimate, create
        # -time) registration and the parent's later unlink would spew
        # KeyError tracebacks from the tracker. Workers run one task
        # at a time on their main thread, so the swap cannot race.
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return _shm.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _pythonize(values: np.ndarray, dtype: DataType) -> list:
    """Restore Python column values from a float64 shard slice.

    Inverse of :meth:`Table.array`'s numeric encoding: NaN back to
    NULL, INTEGER back to int, BOOLEAN back to bool.
    """
    out: list[object] = []
    if dtype is DataType.INTEGER:
        for v in values.tolist():
            out.append(None if v != v else int(v))
    elif dtype is DataType.BOOLEAN:
        for v in values.tolist():
            out.append(None if v != v else bool(int(v)))
    else:
        for v in values.tolist():
            out.append(None if v != v else v)
    return out


class _Attachment:
    """Worker-side view of one export generation."""

    def __init__(self, spec: ExportSpec) -> None:
        self.spec = spec
        self._segments: list[_shm.SharedMemory] = []
        self._columns: dict[str, object] = {}
        self.engine: Engine | None = None
        if spec.mode == "shm":
            for col in spec.columns:
                seg = _attach_segment(col.segment)
                if col.kind == "f8":
                    # Keep the segment open: the array is a zero-copy
                    # view over its buffer.
                    self._segments.append(seg)
                    if spec.num_rows:
                        arr = np.ndarray(
                            (spec.num_rows,), dtype=np.float64, buffer=seg.buf
                        )
                    else:
                        arr = np.empty(0, dtype=np.float64)
                    self._columns[col.name] = arr
                else:
                    self._columns[col.name] = pickle.loads(
                        bytes(seg.buf[: col.size])
                    )
                    seg.close()  # blob decoded; nothing left to view
        elif spec.mode == "pickle":
            assert spec.segment is not None
            seg = _attach_segment(spec.segment)
            self._columns = pickle.loads(bytes(seg.buf[: spec.size]))
            seg.close()
        elif spec.mode == "file":
            from repro.engine.registry import create_engine

            probe = create_engine(spec.engine)
            restore = getattr(type(probe), "from_snapshot", None)
            probe.close()
            if restore is None:
                raise ExecutionError(
                    f"engine {spec.engine!r} declares file-mode process "
                    "shards but has no from_snapshot()"
                )
            self.engine = restore(
                spec.path, spec.table, spec.schema, spec.num_rows
            )
        else:
            raise ExecutionError(
                f"unknown process shard mode {spec.mode!r}"
            )

    def shard_columns(self, start: int, stop: int) -> dict[str, list]:
        columns: dict[str, list] = {}
        for coldef in self.spec.schema:
            col = self._columns[coldef.name]
            if isinstance(col, np.ndarray):
                columns[coldef.name] = _pythonize(
                    col[start:stop], coldef.dtype
                )
            else:
                columns[coldef.name] = col[start:stop]
        return columns

    def close(self) -> None:
        for seg in self._segments:
            with contextlib.suppress(OSError):
                seg.close()
        self._segments = []
        if self.engine is not None:
            self.engine.close()
            self.engine = None


def _attachment_for(spec: ExportSpec) -> "_Attachment":
    cached = _ATTACHED.get(spec.export_id)
    if cached is not None:
        return cached
    # A new generation of the same (engine, table) supersedes any
    # cached older one — evict so stale segments are not held open.
    prefix = spec.export_id.rsplit(":", 1)[0] + ":"
    for key in [k for k in _ATTACHED if k.startswith(prefix)]:
        _ATTACHED.pop(key).close()
    attachment = _Attachment(spec)
    _ATTACHED[spec.export_id] = attachment
    return attachment


def _maybe_fault(job: ShardJob) -> None:
    directive = os.environ.get(FAULT_ENV)
    if not directive:
        return
    kind, _, target = directive.partition(":")
    if target and target != job.table:
        return
    if kind == "kill":
        os._exit(1)


def _worker_run(spec: ExportSpec, job: ShardJob) -> ShardPayload:
    """Execute one shard job inside a worker process."""
    _maybe_fault(job)
    task_start = time.perf_counter()
    spans: list = []

    def mark(name: str, t0: float, **attrs: object) -> None:
        if job.trace is None:
            return
        now = time.perf_counter()
        spans.append(
            (
                name,
                (t0 - task_start) * 1000.0,
                (now - task_start) * 1000.0,
                attrs,
            )
        )

    attachment = _attachment_for(spec)
    scan_start = time.perf_counter()
    if spec.mode == "file":
        engine = attachment.engine
        assert engine is not None
        ok = engine.materialize_filtered(
            job.temp, spec.table, job.predicate, (job.start, job.stop)
        )
    else:
        from repro.engine.registry import create_engine

        engine = create_engine(spec.engine)
        engine.load_table(
            Table(
                spec.table,
                spec.schema,
                attachment.shard_columns(job.start, job.stop),
            )
        )
        # The slice already restricts rows to the shard window, so only
        # the predicate remains to apply.
        ok = engine.materialize_filtered(job.temp, spec.table, job.predicate)
    if not ok:
        raise ExecutionError(
            f"engine {spec.engine!r} failed to materialize shard "
            f"{job.shard} of table {spec.table!r} in a worker process"
        )
    scan_ms = (time.perf_counter() - scan_start) * 1000.0
    mark("shard_materialize", scan_start, rows=f"{job.start}:{job.stop}")

    partials: list[ResultSet] = []
    partial_ms: list[float] = []
    try:
        for index, query in enumerate(job.queries):
            query_start = time.perf_counter()
            timed = engine.execute_timed(query)
            mark(f"partial[{index}]", query_start)
            partials.append(timed.result)
            partial_ms.append(timed.duration_ms)
    finally:
        # File-mode engines are cached across tasks; drop the temp so
        # it cannot collide with the next task's unique name (cheap
        # hygiene either way).
        with contextlib.suppress(Exception):
            engine.unload_table(job.temp)
        if spec.mode != "file":
            engine.close()
    return ShardPayload(
        export_id=spec.export_id,
        version=spec.version,
        shard=job.shard,
        pid=os.getpid(),
        partials=partials,
        partial_ms=partial_ms,
        scan_ms=scan_ms,
        spans=spans,
    )


__all__ = [
    "FAULT_ENV",
    "MAX_PROC_WORKERS",
    "ColumnSegment",
    "ExportSpec",
    "ProcessShardPool",
    "ShardJob",
    "ShardPayload",
    "release_engine_exports",
    "shared_process_pool",
    "shutdown_shared_pool",
]
