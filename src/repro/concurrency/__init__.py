"""Concurrent execution of scan groups, refreshes, and sessions.

PR 1's batch executor collapsed a dashboard refresh into a handful of
independent :class:`~repro.engine.batch.ScanGroup` units; this package
is the next rung of the scale-out progression (batch -> **async** ->
sharded): it overlaps those independent units — and whole refreshes
across dashboards and engines — over a worker pool while keeping every
result byte-identical to sequential execution.

Layers, bottom up:

- :mod:`repro.concurrency.pool` — the worker pool. ``workers=1``
  resolves to an inline :class:`~repro.concurrency.pool.SerialPool`, so
  the default path is *exactly* today's sequential execution (no
  threads, no queues).
- :mod:`repro.concurrency.policy` — per-engine execution policies.
  SQLite executes scan groups with true thread parallelism (per-thread
  connections release the GIL inside the C library); the pure-Python
  stores are GIL-bound and run as a serialized task queue, overlapping
  only across engines and sessions.
- :mod:`repro.concurrency.singleflight` — concurrent identical
  computations collapse to one; the cache hardening in
  :mod:`repro.engine.cache` builds on it.
- :mod:`repro.concurrency.executor` —
  :class:`~repro.concurrency.executor.ScanGroupExecutor`, the batch
  executor that schedules one batch's scan groups over the pool and
  reassembles results in request order.
- :mod:`repro.concurrency.sessions` — the inter-session layer:
  overlapping whole dashboard refreshes
  (:func:`~repro.concurrency.sessions.refresh_many`) and generic
  ordered task maps used by the harness and log replay.

Determinism contract: for any ``workers`` value, every public entry
point returns results positionally identical to its sequential
counterpart. Only wall-clock and internal scheduling change.
"""

from repro.concurrency.executor import ScanGroupExecutor
from repro.concurrency.pool import SerialPool, WorkerPool, create_pool, map_ordered
from repro.concurrency.policy import (
    SlotGatedEngine,
    execution_slot,
    parallel_scans,
    slot_gated,
    thread_safe,
)
from repro.concurrency.sessions import (
    RefreshJob,
    execute_all,
    refresh_many,
    run_tasks,
)
from repro.concurrency.singleflight import SingleFlight

__all__ = [
    "RefreshJob",
    "ScanGroupExecutor",
    "SerialPool",
    "SingleFlight",
    "SlotGatedEngine",
    "WorkerPool",
    "create_pool",
    "execute_all",
    "execution_slot",
    "map_ordered",
    "parallel_scans",
    "refresh_many",
    "run_tasks",
    "slot_gated",
    "thread_safe",
]
