"""Concurrent execution of scan groups, shards, refreshes, and sessions.

The batch executor (PR 1) collapsed a dashboard refresh into a handful
of independent :class:`~repro.engine.batch.ScanGroup` units; this
package overlaps those units — and whole refreshes across dashboards
and engines — over a worker pool, and (with the third rung of the
scale-out progression, batch -> async -> **sharded**) schedules the
per-shard scan tasks that :mod:`repro.sharding` splits each group into.
Every result stays byte-identical to sequential execution.

Layers, bottom up:

- :mod:`repro.concurrency.pool` — the worker pool. ``workers=1``
  resolves to an inline :class:`~repro.concurrency.pool.SerialPool`, so
  the default path is *exactly* the sequential execution (no threads,
  no queues).
- :mod:`repro.concurrency.policy` — per-engine execution policies.
  SQLite executes scan groups with true thread parallelism (per-thread
  connections release the GIL inside the C library); the pure-Python
  stores are GIL-bound and run as a serialized task queue, overlapping
  only across engines and sessions.
- :mod:`repro.concurrency.singleflight` — concurrent identical
  computations collapse to one; the cache hardening in
  :mod:`repro.engine.cache` builds on it.
- :mod:`repro.concurrency.executor` —
  :class:`~repro.concurrency.executor.ScanGroupExecutor`, the batch
  executor that schedules one batch's scan groups — or, with
  ``shards > 1``, one task per (group, shard) plus a rollup merge —
  over the pool and reassembles results in request order.
- :mod:`repro.concurrency.sessions` — the inter-session layer:
  overlapping whole dashboard refreshes
  (:func:`~repro.concurrency.sessions.refresh_many`) and generic
  ordered task maps used by the harness and log replay.

Determinism contract: for any ``(workers, shards)`` combination, every
public entry point returns results positionally identical to its
sequential counterpart. Only wall-clock and internal scheduling change.

Thread-safety contract, in one place (each module documents its own
piece): engine calls are *leaf-granular* — a non-thread-safe engine's
per-instance :func:`~repro.concurrency.policy.execution_slot` is held
for exactly one call, never across a wait on another thread; caches
close the compute/invalidate race with *epoch guards* (a result
computed against pre-mutation data is never stored after the mutation);
concurrent identical work *single-flights* into one computation; and
SQLite runs worker threads on *per-thread replica connections*
snapshotted from the primary, invalidated by a generation counter and
pinned while a task's temp relations are live.
"""

from repro.concurrency.executor import ScanGroupExecutor
from repro.concurrency.pool import SerialPool, WorkerPool, create_pool, map_ordered
from repro.concurrency.policy import (
    SlotGatedEngine,
    execution_slot,
    parallel_scans,
    process_shard_engine,
    slot_gated,
    thread_safe,
)
from repro.concurrency.procpool import (
    ProcessShardPool,
    shared_process_pool,
    shutdown_shared_pool,
)
from repro.concurrency.sessions import (
    RefreshJob,
    execute_all,
    refresh_many,
    run_tasks,
)
from repro.concurrency.singleflight import SingleFlight

__all__ = [
    "ProcessShardPool",
    "RefreshJob",
    "ScanGroupExecutor",
    "SerialPool",
    "SingleFlight",
    "SlotGatedEngine",
    "WorkerPool",
    "create_pool",
    "execute_all",
    "execution_slot",
    "map_ordered",
    "parallel_scans",
    "process_shard_engine",
    "refresh_many",
    "run_tasks",
    "shared_process_pool",
    "shutdown_shared_pool",
    "slot_gated",
    "thread_safe",
]
