"""Concurrent scan-group scheduling over a worker pool.

:class:`ScanGroupExecutor` extends the shared-scan
:class:`~repro.engine.batch.BatchExecutor` with a scheduling layer: the
independent :class:`~repro.engine.batch.ScanGroup` units of one batch
become tasks. Engines whose scans genuinely overlap
(``parallel_scans`` — SQLite with its per-thread connections) get their
groups dispatched across a worker pool; everything else runs as a
serialized task queue in submission order, which is byte-for-byte the
sequential executor.

With ``shards > 1`` the unit of work shrinks from one task per group to
**one task per (group, shard)**: each shardable group's base scan is
split across contiguous row-range shards (:mod:`repro.sharding`), the
per-shard scan tasks schedule over the same pool alongside unshardable
groups' whole-group tasks, and once a group's shards have all settled a
merge step rolls the partial aggregates up into the final member
results. ``shards=1`` is byte-for-byte the pre-existing path — the
sharded code is not even reached.

With ``multiplan=True`` the multi-plan tier
(:mod:`repro.engine.multiplan`) folds a group's fusion classes into
one combined pass: unsharded groups run it inside their ordinary group
task (same scheduling, one engine execution instead of one per class),
and sharded groups run one combined pass per shard
(:class:`~repro.sharding.executor.MultiPlanShardedRun`) whose finest
partials roll up through the same merge machinery. ``multiplan=False``
(the default) never reaches the evaluator.

Determinism: each group (or its merge step) writes only its own
members' positions in the shared results list, and stats merge in
submission order after every task settles — so results and statistics
are identical for every ``(workers, shards)`` combination, whatever the
completion interleaving was.

Thread-safety contract (what PR 2 established, spelled out):

- **Leaf-granular slots.** A non-thread-safe engine is wrapped so
  every *individual* call into it serializes through its
  :func:`~repro.concurrency.policy.execution_slot` — never held across
  anything that can block on another thread (a coarser group-wide hold
  deadlocks against the cache's single-flight: one thread waits on a
  flight while holding the slot its leader needs). Interleaving leaf
  calls across groups and shards is safe because shared-scan and
  partial-rollup temp relations carry unique per-execution names.
- **Single-flight.** An optional
  :class:`~repro.concurrency.singleflight.SingleFlight` collapses
  concurrent *identical* groups (same table, same predicate, same
  member set — two sessions refreshing the same dashboard at once)
  into one computation, with followers served from the scan-group
  cache the leader populated. Sharded groups skip the flight — their
  work is a task fan-out, not a single closure — and rely on the
  epoch-guarded scan-group cache alone to absorb repeats.
- **Epoch guards.** Every scan-group cache store carries the epoch
  captured before the group's first engine call; a store whose table
  was invalidated mid-compute is dropped, never cached (the "lost
  invalidation" race the stress tests guard).
- **Per-thread replicas.** SQLite executes worker-thread calls on
  private replica connections snapshotted from the primary (see
  :mod:`repro.engine.sqlite_engine`), so concurrent scans share no
  SQLite-side state; a generation counter refreshes replicas after
  base-table loads, and in-flight temps pin their replica until the
  task finishes.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.engine.batch import (
    BatchExecutor,
    BatchResult,
    BatchStats,
    ScanGroup,
)
from repro.engine.interface import Engine, QueryResult
from repro.concurrency.policy import (
    parallel_scans,
    process_shard_engine,
    slot_gated,
)
from repro.concurrency.pool import WorkerPool, map_ordered
from repro.concurrency.singleflight import SingleFlight
from repro.errors import ExecutionError
from repro.sql.ast import Query
from repro.telemetry import metrics as _metrics
from repro.telemetry import trace as _trace


class ScanGroupExecutor(BatchExecutor):
    """Batch executor that overlaps independent scan groups and shards.

    A drop-in superset of :class:`~repro.engine.batch.BatchExecutor`:
    ``run(queries)`` with ``workers=1`` takes the exact sequential code
    path (no pool, no threads), and ``shards=1`` keeps one task per
    group; ``shards > 1`` splits each shardable group into one scan
    task per row-range shard plus a partial-aggregate merge
    (:mod:`repro.sharding`). The executor itself is safe to share
    across threads — concurrent ``run`` calls from overlapping
    refreshes are supported and deduplicated via ``group_flight``
    (unsharded groups only; sharded repeats are absorbed by the
    scan-group cache instead).
    """

    def __init__(
        self,
        engine: Engine,
        policy=None,
        *,
        group_cache=None,
        fallback_engine: Engine | None = None,
        group_flight: SingleFlight | None = None,
        proc_pool=None,
        workers: int | None = None,
        shards: int | None = None,
        multiplan: bool | None = None,
    ) -> None:
        from repro.execution import ExecutionPolicy, resolve_policy

        policy = resolve_policy(
            policy,
            api="ScanGroupExecutor",
            default=ExecutionPolicy(),
            workers=workers,
            shards=shards,
            multiplan=multiplan,
        )
        engine = slot_gated(engine)
        super().__init__(
            engine,
            policy,
            group_cache=group_cache,
            fallback_engine=fallback_engine,
        )
        self.workers = policy.workers
        #: Row-range shards per shardable scan group; ``1`` keeps the
        #: one-task-per-group execution untouched.
        self.shards = policy.shards
        #: Collapses concurrent identical groups; only effective with a
        #: group cache (followers are served from what the leader
        #: stored there).
        self._group_flight = group_flight
        #: Process pool override for ``backend="processes"``; ``None``
        #: uses the long-lived module-shared pool (which this executor
        #: does NOT own and never shuts down). Tests inject a fresh
        #: pool here to isolate fault-injection blast radius.
        self._proc_pool = proc_pool
        # BatchExecutor's cumulative stats and key memo are shared
        # mutable state; concurrent run() calls guard them here.
        self._shared_lock = threading.Lock()
        self._pool: WorkerPool | None = None

    def _pool_for(self, workers: int) -> WorkerPool:
        """The executor's persistent pool (created on first parallel run).

        Persistence matters beyond thread-start cost: SQLite replicas
        are per-thread snapshots, so a long-lived executor reusing its
        threads amortizes one database copy across many refreshes
        instead of re-snapshotting on every call. The pool is sized by
        the first parallel request; later larger requests share it
        (capped) rather than racing a resize.
        """
        with self._shared_lock:
            if self._pool is None:
                self._pool = WorkerPool(workers)
            return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        with self._shared_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()

    def run(
        self,
        queries: list[Query],
        policy=None,
        *,
        workers: int | None = None,
        shards: int | None = None,
        multiplan: bool | None = None,
    ) -> BatchResult:
        """Execute one batch; results align positionally with input.

        ``policy`` overrides the constructor's policy for this call
        (``None`` keeps it); the per-knob keywords are the deprecated
        equivalent. The override rides along per call rather than
        mutating executor state, so concurrent ``run`` calls with
        different policies stay independent. ``shards <= 1`` takes the
        exact pre-existing one-task-per-group path;
        ``multiplan=False`` likewise never reaches the combined-pass
        evaluator.
        """
        from repro.execution import resolve_policy

        # The constructor's policy is the per-call default, so a bare
        # run() behaves exactly as configured.
        policy = resolve_policy(
            policy,
            api="ScanGroupExecutor.run",
            default=self.policy,
            workers=workers,
            shards=shards,
            multiplan=multiplan,
        )
        if not policy.batch:
            # Mirror the constructor: this executor IS the batch path;
            # silently running shared scans for a sequential policy
            # would misreport the very scan counts it exists to change.
            from repro.errors import ConfigError

            raise ConfigError(
                "ScanGroupExecutor is the shared-scan path; a "
                "batch=False policy belongs on Engine.execute_batch, "
                "which routes it to per-query execution"
            )
        if policy.backend == "processes":
            exporter = process_shard_engine(self.engine)
            if exporter is not None:
                return self._run_proc_sharded(queries, policy, exporter)
            # Nothing in the wrapper stack can export table snapshots —
            # the backend knob is advisory, so degrade to the thread
            # paths below rather than failing the batch.
        effective = policy.workers
        sharding = policy.shards
        combine = policy.multiplan
        if sharding > 1:
            return self._run_sharded(queries, effective, sharding, combine)
        stats = BatchStats(queries=len(queries))
        results: list[QueryResult | None] = [None] * len(queries)
        with self._shared_lock:  # the key memo is shared mutable state
            groups = self._group(queries)
        stats.groups = len(groups)
        if effective > 1 and len(groups) > 1 and parallel_scans(self.engine):
            pool = self._pool_for(effective)
            tracer = _trace.ACTIVE
            if tracer is not None:
                # Bind each task so the submitting context's span (the
                # refresh) travels onto the worker thread, along with
                # the queue-wait measurement.
                tasks = [
                    tracer.bind(
                        lambda g=g: self._execute_group(g, results, combine)
                    )
                    for g in groups
                ]
                group_stats = map_ordered(pool, lambda t: t(), tasks)
            else:
                group_stats = map_ordered(
                    pool,
                    lambda g: self._execute_group(g, results, combine),
                    groups,
                )
        else:
            # Serialized task queue: submission order, caller's thread.
            group_stats = [
                self._execute_group(g, results, combine) for g in groups
            ]
        for group_stat in group_stats:
            stats.merge(group_stat)
        if any(r is None for r in results):
            # Positional alignment is the API contract; a hole here
            # must fail loudly, never compact silently.
            raise ExecutionError("batch execution left a query unanswered")
        with self._shared_lock:
            self.stats.merge(stats)
        registry = _metrics.ACTIVE
        if registry is not None:
            registry.record_batch(stats)
        return BatchResult(list(results), stats)

    def _run_sharded(
        self,
        queries: list[Query],
        workers: int,
        shards: int,
        multiplan: bool = False,
    ) -> BatchResult:
        """One task per (group, shard), then one merge per group.

        Shardable groups contribute ``shards`` scan tasks to a flat
        task list (unshardable groups contribute their pre-existing
        whole-group task); the list schedules over the pool exactly
        like groups do, and once *all* tasks have settled each sharded
        group's partials roll up on the calling thread, in group order
        — so results and stats are deterministic for any
        ``(workers, shards)``.
        """
        from repro.sharding import Partitioner
        from repro.sharding.executor import plan_sharded_group

        partitioner = Partitioner(shards)
        stats = BatchStats(queries=len(queries))
        results: list[QueryResult | None] = [None] * len(queries)
        with self._shared_lock:  # the key memo is shared mutable state
            groups = self._group(queries)
        stats.groups = len(groups)
        plan_stats = BatchStats()  # cache hits served at plan time
        units: list[Callable[[], BatchStats]] = []
        sharded_runs = []
        for group in groups:
            run = plan_sharded_group(
                self, group, partitioner, results, plan_stats,
                multiplan=multiplan,
            )
            if run is None:
                units.append(
                    lambda g=group: self._execute_group(
                        g, results, multiplan
                    )
                )
            else:
                sharded_runs.append(run)
                units.extend(run.scan_tasks())
        if workers > 1 and len(units) > 1 and parallel_scans(self.engine):
            pool = self._pool_for(workers)
            tracer = _trace.ACTIVE
            if tracer is not None:
                # Bind each (group, shard) task so its span nests under
                # the submitting refresh even on a worker thread.
                units = [tracer.bind(unit) for unit in units]
            unit_stats = map_ordered(pool, lambda unit: unit(), units)
        else:
            # Serialized task queue: submission order, caller's thread.
            unit_stats = [unit() for unit in units]
        merge_stats = [run.merge(results) for run in sharded_runs]
        for delta in (plan_stats, *unit_stats, *merge_stats):
            stats.merge(delta)
        if any(r is None for r in results):
            # Positional alignment is the API contract; a hole here
            # must fail loudly, never compact silently.
            raise ExecutionError("batch execution left a query unanswered")
        with self._shared_lock:
            self.stats.merge(stats)
        registry = _metrics.ACTIVE
        if registry is not None:
            registry.record_batch(stats)
        return BatchResult(list(results), stats)

    def _run_proc_sharded(
        self, queries: list[Query], policy, exporter: Engine
    ) -> BatchResult:
        """Process-backed execution: shard jobs run in worker processes.

        Each shardable group's row-range shards become
        :class:`~repro.concurrency.procpool.ShardJob` units dispatched
        to a :class:`~repro.concurrency.procpool.ProcessShardPool`;
        partials come back as payloads and merge through the exact
        rollup algebra the thread path uses, so byte-identity carries
        over. Groups that cannot shard — and tables the engine cannot
        export — run locally on the pre-existing thread paths,
        overlapping with the in-flight worker processes.

        Unlike the thread path, dispatch does **not** gate on
        ``parallel_scans``: escaping the GIL for the pure-Python stores
        is the entire point of this backend.

        Collection is wait-all in submission order: every future
        settles before the first error (if any) is raised, so no
        worker output is abandoned mid-pipe and spans close cleanly.
        """
        from repro.concurrency.procpool import shared_process_pool
        from repro.sharding import Partitioner
        from repro.sharding.executor import plan_sharded_group

        pool = self._proc_pool
        if pool is None:
            pool = shared_process_pool()
        partitioner = Partitioner(max(policy.shards, 1))
        stats = BatchStats(queries=len(queries))
        results: list[QueryResult | None] = [None] * len(queries)
        with self._shared_lock:  # the key memo is shared mutable state
            groups = self._group(queries)
        stats.groups = len(groups)
        plan_stats = BatchStats()  # cache hits served at plan time
        local_units: list[Callable[[], BatchStats]] = []
        sharded_runs = []
        remote = []  # (run, job, span, future) in submission order
        for group in groups:
            run = plan_sharded_group(
                self, group, partitioner, results, plan_stats,
                multiplan=policy.multiplan,
            )
            if run is None:
                local_units.append(
                    lambda g=group: self._execute_group(
                        g, results, policy.multiplan
                    )
                )
                continue
            sharded_runs.append(run)
            export = pool.export_table(exporter, run.table)
            if export is None:
                # Unknown generation (or unexportable storage): the
                # run's shards execute locally instead.
                local_units.extend(run.scan_tasks())
                continue
            for job in run.remote_jobs(export):
                span = run.begin_remote(job.shard)
                if span is not None:
                    # Serialized span context: its presence tells the
                    # worker to record re-anchorable span tuples.
                    job.trace = {"span_id": span.span_id}
                remote.append((run, job, span, pool.submit(export, job)))
        # Local leftovers execute while the workers chew on the remote
        # jobs; their own overlap keeps the thread path's gating.
        if (
            policy.workers > 1
            and len(local_units) > 1
            and parallel_scans(self.engine)
        ):
            wpool = self._pool_for(policy.workers)
            tracer = _trace.ACTIVE
            if tracer is not None:
                local_units = [tracer.bind(unit) for unit in local_units]
            unit_stats = map_ordered(wpool, lambda unit: unit(), local_units)
        else:
            unit_stats = [unit() for unit in local_units]
        remote_stats = []
        first_error: BaseException | None = None
        proc_tasks: dict[int, int] = {}
        for run, job, span, future in remote:
            try:
                payload = pool.collect(future, job)
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                if first_error is None:
                    first_error = exc
                tracer = _trace.ACTIVE
                if span is not None and tracer is not None:
                    span.attrs["error"] = type(exc).__name__
                    tracer.finish(span)
                continue
            proc_tasks[payload.pid] = proc_tasks.get(payload.pid, 0) + 1
            remote_stats.append(run.accept_remote(job.shard, payload, span))
        registry = _metrics.ACTIVE
        if registry is not None:
            for pid, count in proc_tasks.items():
                registry.set_gauge(
                    "pool.proc_tasks", count, worker=f"pid-{pid}"
                )
        if first_error is not None:
            raise first_error
        merge_stats = [run.merge(results) for run in sharded_runs]
        for delta in (plan_stats, *unit_stats, *remote_stats, *merge_stats):
            stats.merge(delta)
        if any(r is None for r in results):
            # Positional alignment is the API contract; a hole here
            # must fail loudly, never compact silently.
            raise ExecutionError("batch execution left a query unanswered")
        with self._shared_lock:
            self.stats.merge(stats)
        if registry is not None:
            registry.record_batch(stats)
        return BatchResult(list(results), stats)

    # -- internals ----------------------------------------------------------

    def _group(self, queries: list[Query]) -> list[ScanGroup]:
        from repro.engine.batch import group_queries

        return group_queries(list(queries), key_fn=self._memoized_keys)

    def _execute_group(
        self,
        group: ScanGroup,
        results: list[QueryResult | None],
        multiplan: bool | None = None,
    ) -> BatchStats:
        """Run one group as an isolated task; returns its stats delta.

        Writes only this group's member positions in ``results`` —
        disjoint across groups, so no locking is needed on the list.
        The per-call ``multiplan`` flag rides along rather than
        mutating executor state: concurrent ``run`` calls with
        different flags stay independent (results are identical either
        way, so the flight key need not carry it).
        """
        tracer = _trace.ACTIVE
        if tracer is None:
            return self._execute_flight(group, results, multiplan, None)
        attrs: dict = {"members": len(group.members)}
        if group.signature is not None:
            attrs["table"] = group.signature.table
            attrs["group_key"] = group.signature.predicate_key
        with tracer.span("scan_group", **attrs) as span:
            return self._execute_flight(group, results, multiplan, span)

    def _execute_flight(
        self,
        group: ScanGroup,
        results: list[QueryResult | None],
        multiplan: bool | None,
        span,
    ) -> BatchStats:
        if (
            self._group_flight is not None
            and self.group_cache is not None
            and group.signature is not None
        ):
            key = (
                group.signature.table,
                group.signature.predicate_key,
                tuple(sorted({m.sql for m in group.members})),
            )
            # The leader computes and fills the scan-group cache; a
            # follower re-running the group is then answered entirely
            # from that cache (zero engine work). Each call distributes
            # into its own results list, so only the flight key is
            # shared.
            start = time.perf_counter() if span is not None else 0.0
            stats, leader = self._group_flight.do(
                key, lambda: self._run_one(group, results, multiplan)
            )
            if span is not None:
                span.attrs["singleflight"] = (
                    "leader" if leader else "follower"
                )
                if not leader:
                    span.attrs["flight_wait_ms"] = round(
                        (time.perf_counter() - start) * 1000.0, 3
                    )
            if leader:
                return stats
            return self._run_one(group, results, multiplan)
        return self._run_one(group, results, multiplan)

    def _run_one(
        self,
        group: ScanGroup,
        results: list[QueryResult | None],
        multiplan: bool | None = None,
    ) -> BatchStats:
        # No lock is held here: engine safety is leaf-granular (the
        # _SlotGatedEngine wrapper / the engine's own thread-safety),
        # so waiting on a cache flight inside a fallback can never
        # deadlock against another thread's leader.
        stats = BatchStats()
        if group.signature is None:
            tracer = _trace.ACTIVE
            if tracer is not None:
                for item in group.members:
                    # Tag before delegating: a cache hit inside the
                    # fallback engine overrides with "cache".
                    tracer.tag_query(item.sql, "fallback")
                    with tracer.span("fallback", sql=item.sql):
                        results[item.index] = (
                            self.fallback_engine.execute_timed(item.query)
                        )
                    stats.fallbacks += 1
                    stats.base_scans += 1
            else:
                for item in group.members:
                    results[item.index] = self.fallback_engine.execute_timed(
                        item.query
                    )
                    stats.fallbacks += 1
                    stats.base_scans += 1
        else:
            self._run_group(group, results, stats, multiplan=multiplan)
        return stats


__all__ = ["ScanGroupExecutor"]
