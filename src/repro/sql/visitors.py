"""Generic AST traversal and analysis helpers.

These helpers extract structural facts from queries — which columns are
plain vs. aggregated, how many filters a query carries — which feed the
workload-shape statistics of Table 4 and the equivalence canonicalizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sql.ast import (
    Between,
    BinaryOp,
    Column,
    Expression,
    FuncCall,
    InList,
    IsNull,
    Like,
    Node,
    Query,
    Star,
    UnaryOp,
    conjuncts,
    walk,
)


@dataclass
class QueryShape:
    """Structural summary of one query, used for workload statistics.

    Attributes correspond to the three statistics the paper reports in
    Table 4: plain (categorical/quantitative) data columns, aggregated
    data columns, and filter predicates.
    """

    plain_columns: list[str] = field(default_factory=list)
    aggregated_columns: list[str] = field(default_factory=list)
    filter_count: int = 0
    group_by_columns: list[str] = field(default_factory=list)
    has_star: bool = False
    aggregate_functions: list[str] = field(default_factory=list)

    @property
    def total_columns(self) -> int:
        return len(self.plain_columns) + len(self.aggregated_columns)


def query_shape(query: Query) -> QueryShape:
    """Compute the :class:`QueryShape` of a query.

    Plain columns are SELECT-list columns that appear outside any
    aggregate; aggregated columns are columns appearing inside aggregate
    calls (``COUNT(*)`` counts as one aggregated column even though it
    names none). Filters are counted as *atomic predicates*: each
    comparison, IN, BETWEEN, LIKE, or NULL test in WHERE or HAVING
    counts once.
    """
    shape = QueryShape()
    for item in query.select:
        expr = item.expr
        if isinstance(expr, Star):
            shape.has_star = True
            continue
        aggs = _aggregate_calls(expr)
        if aggs:
            for agg in aggs:
                shape.aggregate_functions.append(agg.name)
                named = [
                    node.name
                    for arg in agg.args
                    for node in walk(arg)
                    if isinstance(node, Column)
                ]
                if named:
                    shape.aggregated_columns.extend(named)
                else:
                    shape.aggregated_columns.append("*")
            # Columns used outside the aggregate within the same item
            # (e.g. ``hour + AVG(x)``) still count as plain.
            shape.plain_columns.extend(
                sorted(_columns_outside_aggregates(expr))
            )
        elif isinstance(expr, Column):
            shape.plain_columns.append(expr.name)
        else:
            shape.plain_columns.extend(
                sorted({n.name for n in walk(expr) if isinstance(n, Column)})
            )
    shape.group_by_columns = [
        node.name
        for expr in query.group_by
        for node in walk(expr)
        if isinstance(node, Column)
    ]
    shape.filter_count = count_filters(query)
    return shape


def count_filters(query: Query) -> int:
    """Count atomic filter predicates in WHERE and HAVING."""
    total = 0
    for clause in (query.where, query.having):
        if clause is not None:
            total += _count_atomic(clause)
    return total


def _count_atomic(expr: Expression) -> int:
    if isinstance(expr, BinaryOp) and expr.is_boolean:
        return _count_atomic(expr.left) + _count_atomic(expr.right)
    if isinstance(expr, UnaryOp) and expr.op == "NOT":
        return _count_atomic(expr.operand)
    if isinstance(expr, (InList, Between, Like, IsNull)):
        return 1
    if isinstance(expr, BinaryOp) and expr.is_comparison:
        return 1
    # A bare boolean column or literal still acts as one predicate.
    return 1


def _aggregate_calls(expr: Expression) -> list[FuncCall]:
    """All aggregate FuncCall nodes in ``expr``, outermost first."""
    return [
        node
        for node in walk(expr)
        if isinstance(node, FuncCall) and node.is_aggregate
    ]


def _columns_outside_aggregates(expr: Expression) -> set[str]:
    """Column names under ``expr`` that are not inside an aggregate call."""
    if isinstance(expr, FuncCall) and expr.is_aggregate:
        return set()
    if isinstance(expr, Column):
        return {expr.name}
    names: set[str] = set()
    for child in expr.children():
        if isinstance(child, Expression):
            names |= _columns_outside_aggregates(child)
    return names


def filtered_columns(query: Query) -> set[str]:
    """Columns referenced in WHERE/HAVING predicates."""
    names: set[str] = set()
    for clause in (query.where, query.having):
        if clause is not None:
            names |= {n.name for n in walk(clause) if isinstance(n, Column)}
    return names


def selected_columns(query: Query) -> set[str]:
    """Columns referenced anywhere in the SELECT list."""
    names: set[str] = set()
    for item in query.select:
        names |= {n.name for n in walk(item.expr) if isinstance(n, Column)}
    return names


def all_columns(query: Query) -> set[str]:
    """Columns referenced anywhere in the query."""
    return {n.name for n in walk(query) if isinstance(n, Column)}


def predicate_values(predicate: Expression) -> list[object]:
    """Literal values mentioned in a predicate (for log analysis)."""
    from repro.sql.ast import Literal

    return [n.value for n in walk(predicate) if isinstance(n, Literal)]
