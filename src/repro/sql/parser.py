"""Recursive-descent parser: SQL text -> :class:`repro.sql.ast.Query`.

Grammar (EBNF, informal)::

    query      := SELECT [DISTINCT] select_list FROM table_ref join*
                  [WHERE expr] [GROUP BY expr_list] [HAVING expr]
                  [ORDER BY order_list] [LIMIT number]
    join       := [INNER | LEFT [OUTER]] JOIN table_ref ON column "=" column
    select_list:= select_item ("," select_item)*
    select_item:= "*" | expr [[AS] identifier]
    expr       := or_expr
    or_expr    := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := [NOT] predicate
    predicate  := additive [comparison | IN | BETWEEN | LIKE | IS NULL]
    additive   := term (("+"|"-") term)*
    term       := factor (("*"|"/"|"%") factor)*
    factor     := ["-"] primary
    primary    := literal | func_call | column | "(" expr ")"

Operator precedence follows standard SQL; the parser produces the same
left-deep trees the formatter assumes, so ``parse(format(q)) == q`` for
canonical queries.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.sql.ast import (
    Between,
    BinaryOp,
    Column,
    Expression,
    FuncCall,
    InList,
    IsNull,
    Join,
    Like,
    Literal,
    OrderItem,
    Query,
    SelectItem,
    Star,
    TableRef,
    UnaryOp,
)
from repro.sql.lexer import Token, TokenType, tokenize


def parse_query(text: str) -> Query:
    """Parse a full SELECT statement into a :class:`Query`."""
    parser = _Parser(tokenize(text))
    query = parser.parse_query()
    parser.expect_eof()
    return query


def parse_expression(text: str) -> Expression:
    """Parse a standalone expression (useful for filters and tests)."""
    parser = _Parser(tokenize(text))
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


class _Parser:
    """Stateful cursor over a token list."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def accept(self, token_type: TokenType, value: str | None = None) -> Token | None:
        if self.current.matches(token_type, value):
            return self.advance()
        return None

    def expect(self, token_type: TokenType, value: str | None = None) -> Token:
        token = self.accept(token_type, value)
        if token is None:
            expected = value or token_type.name
            raise ParseError(
                f"expected {expected}, found {self.current.value!r} "
                f"at offset {self.current.position}",
                self.current.position,
            )
        return token

    def expect_eof(self) -> None:
        if self.current.type is not TokenType.EOF:
            raise ParseError(
                f"unexpected trailing input {self.current.value!r} "
                f"at offset {self.current.position}",
                self.current.position,
            )

    # -- grammar rules -----------------------------------------------------

    def parse_query(self) -> Query:
        self.expect(TokenType.KEYWORD, "SELECT")
        distinct = self.accept(TokenType.KEYWORD, "DISTINCT") is not None
        select = self._parse_select_list()
        self.expect(TokenType.KEYWORD, "FROM")
        from_table = self._parse_table_ref()
        joins = tuple(self._parse_joins())

        where = None
        if self.accept(TokenType.KEYWORD, "WHERE"):
            where = self.parse_expr()

        group_by: tuple[Expression, ...] = ()
        if self.accept(TokenType.KEYWORD, "GROUP"):
            self.expect(TokenType.KEYWORD, "BY")
            group_by = tuple(self._parse_expr_list())

        having = None
        if self.accept(TokenType.KEYWORD, "HAVING"):
            having = self.parse_expr()

        order_by: tuple[OrderItem, ...] = ()
        if self.accept(TokenType.KEYWORD, "ORDER"):
            self.expect(TokenType.KEYWORD, "BY")
            order_by = tuple(self._parse_order_list())

        limit = None
        if self.accept(TokenType.KEYWORD, "LIMIT"):
            token = self.expect(TokenType.NUMBER)
            limit = int(token.value)

        return Query(
            select=select,
            from_table=from_table,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
            joins=joins,
        )

    def _parse_select_list(self) -> tuple[SelectItem, ...]:
        items = [self._parse_select_item()]
        while self.accept(TokenType.COMMA):
            items.append(self._parse_select_item())
        return tuple(items)

    def _parse_select_item(self) -> SelectItem:
        if self.current.type is TokenType.STAR:
            self.advance()
            return SelectItem(Star())
        expr = self.parse_expr()
        alias = None
        if self.accept(TokenType.KEYWORD, "AS"):
            alias = self.expect(TokenType.IDENTIFIER).value
        elif self.current.type is TokenType.IDENTIFIER:
            alias = self.advance().value
        return SelectItem(expr, alias)

    def _parse_table_ref(self) -> TableRef:
        name = self.expect(TokenType.IDENTIFIER).value
        alias = None
        if self.accept(TokenType.KEYWORD, "AS"):
            alias = self.expect(TokenType.IDENTIFIER).value
        elif self.current.type is TokenType.IDENTIFIER:
            alias = self.advance().value
        return TableRef(name, alias)

    def _parse_joins(self) -> list[Join]:
        """Parse zero or more ``[INNER|LEFT [OUTER]] JOIN t ON a = b``."""
        joins: list[Join] = []
        while True:
            kind = "INNER"
            if self.accept(TokenType.KEYWORD, "LEFT"):
                self.accept(TokenType.KEYWORD, "OUTER")
                kind = "LEFT"
                self.expect(TokenType.KEYWORD, "JOIN")
            elif self.accept(TokenType.KEYWORD, "INNER"):
                self.expect(TokenType.KEYWORD, "JOIN")
            elif not self.accept(TokenType.KEYWORD, "JOIN"):
                return joins
            table = self._parse_table_ref()
            self.expect(TokenType.KEYWORD, "ON")
            left = self._parse_join_key()
            self.expect(TokenType.OPERATOR, "=")
            right = self._parse_join_key()
            joins.append(Join(table, left, right, kind))

    def _parse_join_key(self) -> Column:
        expr = self._parse_primary()
        if not isinstance(expr, Column):
            raise ParseError(
                f"join keys must be column references, found {expr}",
                self.current.position,
            )
        return expr

    def _parse_expr_list(self) -> list[Expression]:
        exprs = [self.parse_expr()]
        while self.accept(TokenType.COMMA):
            exprs.append(self.parse_expr())
        return exprs

    def _parse_order_list(self) -> list[OrderItem]:
        items = [self._parse_order_item()]
        while self.accept(TokenType.COMMA):
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        descending = False
        if self.accept(TokenType.KEYWORD, "DESC"):
            descending = True
        else:
            self.accept(TokenType.KEYWORD, "ASC")
        return OrderItem(expr, descending)

    # -- expressions, by precedence ------------------------------------------

    def parse_expr(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self.accept(TokenType.KEYWORD, "OR"):
            left = BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self.accept(TokenType.KEYWORD, "AND"):
            left = BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self.accept(TokenType.KEYWORD, "NOT"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expression:
        left = self._parse_additive()
        token = self.current
        if token.type is TokenType.OPERATOR and token.value in {
            "=", "!=", "<", "<=", ">", ">=",
        }:
            self.advance()
            return BinaryOp(token.value, left, self._parse_additive())

        negated = False
        if self.current.matches(TokenType.KEYWORD, "NOT"):
            # Lookahead: NOT IN / NOT BETWEEN / NOT LIKE.
            nxt = self._tokens[self._pos + 1]
            if nxt.type is TokenType.KEYWORD and nxt.value in {
                "IN", "BETWEEN", "LIKE",
            }:
                self.advance()
                negated = True
            else:
                return left
        if self.accept(TokenType.KEYWORD, "IN"):
            return self._parse_in(left, negated)
        if self.accept(TokenType.KEYWORD, "BETWEEN"):
            low = self._parse_additive()
            self.expect(TokenType.KEYWORD, "AND")
            high = self._parse_additive()
            return Between(left, low, high, negated)
        if self.accept(TokenType.KEYWORD, "LIKE"):
            pattern = self.expect(TokenType.STRING).value
            return Like(left, pattern, negated)
        if self.accept(TokenType.KEYWORD, "IS"):
            is_not = self.accept(TokenType.KEYWORD, "NOT") is not None
            self.expect(TokenType.KEYWORD, "NULL")
            return IsNull(left, is_not)
        return left

    def _parse_in(self, left: Expression, negated: bool) -> Expression:
        self.expect(TokenType.LPAREN)
        values = [self._parse_additive()]
        while self.accept(TokenType.COMMA):
            values.append(self._parse_additive())
        self.expect(TokenType.RPAREN)
        return InList(left, tuple(values), negated)

    def _parse_additive(self) -> Expression:
        left = self._parse_term()
        while True:
            token = self.current
            if token.type is TokenType.OPERATOR and token.value in {"+", "-"}:
                self.advance()
                left = BinaryOp(token.value, left, self._parse_term())
            else:
                return left

    def _parse_term(self) -> Expression:
        left = self._parse_factor()
        while True:
            token = self.current
            if token.type is TokenType.STAR:
                self.advance()
                left = BinaryOp("*", left, self._parse_factor())
            elif token.type is TokenType.OPERATOR and token.value in {"/", "%"}:
                self.advance()
                left = BinaryOp(token.value, left, self._parse_factor())
            else:
                return left

    def _parse_factor(self) -> Expression:
        if self.current.matches(TokenType.OPERATOR, "-"):
            self.advance()
            operand = self._parse_factor()
            if isinstance(operand, Literal) and isinstance(
                operand.value, (int, float)
            ):
                return Literal(-operand.value)
            return UnaryOp("-", operand)
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            return Literal(_parse_number(token.value))
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.type is TokenType.KEYWORD and token.value in {
            "NULL", "TRUE", "FALSE",
        }:
            self.advance()
            return Literal(
                {"NULL": None, "TRUE": True, "FALSE": False}[token.value]
            )
        if token.type is TokenType.LPAREN:
            self.advance()
            expr = self.parse_expr()
            self.expect(TokenType.RPAREN)
            return expr
        if token.type is TokenType.IDENTIFIER:
            return self._parse_identifier_start()
        raise ParseError(
            f"unexpected token {token.value!r} at offset {token.position}",
            token.position,
        )

    def _parse_identifier_start(self) -> Expression:
        name_token = self.expect(TokenType.IDENTIFIER)
        if self.current.type is TokenType.LPAREN:
            return self._parse_func_call(name_token.value)
        if self.accept(TokenType.DOT):
            if self.current.type is TokenType.STAR:
                # "table.*" is not part of the subset.
                raise ParseError(
                    "qualified star is not supported",
                    self.current.position,
                )
            column = self.expect(TokenType.IDENTIFIER)
            return Column(column.value, table=name_token.value)
        return Column(name_token.value)

    def _parse_func_call(self, name: str) -> Expression:
        self.expect(TokenType.LPAREN)
        distinct = self.accept(TokenType.KEYWORD, "DISTINCT") is not None
        args: list[Expression] = []
        if self.current.type is TokenType.STAR:
            self.advance()
            args.append(Star())
        elif self.current.type is not TokenType.RPAREN:
            args.append(self.parse_expr())
            while self.accept(TokenType.COMMA):
                args.append(self.parse_expr())
        self.expect(TokenType.RPAREN)
        return FuncCall(name.upper(), tuple(args), distinct)


def _parse_number(text: str) -> int | float:
    """Parse numeric token text, preferring int when exact."""
    if "." in text or "e" in text or "E" in text:
        return float(text)
    return int(text)
