"""Dialect-neutral SQL substrate.

This subpackage provides everything the benchmark needs to represent,
parse, format, and manipulate the analytic SQL subset that dashboards emit:

- :mod:`repro.sql.ast` — immutable AST node classes;
- :mod:`repro.sql.lexer` — tokenizer;
- :mod:`repro.sql.parser` — recursive-descent parser (text -> AST);
- :mod:`repro.sql.formatter` — AST -> canonical SQL text;
- :mod:`repro.sql.builder` — fluent programmatic query construction;
- :mod:`repro.sql.visitors` — generic traversal and analysis helpers.

The supported subset covers ``SELECT`` queries over a single (denormalized)
table with ``WHERE``, ``GROUP BY``, ``HAVING``, ``ORDER BY``, ``LIMIT``,
aggregate functions (``COUNT/SUM/AVG/MIN/MAX``), temporal extraction
functions (``YEAR/MONTH/DAY/HOUR``), and ``BIN`` for binned aggregation —
exactly the query shapes the SIMBA paper's dashboards generate.
"""

from repro.sql.ast import (
    Between,
    BinaryOp,
    Column,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    OrderItem,
    Query,
    SelectItem,
    Star,
    TableRef,
    UnaryOp,
)
from repro.sql.builder import QueryBuilder, select
from repro.sql.formatter import format_query, normalize_sql
from repro.sql.parser import parse_expression, parse_query

__all__ = [
    "Between",
    "BinaryOp",
    "Column",
    "FuncCall",
    "InList",
    "IsNull",
    "Like",
    "Literal",
    "OrderItem",
    "Query",
    "QueryBuilder",
    "SelectItem",
    "Star",
    "TableRef",
    "UnaryOp",
    "format_query",
    "normalize_sql",
    "parse_expression",
    "parse_query",
    "select",
]
