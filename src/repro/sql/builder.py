"""Fluent construction of :class:`~repro.sql.ast.Query` values.

The dashboard data layer and the algebra translator both build queries
programmatically; this module gives them a compact, readable way to do it::

    query = (
        select("queue", count(Star()).label("lost_calls"))
        .from_table("customer_service")
        .where(col("queue").in_list(["A", "B"]))
        .group_by("queue")
        .build()
    )
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.sql.ast import (
    Between,
    BinaryOp,
    Column,
    Expression,
    FuncCall,
    InList,
    IsNull,
    Join,
    Like,
    Literal,
    OrderItem,
    Query,
    SelectItem,
    Star,
    TableRef,
    UnaryOp,
)


class ExpressionWrapper:
    """Wraps an :class:`Expression` with operator-overloading sugar."""

    def __init__(self, expr: Expression) -> None:
        self.expr = expr

    # -- comparisons --------------------------------------------------------

    def __eq__(self, other: object) -> "ExpressionWrapper":  # type: ignore[override]
        return self._compare("=", other)

    def __ne__(self, other: object) -> "ExpressionWrapper":  # type: ignore[override]
        return self._compare("!=", other)

    def __lt__(self, other: object) -> "ExpressionWrapper":
        return self._compare("<", other)

    def __le__(self, other: object) -> "ExpressionWrapper":
        return self._compare("<=", other)

    def __gt__(self, other: object) -> "ExpressionWrapper":
        return self._compare(">", other)

    def __ge__(self, other: object) -> "ExpressionWrapper":
        return self._compare(">=", other)

    def _compare(self, op: str, other: object) -> "ExpressionWrapper":
        return ExpressionWrapper(BinaryOp(op, self.expr, unwrap(other)))

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: object) -> "ExpressionWrapper":
        return ExpressionWrapper(BinaryOp("+", self.expr, unwrap(other)))

    def __sub__(self, other: object) -> "ExpressionWrapper":
        return ExpressionWrapper(BinaryOp("-", self.expr, unwrap(other)))

    def __mul__(self, other: object) -> "ExpressionWrapper":
        return ExpressionWrapper(BinaryOp("*", self.expr, unwrap(other)))

    def __truediv__(self, other: object) -> "ExpressionWrapper":
        return ExpressionWrapper(BinaryOp("/", self.expr, unwrap(other)))

    # -- boolean ------------------------------------------------------------

    def and_(self, other: object) -> "ExpressionWrapper":
        return ExpressionWrapper(BinaryOp("AND", self.expr, unwrap(other)))

    def or_(self, other: object) -> "ExpressionWrapper":
        return ExpressionWrapper(BinaryOp("OR", self.expr, unwrap(other)))

    def not_(self) -> "ExpressionWrapper":
        return ExpressionWrapper(UnaryOp("NOT", self.expr))

    # -- predicates ---------------------------------------------------------

    def in_list(self, values: Iterable[object], negated: bool = False) -> "ExpressionWrapper":
        literals = tuple(unwrap(v) for v in values)
        return ExpressionWrapper(InList(self.expr, literals, negated))

    def between(self, low: object, high: object, negated: bool = False) -> "ExpressionWrapper":
        return ExpressionWrapper(
            Between(self.expr, unwrap(low), unwrap(high), negated)
        )

    def like(self, pattern: str, negated: bool = False) -> "ExpressionWrapper":
        return ExpressionWrapper(Like(self.expr, pattern, negated))

    def is_null(self, negated: bool = False) -> "ExpressionWrapper":
        return ExpressionWrapper(IsNull(self.expr, negated))

    # -- select-item sugar ----------------------------------------------------

    def label(self, alias: str) -> SelectItem:
        """Turn this expression into an aliased SELECT item."""
        return SelectItem(self.expr, alias)

    def __hash__(self) -> int:
        return hash(self.expr)

    def __repr__(self) -> str:
        return f"ExpressionWrapper({self.expr!r})"


def unwrap(value: object) -> Expression:
    """Coerce wrappers / plain Python values into AST expressions."""
    if isinstance(value, ExpressionWrapper):
        return value.expr
    if isinstance(value, Expression):
        return value
    return Literal(value)  # type: ignore[arg-type]


def col(name: str, table: str | None = None) -> ExpressionWrapper:
    """Build a column reference."""
    return ExpressionWrapper(Column(name, table))


def lit(value: object) -> ExpressionWrapper:
    """Build a literal."""
    return ExpressionWrapper(Literal(value))  # type: ignore[arg-type]


def func(name: str, *args: object, distinct: bool = False) -> ExpressionWrapper:
    """Build a function call from loosely-typed arguments."""
    return ExpressionWrapper(
        FuncCall(name.upper(), tuple(unwrap(a) for a in args), distinct)
    )


def count(arg: object = None, distinct: bool = False) -> ExpressionWrapper:
    """``COUNT(*)`` by default, or ``COUNT(expr)`` when given an argument."""
    target = Star() if arg is None else unwrap(arg)
    return func("COUNT", target, distinct=distinct)


def sum_(arg: object) -> ExpressionWrapper:
    return func("SUM", arg)


def avg(arg: object) -> ExpressionWrapper:
    return func("AVG", arg)


def min_(arg: object) -> ExpressionWrapper:
    return func("MIN", arg)


def max_(arg: object) -> ExpressionWrapper:
    return func("MAX", arg)


class QueryBuilder:
    """Accumulates query clauses, then produces an immutable ``Query``."""

    def __init__(self, items: Sequence[object]) -> None:
        self._select = [self._to_select_item(i) for i in items]
        self._from: TableRef | None = None
        self._joins: list[Join] = []
        self._where: Expression | None = None
        self._group_by: list[Expression] = []
        self._having: Expression | None = None
        self._order_by: list[OrderItem] = []
        self._limit: int | None = None
        self._distinct = False

    @staticmethod
    def _to_select_item(item: object) -> SelectItem:
        if isinstance(item, SelectItem):
            return item
        if isinstance(item, str):
            if item == "*":
                return SelectItem(Star())
            return SelectItem(Column(item))
        return SelectItem(unwrap(item))

    def distinct(self) -> "QueryBuilder":
        self._distinct = True
        return self

    def from_table(self, name: str, alias: str | None = None) -> "QueryBuilder":
        self._from = TableRef(name, alias)
        return self

    def join(
        self,
        name: str,
        left_key: object,
        right_key: object,
        kind: str = "INNER",
        alias: str | None = None,
    ) -> "QueryBuilder":
        """Add an equi-join clause.

        ``left_key`` / ``right_key`` accept column names (optionally
        ``"table.column"`` qualified) or column expressions.
        """
        self._joins.append(
            Join(
                TableRef(name, alias),
                _to_join_key(left_key),
                _to_join_key(right_key),
                kind,
            )
        )
        return self

    def where(self, predicate: object) -> "QueryBuilder":
        """Set or AND-extend the WHERE clause."""
        expr = unwrap(predicate)
        if self._where is None:
            self._where = expr
        else:
            self._where = BinaryOp("AND", self._where, expr)
        return self

    def group_by(self, *exprs: object) -> "QueryBuilder":
        for expr in exprs:
            if isinstance(expr, str):
                self._group_by.append(Column(expr))
            else:
                self._group_by.append(unwrap(expr))
        return self

    def having(self, predicate: object) -> "QueryBuilder":
        expr = unwrap(predicate)
        if self._having is None:
            self._having = expr
        else:
            self._having = BinaryOp("AND", self._having, expr)
        return self

    def order_by(self, expr: object, descending: bool = False) -> "QueryBuilder":
        if isinstance(expr, str):
            target: Expression = Column(expr)
        else:
            target = unwrap(expr)
        self._order_by.append(OrderItem(target, descending))
        return self

    def limit(self, count_: int) -> "QueryBuilder":
        self._limit = count_
        return self

    def build(self) -> Query:
        """Produce the immutable query; requires ``from_table`` to be set."""
        if self._from is None:
            raise ValueError("QueryBuilder requires from_table() before build()")
        return Query(
            select=tuple(self._select),
            from_table=self._from,
            where=self._where,
            group_by=tuple(self._group_by),
            having=self._having,
            order_by=tuple(self._order_by),
            limit=self._limit,
            distinct=self._distinct,
            joins=tuple(self._joins),
        )


def _to_join_key(key: object) -> Column:
    """Coerce a join-key argument to a (possibly qualified) Column."""
    if isinstance(key, str):
        if "." in key:
            table, _, column = key.partition(".")
            return Column(column, table=table)
        return Column(key)
    expr = unwrap(key)
    if not isinstance(expr, Column):
        raise ValueError(f"join keys must be columns, got {expr}")
    return expr


def select(*items: object) -> QueryBuilder:
    """Entry point: ``select("a", count()).from_table(...)``."""
    if not items:
        raise ValueError("select() requires at least one item")
    return QueryBuilder(items)
