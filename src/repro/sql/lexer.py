"""Tokenizer for the analytic SQL subset.

The lexer is intentionally strict: it recognizes exactly the token
vocabulary emitted by :mod:`repro.sql.formatter`, which keeps the
parse/format round-trip exact — a property the test suite checks with
hypothesis.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import LexError


class TokenType(Enum):
    """Lexical categories produced by :func:`tokenize`."""

    KEYWORD = auto()
    IDENTIFIER = auto()
    NUMBER = auto()
    STRING = auto()
    OPERATOR = auto()
    COMMA = auto()
    DOT = auto()
    LPAREN = auto()
    RPAREN = auto()
    STAR = auto()
    EOF = auto()


#: Reserved words. Anything else alphabetic is an identifier.
KEYWORDS = frozenset(
    {
        "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING",
        "ORDER", "LIMIT", "AS", "AND", "OR", "NOT", "IN", "BETWEEN",
        "LIKE", "IS", "NULL", "TRUE", "FALSE", "ASC", "DESC",
        "JOIN", "INNER", "LEFT", "OUTER", "ON",
    }
)

_OPERATOR_STARTS = "=!<>+-*/%"
_TWO_CHAR_OPERATORS = {"!=", "<=", ">=", "<>"}


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    type: TokenType
    value: str
    position: int

    def matches(self, token_type: TokenType, value: str | None = None) -> bool:
        """True when type (and, if given, upper-cased value) match."""
        if self.type is not token_type:
            return False
        return value is None or self.value.upper() == value.upper()


def tokenize(text: str) -> list[Token]:
    """Convert SQL text into a token list terminated by an EOF token.

    Raises
    ------
    LexError
        If an unrecognized character or an unterminated string is found.
    """
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == ",":
            tokens.append(Token(TokenType.COMMA, ",", i))
            i += 1
        elif ch == ".":
            # A dot starting a number (e.g. ".5") is numeric; otherwise a
            # qualifier separator.
            if i + 1 < n and text[i + 1].isdigit():
                i = _lex_number(text, i, tokens)
            else:
                tokens.append(Token(TokenType.DOT, ".", i))
                i += 1
        elif ch == "(":
            tokens.append(Token(TokenType.LPAREN, "(", i))
            i += 1
        elif ch == ")":
            tokens.append(Token(TokenType.RPAREN, ")", i))
            i += 1
        elif ch == "*":
            tokens.append(Token(TokenType.STAR, "*", i))
            i += 1
        elif ch == "'":
            i = _lex_string(text, i, tokens)
        elif ch.isdigit():
            i = _lex_number(text, i, tokens)
        elif ch.isalpha() or ch == "_" or ch == '"':
            i = _lex_word(text, i, tokens)
        elif ch in _OPERATOR_STARTS:
            i = _lex_operator(text, i, tokens)
        else:
            raise LexError(f"unexpected character {ch!r} at offset {i}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _lex_string(text: str, start: int, tokens: list[Token]) -> int:
    """Lex a single-quoted string; '' escapes a literal quote."""
    i = start + 1
    chunks: list[str] = []
    while i < len(text):
        ch = text[i]
        if ch == "'":
            if i + 1 < len(text) and text[i + 1] == "'":
                chunks.append("'")
                i += 2
                continue
            tokens.append(Token(TokenType.STRING, "".join(chunks), start))
            return i + 1
        chunks.append(ch)
        i += 1
    raise LexError("unterminated string literal", start)


def _lex_number(text: str, start: int, tokens: list[Token]) -> int:
    """Lex an integer or decimal number (optional exponent)."""
    i = start
    seen_dot = False
    seen_exp = False
    while i < len(text):
        ch = text[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            # Exponent must be followed by digits or a sign.
            j = i + 1
            if j < len(text) and text[j] in "+-":
                j += 1
            if j < len(text) and text[j].isdigit():
                seen_exp = True
                i = j
            else:
                break
        else:
            break
    tokens.append(Token(TokenType.NUMBER, text[start:i], start))
    return i


def _lex_word(text: str, start: int, tokens: list[Token]) -> int:
    """Lex a keyword, bare identifier, or double-quoted identifier."""
    if text[start] == '"':
        end = text.find('"', start + 1)
        if end == -1:
            raise LexError("unterminated quoted identifier", start)
        tokens.append(Token(TokenType.IDENTIFIER, text[start + 1 : end], start))
        return end + 1
    i = start
    while i < len(text) and (text[i].isalnum() or text[i] == "_"):
        i += 1
    word = text[start:i]
    if word.upper() in KEYWORDS:
        tokens.append(Token(TokenType.KEYWORD, word.upper(), start))
    else:
        tokens.append(Token(TokenType.IDENTIFIER, word, start))
    return i


def _lex_operator(text: str, start: int, tokens: list[Token]) -> int:
    """Lex a one- or two-character operator."""
    two = text[start : start + 2]
    if two in _TWO_CHAR_OPERATORS:
        value = "!=" if two == "<>" else two
        tokens.append(Token(TokenType.OPERATOR, value, start))
        return start + 2
    tokens.append(Token(TokenType.OPERATOR, text[start], start))
    return start + 1
