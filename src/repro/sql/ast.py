"""Immutable AST nodes for the analytic SQL subset used by SIMBA.

All nodes are frozen dataclasses, so they are hashable and can be used as
dictionary keys, cached, and structurally compared — properties the
equivalence suite (:mod:`repro.equivalence`) relies on.

The node vocabulary deliberately mirrors what dashboard components emit
(see section 3 of the paper): flat ``SELECT`` queries over one denormalized
table, optionally grouped and aggregated, with conjunctive/disjunctive
filter predicates contributed by interaction widgets.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Iterator, Union

#: Aggregate function names recognized by engines and the canonicalizer.
AGGREGATE_FUNCTIONS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})

#: Scalar functions recognized by engines: temporal extraction plus binning.
SCALAR_FUNCTIONS = frozenset(
    {"YEAR", "MONTH", "DAY", "HOUR", "MINUTE", "DOW", "BIN", "ABS", "ROUND",
     "LOWER", "UPPER", "LENGTH", "COALESCE"}
)

#: Comparison operators, in canonical spelling.
COMPARISON_OPS = frozenset({"=", "!=", "<", "<=", ">", ">="})

#: Arithmetic operators.
ARITHMETIC_OPS = frozenset({"+", "-", "*", "/", "%"})

#: Boolean connectives.
BOOLEAN_OPS = frozenset({"AND", "OR"})

#: Python types that may appear inside :class:`Literal`.
LiteralValue = Union[int, float, str, bool, None, _dt.date, _dt.datetime]


class Node:
    """Common base class for every AST node.

    Provides a uniform :meth:`children` iterator used by the generic
    visitors in :mod:`repro.sql.visitors`.
    """

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (default: none)."""
        return iter(())


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expression(Node):
    """Marker base class for value-producing nodes."""


@dataclass(frozen=True)
class Column(Expression):
    """A reference to a column, optionally qualified by a table name."""

    name: str
    table: str | None = None

    def __str__(self) -> str:
        if self.table:
            return f"{self.table}.{self.name}"
        return self.name


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value (number, string, boolean, date, or NULL)."""

    value: LiteralValue

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Star(Expression):
    """The ``*`` placeholder, valid inside ``COUNT(*)`` and ``SELECT *``."""

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class FuncCall(Expression):
    """A function application, aggregate or scalar.

    Parameters
    ----------
    name:
        Upper-cased function name, e.g. ``"COUNT"`` or ``"YEAR"``.
    args:
        Argument expressions. ``COUNT(*)`` is represented as
        ``FuncCall("COUNT", (Star(),))``.
    distinct:
        Whether the aggregate applies to distinct values only
        (``COUNT(DISTINCT x)``).
    """

    name: str
    args: tuple[Expression, ...] = ()
    distinct: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", self.name.upper())

    @property
    def is_aggregate(self) -> bool:
        """True when this call is one of the five aggregate functions."""
        return self.name in AGGREGATE_FUNCTIONS

    def children(self) -> Iterator[Node]:
        return iter(self.args)

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.name}({prefix}{inner})"


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary operation: arithmetic, comparison, or boolean connective."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        object.__setattr__(self, "op", self.op.upper())

    @property
    def is_comparison(self) -> bool:
        return self.op in COMPARISON_OPS

    @property
    def is_boolean(self) -> bool:
        return self.op in BOOLEAN_OPS

    @property
    def is_arithmetic(self) -> bool:
        return self.op in ARITHMETIC_OPS

    def children(self) -> Iterator[Node]:
        yield self.left
        yield self.right

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expression):
    """A unary operation: ``NOT expr`` or arithmetic negation ``-expr``."""

    op: str
    operand: Expression

    def __post_init__(self) -> None:
        object.__setattr__(self, "op", self.op.upper())

    def children(self) -> Iterator[Node]:
        yield self.operand

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


@dataclass(frozen=True)
class InList(Expression):
    """Membership predicate: ``expr [NOT] IN (v1, v2, ...)``."""

    expr: Expression
    values: tuple[Expression, ...]
    negated: bool = False

    def children(self) -> Iterator[Node]:
        yield self.expr
        yield from self.values

    def __str__(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        vals = ", ".join(str(v) for v in self.values)
        return f"({self.expr} {op} ({vals}))"


@dataclass(frozen=True)
class Between(Expression):
    """Range predicate: ``expr [NOT] BETWEEN low AND high`` (inclusive)."""

    expr: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def children(self) -> Iterator[Node]:
        yield self.expr
        yield self.low
        yield self.high

    def __str__(self) -> str:
        op = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.expr} {op} {self.low} AND {self.high})"


@dataclass(frozen=True)
class Like(Expression):
    """String pattern predicate: ``expr [NOT] LIKE pattern``.

    Patterns use standard SQL wildcards: ``%`` (any run) and ``_``
    (single character).
    """

    expr: Expression
    pattern: str
    negated: bool = False

    def children(self) -> Iterator[Node]:
        yield self.expr

    def __str__(self) -> str:
        op = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.expr} {op} {self.pattern!r})"


@dataclass(frozen=True)
class IsNull(Expression):
    """Null test: ``expr IS [NOT] NULL``."""

    expr: Expression
    negated: bool = False

    def children(self) -> Iterator[Node]:
        yield self.expr

    def __str__(self) -> str:
        op = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.expr} {op})"


# ---------------------------------------------------------------------------
# Query structure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem(Node):
    """One entry of the SELECT list: an expression plus an optional alias."""

    expr: Expression
    alias: str | None = None

    def output_name(self, position: int | None = None) -> str:
        """Name this item contributes to the result schema.

        Aliases win; bare columns use their own name; other expressions
        fall back to their canonical text (or ``col_<position>``).
        """
        if self.alias:
            return self.alias
        if isinstance(self.expr, Column):
            return self.expr.name
        if isinstance(self.expr, FuncCall):
            return str(self.expr).lower()
        if position is not None:
            return f"col_{position}"
        return str(self.expr)

    def children(self) -> Iterator[Node]:
        yield self.expr

    def __str__(self) -> str:
        if self.alias:
            return f"{self.expr} AS {self.alias}"
        return str(self.expr)


@dataclass(frozen=True)
class TableRef(Node):
    """A reference to a base table, optionally aliased."""

    name: str
    alias: str | None = None

    def __str__(self) -> str:
        if self.alias:
            return f"{self.name} AS {self.alias}"
        return self.name


#: Join kinds supported by the analytic subset.
JOIN_KINDS = frozenset({"INNER", "LEFT"})


@dataclass(frozen=True)
class Join(Node):
    """One equi-join clause: ``[INNER|LEFT] JOIN table ON left = right``.

    The paper's data layer joins each visualization's parent tables
    "according to the Database Specification" (§3.0.3). Joins here are
    restricted to single-column equi-joins, which is exactly the
    foreign-key shape a star-schema Database Specification produces.

    Parameters
    ----------
    table:
        The joined (right-side) table.
    left_key:
        Join key on the accumulated left relation. May be qualified.
    right_key:
        Join key on ``table``. May be qualified.
    kind:
        ``"INNER"`` (default) or ``"LEFT"`` (left outer).
    """

    table: TableRef
    left_key: Column
    right_key: Column
    kind: str = "INNER"

    def __post_init__(self) -> None:
        kind = self.kind.upper()
        if kind not in JOIN_KINDS:
            raise ValueError(
                f"unsupported join kind {self.kind!r}; expected one of "
                f"{sorted(JOIN_KINDS)}"
            )
        object.__setattr__(self, "kind", kind)

    def children(self) -> Iterator[Node]:
        yield self.table
        yield self.left_key
        yield self.right_key

    def __str__(self) -> str:
        return f"{self.kind} JOIN {self.table} ON {self.left_key} = {self.right_key}"


@dataclass(frozen=True)
class OrderItem(Node):
    """One ORDER BY key: expression plus direction."""

    expr: Expression
    descending: bool = False

    def children(self) -> Iterator[Node]:
        yield self.expr

    def __str__(self) -> str:
        return f"{self.expr} {'DESC' if self.descending else 'ASC'}"


@dataclass(frozen=True)
class Query(Node):
    """A complete SELECT query over one table, optionally joined.

    This is the unit of work throughout the benchmark: dashboards emit
    ``Query`` values, engines execute them, and the equivalence suite
    compares them. Dashboards emit single-table queries; ``joins`` is
    populated when the Database Specification stores a star schema and
    the data layer must reassemble the denormalized view (§3.0.3).
    """

    select: tuple[SelectItem, ...]
    from_table: TableRef
    where: Expression | None = None
    group_by: tuple[Expression, ...] = ()
    having: Expression | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False
    joins: tuple[Join, ...] = ()

    def children(self) -> Iterator[Node]:
        yield from self.select
        yield self.from_table
        yield from self.joins
        if self.where is not None:
            yield self.where
        yield from self.group_by
        if self.having is not None:
            yield self.having
        yield from self.order_by

    @property
    def is_aggregate(self) -> bool:
        """True when the query groups rows or selects any aggregate."""
        if self.group_by:
            return True
        return any(_contains_aggregate(item.expr) for item in self.select)

    def output_names(self) -> list[str]:
        """Column names of the result relation, in SELECT order."""
        return [item.output_name(i) for i, item in enumerate(self.select)]

    def table_names(self) -> list[str]:
        """Names of every table the query reads, FROM first."""
        return [self.from_table.name] + [j.table.name for j in self.joins]

    def with_where(self, predicate: Expression | None) -> "Query":
        """Return a copy of this query with ``where`` replaced."""
        return replace_query(self, where=predicate)

    def and_where(self, predicate: Expression) -> "Query":
        """Return a copy with ``predicate`` AND-ed into the WHERE clause."""
        if self.where is None:
            return self.with_where(predicate)
        return self.with_where(BinaryOp("AND", self.where, predicate))

    def __str__(self) -> str:
        # Deferred import keeps the AST module dependency-free.
        from repro.sql.formatter import format_query

        return format_query(self)


def replace_query(query: Query, **updates: object) -> Query:
    """Dataclass ``replace`` wrapper that tolerates tuple coercion."""
    from dataclasses import replace as _replace

    for key in ("select", "group_by", "order_by", "joins"):
        if key in updates and not isinstance(updates[key], tuple):
            updates[key] = tuple(updates[key])  # type: ignore[arg-type]
    return _replace(query, **updates)


def _contains_aggregate(expr: Expression) -> bool:
    """True when any node in ``expr`` is an aggregate function call."""
    if isinstance(expr, FuncCall) and expr.is_aggregate:
        return True
    return any(
        isinstance(child, Expression) and _contains_aggregate(child)
        for child in expr.children()
    )


def contains_aggregate(expr: Expression) -> bool:
    """Public alias of :func:`_contains_aggregate`."""
    return _contains_aggregate(expr)


def conjuncts(predicate: Expression | None) -> list[Expression]:
    """Flatten a predicate tree into its top-level AND-ed conjuncts.

    ``None`` flattens to the empty list. OR-trees are kept intact as a
    single conjunct.
    """
    if predicate is None:
        return []
    if isinstance(predicate, BinaryOp) and predicate.op == "AND":
        return conjuncts(predicate.left) + conjuncts(predicate.right)
    return [predicate]


def conjoin(predicates: list[Expression]) -> Expression | None:
    """Re-assemble a list of conjuncts into a left-deep AND tree."""
    if not predicates:
        return None
    result = predicates[0]
    for pred in predicates[1:]:
        result = BinaryOp("AND", result, pred)
    return result


def disjuncts(predicate: Expression | None) -> list[Expression]:
    """Flatten a predicate tree into its top-level OR-ed disjuncts."""
    if predicate is None:
        return []
    if isinstance(predicate, BinaryOp) and predicate.op == "OR":
        return disjuncts(predicate.left) + disjuncts(predicate.right)
    return [predicate]


def disjoin(predicates: list[Expression]) -> Expression | None:
    """Re-assemble a list of disjuncts into a left-deep OR tree."""
    if not predicates:
        return None
    result = predicates[0]
    for pred in predicates[1:]:
        result = BinaryOp("OR", result, pred)
    return result


def walk(node: Node) -> Iterator[Node]:
    """Depth-first pre-order traversal of an AST subtree."""
    yield node
    for child in node.children():
        yield from walk(child)


def referenced_columns(node: Node) -> set[str]:
    """All column names referenced anywhere under ``node``."""
    return {n.name for n in walk(node) if isinstance(n, Column)}
