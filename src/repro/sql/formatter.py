"""AST -> SQL text, plus the text normalization used for string matching.

Two entry points:

- :func:`format_query` renders a :class:`~repro.sql.ast.Query` into the
  canonical single-line SQL dialect shared by all engines;
- :func:`normalize_sql` collapses whitespace/case differences in SQL text,
  which implements the "processing to remove additional whitespace" step
  the paper applies before its >95% string-similarity equivalence check.
"""

from __future__ import annotations

import datetime as _dt
import re

from repro.sql.ast import (
    Between,
    BinaryOp,
    Column,
    Expression,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    OrderItem,
    Query,
    SelectItem,
    Star,
    TableRef,
    UnaryOp,
)

#: Binding strength used to decide when parentheses are required.
_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    "NOT": 3,
    "=": 4, "!=": 4, "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "%": 6,
}


def format_query(query: Query) -> str:
    """Render a query as a single-line SQL string."""
    parts = ["SELECT"]
    if query.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_format_select_item(i) for i in query.select))
    parts.append("FROM")
    parts.append(_format_table_ref(query.from_table))
    for join in query.joins:
        keyword = "JOIN" if join.kind == "INNER" else "LEFT JOIN"
        parts.append(
            f"{keyword} {_format_table_ref(join.table)} ON "
            f"{format_expression(join.left_key)} = "
            f"{format_expression(join.right_key)}"
        )
    if query.where is not None:
        parts.append("WHERE")
        parts.append(format_expression(query.where))
    if query.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(format_expression(e) for e in query.group_by))
    if query.having is not None:
        parts.append("HAVING")
        parts.append(format_expression(query.having))
    if query.order_by:
        parts.append("ORDER BY")
        parts.append(", ".join(_format_order_item(o) for o in query.order_by))
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    return " ".join(parts)


def format_expression(expr: Expression, parent_precedence: int = 0) -> str:
    """Render an expression, adding parentheses only where precedence needs."""
    if isinstance(expr, Column):
        if expr.table:
            return f"{expr.table}.{expr.name}"
        return expr.name
    if isinstance(expr, Literal):
        return format_literal(expr.value)
    if isinstance(expr, Star):
        return "*"
    if isinstance(expr, FuncCall):
        inner = ", ".join(format_expression(a) for a in expr.args)
        prefix = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({prefix}{inner})"
    if isinstance(expr, BinaryOp):
        precedence = _PRECEDENCE.get(expr.op, 4)
        left = format_expression(expr.left, precedence)
        # Right side uses precedence + 1 to force parens for same-level
        # right-nested trees, keeping output left-deep and re-parseable.
        right = format_expression(expr.right, precedence + 1)
        text = f"{left} {expr.op} {right}"
        if precedence < parent_precedence:
            return f"({text})"
        return text
    if isinstance(expr, UnaryOp):
        if expr.op == "NOT":
            inner = format_expression(expr.operand, _PRECEDENCE["NOT"])
            text = f"NOT {inner}"
            if _PRECEDENCE["NOT"] < parent_precedence:
                return f"({text})"
            return text
        return f"-{format_expression(expr.operand, 7)}"
    if isinstance(expr, InList):
        op = "NOT IN" if expr.negated else "IN"
        values = ", ".join(format_expression(v) for v in expr.values)
        text = f"{format_expression(expr.expr, 4)} {op} ({values})"
        return _wrap(text, parent_precedence)
    if isinstance(expr, Between):
        op = "NOT BETWEEN" if expr.negated else "BETWEEN"
        text = (
            f"{format_expression(expr.expr, 4)} {op} "
            f"{format_expression(expr.low, 5)} AND "
            f"{format_expression(expr.high, 5)}"
        )
        return _wrap(text, parent_precedence)
    if isinstance(expr, Like):
        op = "NOT LIKE" if expr.negated else "LIKE"
        text = (
            f"{format_expression(expr.expr, 4)} {op} "
            f"{format_literal(expr.pattern)}"
        )
        return _wrap(text, parent_precedence)
    if isinstance(expr, IsNull):
        op = "IS NOT NULL" if expr.negated else "IS NULL"
        text = f"{format_expression(expr.expr, 4)} {op}"
        return _wrap(text, parent_precedence)
    raise TypeError(f"cannot format expression of type {type(expr).__name__}")


def format_literal(value: object) -> str:
    """Render a literal value in SQL syntax."""
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, _dt.datetime):
        return f"'{value.isoformat(sep=' ')}'"
    if isinstance(value, _dt.date):
        return f"'{value.isoformat()}'"
    if isinstance(value, float):
        # repr keeps round-trip precision; trim trailing ".0" only when the
        # value is integral to keep numeric parse/format stable.
        return repr(value)
    return str(value)


def normalize_sql(text: str) -> str:
    """Normalize SQL text for string comparison.

    Collapses runs of whitespace, strips spaces around punctuation, and
    upper-cases everything outside string literals. This mirrors the
    pre-processing the paper applies before its string-similarity check.
    """
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            end = i + 1
            while end < n:
                if text[end] == "'" and not (end + 1 < n and text[end + 1] == "'"):
                    break
                if text[end] == "'":
                    end += 1  # skip escaped quote pair's first char
                end += 1
            out.append(text[i : min(end + 1, n)])
            i = end + 1
        else:
            out.append(ch.upper())
            i += 1
    collapsed = re.sub(r"\s+", " ", "".join(out)).strip()
    collapsed = re.sub(r"\s*([(),])\s*", r"\1", collapsed)
    collapsed = re.sub(r"\s*(=|!=|<=|>=|<|>)\s*", r"\1", collapsed)
    return collapsed


def _format_select_item(item: SelectItem) -> str:
    text = format_expression(item.expr)
    if item.alias:
        return f"{text} AS {item.alias}"
    return text


def _format_table_ref(ref: TableRef) -> str:
    if ref.alias:
        return f"{ref.name} AS {ref.alias}"
    return ref.name


def _format_order_item(item: OrderItem) -> str:
    text = format_expression(item.expr)
    if item.descending:
        return f"{text} DESC"
    return text


def _wrap(text: str, parent_precedence: int) -> str:
    if parent_precedence > _PRECEDENCE["NOT"]:
        return f"({text})"
    return text
