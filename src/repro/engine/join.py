"""Equi-join resolution shared by the pure-Python engines.

The paper's data layer joins each visualization's parent tables
"according to the Database Specification" (§3.0.3). This module gives the
three pure-Python engines that capability: :func:`resolve_joins` folds a
query's join clauses into one combined in-memory relation (hash join, one
build/probe pass per clause) and rewrites the query into the single-table
form the engines already execute. The SQLite wrapper does not use this
module — it formats native ``JOIN`` SQL instead.

Join semantics
--------------

- Single-column equi-joins only (``ON a.k = b.k``), the foreign-key shape
  a star-schema Database Specification produces.
- ``INNER`` drops unmatched left rows; ``LEFT`` keeps them with NULLs in
  the right table's columns.
- A right row participates once per matching left row (standard SQL
  multiplicity).
- Column-name collisions between the two sides are rejected, *except*
  that when both join keys share one name the right-side copy is dropped
  (they are equal by definition on inner joins, and redundant on left
  joins) — the natural-key convenience star schemas rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.engine.table import ColumnDef, Database, Schema, Table
from repro.errors import ExecutionError, SchemaError
from repro.sql.ast import (
    Between,
    BinaryOp,
    Column,
    Expression,
    FuncCall,
    InList,
    IsNull,
    Join,
    Like,
    OrderItem,
    Query,
    SelectItem,
    UnaryOp,
    replace_query,
)


@dataclass
class _Relation:
    """The accumulating left side of a join chain (column-major)."""

    defs: list[ColumnDef]
    columns: dict[str, list[object]]
    num_rows: int
    #: Maps every table name/alias merged so far to its column names.
    scopes: dict[str, set[str]]


def resolve_joins(db: Database, query: Query) -> tuple[Table, Query]:
    """Fold ``query.joins`` into one combined table.

    Returns the combined relation as a :class:`Table` plus the query
    rewritten to single-table form (no joins, no column qualifiers) so
    the existing engine pipelines can execute it unchanged.

    Raises
    ------
    SchemaError
        For unknown tables/columns, ambiguous qualifiers, or column-name
        collisions between the joined tables.
    """
    if not query.joins:
        raise ExecutionError("resolve_joins called on a join-free query")
    base = db.table(query.from_table.name)
    relation = _relation_from_table(base, query.from_table.alias)
    for join in query.joins:
        relation = _apply_join(relation, db, join)
    schema = Schema(relation.defs)
    combined = Table(query.from_table.name, schema, relation.columns)
    rewritten = strip_join_clauses(query, relation.scopes)
    return combined, rewritten


def iter_joined_rows(
    db: Database, query: Query
) -> Iterator[dict[str, object]]:
    """Tuple-at-a-time variant used by the row store.

    Streams the joined rows as dicts without materializing the combined
    relation, preserving the row store's Volcano-style character.
    """
    base = db.table(query.from_table.name)
    joins = list(query.joins)
    probes = []
    names = list(base.schema.names)
    scopes = {query.from_table.name: set(names)}
    if query.from_table.alias:
        scopes[query.from_table.alias] = set(names)
    for join in joins:
        right = db.table(join.table.name)
        left_name = _resolve_key(join.left_key, scopes, "left")
        right_name = _resolve_right_key(join.right_key, right, join.table)
        kept = _kept_right_columns(
            set(names), right, left_name, right_name, join
        )
        table_map: dict[object, list[int]] = {}
        key_column = right.column(right_name)
        for index, value in enumerate(key_column):
            if value is None:
                continue  # NULL keys never match (SQL join semantics).
            table_map.setdefault(value, []).append(index)
        probes.append((join, right, left_name, kept, table_map))
        names.extend(kept)
        scope_names = set(right.schema.names)
        scopes[join.table.name] = scope_names
        if join.table.alias:
            scopes[join.table.alias] = scope_names

    def _expand(
        row: dict[str, object], depth: int
    ) -> Iterator[dict[str, object]]:
        if depth == len(probes):
            yield row
            return
        join, right, left_name, kept, table_map = probes[depth]
        key = row.get(left_name)
        matches = table_map.get(key, []) if key is not None else []
        if not matches:
            if join.kind == "LEFT":
                padded = dict(row)
                for name in kept:
                    padded[name] = None
                yield from _expand(padded, depth + 1)
            return
        for index in matches:
            merged = dict(row)
            for name in kept:
                merged[name] = right.column(name)[index]
            yield from _expand(merged, depth + 1)

    for base_row in base.iter_rows():
        yield from _expand(base_row, 0)


def join_scopes(db: Database, query: Query) -> dict[str, set[str]]:
    """Map every table name/alias the query mentions to its column names."""
    base = db.table(query.from_table.name)
    scopes = {query.from_table.name: set(base.schema.names)}
    if query.from_table.alias:
        scopes[query.from_table.alias] = set(base.schema.names)
    for join in query.joins:
        right = db.table(join.table.name)
        scopes[join.table.name] = set(right.schema.names)
        if join.table.alias:
            scopes[join.table.alias] = set(right.schema.names)
    return scopes


def joined_output_names(db: Database, query: Query) -> list[str]:
    """Column names of the combined relation, in join order."""
    return [name for name, _ in _joined_columns(db, query)]


def expand_star_items(db: Database, query: Query) -> tuple[SelectItem, ...]:
    """Expand ``SELECT *`` over a join into explicit qualified columns.

    The SQLite wrapper uses this so that ``*`` carries the same
    USING-style semantics as the pure engines (one copy of a shared join
    key) instead of SQLite's both-copies expansion.
    """
    return tuple(
        SelectItem(Column(name, table=qualifier), alias=name)
        for name, qualifier in _joined_columns(db, query)
    )


def _joined_columns(
    db: Database, query: Query
) -> list[tuple[str, str]]:
    """(column name, owning table qualifier) pairs of the joined relation."""
    base = db.table(query.from_table.name)
    base_qualifier = query.from_table.alias or query.from_table.name
    pairs = [(name, base_qualifier) for name in base.schema.names]
    names = {name for name, _ in pairs}
    for join in query.joins:
        right = db.table(join.table.name)
        left_name = join.left_key.name
        right_name = _resolve_right_key(join.right_key, right, join.table)
        qualifier = join.table.alias or join.table.name
        kept = _kept_right_columns(names, right, left_name, right_name, join)
        pairs.extend((name, qualifier) for name in kept)
        names.update(kept)
    return pairs


# ---------------------------------------------------------------------------
# Join application (column-major, used by the vectorized engines)
# ---------------------------------------------------------------------------


def _relation_from_table(table: Table, alias: str | None) -> _Relation:
    scopes = {table.name: set(table.schema.names)}
    if alias:
        scopes[alias] = set(table.schema.names)
    return _Relation(
        defs=list(table.schema.columns),
        columns={n: list(table.column(n)) for n in table.schema.names},
        num_rows=table.num_rows,
        scopes=scopes,
    )


def _apply_join(relation: _Relation, db: Database, join: Join) -> _Relation:
    right = db.table(join.table.name)
    left_name = _resolve_key(join.left_key, relation.scopes, "left")
    if left_name not in relation.columns:
        raise SchemaError(
            f"join key {left_name!r} not present in the accumulated relation"
        )
    right_name = _resolve_right_key(join.right_key, right, join.table)
    kept = _kept_right_columns(
        set(relation.columns), right, left_name, right_name, join
    )

    # Build: hash the right key once.
    table_map: dict[object, list[int]] = {}
    for index, value in enumerate(right.column(right_name)):
        if value is None:
            continue
        table_map.setdefault(value, []).append(index)

    # Probe: one pass over the left relation, collecting row pairs.
    left_indices: list[int] = []
    right_indices: list[int] = []  # -1 marks a LEFT-join null extension
    left_key_column = relation.columns[left_name]
    for row_index in range(relation.num_rows):
        key = left_key_column[row_index]
        matches = table_map.get(key, []) if key is not None else []
        if matches:
            for right_index in matches:
                left_indices.append(row_index)
                right_indices.append(right_index)
        elif join.kind == "LEFT":
            left_indices.append(row_index)
            right_indices.append(-1)

    columns = {
        name: [values[i] for i in left_indices]
        for name, values in relation.columns.items()
    }
    defs = list(relation.defs)
    for name in kept:
        values = right.column(name)
        columns[name] = [
            None if i < 0 else values[i] for i in right_indices
        ]
        defs.append(right.schema.column(name))

    scopes = dict(relation.scopes)
    scope_names = set(right.schema.names)
    scopes[join.table.name] = scope_names
    if join.table.alias:
        scopes[join.table.alias] = scope_names
    return _Relation(
        defs=defs,
        columns=columns,
        num_rows=len(left_indices),
        scopes=scopes,
    )


def _kept_right_columns(
    existing: set[str],
    right: Table,
    left_name: str,
    right_name: str,
    join: Join,
) -> list[str]:
    """Right-side columns merged into the output, collisions rejected."""
    kept: list[str] = []
    for name in right.schema.names:
        if name == right_name and name == left_name:
            continue  # shared natural key: keep the left copy only
        if name in existing:
            raise SchemaError(
                f"join with {join.table.name!r} would duplicate column "
                f"{name!r}; rename it in the Database Specification"
            )
        kept.append(name)
    return kept


def _resolve_key(
    key: Column, scopes: dict[str, set[str]], side: str
) -> str:
    """Resolve a (possibly qualified) join key against known scopes."""
    if key.table is not None:
        if key.table not in scopes:
            raise SchemaError(
                f"{side} join key {key} references unknown table/alias "
                f"{key.table!r}; known: {sorted(scopes)}"
            )
        if key.name not in scopes[key.table]:
            raise SchemaError(
                f"{side} join key {key}: no column {key.name!r} in "
                f"{key.table!r}"
            )
    return key.name


def _resolve_right_key(key: Column, right: Table, ref) -> str:
    if key.table is not None and key.table not in (ref.name, ref.alias):
        raise SchemaError(
            f"right join key {key} must reference the joined table "
            f"{ref.name!r}"
        )
    if key.name not in right.schema:
        raise SchemaError(
            f"right join key {key.name!r} not in table {right.name!r}"
        )
    return key.name


# ---------------------------------------------------------------------------
# Query rewriting
# ---------------------------------------------------------------------------


def strip_join_clauses(
    query: Query, scopes: dict[str, set[str]]
) -> Query:
    """Rewrite a join query into single-table form over the combined relation.

    Removes the join clauses and drops table qualifiers from every column
    reference (after validating each qualifier against the join scopes).
    """
    select = tuple(
        SelectItem(_strip(item.expr, scopes), item.alias)
        for item in query.select
    )
    where = _strip(query.where, scopes) if query.where is not None else None
    group_by = tuple(_strip(e, scopes) for e in query.group_by)
    having = _strip(query.having, scopes) if query.having is not None else None
    order_by = tuple(
        OrderItem(_strip(o.expr, scopes), o.descending)
        for o in query.order_by
    )
    return replace_query(
        query,
        select=select,
        where=where,
        group_by=group_by,
        having=having,
        order_by=order_by,
        joins=(),
    )


def _strip(expr: Expression, scopes: dict[str, set[str]]) -> Expression:
    """Recursively drop table qualifiers from column references."""
    if isinstance(expr, Column):
        if expr.table is not None:
            if expr.table not in scopes:
                raise SchemaError(
                    f"column {expr} references unknown table/alias "
                    f"{expr.table!r}; known: {sorted(scopes)}"
                )
            if expr.name not in scopes[expr.table]:
                raise SchemaError(
                    f"column {expr}: no column {expr.name!r} in "
                    f"{expr.table!r}"
                )
            return Column(expr.name)
        return expr
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op, _strip(expr.left, scopes), _strip(expr.right, scopes)
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _strip(expr.operand, scopes))
    if isinstance(expr, FuncCall):
        return FuncCall(
            expr.name,
            tuple(_strip(a, scopes) for a in expr.args),
            expr.distinct,
        )
    if isinstance(expr, InList):
        return InList(
            _strip(expr.expr, scopes),
            tuple(_strip(v, scopes) for v in expr.values),
            expr.negated,
        )
    if isinstance(expr, Between):
        return Between(
            _strip(expr.expr, scopes),
            _strip(expr.low, scopes),
            _strip(expr.high, scopes),
            expr.negated,
        )
    if isinstance(expr, Like):
        return Like(_strip(expr.expr, scopes), expr.pattern, expr.negated)
    if isinstance(expr, IsNull):
        return IsNull(_strip(expr.expr, scopes), expr.negated)
    return expr  # Literal, Star
