"""Secondary indexes for the pure-Python engines.

The paper runs every DBMS cold: "Datasets were denormalized and no
indexing or caching was applied" (§6.2.2). The expert feedback in §6.4
pulls the other way — E5 wants to "mock [indexing] ahead of time" from
simulated workloads. This module supplies the mechanism so that choice
can be ablated: hash indexes accelerate the equality/membership filters
checkbox-style widgets emit, and range indexes accelerate the
``BETWEEN``/comparison filters sliders and brushes emit.

Indexes are *pre-filters*: an engine uses them to shrink the candidate
row set for one or more WHERE conjuncts, then still evaluates the full
predicate over the candidates. Correctness therefore never depends on
index coverage.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.engine.table import Table
from repro.engine.types import sort_key
from repro.errors import SchemaError
from repro.sql.ast import (
    Between,
    BinaryOp,
    Column,
    Expression,
    InList,
    Literal,
)

__all__ = ["HashIndex", "RangeIndex", "TableIndexes", "candidate_indices"]

#: Comparison spellings flipped when the literal is on the left.
_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


class HashIndex:
    """Equality index: value -> sorted row positions."""

    def __init__(self, values: list[object]) -> None:
        buckets: dict[object, list[int]] = {}
        for position, value in enumerate(values):
            if value is None:
                continue  # SQL equality never matches NULL.
            buckets.setdefault(value, []).append(position)
        self._buckets = {
            value: np.array(positions, dtype=np.int64)
            for value, positions in buckets.items()
        }

    def lookup(self, value: object) -> np.ndarray:
        """Row positions whose column equals ``value`` (sorted)."""
        if value is None:
            return np.empty(0, dtype=np.int64)
        return self._buckets.get(value, np.empty(0, dtype=np.int64))

    def lookup_many(self, values: list[object]) -> np.ndarray:
        """Union of row positions over several probe values (sorted)."""
        parts = [self.lookup(v) for v in values]
        nonempty = [p for p in parts if p.size]
        if not nonempty:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(nonempty))

    @property
    def distinct_count(self) -> int:
        return len(self._buckets)


class RangeIndex:
    """Ordered index: supports range and one-sided comparison probes."""

    def __init__(self, values: list[object]) -> None:
        pairs = sorted(
            ((sort_key(v), i) for i, v in enumerate(values) if v is not None),
        )
        self._keys = [k for k, _ in pairs]
        self._positions = np.array(
            [i for _, i in pairs], dtype=np.int64
        )

    def range(
        self,
        low: object | None,
        high: object | None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> np.ndarray:
        """Sorted row positions with values in the given (closed) range.

        ``None`` bounds are open-ended on that side.
        """
        lo = 0
        hi = len(self._keys)
        if low is not None:
            key = sort_key(low)
            lo = (
                bisect.bisect_left(self._keys, key)
                if include_low
                else bisect.bisect_right(self._keys, key)
            )
        if high is not None:
            key = sort_key(high)
            hi = (
                bisect.bisect_right(self._keys, key)
                if include_high
                else bisect.bisect_left(self._keys, key)
            )
        if lo >= hi:
            return np.empty(0, dtype=np.int64)
        return np.sort(self._positions[lo:hi])


class TableIndexes:
    """All indexes built on one table, keyed by column name."""

    def __init__(self, table: Table) -> None:
        self._table = table
        self._hash: dict[str, HashIndex] = {}
        self._range: dict[str, RangeIndex] = {}

    def create(self, column: str) -> None:
        """Build both a hash and a range index on ``column``."""
        if column not in self._table.schema:
            raise SchemaError(
                f"cannot index unknown column {column!r} of table "
                f"{self._table.name!r}"
            )
        values = self._table.column(column)
        self._hash[column] = HashIndex(values)
        self._range[column] = RangeIndex(values)

    @property
    def indexed_columns(self) -> list[str]:
        return sorted(self._hash)

    def hash_index(self, column: str) -> HashIndex | None:
        return self._hash.get(column)

    def range_index(self, column: str) -> RangeIndex | None:
        return self._range.get(column)


def candidate_indices(
    indexes: TableIndexes, predicate: Expression
) -> np.ndarray | None:
    """Row positions matching one WHERE conjunct via an index.

    Returns ``None`` when the conjunct is not index-accelerable (wrong
    shape, negated, or the column is not indexed); the caller falls back
    to a scan for that conjunct.
    """
    if isinstance(predicate, BinaryOp) and predicate.op in {
        "=", "<", "<=", ">", ">=",
    }:
        column, literal, op = _column_literal_sides(predicate)
        if column is None:
            return None
        if op == "=":
            index = indexes.hash_index(column)
            return None if index is None else index.lookup(literal)
        rindex = indexes.range_index(column)
        if rindex is None or literal is None:
            return None
        if op == "<":
            return rindex.range(None, literal, include_high=False)
        if op == "<=":
            return rindex.range(None, literal)
        if op == ">":
            return rindex.range(literal, None, include_low=False)
        return rindex.range(literal, None)
    if (
        isinstance(predicate, InList)
        and not predicate.negated
        and isinstance(predicate.expr, Column)
        and all(isinstance(v, Literal) for v in predicate.values)
    ):
        index = indexes.hash_index(predicate.expr.name)
        if index is None:
            return None
        return index.lookup_many(
            [v.value for v in predicate.values]  # type: ignore[union-attr]
        )
    if (
        isinstance(predicate, Between)
        and not predicate.negated
        and isinstance(predicate.expr, Column)
        and isinstance(predicate.low, Literal)
        and isinstance(predicate.high, Literal)
    ):
        rindex = indexes.range_index(predicate.expr.name)
        if rindex is None:
            return None
        if predicate.low.value is None or predicate.high.value is None:
            return None
        return rindex.range(predicate.low.value, predicate.high.value)
    return None


def _column_literal_sides(
    predicate: BinaryOp,
) -> tuple[str | None, object, str]:
    """Split ``col op lit`` / ``lit op col`` into (column, literal, op)."""
    left, right = predicate.left, predicate.right
    if isinstance(left, Column) and isinstance(right, Literal):
        return left.name, right.value, predicate.op
    if isinstance(left, Literal) and isinstance(right, Column):
        flipped = _FLIPPED.get(predicate.op, predicate.op)
        return right.name, left.value, flipped
    return None, None, predicate.op
