"""In-memory columnar tables shared by the pure-Python engines.

A :class:`Table` stores data column-major (one Python list per column,
with numpy views materialized lazily for the vectorized engine). The same
``Table`` instance can be loaded into any engine; the SQLite wrapper
copies it into a real database.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

import numpy as np

from repro.engine.types import DataType, coerce, infer_type
from repro.errors import SchemaError


@dataclass(frozen=True)
class ColumnDef:
    """One column of a schema: a name plus a logical type."""

    name: str
    dtype: DataType


class Schema:
    """An ordered collection of :class:`ColumnDef` with name lookup."""

    def __init__(self, columns: list[ColumnDef]) -> None:
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema: {names}")
        self._columns = list(columns)
        self._by_name = {c.name: c for c in columns}

    @property
    def columns(self) -> list[ColumnDef]:
        return list(self._columns)

    @property
    def names(self) -> list[str]:
        return [c.name for c in self._columns]

    def __len__(self) -> int:
        return len(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self):
        return iter(self._columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def column(self, name: str) -> ColumnDef:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; available: {self.names}"
            ) from None

    def dtype(self, name: str) -> DataType:
        return self.column(name).dtype

    def numeric_columns(self) -> list[str]:
        return [c.name for c in self._columns if c.dtype.is_numeric]

    def categorical_columns(self) -> list[str]:
        return [c.name for c in self._columns if c.dtype.is_categorical]

    def temporal_columns(self) -> list[str]:
        return [c.name for c in self._columns if c.dtype.is_temporal]

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name}:{c.dtype.value}" for c in self._columns)
        return f"Schema({cols})"


class Table:
    """A named, typed, column-major in-memory relation."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        columns: dict[str, list[object]],
    ) -> None:
        missing = [c for c in schema.names if c not in columns]
        if missing:
            raise SchemaError(f"table {name!r} missing column data: {missing}")
        lengths = {len(columns[c]) for c in schema.names}
        if len(lengths) > 1:
            raise SchemaError(
                f"table {name!r} has ragged columns (lengths {sorted(lengths)})"
            )
        self.name = name
        self.schema = schema
        self._columns = {c: list(columns[c]) for c in schema.names}
        self._num_rows = lengths.pop() if lengths else 0
        self._arrays: dict[str, np.ndarray] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        name: str,
        rows: list[dict[str, object]],
        schema: Schema | None = None,
    ) -> "Table":
        """Build a table from a list of row dictionaries.

        Without an explicit schema, column order follows first-row key
        order and types are inferred from the data.
        """
        if schema is None:
            if not rows:
                raise SchemaError("cannot infer a schema from zero rows")
            names = list(rows[0].keys())
            columns = {n: [row.get(n) for row in rows] for n in names}
            schema = Schema(
                [ColumnDef(n, infer_type(columns[n])) for n in names]
            )
        else:
            columns = {
                c.name: [
                    coerce(row.get(c.name), c.dtype) for row in rows
                ]
                for c in schema
            }
        return cls(name, schema, columns)

    @classmethod
    def from_columns(
        cls,
        name: str,
        columns: dict[str, list[object]],
        schema: Schema | None = None,
    ) -> "Table":
        """Build a table directly from column lists."""
        if schema is None:
            schema = Schema(
                [ColumnDef(n, infer_type(v)) for n, v in columns.items()]
            )
        return cls(name, schema, columns)

    @classmethod
    def from_csv(
        cls,
        name: str,
        path: object,
        schema: Schema | None = None,
    ) -> "Table":
        """Load a table from a CSV file (header row required).

        Without a schema, cell text is parsed into the narrowest fitting
        type (int, float, bool, ISO date/timestamp, string; empty cells
        become NULL) and the column types are then inferred. With a
        schema, every cell is coerced to its declared type instead.
        """
        import csv as _csv
        from pathlib import Path

        from repro.engine.types import parse_cell

        with Path(path).open("r", encoding="utf-8", newline="") as handle:
            reader = _csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration:
                raise SchemaError(f"CSV file {path} is empty") from None
            raw_rows = list(reader)
        for row_number, row in enumerate(raw_rows, start=2):
            if len(row) != len(header):
                raise SchemaError(
                    f"CSV file {path} line {row_number}: expected "
                    f"{len(header)} cells, found {len(row)}"
                )
        if schema is None:
            columns = {
                column: [parse_cell(row[i]) for row in raw_rows]
                for i, column in enumerate(header)
            }
            schema = Schema(
                [ColumnDef(n, infer_type(columns[n])) for n in header]
            )
            return cls(name, schema, columns)
        missing = [c for c in header if c not in schema]
        if missing:
            raise SchemaError(
                f"CSV file {path} has columns not in the schema: {missing}"
            )
        columns = {
            column: [
                coerce(parse_cell(row[i]), schema.dtype(column))
                for row in raw_rows
            ]
            for i, column in enumerate(header)
        }
        return cls(name, schema, columns)

    def to_csv(self, path: object) -> None:
        """Write the table as CSV (header row, empty cells for NULL).

        Note the inherent CSV ambiguity: an empty *string* value is
        indistinguishable from NULL in the file, so it reads back as
        NULL. Use the JSONL log format when that distinction matters.
        """
        import csv as _csv
        from pathlib import Path

        names = self.schema.names
        with Path(path).open("w", encoding="utf-8", newline="") as handle:
            writer = _csv.writer(handle)
            writer.writerow(names)
            columns = [self._columns[n] for n in names]
            for i in range(self._num_rows):
                writer.writerow(
                    [
                        "" if column[i] is None else _csv_cell(column[i])
                        for column in columns
                    ]
                )

    # -- access ----------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return self._num_rows

    def __len__(self) -> int:
        return self._num_rows

    def column(self, name: str) -> list[object]:
        """Column values as a Python list (the storage itself; do not mutate)."""
        if name not in self._columns:
            raise SchemaError(
                f"unknown column {name!r} in table {self.name!r}"
            )
        return self._columns[name]

    def array(self, name: str) -> np.ndarray:
        """Column values as a cached numpy array.

        Numeric columns become float64 (NULL -> NaN) so that vectorized
        predicates and aggregates work uniformly; everything else becomes
        an object array.
        """
        if name not in self._arrays:
            dtype = self.schema.dtype(name)
            values = self.column(name)
            if dtype.is_numeric:
                arr = np.array(
                    [np.nan if v is None else float(v) for v in values],
                    dtype=np.float64,
                )
            elif dtype is DataType.BOOLEAN:
                arr = np.array(
                    [np.nan if v is None else float(v) for v in values],
                    dtype=np.float64,
                )
            else:
                arr = np.array(values, dtype=object)
            self._arrays[name] = arr
        return self._arrays[name]

    def row(self, index: int) -> dict[str, object]:
        """Materialize one row as a dict (used by the row-store engine)."""
        return {n: self._columns[n][index] for n in self.schema.names}

    def iter_rows(self):
        """Yield rows as dicts, tuple-at-a-time."""
        names = self.schema.names
        cols = [self._columns[n] for n in names]
        for i in range(self._num_rows):
            yield {n: c[i] for n, c in zip(names, cols)}

    def head(self, count: int = 5) -> list[dict[str, object]]:
        """First ``count`` rows, for debugging and examples."""
        return [self.row(i) for i in range(min(count, self._num_rows))]

    def distinct_values(self, name: str) -> list[object]:
        """Sorted distinct non-null values of a column.

        Dashboard widgets use this to enumerate their options (checkbox
        members, slider extents).
        """
        from repro.engine.types import sort_key

        values = {v for v in self.column(name) if v is not None}
        return sorted(values, key=sort_key)

    def column_extent(self, name: str) -> tuple[object, object]:
        """(min, max) of the non-null values of a column."""
        values = [v for v in self.column(name) if v is not None]
        if not values:
            return (None, None)
        return (min(values), max(values))

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self.schema)} cols, {self._num_rows} rows)"


class Database:
    """A named collection of tables, the unit an engine loads.

    Every ``add``/``remove`` advances a per-database monotonic counter
    and stamps the touched name with it, so :meth:`version` answers
    "has this table changed since I looked?" — the generation handle
    process-backed execution keys its shared-memory exports on
    (:mod:`repro.concurrency.procpool`).
    """

    def __init__(self, tables: list[Table] | None = None) -> None:
        self._tables: dict[str, Table] = {}
        self._version_clock = 0
        self._versions: dict[str, int] = {}
        for table in tables or []:
            self.add(table)

    def _bump(self, name: str) -> None:
        self._version_clock += 1
        self._versions[name] = self._version_clock

    def add(self, table: Table) -> None:
        self._tables[table.name] = table
        self._bump(table.name)

    def remove(self, name: str) -> None:
        """Drop a table; missing names are ignored (idempotent)."""
        if self._tables.pop(name, None) is not None:
            self._bump(name)

    def version(self, name: str) -> int | None:
        """Monotonic version of a loaded table (``None`` when absent).

        A re-added table gets a strictly larger version than any it had
        before, so a cached export keyed on ``(name, version)`` can
        never be served for reloaded data.
        """
        if name not in self._tables:
            return None
        return self._versions[name]

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(
                f"unknown table {name!r}; available: {sorted(self._tables)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)


def take_columns(table: Table, indices: list[int]) -> dict[str, list[object]]:
    """Slice every column of ``table`` to ``indices``, preserving order.

    The engines use this to materialize shared-scan row subsets without
    shuttling values through result sets — the sliced lists hold the
    original Python objects, so downstream execution is byte-identical
    to filtering inline. Sliced via ``itemgetter`` for C-level speed.
    """
    from operator import itemgetter

    if not indices:
        return {n: [] for n in table.schema.names}
    if len(indices) == 1:
        return {n: [table.column(n)[indices[0]]] for n in table.schema.names}
    getter = itemgetter(*indices)
    return {n: list(getter(table.column(n))) for n in table.schema.names}


def _csv_cell(value: object) -> str:
    """Render one non-null value for CSV output."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, _dt.datetime):
        return value.isoformat(sep=" ")
    if isinstance(value, _dt.date):
        return value.isoformat()
    return str(value)


def timestamp_to_ordinal(value: object) -> float:
    """Map a temporal value to a float for numpy-side arithmetic."""
    if isinstance(value, _dt.datetime):
        return value.timestamp()
    if isinstance(value, _dt.date):
        return _dt.datetime(value.year, value.month, value.day).timestamp()
    raise ValueError(f"not a temporal value: {value!r}")
