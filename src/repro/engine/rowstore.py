"""Tuple-at-a-time row store (PostgreSQL execution-model stand-in).

Executes queries as a Volcano-style pipeline of Python generators:
``scan -> filter -> aggregate/project -> having -> sort -> distinct ->
limit``. Every row is materialized as a dict, which is exactly the
per-tuple interpretation overhead that row-oriented engines pay and the
reason the paper's column stores win on wide aggregation scans.

ORDER BY keys are evaluated while the source context (input row for
projections, group context for aggregates) is still available, then
carried alongside each output row until the sort stage.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.engine.expressions import evaluate_row, make_accumulator
from repro.engine.indexes import TableIndexes, candidate_indices
from repro.engine.interface import DatabaseBackedEngine, ResultSet
from repro.engine.planner import (
    AggregatePlan,
    ProjectionPlan,
    placeholder_row,
    plan_query,
)
from repro.engine.table import Table
from repro.engine.types import sort_key
from repro.sql.ast import Query, Star, conjuncts

#: An output row paired with its pre-computed ORDER BY key values.
_Tagged = tuple[tuple[object, ...], tuple[object, ...]]


class RowStoreEngine(DatabaseBackedEngine):
    """Pure-Python iterator-model engine."""

    name = "rowstore"
    supports_indexes = True
    # The rowstore's accumulators do exact Python-object arithmetic
    # (ints beyond 2^53 stay exact), so its export is a whole-column
    # pickle blob — the documented slow path — rather than a lossy
    # float64 shared-memory view.
    supports_process_shards = True
    process_shard_mode = "pickle"

    def __init__(self) -> None:
        super().__init__()
        self._indexes: dict[str, TableIndexes] = {}

    def load_table(self, table: Table) -> None:
        super().load_table(table)
        self._indexes.pop(table.name, None)  # stale indexes die with the data

    def unload_table(self, name: str) -> None:
        super().unload_table(name)
        self._indexes.pop(name, None)

    def materialize_filtered(
        self, name, source: str, predicate, row_range=None
    ) -> bool:
        if source not in self._db:
            return False
        from itertools import islice

        from repro.engine.table import take_columns

        table = self._db.table(source)
        start, stop = row_range if row_range is not None else (0, table.num_rows)
        if predicate is None:
            indices = list(range(start, stop))
        else:
            # Same per-row semantics as this engine's filter stage; a
            # shard visits only its own row slice.
            indices = [
                i
                for i, row in enumerate(
                    islice(table.iter_rows(), start, stop), start
                )
                if evaluate_row(predicate, row) is True
            ]
        # Route through load_table: replacing a table must drop its
        # stale secondary indexes exactly like a load does.
        self.load_table(Table(name, table.schema, take_columns(table, indices)))
        return True

    def create_index(self, table: str, column: str) -> None:
        indexes = self._indexes.get(table)
        if indexes is None:
            indexes = TableIndexes(self._db.table(table))
            self._indexes[table] = indexes
        indexes.create(column)

    def execute(self, query: Query) -> ResultSet:
        if query.joins:
            from repro.engine.join import (
                iter_joined_rows,
                join_scopes,
                joined_output_names,
                strip_join_clauses,
            )

            source_names = joined_output_names(self._db, query)
            source = iter_joined_rows(self._db, query)
            query = strip_join_clauses(query, join_scopes(self._db, query))
            rows = self._filter(source, query)
        else:
            table = self._db.table(query.from_table.name)
            source_names = list(table.schema.names)
            rows = self._scan_filter(table, query)
        plan = plan_query(query)
        if isinstance(plan, AggregatePlan):
            tagged = self._aggregate(rows, plan)
        else:
            tagged = self._project(rows, plan, source_names)
        return _finish(tagged, plan)

    # -- pipeline stages -----------------------------------------------------

    def _scan_filter(
        self, table: Table, query: Query
    ) -> Iterator[dict[str, object]]:
        candidates = self._index_candidates(table, query.where)
        if candidates is None:
            return self._filter(table.iter_rows(), query)
        # Index pre-filter: visit only candidate rows, then re-check the
        # full predicate (indexes may cover only some conjuncts).
        rows = (table.row(int(i)) for i in candidates)
        return self._filter(rows, query)

    def _index_candidates(self, table: Table, predicate):
        """Sorted row positions satisfying every indexable conjunct."""
        if predicate is None:
            return None
        indexes = self._indexes.get(table.name)
        if indexes is None:
            return None
        candidates = None
        for conjunct in conjuncts(predicate):
            vector = candidate_indices(indexes, conjunct)
            if vector is None:
                continue
            if candidates is None:
                candidates = vector
            else:
                candidates = np.intersect1d(
                    candidates, vector, assume_unique=True
                )
        return candidates

    def _filter(
        self, rows: Iterator[dict[str, object]], query: Query
    ) -> Iterator[dict[str, object]]:
        predicate = query.where
        if predicate is None:
            yield from rows
            return
        for row in rows:
            if evaluate_row(predicate, row) is True:
                yield row

    def _project(
        self,
        rows: Iterator[dict[str, object]],
        plan: ProjectionPlan,
        source_names: list[str],
    ) -> list[_Tagged]:
        output: list[_Tagged] = []
        if plan.select_star:
            plan.output_names = list(source_names)
        for row in rows:
            if plan.select_star:
                values = tuple(row[n] for n in plan.output_names)
            else:
                values = tuple(
                    evaluate_row(e, row) for e in plan.item_exprs
                )
            order_keys = tuple(
                evaluate_row(e, row) for e, _ in plan.order_exprs
            )
            output.append((values, order_keys))
        return output

    def _aggregate(
        self, rows: Iterator[dict[str, object]], plan: AggregatePlan
    ) -> list[_Tagged]:
        groups: dict[tuple[object, ...], list] = {}
        for row in rows:
            key = tuple(evaluate_row(e, row) for e in plan.key_exprs)
            state = groups.get(key)
            if state is None:
                state = [make_accumulator(call) for call in plan.agg_calls]
                groups[key] = state
            for accumulator, call in zip(state, plan.agg_calls):
                if _is_count_star(call):
                    accumulator.add(None)  # COUNT(*) counts rows
                else:
                    accumulator.add(evaluate_row(call.args[0], row))
        if not groups and plan.is_global:
            # Aggregates over an empty input still yield one row.
            groups[()] = [make_accumulator(call) for call in plan.agg_calls]

        output: list[_Tagged] = []
        for key, state in groups.items():
            agg_values = [acc.result() for acc in state]
            context = placeholder_row(key, agg_values)
            if plan.having_expr is not None:
                if evaluate_row(plan.having_expr, context) is not True:
                    continue
            values = tuple(
                evaluate_row(e, context) for e in plan.item_exprs
            )
            order_keys = tuple(
                evaluate_row(e, context) for e, _ in plan.order_exprs
            )
            output.append((values, order_keys))
        return output


def _is_count_star(call) -> bool:
    return (
        call.name == "COUNT"
        and len(call.args) == 1
        and isinstance(call.args[0], Star)
    )


def _finish(
    tagged: list[_Tagged],
    plan: AggregatePlan | ProjectionPlan,
) -> ResultSet:
    """Apply DISTINCT, ORDER BY, LIMIT to tagged output rows."""
    if plan.distinct:
        seen: set[tuple[object, ...]] = set()
        unique: list[_Tagged] = []
        for values, keys in tagged:
            if values not in seen:
                seen.add(values)
                unique.append((values, keys))
        tagged = unique
    if plan.order_exprs:
        # Stable sort by each key, rightmost first, to honor multi-key order.
        for index in range(len(plan.order_exprs) - 1, -1, -1):
            descending = plan.order_exprs[index][1]
            tagged.sort(
                key=lambda pair: sort_key(pair[1][index]),
                reverse=descending,
            )
    rows = [values for values, _ in tagged]
    if plan.limit is not None:
        rows = rows[: plan.limit]
    return ResultSet(plan.output_names, rows)
