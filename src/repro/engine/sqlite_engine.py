"""Real-DBMS wrapper around the standard library ``sqlite3``.

SQLite is one of the four systems the paper benchmarks directly; it also
serves as the reference implementation in our cross-engine consistency
tests (any semantic disagreement between the pure-Python engines and
SQLite on the supported subset is treated as a bug).

Dialect adaptations:

- temporal values are stored as ISO-8601 strings and converted back to
  ``date`` / ``datetime`` on output using the loaded table schemas;
- the benchmark's scalar functions (``YEAR``, ``HOUR``, ``BIN``, ...)
  are registered as SQLite user functions;
- booleans are stored as integers (SQLite has no boolean storage class).

Threading model: ``sqlite3`` connections default to single-thread
ownership (``check_same_thread``), so the naive one-connection engine
fails the moment a worker pool touches it. This engine instead keeps a
**per-thread connection pool**: the creating thread owns the primary
in-memory database; any other thread lazily receives its own replica
connection, snapshotted from the primary with the SQLite backup API
(~2 ms for benchmark-scale tables) and invalidated by a generation
counter whenever a base table changes. Replicas are fully independent
databases, so concurrent scans share no page cache or locks — the C
library releases the GIL and scan groups genuinely parallelize
(``parallel_scans = True``). Temporary shared-scan relations are
created on the calling thread's own connection, which is exactly the
connection the rest of that scan group's task uses.
"""

from __future__ import annotations

import contextlib
import datetime as _dt
import math
import sqlite3
import threading
import weakref

from repro.engine.batch import TEMP_PREFIX
from repro.engine.expressions import apply_scalar_function
from repro.engine.interface import Engine, ResultSet
from repro.engine.table import Table
from repro.engine.types import DataType
from repro.errors import ExecutionError
from repro.sql.ast import Query, Star
from repro.sql.formatter import format_query

_SQLITE_TYPES = {
    DataType.INTEGER: "INTEGER",
    DataType.FLOAT: "REAL",
    DataType.STRING: "TEXT",
    DataType.BOOLEAN: "INTEGER",
    DataType.DATE: "TEXT",
    DataType.TIMESTAMP: "TEXT",
}

#: Functions we register with SQLite; names must match the AST vocabulary.
_REGISTERED_FUNCTIONS = (
    ("YEAR", 1),
    ("MONTH", 1),
    ("DAY", 1),
    ("HOUR", 1),
    ("MINUTE", 1),
    ("DOW", 1),
    ("BIN", 2),
)


class SQLiteEngine(Engine):
    """In-memory SQLite wrapper implementing the common engine interface."""

    name = "sqlite"
    supports_indexes = True
    thread_safe = True
    parallel_scans = True
    # Worker processes reopen a snapshot *file* (the backup API writes
    # one per generation); shared-memory column exports would bypass
    # SQLite's own storage and typing.
    supports_process_shards = True
    process_shard_mode = "file"

    def __init__(self) -> None:
        # The primary holds the authoritative database. It is created
        # with cross-thread access allowed (the sqlite3 build here is
        # SERIALIZED, threadsafety 3) so worker threads can snapshot it
        # via the backup API; Python-side access is guarded by _lock.
        self._primary = sqlite3.connect(":memory:", check_same_thread=False)
        self._owner = threading.get_ident()
        # repro: allow(RA106) — guards the primary connection and the
        # per-thread replica registry; threads themselves come from the
        # worker pool, never from this engine.
        self._lock = threading.RLock()
        #: Bumped on every base-table change; replicas older than this
        #: re-snapshot before their next use.
        self._generation = 0
        self._local = threading.local()
        self._replicas: list[sqlite3.Connection] = []
        self._schemas: dict[str, Table] = {}
        _register_functions(self._primary)

    # -- connection pool ----------------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        """The calling thread's connection (primary for the owner).

        Non-owner threads get a private replica database snapshotted
        from the primary; a stale replica (base table loaded since the
        snapshot) is dropped and re-cloned. Per-thread replicas mean
        concurrent scans never contend on SQLite-side locks.

        Replica lifetime is tied to the thread: the connection hangs
        off a thread-local token whose finalizer closes it and drops it
        from the tracking list, so short-lived pool threads (one pool
        per batch call) cannot accumulate database copies.

        A replica holding live temp relations (a scan group in flight
        on this thread) is *pinned*: a concurrent base-table load may
        have bumped the generation, but re-cloning now would destroy
        the temp mid-group. The group completes against its snapshot —
        consistent results, and the caches drop the store via their
        epoch checks — and the replica refreshes on the next use after
        the pins are gone.
        """
        if threading.get_ident() == self._owner:
            return self._primary
        local = self._local
        conn = getattr(local, "conn", None)
        if conn is not None and (
            local.generation == self._generation
            or getattr(local, "pins", None)
        ):
            return conn
        if conn is not None:
            local.reaper()  # close + untrack the stale replica now
        replica = sqlite3.connect(":memory:", check_same_thread=False)
        _register_functions(replica)
        with self._lock:
            self._primary.backup(replica)
            local.generation = self._generation
            self._replicas.append(replica)
        local.conn = replica
        # The token dies with the thread (thread-local storage is the
        # only reference), triggering the reaper even if this engine
        # lives on long after the worker pool is gone.
        token = _ThreadToken()
        local.token = token
        local.reaper = weakref.finalize(
            token, _reap_replica, self._replicas, self._lock, replica
        )
        return replica

    def _write_connection(self, name: str) -> sqlite3.Connection:
        """Where a write to relation ``name`` belongs.

        Shared-scan temporaries are private to the scan-group task that
        materializes them, so they live on the calling thread's own
        connection. Everything else is base data: it goes to the
        primary, and the generation bump invalidates every replica.
        """
        if name.startswith(TEMP_PREFIX):
            return self._connection()
        self._generation += 1
        return self._primary

    def _pin_temp(self, name: str) -> None:
        """Mark a temp as live on this thread's connection (no re-clone)."""
        if not name.startswith(TEMP_PREFIX):
            return
        pins = getattr(self._local, "pins", None)
        if pins is None:
            pins = self._local.pins = set()
        pins.add(name)

    def _unpin_temp(self, name: str) -> None:
        pins = getattr(self._local, "pins", None)
        if pins:
            pins.discard(name)

    def load_table(self, table: Table) -> None:
        with self._lock:
            conn = self._write_connection(table.name)
            cursor = conn.cursor()
            cursor.execute(f'DROP TABLE IF EXISTS "{table.name}"')
            columns_sql = ", ".join(
                f'"{c.name}" {_SQLITE_TYPES[c.dtype]}' for c in table.schema
            )
            cursor.execute(f'CREATE TABLE "{table.name}" ({columns_sql})')
            placeholders = ", ".join("?" for _ in table.schema)
            names = table.schema.names
            rows = (
                tuple(_to_sqlite(table.column(n)[i]) for n in names)
                for i in range(table.num_rows)
            )
            cursor.executemany(
                f'INSERT INTO "{table.name}" VALUES ({placeholders})', rows
            )
            conn.commit()
            self._schemas[table.name] = table
            self._pin_temp(table.name)

    def unload_table(self, name: str) -> None:
        with self._lock:
            conn = self._write_connection(name)
            conn.execute(f'DROP TABLE IF EXISTS "{name}"')
            conn.commit()
            self._schemas.pop(name, None)
            self._unpin_temp(name)

    def materialize_filtered(
        self, name, source: str, predicate, row_range=None
    ) -> bool:
        """Shared-scan fast path: filter entirely inside SQLite.

        ``CREATE TABLE AS SELECT`` inserts in scan (rowid) order, so
        the temporary relation preserves base order and downstream
        queries return exactly what they would with the filter inline.

        A ``row_range`` (sharded execution) becomes a rowid window:
        tables are loaded with one ``INSERT`` per row in base order, so
        row position ``i`` has rowid ``i + 1`` and a contiguous range
        restricts the scan natively — SQLite seeks straight to the
        shard's first page instead of scanning from the top.
        """
        from repro.sql.formatter import format_expression

        base = self._schemas.get(source)
        if base is None:
            return False
        clauses = []
        if row_range is not None:
            start, stop = row_range
            clauses.append(f"rowid BETWEEN {start + 1} AND {stop}")
        if predicate is not None:
            clauses.append(f"({format_expression(predicate)})")
        where_sql = " AND ".join(clauses) if clauses else "1"
        with self._lock:
            conn = self._write_connection(name)
        try:
            conn.execute(f'DROP TABLE IF EXISTS "{name}"')
            conn.execute(
                f'CREATE TABLE "{name}" AS '
                f'SELECT * FROM "{source}" WHERE {where_sql}'
            )
        except sqlite3.Error as exc:
            raise ExecutionError(
                f"sqlite shared scan failed for {source!r}: {exc}"
            ) from exc
        conn.commit()
        # Register the base table under the temp name so output values
        # convert with the same schema (dates, booleans, ...).
        with self._lock:
            self._schemas[name] = base
            self._pin_temp(name)
        return True

    def table_schema(self, name: str):
        with self._lock:
            table = self._schemas.get(name)
        if table is None:
            return None
        return table.schema

    def table_version(self, name: str):
        """The engine-wide generation, as this table's version.

        The generation counter bumps on *every* base-table write, so it
        is coarser than a per-table version — a process-shard export
        may be rebuilt when an unrelated table changed — but never
        stale: any change to ``name`` is guaranteed to move it.
        """
        if name.startswith(TEMP_PREFIX):
            return None
        with self._lock:
            if name not in self._schemas:
                return None
            return self._generation

    def snapshot_to(self, path) -> None:
        """Write the primary database to ``path`` via the backup API.

        The process-shard export calls this once per generation; worker
        processes restore the file with :meth:`from_snapshot`. Runs
        under the engine lock, so the file is a consistent snapshot
        even with concurrent loads.
        """
        dest = sqlite3.connect(str(path))
        try:
            with self._lock:
                self._primary.backup(dest)
            dest.commit()
        finally:
            dest.close()

    @classmethod
    def from_snapshot(cls, path, table: str, schema, num_rows: int):
        """A fresh engine restored from a :meth:`snapshot_to` file.

        Worker-process side of ``process_shard_mode = "file"``: the
        snapshot is copied into a new in-memory primary (UDFs and all),
        and ``table`` is registered with just enough schema facts for
        output conversion and row-range materialization — rowids were
        preserved by the backup, so shard windows address the same rows
        as on the parent.
        """
        engine = cls()
        src = sqlite3.connect(str(path))
        try:
            src.backup(engine._primary)
        finally:
            src.close()
        engine._schemas[table] = _TableFacts(table, schema, num_rows)
        return engine

    def table_row_count(self, name: str):
        if name.startswith(TEMP_PREFIX):
            # Shared-scan temps register the *base* Table object under
            # the temp name (for output-type restoration), so its
            # num_rows would be the base table's count, not the temp's.
            return None
        with self._lock:
            table = self._schemas.get(name)
        if table is None:
            return None
        return table.num_rows

    def create_index(self, table: str, column: str) -> None:
        if table not in self._schemas:
            raise ExecutionError(f"unknown table {table!r}")
        name = f"idx_{table}_{column}"
        with self._lock:
            self._generation += 1  # replicas re-clone to pick up the index
            self._primary.execute(
                f'CREATE INDEX IF NOT EXISTS "{name}" ON "{table}" ("{column}")'
            )
            self._primary.commit()

    def execute(self, query: Query) -> ResultSet:
        with self._lock:  # stable snapshot vs concurrent load_table
            schemas = dict(self._schemas)
        if query.joins and any(
            isinstance(item.expr, Star) for item in query.select
        ):
            from repro.engine.join import expand_star_items
            from repro.engine.table import Database
            from repro.sql.ast import replace_query

            db = Database(list(schemas.values()))
            query = replace_query(
                query, select=expand_star_items(db, query)
            )
        sql = format_query(query)
        conn = self._connection()
        # Replica reads are lock-free (private databases); reads on the
        # shared primary serialize against base-table writes arriving
        # from worker threads — DDL on a connection with an open read
        # cursor raises 'database table is locked' otherwise.
        guard = (
            self._lock if conn is self._primary else contextlib.nullcontext()
        )
        with guard:
            try:
                cursor = conn.execute(sql)
            except sqlite3.Error as exc:
                raise ExecutionError(
                    f"sqlite error for {sql!r}: {exc}"
                ) from exc
            fetched = cursor.fetchall()
            columns = [d[0] for d in cursor.description]
        tables = [
            schemas[name]
            for name in query.table_names()
            if name in schemas
        ]
        converters = [
            _output_converter(name, tables) for name in columns
        ]
        rows = [
            tuple(conv(v) for conv, v in zip(converters, row))
            for row in fetched
        ]
        return ResultSet(columns, rows)

    def close(self) -> None:
        with self._lock:
            for replica in self._replicas:
                try:
                    replica.close()
                except sqlite3.Error:  # pragma: no cover - best-effort
                    pass
            self._replicas.clear()
            self._primary.close()


class _TableFacts:
    """The slice of a :class:`Table` the SQLite wrapper actually reads.

    ``_schemas`` values are consulted for ``.schema`` (output-type
    restoration) and ``.num_rows`` (row counts); a worker restoring a
    snapshot has those facts but not the column data, so it registers
    this stand-in instead of a full table.
    """

    __slots__ = ("name", "schema", "num_rows")

    def __init__(self, name: str, schema, num_rows: int) -> None:
        self.name = name
        self.schema = schema
        self.num_rows = num_rows


class _ThreadToken:
    """Weakref-able marker living in one thread's local storage."""

    __slots__ = ("__weakref__",)


def _reap_replica(replicas, lock, conn) -> None:
    """Finalizer: close one replica and drop it from tracking.

    Module-level (no engine reference) so a dead thread's replica is
    reclaimed even while the engine object stays alive. Idempotent with
    ``close()``: double-closing a sqlite3 connection is a no-op.
    """
    with lock:
        try:
            replicas.remove(conn)
        except ValueError:
            pass
    try:
        conn.close()
    except sqlite3.Error:  # pragma: no cover - close is best-effort
        pass


def _register_functions(conn: sqlite3.Connection) -> None:
    """Install the benchmark's scalar UDFs on one connection."""
    for func_name, arity in _REGISTERED_FUNCTIONS:
        conn.create_function(
            func_name, arity, _make_udf(func_name), deterministic=True
        )


def _make_udf(name: str):
    """Adapt a shared scalar function to a SQLite UDF."""

    def udf(*args: object) -> object:
        result = apply_scalar_function(name, list(args))
        if isinstance(result, float) and math.isnan(result):
            return None
        return result

    return udf


def _to_sqlite(value: object) -> object:
    if value is None:
        return None
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, _dt.datetime):
        return value.isoformat(sep=" ")
    if isinstance(value, _dt.date):
        return value.isoformat()
    return value


def _output_converter(column_name: str, tables: list[Table]):
    """Build a converter restoring temporal/boolean types on output.

    With joins, an output column may originate from any of the query's
    tables; the first table defining the name wins (the join layer
    rejects cross-table name collisions, so this is unambiguous).
    """
    for table in tables:
        if column_name in table.schema:
            dtype = table.schema.dtype(column_name)
            if dtype is DataType.DATE:
                return _parse_date
            if dtype is DataType.TIMESTAMP:
                return _parse_timestamp
            if dtype is DataType.BOOLEAN:
                return _parse_boolean
            return _identity
    return _identity


def _identity(value: object) -> object:
    return value


def _parse_date(value: object) -> object:
    if isinstance(value, str):
        return _dt.date.fromisoformat(value)
    return value


def _parse_timestamp(value: object) -> object:
    if isinstance(value, str):
        return _dt.datetime.fromisoformat(value)
    return value


def _parse_boolean(value: object) -> object:
    if isinstance(value, int):
        return bool(value)
    return value
