"""Real-DBMS wrapper around the standard library ``sqlite3``.

SQLite is one of the four systems the paper benchmarks directly; it also
serves as the reference implementation in our cross-engine consistency
tests (any semantic disagreement between the pure-Python engines and
SQLite on the supported subset is treated as a bug).

Dialect adaptations:

- temporal values are stored as ISO-8601 strings and converted back to
  ``date`` / ``datetime`` on output using the loaded table schemas;
- the benchmark's scalar functions (``YEAR``, ``HOUR``, ``BIN``, ...)
  are registered as SQLite user functions;
- booleans are stored as integers (SQLite has no boolean storage class).
"""

from __future__ import annotations

import datetime as _dt
import math
import sqlite3

from repro.engine.expressions import apply_scalar_function
from repro.engine.interface import Engine, ResultSet
from repro.engine.table import Table
from repro.engine.types import DataType
from repro.errors import ExecutionError
from repro.sql.ast import Query, Star
from repro.sql.formatter import format_query

_SQLITE_TYPES = {
    DataType.INTEGER: "INTEGER",
    DataType.FLOAT: "REAL",
    DataType.STRING: "TEXT",
    DataType.BOOLEAN: "INTEGER",
    DataType.DATE: "TEXT",
    DataType.TIMESTAMP: "TEXT",
}

#: Functions we register with SQLite; names must match the AST vocabulary.
_REGISTERED_FUNCTIONS = (
    ("YEAR", 1),
    ("MONTH", 1),
    ("DAY", 1),
    ("HOUR", 1),
    ("MINUTE", 1),
    ("DOW", 1),
    ("BIN", 2),
)


class SQLiteEngine(Engine):
    """In-memory SQLite wrapper implementing the common engine interface."""

    name = "sqlite"
    supports_indexes = True

    def __init__(self) -> None:
        self._conn = sqlite3.connect(":memory:")
        self._schemas: dict[str, Table] = {}
        for func_name, arity in _REGISTERED_FUNCTIONS:
            self._conn.create_function(
                func_name, arity, _make_udf(func_name), deterministic=True
            )

    def load_table(self, table: Table) -> None:
        cursor = self._conn.cursor()
        cursor.execute(f'DROP TABLE IF EXISTS "{table.name}"')
        columns_sql = ", ".join(
            f'"{c.name}" {_SQLITE_TYPES[c.dtype]}' for c in table.schema
        )
        cursor.execute(f'CREATE TABLE "{table.name}" ({columns_sql})')
        placeholders = ", ".join("?" for _ in table.schema)
        names = table.schema.names
        rows = (
            tuple(_to_sqlite(table.column(n)[i]) for n in names)
            for i in range(table.num_rows)
        )
        cursor.executemany(
            f'INSERT INTO "{table.name}" VALUES ({placeholders})', rows
        )
        self._conn.commit()
        self._schemas[table.name] = table

    def unload_table(self, name: str) -> None:
        self._conn.execute(f'DROP TABLE IF EXISTS "{name}"')
        self._conn.commit()
        self._schemas.pop(name, None)

    def materialize_filtered(self, name, source: str, predicate) -> bool:
        """Shared-scan fast path: filter entirely inside SQLite.

        ``CREATE TABLE AS SELECT`` inserts in scan (rowid) order, so
        the temporary relation preserves base order and downstream
        queries return exactly what they would with the filter inline.
        """
        from repro.sql.formatter import format_expression

        base = self._schemas.get(source)
        if base is None:
            return False
        where_sql = format_expression(predicate)
        try:
            self._conn.execute(f'DROP TABLE IF EXISTS "{name}"')
            self._conn.execute(
                f'CREATE TABLE "{name}" AS '
                f'SELECT * FROM "{source}" WHERE {where_sql}'
            )
        except sqlite3.Error as exc:
            raise ExecutionError(
                f"sqlite shared scan failed for {source!r}: {exc}"
            ) from exc
        self._conn.commit()
        # Register the base table under the temp name so output values
        # convert with the same schema (dates, booleans, ...).
        self._schemas[name] = base
        return True

    def table_schema(self, name: str):
        table = self._schemas.get(name)
        if table is None:
            return None
        return table.schema

    def create_index(self, table: str, column: str) -> None:
        if table not in self._schemas:
            raise ExecutionError(f"unknown table {table!r}")
        name = f"idx_{table}_{column}"
        self._conn.execute(
            f'CREATE INDEX IF NOT EXISTS "{name}" ON "{table}" ("{column}")'
        )
        self._conn.commit()

    def execute(self, query: Query) -> ResultSet:
        if query.joins and any(
            isinstance(item.expr, Star) for item in query.select
        ):
            from repro.engine.join import expand_star_items
            from repro.engine.table import Database
            from repro.sql.ast import replace_query

            db = Database(list(self._schemas.values()))
            query = replace_query(
                query, select=expand_star_items(db, query)
            )
        sql = format_query(query)
        try:
            cursor = self._conn.execute(sql)
        except sqlite3.Error as exc:
            raise ExecutionError(f"sqlite error for {sql!r}: {exc}") from exc
        columns = [d[0] for d in cursor.description]
        tables = [
            self._schemas[name]
            for name in query.table_names()
            if name in self._schemas
        ]
        converters = [
            _output_converter(name, tables) for name in columns
        ]
        rows = [
            tuple(conv(v) for conv, v in zip(converters, row))
            for row in cursor.fetchall()
        ]
        return ResultSet(columns, rows)

    def close(self) -> None:
        self._conn.close()


def _make_udf(name: str):
    """Adapt a shared scalar function to a SQLite UDF."""

    def udf(*args: object) -> object:
        result = apply_scalar_function(name, list(args))
        if isinstance(result, float) and math.isnan(result):
            return None
        return result

    return udf


def _to_sqlite(value: object) -> object:
    if value is None:
        return None
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, _dt.datetime):
        return value.isoformat(sep=" ")
    if isinstance(value, _dt.date):
        return value.isoformat()
    return value


def _output_converter(column_name: str, tables: list[Table]):
    """Build a converter restoring temporal/boolean types on output.

    With joins, an output column may originate from any of the query's
    tables; the first table defining the name wins (the join layer
    rejects cross-table name collisions, so this is unambiguous).
    """
    for table in tables:
        if column_name in table.schema:
            dtype = table.schema.dtype(column_name)
            if dtype is DataType.DATE:
                return _parse_date
            if dtype is DataType.TIMESTAMP:
                return _parse_timestamp
            if dtype is DataType.BOOLEAN:
                return _parse_boolean
            return _identity
    return _identity


def _identity(value: object) -> object:
    return value


def _parse_date(value: object) -> object:
    if isinstance(value, str):
        return _dt.date.fromisoformat(value)
    return value


def _parse_timestamp(value: object) -> object:
    if isinstance(value, str):
        return _dt.datetime.fromisoformat(value)
    return value


def _parse_boolean(value: object) -> object:
    if isinstance(value, int):
        return bool(value)
    return value
