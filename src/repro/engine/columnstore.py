"""Vectorized column store (DuckDB execution-model stand-in).

Executes queries as whole-column numpy operations: the WHERE clause
becomes one boolean mask, grouping assigns dense group ids, and
aggregates are computed with ``np.bincount`` / ``np.minimum.at`` style
scatter operations. Per-row Python interpretation is avoided on the hot
path, which is what gives this engine the DuckDB-like profile on
aggregation-heavy dashboard queries.
"""

from __future__ import annotations

import numpy as np

from repro.engine.expressions import (
    VectorContext,
    evaluate_mask,
    evaluate_row,
    evaluate_values,
    make_accumulator,
)
from repro.engine.interface import DatabaseBackedEngine, ResultSet
from repro.engine.planner import (
    AggregatePlan,
    ProjectionPlan,
    placeholder_row,
    plan_query,
)
from repro.engine.table import Table, take_columns
from repro.engine.types import sort_key
from repro.sql.ast import FuncCall, Query, SelectItem, Star, TableRef


def filtered_table(table: Table, name: str, predicate, row_range=None) -> Table:
    """Rows of ``table`` satisfying ``predicate``, in base order.

    Shared by the vectorized engines to materialize batch shared-scan
    relations without shuttling rows through result sets: one mask over
    the column arrays, then plain column slicing — the values stay the
    original Python objects, so downstream execution is byte-identical
    to filtering inline.

    ``row_range`` restricts the scan to a ``(start, stop)`` slice of
    base row positions (sharded execution): the predicate mask is
    evaluated over the sliced arrays only, so each shard's scan cost is
    proportional to its slice. ``predicate=None`` materializes the bare
    slice.
    """
    from repro.engine.derived import rewrite_query

    start, stop = row_range if row_range is not None else (0, table.num_rows)
    if predicate is None:
        return Table(
            name, table.schema, take_columns(table, list(range(start, stop)))
        )
    probe = Query(
        select=(SelectItem(Star()),),
        from_table=TableRef(table.name),
        where=predicate,
    )
    arrays = {n: table.array(n) for n in table.schema.names}
    probe = rewrite_query(probe, table, arrays)
    if row_range is not None:
        # Derived arrays are built full-length; slice everything after
        # the rewrite so positions stay aligned.
        arrays = {n: a[start:stop] for n, a in arrays.items()}
    ctx = VectorContext(arrays, stop - start)
    indices = (np.nonzero(evaluate_mask(probe.where, ctx))[0] + start).tolist()
    return Table(name, table.schema, take_columns(table, indices))


class VectorStoreEngine(DatabaseBackedEngine):
    """Pure-Python vectorized (batch-at-a-time) engine."""

    name = "vectorstore"
    # Numeric columns already execute through float64 ``Table.array``
    # views, so the shared-memory export's float64 round trip is
    # execution-equivalent; object columns travel as pickle blobs.
    supports_process_shards = True
    process_shard_mode = "shm"

    def materialize_filtered(
        self, name, source: str, predicate, row_range=None
    ) -> bool:
        if source not in self._db:
            return False
        self.load_table(
            filtered_table(self._db.table(source), name, predicate, row_range)
        )
        return True

    def execute(self, query: Query) -> ResultSet:
        from repro.engine.derived import rewrite_query

        if query.joins:
            from repro.engine.join import resolve_joins

            table, query = resolve_joins(self._db, query)
        else:
            table = self._db.table(query.from_table.name)
        arrays = {name: table.array(name) for name in table.schema.names}
        query = rewrite_query(query, table, arrays)
        ctx = VectorContext(arrays, table.num_rows)
        if query.where is not None:
            mask = evaluate_mask(query.where, ctx)
            ctx = _filtered_context(ctx, mask)
        plan = plan_query(query)
        if isinstance(plan, AggregatePlan):
            return self._aggregate(ctx, plan, table)
        return self._project(ctx, plan, table)

    # -- projection ------------------------------------------------------------

    def _project(
        self, ctx: VectorContext, plan: ProjectionPlan, table: Table
    ) -> ResultSet:
        if plan.select_star:
            plan.output_names = list(table.schema.names)
            columns = [ctx.column(n) for n in plan.output_names]
        else:
            columns = [evaluate_values(e, ctx) for e in plan.item_exprs]
        order_columns = [
            evaluate_values(e, ctx) for e, _ in plan.order_exprs
        ]
        rows = _columns_to_rows(columns, ctx.num_rows)
        return _finish_vector(rows, order_columns, plan)

    # -- aggregation -------------------------------------------------------------

    def _aggregate(
        self, ctx: VectorContext, plan: AggregatePlan, table: Table
    ) -> ResultSet:
        num_rows = ctx.num_rows
        if plan.is_global:
            group_count = 1
            gids = np.zeros(num_rows, dtype=np.int64)
            group_keys: list[tuple[object, ...]] = [()]
        else:
            key_arrays = [
                evaluate_values(e, ctx) for e in plan.key_exprs
            ]
            gids, group_keys = _assign_group_ids(key_arrays, num_rows)
            group_count = len(group_keys)

        agg_columns = [
            self._compute_aggregate(call, ctx, gids, group_count)
            for call in plan.agg_calls
        ]

        output: list[tuple[tuple[object, ...], tuple[object, ...]]] = []
        for gid in range(group_count):
            aggs = [col[gid] for col in agg_columns]
            context = placeholder_row(group_keys[gid], aggs)
            if plan.having_expr is not None:
                if evaluate_row(plan.having_expr, context) is not True:
                    continue
            values = tuple(
                evaluate_row(e, context) for e in plan.item_exprs
            )
            order_keys = tuple(
                evaluate_row(e, context) for e, _ in plan.order_exprs
            )
            output.append((values, order_keys))
        return _finish_tagged(output, plan)

    def _compute_aggregate(
        self,
        call: FuncCall,
        ctx: VectorContext,
        gids: np.ndarray,
        group_count: int,
    ) -> list[object]:
        """One aggregate over all groups at once."""
        if call.name == "COUNT" and isinstance(call.args[0], Star):
            counts = np.bincount(gids, minlength=group_count)
            return [int(c) for c in counts]
        values = evaluate_values(call.args[0], ctx)
        if call.distinct:
            return _distinct_aggregate(call, values, gids, group_count)
        if values.dtype == np.float64:
            notnull = ~np.isnan(values)
            if call.name == "COUNT":
                counts = np.bincount(gids[notnull], minlength=group_count)
                return [int(c) for c in counts]
            if call.name in ("SUM", "AVG"):
                sums = np.bincount(
                    gids[notnull],
                    weights=values[notnull],
                    minlength=group_count,
                )
                counts = np.bincount(gids[notnull], minlength=group_count)
                if call.name == "SUM":
                    return [
                        _maybe_int(s) if c else None
                        for s, c in zip(sums, counts)
                    ]
                return [
                    (s / c) if c else None for s, c in zip(sums, counts)
                ]
            if call.name in ("MIN", "MAX"):
                init = np.inf if call.name == "MIN" else -np.inf
                out = np.full(group_count, init, dtype=np.float64)
                if call.name == "MIN":
                    np.minimum.at(out, gids[notnull], values[notnull])
                else:
                    np.maximum.at(out, gids[notnull], values[notnull])
                return [
                    _maybe_int(v) if np.isfinite(v) else None for v in out
                ]
        # Object-typed values (strings, dates): per-group accumulation.
        return _object_aggregate(call, values, gids, group_count)


def _filtered_context(ctx: VectorContext, mask: np.ndarray) -> VectorContext:
    arrays = {name: arr[mask] for name, arr in ctx.arrays.items()}
    return VectorContext(arrays, int(mask.sum()))


def _assign_group_ids(
    key_arrays: list[np.ndarray], num_rows: int
) -> tuple[np.ndarray, list[tuple[object, ...]]]:
    """Dense group ids + the distinct key tuple for each id.

    Single float keys (the common case: one grouping column, or a
    binned/derived temporal dimension) are grouped entirely in numpy via
    ``np.unique``; everything else falls back to a hash loop.
    """
    if len(key_arrays) == 1 and key_arrays[0].dtype == np.float64:
        values = key_arrays[0]
        # NaN keys group together (SQL groups NULLs): substitute a
        # sentinel below the data range, which np.unique sorts first.
        nan_mask = np.isnan(values)
        if nan_mask.any():
            finite = values[~nan_mask]
            sentinel = (float(finite.min()) - 1.0) if finite.size else 0.0
            values = np.where(nan_mask, sentinel, values)
        unique, gids = np.unique(values, return_inverse=True)
        key_list = [
            (None,)
            if nan_mask.any() and _was_nan_group(key_arrays[0], gids, gid)
            else (_canonical_key(float(unique[gid])),)
            for gid in range(len(unique))
        ]
        return gids.astype(np.int64), key_list
    gids = np.empty(num_rows, dtype=np.int64)
    keys: dict[tuple[object, ...], int] = {}
    key_list2: list[tuple[object, ...]] = []
    columns = [list(a) for a in key_arrays]
    for i in range(num_rows):
        key = tuple(_canonical_key(col[i]) for col in columns)
        gid = keys.get(key)
        if gid is None:
            gid = len(key_list2)
            keys[key] = gid
            key_list2.append(key)
        gids[i] = gid
    return gids, key_list2


def _was_nan_group(
    original: np.ndarray, gids: np.ndarray, gid: int
) -> bool:
    """Whether group ``gid``'s members were NaN before substitution."""
    members = np.flatnonzero(gids == gid)
    return members.size > 0 and bool(np.isnan(original[members[0]]))


def _canonical_key(value: object) -> object:
    """NaN group keys behave as NULL; integral floats become ints."""
    if isinstance(value, float):
        if np.isnan(value):
            return None
        if value == int(value):
            return int(value)
    return value


def _distinct_aggregate(
    call: FuncCall, values: np.ndarray, gids: np.ndarray, group_count: int
) -> list[object]:
    sets: list[set[object]] = [set() for _ in range(group_count)]
    for gid, value in zip(gids, values):
        if value is None or (isinstance(value, float) and np.isnan(value)):
            continue
        sets[gid].add(_canonical_key(value))
    results: list[object] = []
    for members in sets:
        accumulator = make_accumulator(call)
        for member in members:
            accumulator.add(member)
        results.append(accumulator.result())
    return results


def _object_aggregate(
    call: FuncCall, values: np.ndarray, gids: np.ndarray, group_count: int
) -> list[object]:
    accumulators = [make_accumulator(call) for _ in range(group_count)]
    for gid, value in zip(gids, values):
        if isinstance(value, float) and np.isnan(value):
            value = None
        accumulators[gid].add(value)
    return [acc.result() for acc in accumulators]


def _columns_to_rows(
    columns: list[np.ndarray], num_rows: int
) -> list[tuple[object, ...]]:
    pythonized = [_pythonize(col) for col in columns]
    return [
        tuple(col[i] for col in pythonized) for i in range(num_rows)
    ]


def _pythonize(column: np.ndarray) -> list[object]:
    """numpy column -> Python values (NaN -> None, integral floats -> int)."""
    if column.dtype == np.float64:
        return [
            None if np.isnan(v) else _maybe_int(v) for v in column.tolist()
        ]
    return list(column)


def _maybe_int(value: float) -> object:
    if float(value).is_integer() and abs(value) < 1e15:
        return int(value)
    return float(value)


def _finish_vector(
    rows: list[tuple[object, ...]],
    order_columns: list[np.ndarray],
    plan: ProjectionPlan,
) -> ResultSet:
    order_values = [_pythonize(c) for c in order_columns]
    tagged = [
        (row, tuple(col[i] for col in order_values))
        for i, row in enumerate(rows)
    ]
    return _finish_tagged(tagged, plan)


def _finish_tagged(
    tagged: list[tuple[tuple[object, ...], tuple[object, ...]]],
    plan: AggregatePlan | ProjectionPlan,
) -> ResultSet:
    if plan.distinct:
        seen: set[tuple[object, ...]] = set()
        unique = []
        for values, keys in tagged:
            if values not in seen:
                seen.add(values)
                unique.append((values, keys))
        tagged = unique
    if plan.order_exprs:
        for index in range(len(plan.order_exprs) - 1, -1, -1):
            descending = plan.order_exprs[index][1]
            tagged.sort(
                key=lambda pair: sort_key(pair[1][index]),
                reverse=descending,
            )
    rows = [values for values, _ in tagged]
    if plan.limit is not None:
        rows = rows[: plan.limit]
    return ResultSet(plan.output_names, rows)
