"""LRU result caches, as an engine wrapper.

The paper's environment applies "no indexing or caching" (§6.2.2), yet
dashboard workloads are highly repetitive: toggling a checkbox off and
on re-emits a query the DBMS just answered. :class:`CachedEngine` wraps
any engine with an exact-match result cache keyed on the canonical SQL
text, making that design choice ablatable
(``benchmarks/bench_ablation_indexes_cache.py``).

Two cache layers cover the two execution modes:

- the **per-query cache** answers repeated single queries;
- the **scan-group cache** (:class:`ScanGroupCache`) answers whole
  batch groups — every result a shared scan produced, keyed by
  (table, normalized predicate) — so a repeated dashboard refresh costs
  zero engine work until the data changes.

Invalidation is table-aware: ``load_table`` drops only the entries that
read the replaced table (join results name every table they touched).
Temporary shared-scan relations (``TEMP_PREFIX``) are exempt — they are
derived data, loaded and dropped inside a single batch execution — and
queries against them are never cached, so they can never go stale.

Thread-safety: the wrapper is safe to hammer from a worker pool
(``thread_safe = True``). Its own structures are mutex-guarded; calls
into a non-thread-safe inner engine serialize through that engine's
:func:`~repro.concurrency.policy.execution_slot`; concurrent misses on
the same SQL collapse to one inner execution (single-flight); and an
epoch counter closes the compute/invalidate race — a result computed
against pre-mutation data is never stored after the mutation
invalidated its table (the "lost invalidation" the stress tests guard).

The caches are transparent: results are returned as fresh
:class:`~repro.engine.interface.ResultSet` instances (rows are immutable
tuples, so sharing them is safe).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.engine.batch import TEMP_PREFIX
from repro.engine.interface import Engine, QueryResult, ResultSet
from repro.engine.table import Schema, Table
from repro.errors import ConfigError
from repro.sql.ast import Query
from repro.sql.formatter import format_query
from repro.telemetry import metrics as _metrics
from repro.telemetry import trace as _trace


class ScanGroupCache:
    """LRU cache of whole batch scan groups.

    One entry per (table, normalized predicate) holds every member
    result the group's shared scan produced, keyed by canonical SQL.
    Entries fill incrementally: a later batch may add new member queries
    to an existing group. ``load_table`` on the owning engine must call
    :meth:`invalidate_table` — a mutated table silently serving stale
    group results is exactly the regression the cache tests guard.

    All operations are mutex-guarded; concurrent scan-group tasks may
    look up and store freely. Writers that computed against data that
    may have mutated mid-flight pass the :meth:`epoch` they observed
    before computing — a store whose table epoch has moved on is
    silently dropped rather than caching a stale group.
    """

    #: Member results retained per group; a long-lived session batching
    #: ever-varying SELECT shapes under one filter stays bounded.
    MAX_MEMBERS_PER_GROUP = 64

    def __init__(self, capacity: int = 128) -> None:
        if capacity <= 0:
            raise ConfigError("scan-group cache capacity must be positive")
        self._capacity = capacity
        # repro: allow(RA106) — leaf lock guarding the LRU map only
        # (ARCHITECTURE §8); never held across engine work, no threads
        # are created here.
        self._lock = threading.RLock()
        self._groups: OrderedDict[
            tuple[str, str], dict[str, ResultSet]
        ] = OrderedDict()
        #: Per-table invalidation counters backing the epoch protocol.
        self._epochs: dict[str, int] = {}
        #: Cache-wide clears; part of every epoch so ``clear`` also
        #: fences tables that were never individually invalidated.
        self._clears = 0

    @property
    def size(self) -> int:
        """Number of cached scan groups."""
        with self._lock:
            return len(self._groups)

    def epoch(self, table: str) -> tuple[int, int]:
        """The table's invalidation epoch; capture before computing.

        Opaque to callers: compare for equality only. Moves when the
        table is invalidated *or* the whole cache is cleared.
        """
        with self._lock:
            return (self._clears, self._epochs.get(table, 0))

    def lookup(self, table: str, predicate_key: str) -> dict[str, ResultSet]:
        """The group's cached results by SQL text (empty when absent).

        Returns a shallow copy so callers cannot corrupt the entry.
        """
        with self._lock:
            entry = self._groups.get((table, predicate_key))
            if entry is None:
                return {}
            self._groups.move_to_end((table, predicate_key))
            return dict(entry)

    def store(
        self,
        table: str,
        predicate_key: str,
        results: dict[str, ResultSet],
        epoch: tuple[int, int] | None = None,
    ) -> None:
        """Add one group's results, merging into any existing entry.

        With ``epoch`` given, the store is dropped when the table was
        invalidated (or the cache cleared) since the caller captured it
        — the results were computed against data that no longer exists.
        """
        with self._lock:
            if epoch is not None and epoch != (
                self._clears,
                self._epochs.get(table, 0),
            ):
                return
            key = (table, predicate_key)
            entry = self._groups.get(key)
            if entry is None:
                entry = {}
                self._groups[key] = entry
            for sql, result in results.items():
                entry.pop(sql, None)  # re-store refreshes recency
                entry[sql] = ResultSet(result.columns, result.rows)
            while len(entry) > self.MAX_MEMBERS_PER_GROUP:
                del entry[next(iter(entry))]  # drop least-recently stored
            self._groups.move_to_end(key)
            while len(self._groups) > self._capacity:
                self._groups.popitem(last=False)

    def invalidate_table(self, name: str) -> None:
        """Drop every group that scanned ``name``."""
        with self._lock:
            self._epochs[name] = self._epochs.get(name, 0) + 1
            stale = [key for key in self._groups if key[0] == name]
            for key in stale:
                del self._groups[key]

    def clear(self) -> None:
        with self._lock:
            self._clears += 1
            self._groups.clear()


class CachedEngine(Engine):
    """Exact-match LRU result cache in front of another engine."""

    thread_safe = True

    def __init__(
        self,
        inner: Engine,
        capacity: int = 256,
        scan_group_capacity: int | None = None,
    ) -> None:
        if capacity <= 0:
            raise ConfigError("cache capacity must be positive")
        self._inner = inner
        self._capacity = capacity
        # repro: allow(RA106) — leaf lock over the per-query LRU and
        # epoch counter; queries execute outside it via single-flight
        # (RA101 checks that stays true).
        self._lock = threading.RLock()
        #: Global invalidation counter; a per-query result computed
        #: before any table mutation is never stored after it.
        self._epoch = 0
        #: sql text -> (result, names of every table the query read)
        self._entries: OrderedDict[
            str, tuple[ResultSet, frozenset[str]]
        ] = OrderedDict()
        # A scan group bundles several member results, so by default it
        # gets a proportionally smaller entry budget than the LRU.
        if scan_group_capacity is None:
            scan_group_capacity = max(1, capacity // 2)
        self._scan_groups = ScanGroupCache(scan_group_capacity)
        self._batch_executor = None
        from repro.concurrency.singleflight import SingleFlight

        self._flight = SingleFlight()
        self._group_flight = SingleFlight()
        self.hits = 0
        self.misses = 0
        self.name = f"cached({inner.name})"

    @property
    def inner(self) -> Engine:
        """The wrapped engine."""
        return self._inner

    @property
    def supports_indexes(self) -> bool:  # type: ignore[override]
        return self._inner.supports_indexes

    @property
    def parallel_scans(self) -> bool:  # type: ignore[override]
        """Concurrency profile follows the engine actually scanning."""
        return self._inner.parallel_scans

    @property
    def size(self) -> int:
        """Number of cached result sets."""
        with self._lock:
            return len(self._entries)

    @property
    def scan_groups(self) -> ScanGroupCache:
        """The batch-mode scan-group cache."""
        return self._scan_groups

    @property
    def hit_rate(self) -> float:
        """Fraction of executed queries answered without inner work."""
        with self._lock:
            total = self.hits + self.misses
            if total == 0:
                return 0.0
            return self.hits / total

    def _inner_slot(self):
        """The serialization gate for calls into the wrapped engine."""
        from repro.concurrency.policy import execution_slot

        return execution_slot(self._inner)

    def _invalidate_table(self, name: str) -> None:
        """Drop every cached answer that read ``name``.

        Mutating or dropping a base table invalidates exactly the
        entries that scanned it (join results carry every table name).
        Shared-scan temps are exempt: they are derived data, never
        cached, loaded and dropped inside a single batch execution.
        """
        if name.startswith(TEMP_PREFIX):
            return
        with self._lock:
            self._epoch += 1
            stale = [
                sql
                for sql, (_, tables) in self._entries.items()
                if name in tables
            ]
            for sql in stale:
                del self._entries[sql]
        self._scan_groups.invalidate_table(name)

    def load_table(self, table: Table) -> None:
        # Invalidate on both sides of the mutation: before, so no new
        # reader trusts doomed entries; after, so anything a straggling
        # compute stored mid-mutation is purged too.
        self._invalidate_table(table.name)
        try:
            with self._inner_slot():
                self._inner.load_table(table)
        finally:
            self._invalidate_table(table.name)

    def unload_table(self, name: str) -> None:
        self._invalidate_table(name)
        try:
            with self._inner_slot():
                self._inner.unload_table(name)
        finally:
            self._invalidate_table(name)

    def table_schema(self, name: str) -> Schema | None:
        return self._inner.table_schema(name)

    def table_row_count(self, name: str) -> int | None:
        return self._inner.table_row_count(name)

    def table_version(self, name: str) -> int | None:
        return self._inner.table_version(name)

    def materialize_filtered(
        self, name, source: str, predicate, row_range=None
    ) -> bool:
        # Writing to ``name`` replaces it like a load would.
        self._invalidate_table(name)
        try:
            with self._inner_slot():
                if row_range is None:  # legacy three-argument inners work
                    return self._inner.materialize_filtered(
                        name, source, predicate
                    )
                return self._inner.materialize_filtered(
                    name, source, predicate, row_range
                )
        finally:
            self._invalidate_table(name)

    def create_index(self, table: str, column: str) -> None:
        with self._inner_slot():
            self._inner.create_index(table, column)

    def execute(self, query: Query) -> ResultSet:
        tables = frozenset(query.table_names())
        if any(name.startswith(TEMP_PREFIX) for name in tables):
            # Shared-scan temps are transient; caching them would risk
            # stale reads after their base table mutates.
            with self._inner_slot():
                return self._inner.execute(query)
        key = format_query(query)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                self._record_hit(key)
                result, _ = cached
                return ResultSet(result.columns, result.rows)
            epoch = self._epoch

        def compute() -> ResultSet:
            with self._inner_slot():
                result = self._inner.execute(query)
            with self._lock:
                self.misses += 1
                registry = _metrics.ACTIVE
                if registry is not None:
                    registry.inc("cache.misses")
                if self._epoch == epoch:
                    self._entries[key] = (
                        ResultSet(result.columns, result.rows),
                        tables,
                    )
                    if len(self._entries) > self._capacity:
                        self._entries.popitem(last=False)  # evict LRU
            return result

        # The epoch is part of the flight key: a caller arriving after
        # an invalidation completed must not ride a leader that started
        # against the pre-mutation data — it starts a fresh flight and
        # recomputes.
        result, leader = self._flight.do((key, epoch), compute)
        if leader:
            return result
        # A follower rode the leader's computation: no inner work.
        with self._lock:
            self.hits += 1
            self._record_hit(key)
        return ResultSet(result.columns, result.rows)

    @staticmethod
    def _record_hit(key: str) -> None:
        """Publish one per-query cache hit (keeps the public counters).

        Tagging here — *after* an outer layer pre-tagged its own tier —
        is what lets EXPLAIN attribute the query to ``cache``: the
        last tag wins, and a hit is always the innermost answer.
        """
        registry = _metrics.ACTIVE
        if registry is not None:
            registry.inc("cache.hits")
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.tag_query(key, "cache")

    def execute_batch(
        self,
        queries: list[Query],
        policy=None,
        *,
        workers: int | None = None,
        shards: int | None = None,
        multiplan: bool | None = None,
    ) -> list[QueryResult]:
        """Batch execution with whole-scan-group caching.

        A repeated dashboard refresh (same table, same filters, same
        component queries) is answered entirely from the scan-group
        cache; ``load_table`` on any scanned table invalidates it. The
        executor runs against the *inner* engine so merged/fetch
        queries — whose SQL no caller ever issues directly — don't
        evict useful entries from the per-query LRU. ``policy`` picks
        the strategy per call (the deprecated per-knob keywords map
        onto it): with ``workers``, independent scan groups overlap and
        concurrent identical refreshes single-flight into one
        computation; with ``shards``, shardable groups fan their base
        scans out per row-range shard (:mod:`repro.sharding`), the
        rolled-up results landing in the same scan-group cache; with
        ``multiplan``, an unfiltered group's fusion classes evaluate in
        one combined pass (:mod:`repro.engine.multiplan`), every
        per-plan result still cached under its own SQL. A
        ``batch=False`` policy executes per query through the wrapper
        itself, so the per-query LRU keeps answering repeats.
        """
        from repro.execution import ExecutionPolicy, resolve_policy

        policy = resolve_policy(
            policy,
            api="CachedEngine.execute_batch",
            default=ExecutionPolicy(),
            workers=workers,
            shards=shards,
            multiplan=multiplan,
        )
        if not policy.batch:
            # One sequential-policy dispatch for the whole stack;
            # executing through the wrapper keeps the per-query LRU.
            from repro.concurrency.sessions import execute_all

            return execute_all(self, list(queries), workers=policy.workers)
        with self._lock:
            if self._batch_executor is None:
                from repro.concurrency.executor import ScanGroupExecutor

                self._batch_executor = ScanGroupExecutor(
                    self._inner,
                    group_cache=self._scan_groups,
                    fallback_engine=self,  # unbatchable queries keep the LRU
                    group_flight=self._group_flight,
                )
            executor = self._batch_executor
        return executor.run(queries, policy).results

    @property
    def batch_stats(self):
        """Cumulative shared-scan statistics (None before first batch)."""
        if self._batch_executor is None:
            return None
        return self._batch_executor.stats

    def invalidate(self) -> None:
        """Drop every cached result (keeps hit/miss counters)."""
        with self._lock:
            self._epoch += 1
            self._entries.clear()
        self._scan_groups.clear()

    def close(self) -> None:
        self.invalidate()
        with self._lock:
            executor = self._batch_executor
        if executor is not None:
            executor.close()  # retire the persistent worker pool
        self._inner.close()
