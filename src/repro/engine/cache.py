"""LRU query-result cache, as an engine wrapper.

The paper's environment applies "no indexing or caching" (§6.2.2), yet
dashboard workloads are highly repetitive: toggling a checkbox off and
on re-emits a query the DBMS just answered. :class:`CachedEngine` wraps
any engine with an exact-match result cache keyed on the canonical SQL
text, making that design choice ablatable
(``benchmarks/bench_ablation_indexes_cache.py``).

The cache is transparent: results are returned as fresh
:class:`~repro.engine.interface.ResultSet` instances (rows are immutable
tuples, so sharing them is safe), and any ``load_table`` call empties
the cache because the data it summarized is gone.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.engine.interface import Engine, ResultSet
from repro.engine.table import Table
from repro.errors import ConfigError
from repro.sql.ast import Query
from repro.sql.formatter import format_query


class CachedEngine(Engine):
    """Exact-match LRU result cache in front of another engine."""

    def __init__(self, inner: Engine, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ConfigError("cache capacity must be positive")
        self._inner = inner
        self._capacity = capacity
        self._entries: OrderedDict[str, ResultSet] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.name = f"cached({inner.name})"

    @property
    def inner(self) -> Engine:
        """The wrapped engine."""
        return self._inner

    @property
    def supports_indexes(self) -> bool:  # type: ignore[override]
        return self._inner.supports_indexes

    @property
    def size(self) -> int:
        """Number of cached result sets."""
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of executed queries answered from the cache."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def load_table(self, table: Table) -> None:
        # New data invalidates every cached answer, not just this
        # table's: joins may have combined it into other results.
        self._entries.clear()
        self._inner.load_table(table)

    def create_index(self, table: str, column: str) -> None:
        self._inner.create_index(table, column)

    def execute(self, query: Query) -> ResultSet:
        key = format_query(query)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return ResultSet(cached.columns, cached.rows)
        result = self._inner.execute(query)
        self.misses += 1
        self._entries[key] = ResultSet(result.columns, result.rows)
        if len(self._entries) > self._capacity:
            self._entries.popitem(last=False)  # evict least recently used
        return result

    def invalidate(self) -> None:
        """Drop every cached result (keeps hit/miss counters)."""
        self._entries.clear()

    def close(self) -> None:
        self._entries.clear()
        self._inner.close()
