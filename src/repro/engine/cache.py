"""LRU result caches, as an engine wrapper.

The paper's environment applies "no indexing or caching" (§6.2.2), yet
dashboard workloads are highly repetitive: toggling a checkbox off and
on re-emits a query the DBMS just answered. :class:`CachedEngine` wraps
any engine with an exact-match result cache keyed on the canonical SQL
text, making that design choice ablatable
(``benchmarks/bench_ablation_indexes_cache.py``).

Two cache layers cover the two execution modes:

- the **per-query cache** answers repeated single queries;
- the **scan-group cache** (:class:`ScanGroupCache`) answers whole
  batch groups — every result a shared scan produced, keyed by
  (table, normalized predicate) — so a repeated dashboard refresh costs
  zero engine work until the data changes.

Invalidation is table-aware: ``load_table`` drops only the entries that
read the replaced table (join results name every table they touched).
Temporary shared-scan relations (``TEMP_PREFIX``) are exempt — they are
derived data, loaded and dropped inside a single batch execution — and
queries against them are never cached, so they can never go stale.

The caches are transparent: results are returned as fresh
:class:`~repro.engine.interface.ResultSet` instances (rows are immutable
tuples, so sharing them is safe).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.engine.batch import TEMP_PREFIX, BatchExecutor
from repro.engine.interface import Engine, QueryResult, ResultSet
from repro.engine.table import Schema, Table
from repro.errors import ConfigError
from repro.sql.ast import Query
from repro.sql.formatter import format_query


class ScanGroupCache:
    """LRU cache of whole batch scan groups.

    One entry per (table, normalized predicate) holds every member
    result the group's shared scan produced, keyed by canonical SQL.
    Entries fill incrementally: a later batch may add new member queries
    to an existing group. ``load_table`` on the owning engine must call
    :meth:`invalidate_table` — a mutated table silently serving stale
    group results is exactly the regression the cache tests guard.
    """

    #: Member results retained per group; a long-lived session batching
    #: ever-varying SELECT shapes under one filter stays bounded.
    MAX_MEMBERS_PER_GROUP = 64

    def __init__(self, capacity: int = 128) -> None:
        if capacity <= 0:
            raise ConfigError("scan-group cache capacity must be positive")
        self._capacity = capacity
        self._groups: OrderedDict[
            tuple[str, str], dict[str, ResultSet]
        ] = OrderedDict()

    @property
    def size(self) -> int:
        """Number of cached scan groups."""
        return len(self._groups)

    def lookup(self, table: str, predicate_key: str) -> dict[str, ResultSet]:
        """The group's cached results by SQL text (empty when absent).

        Returns a shallow copy so callers cannot corrupt the entry.
        """
        entry = self._groups.get((table, predicate_key))
        if entry is None:
            return {}
        self._groups.move_to_end((table, predicate_key))
        return dict(entry)

    def store(
        self,
        table: str,
        predicate_key: str,
        results: dict[str, ResultSet],
    ) -> None:
        """Add one group's results, merging into any existing entry."""
        key = (table, predicate_key)
        entry = self._groups.get(key)
        if entry is None:
            entry = {}
            self._groups[key] = entry
        for sql, result in results.items():
            entry.pop(sql, None)  # re-store refreshes recency
            entry[sql] = ResultSet(result.columns, result.rows)
        while len(entry) > self.MAX_MEMBERS_PER_GROUP:
            del entry[next(iter(entry))]  # drop least-recently stored
        self._groups.move_to_end(key)
        while len(self._groups) > self._capacity:
            self._groups.popitem(last=False)

    def invalidate_table(self, name: str) -> None:
        """Drop every group that scanned ``name``."""
        stale = [key for key in self._groups if key[0] == name]
        for key in stale:
            del self._groups[key]

    def clear(self) -> None:
        self._groups.clear()


class CachedEngine(Engine):
    """Exact-match LRU result cache in front of another engine."""

    def __init__(
        self,
        inner: Engine,
        capacity: int = 256,
        scan_group_capacity: int | None = None,
    ) -> None:
        if capacity <= 0:
            raise ConfigError("cache capacity must be positive")
        self._inner = inner
        self._capacity = capacity
        #: sql text -> (result, names of every table the query read)
        self._entries: OrderedDict[
            str, tuple[ResultSet, frozenset[str]]
        ] = OrderedDict()
        # A scan group bundles several member results, so by default it
        # gets a proportionally smaller entry budget than the LRU.
        if scan_group_capacity is None:
            scan_group_capacity = max(1, capacity // 2)
        self._scan_groups = ScanGroupCache(scan_group_capacity)
        self._batch_executor = None
        self.hits = 0
        self.misses = 0
        self.name = f"cached({inner.name})"

    @property
    def inner(self) -> Engine:
        """The wrapped engine."""
        return self._inner

    @property
    def supports_indexes(self) -> bool:  # type: ignore[override]
        return self._inner.supports_indexes

    @property
    def size(self) -> int:
        """Number of cached result sets."""
        return len(self._entries)

    @property
    def scan_groups(self) -> ScanGroupCache:
        """The batch-mode scan-group cache."""
        return self._scan_groups

    @property
    def hit_rate(self) -> float:
        """Fraction of executed queries answered from the cache."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def _invalidate_table(self, name: str) -> None:
        """Drop every cached answer that read ``name``.

        Mutating or dropping a base table invalidates exactly the
        entries that scanned it (join results carry every table name).
        Shared-scan temps are exempt: they are derived data, never
        cached, loaded and dropped inside a single batch execution.
        """
        if name.startswith(TEMP_PREFIX):
            return
        stale = [
            sql
            for sql, (_, tables) in self._entries.items()
            if name in tables
        ]
        for sql in stale:
            del self._entries[sql]
        self._scan_groups.invalidate_table(name)

    def load_table(self, table: Table) -> None:
        self._invalidate_table(table.name)
        self._inner.load_table(table)

    def unload_table(self, name: str) -> None:
        self._invalidate_table(name)
        self._inner.unload_table(name)

    def table_schema(self, name: str) -> Schema | None:
        return self._inner.table_schema(name)

    def materialize_filtered(self, name, source: str, predicate) -> bool:
        # Writing to ``name`` replaces it like a load would.
        self._invalidate_table(name)
        return self._inner.materialize_filtered(name, source, predicate)

    def create_index(self, table: str, column: str) -> None:
        self._inner.create_index(table, column)

    def execute(self, query: Query) -> ResultSet:
        tables = frozenset(query.table_names())
        if any(name.startswith(TEMP_PREFIX) for name in tables):
            # Shared-scan temps are transient; caching them would risk
            # stale reads after their base table mutates.
            return self._inner.execute(query)
        key = format_query(query)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            result, _ = cached
            return ResultSet(result.columns, result.rows)
        result = self._inner.execute(query)
        self.misses += 1
        self._entries[key] = (ResultSet(result.columns, result.rows), tables)
        if len(self._entries) > self._capacity:
            self._entries.popitem(last=False)  # evict least recently used
        return result

    def execute_batch(self, queries: list[Query]) -> list[QueryResult]:
        """Batch execution with whole-scan-group caching.

        A repeated dashboard refresh (same table, same filters, same
        component queries) is answered entirely from the scan-group
        cache; ``load_table`` on any scanned table invalidates it. The
        executor runs against the *inner* engine so merged/fetch
        queries — whose SQL no caller ever issues directly — don't
        evict useful entries from the per-query LRU.
        """
        if self._batch_executor is None:
            self._batch_executor = BatchExecutor(
                self._inner,
                group_cache=self._scan_groups,
                fallback_engine=self,  # unbatchable queries keep the LRU
            )
        return self._batch_executor.run(queries).results

    @property
    def batch_stats(self):
        """Cumulative shared-scan statistics (None before first batch)."""
        if self._batch_executor is None:
            return None
        return self._batch_executor.stats

    def invalidate(self) -> None:
        """Drop every cached result (keeps hit/miss counters)."""
        self._entries.clear()
        self._scan_groups.clear()

    def close(self) -> None:
        self.invalidate()
        self._inner.close()
