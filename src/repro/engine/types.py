"""Column data types and value coercion shared by all engines."""

from __future__ import annotations

import datetime as _dt
from enum import Enum


class DataType(Enum):
    """Logical column types understood by the engines.

    The benchmark's datasets only need these six; they map directly onto
    the Categorical (STRING/BOOLEAN), Quantitative (INTEGER/FLOAT), and
    Temporal (DATE/TIMESTAMP) attribute classes of the paper's Table 2.
    """

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    BOOLEAN = "boolean"
    DATE = "date"
    TIMESTAMP = "timestamp"

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INTEGER, DataType.FLOAT)

    @property
    def is_temporal(self) -> bool:
        return self in (DataType.DATE, DataType.TIMESTAMP)

    @property
    def is_categorical(self) -> bool:
        return self in (DataType.STRING, DataType.BOOLEAN)


def coerce(value: object, dtype: DataType) -> object:
    """Coerce a raw Python value to the canonical form for ``dtype``.

    ``None`` passes through unchanged (SQL NULL). Raises :class:`ValueError`
    when the value cannot be represented in the target type.
    """
    if value is None:
        return None
    if dtype is DataType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            return int(value)
        raise ValueError(f"cannot coerce {value!r} to INTEGER")
    if dtype is DataType.FLOAT:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            return float(value)
        raise ValueError(f"cannot coerce {value!r} to FLOAT")
    if dtype is DataType.STRING:
        if isinstance(value, str):
            return value
        return str(value)
    if dtype is DataType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        if isinstance(value, str) and value.lower() in ("true", "false"):
            return value.lower() == "true"
        raise ValueError(f"cannot coerce {value!r} to BOOLEAN")
    if dtype is DataType.DATE:
        if isinstance(value, _dt.datetime):
            return value.date()
        if isinstance(value, _dt.date):
            return value
        if isinstance(value, str):
            return _dt.date.fromisoformat(value)
        raise ValueError(f"cannot coerce {value!r} to DATE")
    if dtype is DataType.TIMESTAMP:
        if isinstance(value, _dt.datetime):
            return value
        if isinstance(value, _dt.date):
            return _dt.datetime(value.year, value.month, value.day)
        if isinstance(value, str):
            return _dt.datetime.fromisoformat(value)
        raise ValueError(f"cannot coerce {value!r} to TIMESTAMP")
    raise ValueError(f"unknown data type {dtype!r}")


def infer_type(values: list[object]) -> DataType:
    """Infer the narrowest :class:`DataType` covering non-null ``values``.

    Used by :meth:`repro.engine.table.Table.from_rows` when no schema is
    supplied. Falls back to STRING when values are heterogeneous.
    """
    seen: set[DataType] = set()
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            seen.add(DataType.BOOLEAN)
        elif isinstance(value, int):
            seen.add(DataType.INTEGER)
        elif isinstance(value, float):
            seen.add(DataType.FLOAT)
        elif isinstance(value, _dt.datetime):
            seen.add(DataType.TIMESTAMP)
        elif isinstance(value, _dt.date):
            seen.add(DataType.DATE)
        else:
            seen.add(DataType.STRING)
    if not seen:
        return DataType.STRING
    if seen == {DataType.INTEGER}:
        return DataType.INTEGER
    if seen <= {DataType.INTEGER, DataType.FLOAT}:
        return DataType.FLOAT
    if seen == {DataType.BOOLEAN}:
        return DataType.BOOLEAN
    if seen == {DataType.DATE}:
        return DataType.DATE
    if seen <= {DataType.DATE, DataType.TIMESTAMP}:
        return DataType.TIMESTAMP
    if len(seen) == 1:
        return seen.pop()
    return DataType.STRING


def parse_cell(text: str) -> object:
    """Parse one CSV cell into the narrowest fitting Python value.

    Empty text is NULL. Otherwise tries, in order: int, float, boolean
    (``true``/``false``, case-insensitive), ISO date, ISO timestamp;
    anything else stays a string.
    """
    if text == "":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return _dt.date.fromisoformat(text)
    except ValueError:
        pass
    try:
        return _dt.datetime.fromisoformat(text)
    except ValueError:
        pass
    return text


def sort_key(value: object) -> tuple[int, object]:
    """Total-order key that tolerates NULLs and mixed types.

    NULLs sort first (SQL ``NULLS FIRST`` for ascending order); values of
    different types sort by type name to keep the order deterministic.
    """
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, _dt.datetime):
        return (3, value.isoformat())
    if isinstance(value, _dt.date):
        return (3, value.isoformat())
    return (4, str(value))
