"""Shared logical planning for the pure-Python engines.

All three engines (row store, vector store, materializing store) execute
the same logical plan; only the physical evaluation differs. This module
splits a query into:

- *key expressions* (the GROUP BY list),
- *aggregate calls* (deduplicated across SELECT/HAVING/ORDER BY),
- *post-aggregation expressions* — each SELECT item, HAVING clause, and
  ORDER BY key rewritten over placeholder columns ``__key<i>`` and
  ``__agg<i>`` so it can be evaluated once per group.

For non-aggregate queries the plan degenerates to a projection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExecutionError
from repro.sql.ast import (
    Between,
    BinaryOp,
    Column,
    Expression,
    FuncCall,
    InList,
    IsNull,
    Like,
    OrderItem,
    Query,
    Star,
    UnaryOp,
    contains_aggregate,
)

KEY_PREFIX = "__key"
AGG_PREFIX = "__agg"


@dataclass
class AggregatePlan:
    """Execution recipe for a grouped/aggregated query."""

    key_exprs: list[Expression]
    agg_calls: list[FuncCall]
    item_exprs: list[Expression]  # post-agg, one per SELECT item
    output_names: list[str]
    having_expr: Expression | None
    order_exprs: list[tuple[Expression, bool]]  # (post-agg expr, descending)
    limit: int | None
    distinct: bool

    @property
    def is_global(self) -> bool:
        """True for aggregates without GROUP BY (one output row)."""
        return not self.key_exprs


@dataclass
class ProjectionPlan:
    """Execution recipe for a plain (non-aggregate) query."""

    item_exprs: list[Expression]
    output_names: list[str]
    order_exprs: list[tuple[Expression, bool]]
    limit: int | None
    distinct: bool
    select_star: bool = False


def plan_query(query: Query) -> AggregatePlan | ProjectionPlan:
    """Build the logical plan for a query.

    Raises
    ------
    ExecutionError
        For malformed queries (HAVING without aggregation, bare ``*``
        mixed with aggregates, aggregates of aggregates).
    """
    if query.is_aggregate:
        return _plan_aggregate(query)
    if query.having is not None:
        raise ExecutionError("HAVING requires GROUP BY or aggregates")
    return _plan_projection(query)


def _plan_projection(query: Query) -> ProjectionPlan:
    select_star = len(query.select) == 1 and isinstance(
        query.select[0].expr, Star
    )
    item_exprs = [item.expr for item in query.select]
    order_exprs = [
        (_resolve_order_expr(o, query), o.descending) for o in query.order_by
    ]
    return ProjectionPlan(
        item_exprs=item_exprs,
        output_names=query.output_names(),
        order_exprs=order_exprs,
        limit=query.limit,
        distinct=query.distinct,
        select_star=select_star,
    )


def _plan_aggregate(query: Query) -> AggregatePlan:
    collector = _AggregateCollector(list(query.group_by))
    item_exprs = []
    for item in query.select:
        if isinstance(item.expr, Star):
            raise ExecutionError("SELECT * cannot be combined with GROUP BY")
        item_exprs.append(collector.rewrite(item.expr))
    having_expr = (
        collector.rewrite(query.having) if query.having is not None else None
    )
    order_exprs: list[tuple[Expression, bool]] = []
    for order in query.order_by:
        expr = _resolve_order_alias(order.expr, query)
        order_exprs.append((collector.rewrite(expr), order.descending))
    return AggregatePlan(
        key_exprs=list(query.group_by),
        agg_calls=collector.agg_calls,
        item_exprs=item_exprs,
        output_names=query.output_names(),
        having_expr=having_expr,
        order_exprs=order_exprs,
        limit=query.limit,
        distinct=query.distinct,
    )


def _resolve_order_alias(expr: Expression, query: Query) -> Expression:
    """Replace a bare ORDER BY column that names an alias with its target."""
    if isinstance(expr, Column) and expr.table is None:
        for item in query.select:
            if item.alias == expr.name:
                return item.expr
    return expr


def _resolve_order_expr(order: OrderItem, query: Query) -> Expression:
    expr = _resolve_order_alias(order.expr, query)
    if contains_aggregate(expr):
        raise ExecutionError("aggregate in ORDER BY of a non-aggregate query")
    return expr


class _AggregateCollector:
    """Rewrites expressions over ``__key``/``__agg`` placeholder columns."""

    def __init__(self, key_exprs: list[Expression]) -> None:
        self._key_exprs = key_exprs
        self.agg_calls: list[FuncCall] = []
        self._agg_index: dict[FuncCall, int] = {}

    def rewrite(self, expr: Expression) -> Expression:
        # Group-key subexpressions are replaced first so that e.g.
        # ``GROUP BY hour`` lets ``SELECT hour`` pass through.
        for i, key in enumerate(self._key_exprs):
            if expr == key:
                return Column(f"{KEY_PREFIX}{i}")
        if isinstance(expr, FuncCall) and expr.is_aggregate:
            for arg in expr.args:
                if contains_aggregate(arg):
                    raise ExecutionError("nested aggregates are not allowed")
            if expr not in self._agg_index:
                self._agg_index[expr] = len(self.agg_calls)
                self.agg_calls.append(expr)
            return Column(f"{AGG_PREFIX}{self._agg_index[expr]}")
        if isinstance(expr, Column):
            # A bare column in an aggregate query must be a group key
            # (checked above). Anything else is invalid SQL; we follow
            # strict semantics rather than SQLite's "any value" rule.
            raise ExecutionError(
                f"column {expr} must appear in GROUP BY or inside an aggregate"
            )
        if isinstance(expr, BinaryOp):
            return BinaryOp(
                expr.op, self.rewrite(expr.left), self.rewrite(expr.right)
            )
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, self.rewrite(expr.operand))
        if isinstance(expr, FuncCall):
            return FuncCall(
                expr.name,
                tuple(self.rewrite(a) for a in expr.args),
                expr.distinct,
            )
        if isinstance(expr, InList):
            return InList(
                self.rewrite(expr.expr),
                tuple(self.rewrite(v) for v in expr.values),
                expr.negated,
            )
        if isinstance(expr, Between):
            return Between(
                self.rewrite(expr.expr),
                self.rewrite(expr.low),
                self.rewrite(expr.high),
                expr.negated,
            )
        if isinstance(expr, Like):
            return Like(self.rewrite(expr.expr), expr.pattern, expr.negated)
        if isinstance(expr, IsNull):
            return IsNull(self.rewrite(expr.expr), expr.negated)
        return expr  # Literals and Star pass through.


# ---------------------------------------------------------------------------
# Multi-query (batch) planning support
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScanSignature:
    """Identity of the table scan a query performs.

    Two queries with equal signatures read the same rows: same base
    table, same (normalized) filter predicate. The batch executor
    (:mod:`repro.engine.batch`) groups a dashboard refresh by signature
    and evaluates each group with one shared scan.
    """

    table: str
    predicate_key: str  # canonical text of the normalized WHERE ('' = none)


def scan_signature(query: Query) -> ScanSignature | None:
    """The query's scan signature, or ``None`` when it cannot share.

    Join queries return ``None``: they read several tables and the
    shared-scan rewrite only covers the single-table queries dashboards
    emit (§3.0.3). FROM-aliased queries also return ``None`` — the
    shared-scan rewrite re-aliases the temp relation to the base table
    name, which would orphan references to the user's alias.
    """
    if query.joins or query.from_table.alias is not None:
        return None
    # Deferred import: equivalence.* imports engine.interface, so a
    # module-level import here would be cyclic during package init.
    from repro.equivalence.normalize import canonical_text, normalize_predicate

    return ScanSignature(
        table=query.from_table.name,
        predicate_key=canonical_text(normalize_predicate(query.where)),
    )


def fusion_signature(query: Query) -> tuple | None:
    """Key under which queries can be *fused* into one merged execution.

    Queries in the same scan group with equal fusion signatures compute
    over identical row sets *and* identical group keys, so their SELECT
    lists can be concatenated into a single query and the combined
    result sliced back column-wise — provably order-preserving on any
    deterministic engine.

    Returns ``None`` for queries that must execute on their own:
    HAVING/ORDER BY/LIMIT/DISTINCT change row sets or ordering in
    select-list-dependent ways, ``SELECT *`` expands positionally, and
    unaliased non-column items are named engine-dependently (SQLite
    preserves the SQL text's casing, ``col_<i>`` names are positional)
    so slicing them out of a merged result would rename them.
    """
    if (
        query.having is not None
        or query.order_by
        or query.limit is not None
        or query.distinct
        or query.joins
    ):
        return None
    for item in query.select:
        if isinstance(item.expr, Star):
            return None
        if item.alias is None and not isinstance(item.expr, Column):
            return None
    return ("agg", query.group_by) if query.is_aggregate else ("proj",)


def placeholder_row(
    keys: tuple[object, ...], aggs: list[object]
) -> dict[str, object]:
    """Build the evaluation context for post-aggregation expressions."""
    row: dict[str, object] = {}
    for i, value in enumerate(keys):
        row[f"{KEY_PREFIX}{i}"] = value
    for i, value in enumerate(aggs):
        row[f"{AGG_PREFIX}{i}"] = value
    return row
