"""Single-pass multi-plan evaluation of one scan group (grouping sets).

The shared-scan optimizer (:mod:`repro.engine.batch`) already collapses
a dashboard refresh into one base scan per *fusion class* — queries
with identical GROUP BY keys merge into one execution. The initial
render is the degenerate case that layer cannot help: no WHERE clause,
so there is no filter to share, and every visualization groups by a
different key — N fusion classes, N full-table scans. This module
removes that last N with the classic grouping-sets decomposition:

1. **Combined pass.** One engine query computes the *finest* grouping —
   GROUP BY the union of every plan's key expressions — with every
   requested aggregate decomposed into mergeable pieces (AVG becomes
   SUM + COUNT; COUNT/SUM/MIN/MAX pass through). One scan of the data,
   whatever the engine: SQLite evaluates a single grouped SELECT (its
   one-pass sorter/accumulator — grouping-set emulation without the
   syntax), and each pure-Python store makes a single column/row
   traversal feeding one accumulator map keyed by the combined keys.
2. **Per-plan merge.** The finest partial rows load as a temporary
   relation (``TEMP_PREFIX``-named, cache-exempt) and each plan's
   result is derived by one *merge* query over it — re-aggregating the
   plan's own key subset with the rollup merge algebra COUNT/SUM
   partials via SUM, MIN/MAX via themselves, AVG as
   ``SUM(sums) * 1.0 / SUM(counts)``. The merge runs *on the engine*,
   so arithmetic promotion, NULL handling, group ordering, and output
   naming are the engine's own.

Why each merged result is byte-identical to running the plan alone:

- **Rows.** The finest grouping partitions exactly the scanned rows;
  re-aggregating a key subset sees every row's contribution once.
- **Order.** Engines order GROUP BY output either by key value
  (SQLite's sorter, matstore's sort-based grouping, vectorstore's
  ``np.unique`` path) — reproduced because the merge re-groups on the
  same engine — or by first occurrence in scan order (rowstore's dict,
  vectorstore's hash loop), which the finest partial *preserves*: a
  plan key value's first containing partial row sits at the position
  of the finest group that first saw it, which is the position of the
  value's first base row. First occurrences over the partial relation
  therefore replay first occurrences over the base table.
- **Values, types, names.** Group-key columns keep their base names
  through the partial relation (the SQLite wrapper restores temporal /
  boolean output types by schema lookup, exactly as in direct
  execution); aggregate pieces carry internal ``__mp*`` names that no
  restoration applies to — matching direct execution, where aliased
  aggregate outputs are not schema columns either.

Exactness boundary (shared with the sharded rollup,
:class:`~repro.engine.batch.AggregateRollup`): the merge re-associates
floating-point addition — per-fine-group sums are rounded before the
final SUM — so SUM/AVG over arbitrary FLOAT columns agree with direct
execution to IEEE-754 rounding, and are byte-identical for
INTEGER/BOOLEAN columns and dyadic-rational floats. It also shares the
rollup's naming boundary: an aggregate aliased to a base column's name
(``MAX(day) AS day``) would skip the SQLite type restoration direct
execution performs; dashboard workloads never alias aggregates to data
columns, and group keys — the paper's temporal axes — are handled
exactly.

Thread-safety contract (the same leaf-granular discipline as
:mod:`repro.engine.batch`, relied on by
:class:`~repro.concurrency.executor.ScanGroupExecutor`):

- :func:`run_multiplan` executes inside one scan-group task and writes
  only that group's member positions in the shared results list; all
  mutable state (the partial rows, ``produced``) is task-local.
- The partial relation carries a :func:`~repro.engine.batch.unique_temp_name`,
  so two executions of the same group overlapping on one engine can
  never replace or drop each other's relation mid-merge, and the
  ``TEMP_PREFIX`` keeps it exempt from result caching and, on SQLite,
  private to the calling thread's connection.
- No lock is held across any engine call; every call goes through the
  executor's (slot-gated) engine, so interleaving with other groups,
  shards, and single-flight leaders is safe.
- Cache stores happen in the caller (:meth:`BatchExecutor._run_group`
  or :meth:`MultiPlanShardedRun.merge <repro.sharding.executor>`)
  under the epoch captured before any engine work, so a table
  invalidated mid-compute drops the store instead of caching vanished
  data.

:class:`MultiPlan` itself is immutable after construction and safe to
share across threads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.batch import (
    _NULL,
    _substitute,
    concat_partials,
    decompose_aggregate,
    eligible_plan,
    unique_temp_name,
)
from repro.engine.interface import ResultSet
from repro.engine.planner import AGG_PREFIX, KEY_PREFIX, AggregatePlan
from repro.engine.table import Table
from repro.errors import ExecutionError
from repro.sql.ast import (
    Column,
    Expression,
    FuncCall,
    Query,
    SelectItem,
    TableRef,
)
from repro.telemetry import trace as _trace

#: Internal column-name stems of the combined partial relation. Group
#: keys that are bare columns keep their own names (required for the
#: SQLite wrapper's output-type restoration to mirror direct
#: execution); expression keys and aggregate pieces get these.
MULTIPLAN_KEY_PREFIX = "__mkey"
MULTIPLAN_AGG_PREFIX = "__mp"


@dataclass(frozen=True)
class PlanMerge:
    """One plan's derivation from the combined partial relation."""

    #: SELECT list of the merge query: the plan's post-aggregation
    #: expressions with each aggregate call replaced by its merge
    #: expression over partial columns, aliased to the original output
    #: names.
    merge_select: tuple[SelectItem, ...]
    #: GROUP BY of the merge query (the plan's key columns, by their
    #: partial-relation names). Empty for global aggregates.
    merge_group_by: tuple[Expression, ...]
    #: Output column names of the plan's final result.
    output_names: tuple[str, ...]

    @property
    def is_global(self) -> bool:
        """True for aggregates without GROUP BY (one output row)."""
        return not self.merge_group_by

    def merge_query(self, relation: str) -> Query:
        """The re-aggregation of this plan over the partial relation."""
        return Query(
            select=self.merge_select,
            from_table=TableRef(relation),
            group_by=self.merge_group_by,
        )

    def empty_result(self) -> ResultSet:
        """The result of a grouped plan over zero qualifying rows."""
        return ResultSet(list(self.output_names), [])


@dataclass(frozen=True)
class MultiPlan:
    """One combined pass plus one merge per plan (grouping sets).

    Built by :func:`build_multiplan` from the merged queries of two or
    more fusion classes sharing one scan. The *combined* query computes
    the finest grouping — GROUP BY the union of every plan's keys —
    with every aggregate decomposed into mergeable pieces; each
    :class:`PlanMerge` then derives one plan's exact result from the
    combined rows.
    """

    #: SELECT list of the combined query: the union of the plans' key
    #: expressions first, then the decomposed aggregate pieces, every
    #: item aliased.
    combined_select: tuple[SelectItem, ...]
    #: GROUP BY of the combined query (the union of key expressions).
    combined_group_by: tuple[Expression, ...]
    #: Column names of the combined partial relation, in SELECT order.
    combined_names: tuple[str, ...]
    #: One merge per input plan, in input order.
    plans: tuple[PlanMerge, ...]

    def combined_query(self, relation: str, alias: str | None = None) -> Query:
        """The single-pass query over ``relation``.

        For the unfiltered path ``relation`` is the base table itself
        — no materialization happens at all. For sharded execution it
        is one shard's temp, aliased back to the base table name so
        table-qualified column references keep resolving (the same
        rewrite the shared scan and the rollup use).
        """
        return Query(
            select=self.combined_select,
            from_table=TableRef(relation, alias=alias),
            group_by=self.combined_group_by,
        )

    def partial_table(self, name: str, partials: list[ResultSet]) -> Table:
        """The merge input: every partial's rows, in input order.

        One element for the unsharded single pass; one per shard — in
        shard order, which preserves first-occurrence order — for
        sharded execution.
        """
        return concat_partials(name, self.combined_names, partials)


def _index_of(items: list[Expression], target: Expression) -> int:
    """First index of an equal expression (equality, not identity)."""
    for i, item in enumerate(items):
        if item == target:
            return i
    raise ValueError(f"expression {target!r} not collected")


def build_multiplan(
    queries: list[Query],
    plans: list[AggregatePlan] | None = None,
) -> MultiPlan | None:
    """The combined-pass decomposition of ``queries``, or ``None``.

    ``queries`` are the merged queries of a scan group's fusion classes
    (identical row sets, distinct GROUP BY keys); ``plans`` may carry
    their already-computed :func:`eligible_plan` results so callers
    that filtered the classes don't plan twice. ``None`` when fewer
    than two are given, when any fails :func:`eligible_plan`, or when
    the combined partial relation's column names would collide — the
    callers then keep the pre-existing one-execution-per-class path.
    """
    if len(queries) < 2:
        return None
    if plans is None:
        plans = []
        for query in queries:
            plan = eligible_plan(query)
            if plan is None:
                return None
            plans.append(plan)
    plans_raw = list(zip(queries, plans))

    # The finest grouping: union of every plan's key expressions, in
    # first-encounter order. Bare-column keys keep their own names so
    # output-type restoration (dates, booleans on SQLite) behaves
    # exactly as in direct execution; expression keys get internal
    # names — direct execution never restores their outputs either.
    fine_keys: list[Expression] = []
    for _, plan in plans_raw:
        for key in plan.key_exprs:
            if not any(key == existing for existing in fine_keys):
                fine_keys.append(key)
    key_names = [
        key.name
        if isinstance(key, Column)
        else f"{MULTIPLAN_KEY_PREFIX}{i}"
        for i, key in enumerate(fine_keys)
    ]

    combined_select: list[SelectItem] = [
        SelectItem(key, key_names[i]) for i, key in enumerate(fine_keys)
    ]
    combined_names = list(key_names)

    # Aggregate pieces, deduplicated across plans: two plans asking for
    # SUM(latency) share one partial column. Each call maps to the
    # merge expression that re-aggregates its pieces; the decomposition
    # itself is the fusion layer's
    # (:func:`~repro.engine.batch.decompose_aggregate`), so the merge
    # algebra cannot drift from the sharded rollup's.
    agg_calls: list[FuncCall] = []
    merge_exprs: list[Expression] = []
    for _, plan in plans_raw:
        for call in plan.agg_calls:
            if any(call == existing for existing in agg_calls):
                continue
            decomposed = decompose_aggregate(
                call, f"{MULTIPLAN_AGG_PREFIX}{len(agg_calls)}"
            )
            if decomposed is None:  # pragma: no cover - exhaustive
                return None
            pieces, names, merged = decomposed
            combined_select += pieces
            combined_names += names
            agg_calls.append(call)
            merge_exprs.append(merged)
    if len(set(combined_names)) != len(combined_names):
        return None  # colliding column names; cannot build the relation

    merges: list[PlanMerge] = []
    for query, plan in plans_raw:
        substitutions: dict[str, Expression] = {}
        for i, key in enumerate(plan.key_exprs):
            fine = _index_of(fine_keys, key)
            substitutions[f"{KEY_PREFIX}{i}"] = Column(key_names[fine])
        for j, call in enumerate(plan.agg_calls):
            substitutions[f"{AGG_PREFIX}{j}"] = merge_exprs[
                _index_of(agg_calls, call)
            ]
        merge_select = tuple(
            SelectItem(
                _substitute(expr, substitutions),
                query.select[position].output_name(position),
            )
            for position, expr in enumerate(plan.item_exprs)
        )
        merge_group_by = tuple(
            Column(key_names[_index_of(fine_keys, key)])
            for key in plan.key_exprs
        )
        merges.append(
            PlanMerge(
                merge_select=merge_select,
                merge_group_by=merge_group_by,
                output_names=tuple(query.output_names()),
            )
        )
    return MultiPlan(
        combined_select=tuple(combined_select),
        combined_group_by=tuple(fine_keys),
        combined_names=tuple(combined_names),
        plans=tuple(merges),
    )


def serve_empty_group(
    executor, classes, merges, fetch_share, results, produced, stats
):
    """Answer every plan of a combined pass that found zero rows.

    Grouped plans have zero groups, so the empty relation is their
    answer; a *global* plan still owes the engine's own one-row result
    (COUNT = 0, not the NULL a merge over an empty relation would
    produce), so it executes directly — over zero qualifying rows.
    The single home of this edge case, shared by :func:`run_multiplan`
    and :class:`~repro.sharding.executor.MultiPlanShardedRun`.
    """
    for cls, merge in zip(classes, merges):
        if merge.is_global:
            direct = executor.engine.execute_timed(cls.merged_query())
            stats.base_scans += 1
            executor._distribute(
                cls, direct.result, direct.duration_ms, 0.0,
                results, produced, tier="multiplan",
            )
        else:
            executor._distribute(
                cls, merge.empty_result(), 0.0, fetch_share,
                results, produced, tier="multiplan",
            )


def run_multiplan(executor, signature, classes, results, stats, produced):
    """Answer a group's eligible classes with one combined pass.

    Called by :meth:`BatchExecutor._run_group
    <repro.engine.batch.BatchExecutor>` for an *unfiltered* scan group
    (``executor`` is duck-typed to avoid a cyclic import). Executes the
    combined query directly against the base table — one base scan for
    every eligible fusion class — then derives each class's result with
    a merge query over the loaded partial relation, distributing into
    ``results``/``produced`` exactly like a shared scan. Returns the
    classes it did **not** cover (ineligible shapes, or all of them
    when no combined plan exists), which the caller executes on the
    pre-existing per-class path.
    """
    eligible = []
    rest = []
    queries: list[Query] = []
    class_plans = []
    for cls in classes:
        query = cls.merged_query()
        class_plan = eligible_plan(query)
        if class_plan is None:
            rest.append(cls)
            continue
        eligible.append(cls)
        queries.append(query)
        class_plans.append(class_plan)
    if len(eligible) < 2:
        return classes
    plan = build_multiplan(queries, plans=class_plans)
    if plan is None:
        return classes

    tracer = _trace.ACTIVE
    cm = (
        _NULL
        if tracer is None
        else tracer.span(
            "multiplan_pass",
            table=signature.table,
            classes=len(eligible),
            members=sum(len(cls.members) for cls in eligible),
        )
    )
    with cm as span:
        engine = executor.engine
        timed = engine.execute_timed(plan.combined_query(signature.table))
        stats.base_scans += 1
        stats.multiplan_groups += 1
        stats.multiplan_plans += len(eligible)
        member_count = sum(len(cls.members) for cls in eligible)
        fetch_share = timed.duration_ms / member_count
        fine = timed.result
        if span is not None:
            span.attrs["combined_ms"] = round(timed.duration_ms, 3)

        if not fine.rows and plan.combined_group_by:
            serve_empty_group(
                executor, eligible, plan.plans, fetch_share,
                results, produced, stats,
            )
            return rest

        relation = unique_temp_name(signature.table, signature.predicate_key)
        engine.load_table(plan.partial_table(relation, [fine]))
        try:
            for cls, merge in zip(eligible, plan.plans):
                merged = engine.execute_timed(merge.merge_query(relation))
                executor._distribute(
                    cls, merged.result, merged.duration_ms, fetch_share,
                    results, produced, tier="multiplan",
                )
        finally:
            try:
                engine.unload_table(relation)
            except ExecutionError:
                pass  # engine keeps the temp; next load replaces it
    return rest


__all__ = [
    "MULTIPLAN_AGG_PREFIX",
    "MULTIPLAN_KEY_PREFIX",
    "MultiPlan",
    "PlanMerge",
    "build_multiplan",
    "eligible_plan",
    "run_multiplan",
    "serve_empty_group",
]
