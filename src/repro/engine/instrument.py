"""Engine instrumentation for tests and benchmarks.

Not part of the execution path: wrappers here observe engine traffic so
the test suite and ``benchmarks/bench_batch_executor.py`` can verify
optimizer claims (scan counts) at the engine boundary instead of
trusting an executor's self-reported statistics.
"""

from __future__ import annotations

from repro.engine.batch import TEMP_PREFIX
from repro.engine.interface import Engine, ResultSet
from repro.engine.table import Schema, Table
from repro.sql.ast import Query


class CountingEngine(Engine):
    """Transparent wrapper counting executions per FROM table."""

    def __init__(self, inner: Engine) -> None:
        self._inner = inner
        self.name = f"counting({inner.name})"
        self.scans: dict[str, int] = {}

    @property
    def inner(self) -> Engine:
        return self._inner

    @property
    def supports_indexes(self) -> bool:  # type: ignore[override]
        return self._inner.supports_indexes

    def base_scans(self) -> int:
        """Executions that read a base (non-temporary) table."""
        return sum(
            count
            for table, count in self.scans.items()
            if not table.startswith(TEMP_PREFIX)
        )

    def reset(self) -> None:
        self.scans.clear()

    def load_table(self, table: Table) -> None:
        self._inner.load_table(table)

    def unload_table(self, name: str) -> None:
        self._inner.unload_table(name)

    def table_schema(self, name: str) -> Schema | None:
        return self._inner.table_schema(name)

    def materialize_filtered(self, name, source: str, predicate) -> bool:
        done = self._inner.materialize_filtered(name, source, predicate)
        if done:  # a native shared scan reads the base table once
            self.scans[source] = self.scans.get(source, 0) + 1
        return done

    def create_index(self, table: str, column: str) -> None:
        self._inner.create_index(table, column)

    def execute(self, query: Query) -> ResultSet:
        for table in query.table_names():  # joins scan every table read
            self.scans[table] = self.scans.get(table, 0) + 1
        return self._inner.execute(query)

    def close(self) -> None:
        self._inner.close()
